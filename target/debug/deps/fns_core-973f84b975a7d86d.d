/root/repo/target/debug/deps/fns_core-973f84b975a7d86d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libfns_core-973f84b975a7d86d.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libfns_core-973f84b975a7d86d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/errors.rs:
crates/core/src/metrics.rs:
crates/core/src/mode.rs:
crates/core/src/model.rs:
crates/core/src/resources.rs:
crates/core/src/sim.rs:
