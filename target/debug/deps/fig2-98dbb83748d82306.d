/root/repo/target/debug/deps/fig2-98dbb83748d82306.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-98dbb83748d82306: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
