/root/repo/target/debug/deps/sweeps-2066dae747eff399.d: crates/bench/src/bin/sweeps.rs

/root/repo/target/debug/deps/sweeps-2066dae747eff399: crates/bench/src/bin/sweeps.rs

crates/bench/src/bin/sweeps.rs:
