/root/repo/target/debug/deps/fns_sim-240512194a21fe4d.d: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/fns_sim-240512194a21fe4d: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
