/root/repo/target/debug/deps/fns_core-34d2525409d4f4fc.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/fns_core-34d2525409d4f4fc: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/errors.rs:
crates/core/src/metrics.rs:
crates/core/src/mode.rs:
crates/core/src/model.rs:
crates/core/src/resources.rs:
crates/core/src/sim.rs:
