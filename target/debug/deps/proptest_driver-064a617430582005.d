/root/repo/target/debug/deps/proptest_driver-064a617430582005.d: crates/core/tests/proptest_driver.rs

/root/repo/target/debug/deps/proptest_driver-064a617430582005: crates/core/tests/proptest_driver.rs

crates/core/tests/proptest_driver.rs:
