/root/repo/target/debug/deps/chaos-40c3a3008429a30a.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-40c3a3008429a30a.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
