/root/repo/target/debug/deps/fns_faults-3225e24a07ed7c98.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/fns_faults-3225e24a07ed7c98: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
