/root/repo/target/debug/deps/fig12-12729f7b4d3bbbdd.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-12729f7b4d3bbbdd: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
