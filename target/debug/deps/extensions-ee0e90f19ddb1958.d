/root/repo/target/debug/deps/extensions-ee0e90f19ddb1958.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-ee0e90f19ddb1958: tests/extensions.rs

tests/extensions.rs:
