/root/repo/target/debug/deps/fig8-1aa8a54e373691e9.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-1aa8a54e373691e9: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
