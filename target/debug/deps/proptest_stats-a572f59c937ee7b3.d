/root/repo/target/debug/deps/proptest_stats-a572f59c937ee7b3.d: crates/sim/tests/proptest_stats.rs

/root/repo/target/debug/deps/proptest_stats-a572f59c937ee7b3: crates/sim/tests/proptest_stats.rs

crates/sim/tests/proptest_stats.rs:
