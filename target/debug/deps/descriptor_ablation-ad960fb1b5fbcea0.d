/root/repo/target/debug/deps/descriptor_ablation-ad960fb1b5fbcea0.d: crates/bench/src/bin/descriptor_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdescriptor_ablation-ad960fb1b5fbcea0.rmeta: crates/bench/src/bin/descriptor_ablation.rs Cargo.toml

crates/bench/src/bin/descriptor_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
