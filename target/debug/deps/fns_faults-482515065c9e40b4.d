/root/repo/target/debug/deps/fns_faults-482515065c9e40b4.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/libfns_faults-482515065c9e40b4.rlib: crates/faults/src/lib.rs

/root/repo/target/debug/deps/libfns_faults-482515065c9e40b4.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
