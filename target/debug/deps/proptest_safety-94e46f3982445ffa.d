/root/repo/target/debug/deps/proptest_safety-94e46f3982445ffa.d: crates/iommu/tests/proptest_safety.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_safety-94e46f3982445ffa.rmeta: crates/iommu/tests/proptest_safety.rs Cargo.toml

crates/iommu/tests/proptest_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
