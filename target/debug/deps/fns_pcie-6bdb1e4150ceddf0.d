/root/repo/target/debug/deps/fns_pcie-6bdb1e4150ceddf0.d: crates/pcie/src/lib.rs

/root/repo/target/debug/deps/fns_pcie-6bdb1e4150ceddf0: crates/pcie/src/lib.rs

crates/pcie/src/lib.rs:
