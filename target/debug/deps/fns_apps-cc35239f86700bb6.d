/root/repo/target/debug/deps/fns_apps-cc35239f86700bb6.d: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs

/root/repo/target/debug/deps/libfns_apps-cc35239f86700bb6.rlib: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs

/root/repo/target/debug/deps/libfns_apps-cc35239f86700bb6.rmeta: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs

crates/apps/src/lib.rs:
crates/apps/src/bidir.rs:
crates/apps/src/iperf.rs:
crates/apps/src/nginx.rs:
crates/apps/src/redis.rs:
crates/apps/src/rpc.rs:
crates/apps/src/spdk.rs:
