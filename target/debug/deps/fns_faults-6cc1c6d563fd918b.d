/root/repo/target/debug/deps/fns_faults-6cc1c6d563fd918b.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfns_faults-6cc1c6d563fd918b.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
