/root/repo/target/debug/deps/model_validation-12ddd4673720103d.d: crates/bench/src/bin/model_validation.rs

/root/repo/target/debug/deps/model_validation-12ddd4673720103d: crates/bench/src/bin/model_validation.rs

crates/bench/src/bin/model_validation.rs:
