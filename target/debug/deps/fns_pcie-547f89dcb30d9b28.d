/root/repo/target/debug/deps/fns_pcie-547f89dcb30d9b28.d: crates/pcie/src/lib.rs

/root/repo/target/debug/deps/libfns_pcie-547f89dcb30d9b28.rlib: crates/pcie/src/lib.rs

/root/repo/target/debug/deps/libfns_pcie-547f89dcb30d9b28.rmeta: crates/pcie/src/lib.rs

crates/pcie/src/lib.rs:
