/root/repo/target/debug/deps/fig3-e8adc53178edbc6f.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-e8adc53178edbc6f: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
