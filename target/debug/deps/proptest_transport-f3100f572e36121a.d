/root/repo/target/debug/deps/proptest_transport-f3100f572e36121a.d: crates/net/tests/proptest_transport.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_transport-f3100f572e36121a.rmeta: crates/net/tests/proptest_transport.rs Cargo.toml

crates/net/tests/proptest_transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
