/root/repo/target/debug/deps/fns_sim-856b6458f77911c7.d: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libfns_sim-856b6458f77911c7.rmeta: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
