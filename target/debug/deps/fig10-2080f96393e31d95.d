/root/repo/target/debug/deps/fig10-2080f96393e31d95.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-2080f96393e31d95: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
