/root/repo/target/debug/deps/fns_bench-71754bf6baab9e9c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfns_bench-71754bf6baab9e9c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfns_bench-71754bf6baab9e9c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
