/root/repo/target/debug/deps/fns_net-754c39fd2239e1b8.d: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs Cargo.toml

/root/repo/target/debug/deps/libfns_net-754c39fd2239e1b8.rmeta: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/fault.rs:
crates/net/src/packet.rs:
crates/net/src/receiver.rs:
crates/net/src/sender.rs:
crates/net/src/switchq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
