/root/repo/target/debug/deps/fns_iova-60ab849f2b095513.d: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libfns_iova-60ab849f2b095513.rmeta: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs Cargo.toml

crates/iova/src/lib.rs:
crates/iova/src/carver.rs:
crates/iova/src/rbtree.rs:
crates/iova/src/rbtree_alloc.rs:
crates/iova/src/rcache.rs:
crates/iova/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
