/root/repo/target/debug/deps/chaos-e75c5385642ee6d5.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-e75c5385642ee6d5: tests/chaos.rs

tests/chaos.rs:
