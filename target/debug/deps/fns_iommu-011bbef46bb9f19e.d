/root/repo/target/debug/deps/fns_iommu-011bbef46bb9f19e.d: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs

/root/repo/target/debug/deps/libfns_iommu-011bbef46bb9f19e.rlib: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs

/root/repo/target/debug/deps/libfns_iommu-011bbef46bb9f19e.rmeta: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs

crates/iommu/src/lib.rs:
crates/iommu/src/config.rs:
crates/iommu/src/fault.rs:
crates/iommu/src/invalidation.rs:
crates/iommu/src/iommu.rs:
crates/iommu/src/iotlb.rs:
crates/iommu/src/lru.rs:
crates/iommu/src/pagetable.rs:
crates/iommu/src/stats.rs:
