/root/repo/target/debug/deps/fns_nic-4bafb4a2b7197a92.d: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libfns_nic-4bafb4a2b7197a92.rmeta: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs Cargo.toml

crates/nic/src/lib.rs:
crates/nic/src/buffer.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
