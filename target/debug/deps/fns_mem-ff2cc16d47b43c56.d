/root/repo/target/debug/deps/fns_mem-ff2cc16d47b43c56.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs Cargo.toml

/root/repo/target/debug/deps/libfns_mem-ff2cc16d47b43c56.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/frames.rs:
crates/mem/src/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
