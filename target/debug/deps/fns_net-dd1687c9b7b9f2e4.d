/root/repo/target/debug/deps/fns_net-dd1687c9b7b9f2e4.d: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs Cargo.toml

/root/repo/target/debug/deps/libfns_net-dd1687c9b7b9f2e4.rmeta: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/fault.rs:
crates/net/src/packet.rs:
crates/net/src/receiver.rs:
crates/net/src/sender.rs:
crates/net/src/switchq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
