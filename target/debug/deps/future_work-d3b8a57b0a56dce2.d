/root/repo/target/debug/deps/future_work-d3b8a57b0a56dce2.d: crates/bench/src/bin/future_work.rs

/root/repo/target/debug/deps/future_work-d3b8a57b0a56dce2: crates/bench/src/bin/future_work.rs

crates/bench/src/bin/future_work.rs:
