/root/repo/target/debug/deps/randomized_allocator-9ec094d22dc3a91e.d: crates/iova/tests/randomized_allocator.rs Cargo.toml

/root/repo/target/debug/deps/librandomized_allocator-9ec094d22dc3a91e.rmeta: crates/iova/tests/randomized_allocator.rs Cargo.toml

crates/iova/tests/randomized_allocator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
