/root/repo/target/debug/deps/fig8-75acc9830b2dbd99.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-75acc9830b2dbd99: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
