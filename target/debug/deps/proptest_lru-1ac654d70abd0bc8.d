/root/repo/target/debug/deps/proptest_lru-1ac654d70abd0bc8.d: crates/iommu/tests/proptest_lru.rs

/root/repo/target/debug/deps/proptest_lru-1ac654d70abd0bc8: crates/iommu/tests/proptest_lru.rs

crates/iommu/tests/proptest_lru.rs:
