/root/repo/target/debug/deps/fns_iova-c9ae8ae0867523e7.d: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

/root/repo/target/debug/deps/libfns_iova-c9ae8ae0867523e7.rlib: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

/root/repo/target/debug/deps/libfns_iova-c9ae8ae0867523e7.rmeta: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

crates/iova/src/lib.rs:
crates/iova/src/carver.rs:
crates/iova/src/rbtree.rs:
crates/iova/src/rbtree_alloc.rs:
crates/iova/src/rcache.rs:
crates/iova/src/types.rs:
