/root/repo/target/debug/deps/model_validation-267b08a883e7d76e.d: crates/bench/src/bin/model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_validation-267b08a883e7d76e.rmeta: crates/bench/src/bin/model_validation.rs Cargo.toml

crates/bench/src/bin/model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
