/root/repo/target/debug/deps/fig11-989155064cbe62c2.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-989155064cbe62c2: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
