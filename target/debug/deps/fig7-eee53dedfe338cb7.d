/root/repo/target/debug/deps/fig7-eee53dedfe338cb7.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-eee53dedfe338cb7: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
