/root/repo/target/debug/deps/fns_iommu-72cc601fe26897e3.d: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libfns_iommu-72cc601fe26897e3.rmeta: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs Cargo.toml

crates/iommu/src/lib.rs:
crates/iommu/src/config.rs:
crates/iommu/src/fault.rs:
crates/iommu/src/invalidation.rs:
crates/iommu/src/iommu.rs:
crates/iommu/src/iotlb.rs:
crates/iommu/src/lru.rs:
crates/iommu/src/pagetable.rs:
crates/iommu/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
