/root/repo/target/debug/deps/fns_nic-e58ba126d8545ae5.d: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

/root/repo/target/debug/deps/libfns_nic-e58ba126d8545ae5.rlib: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

/root/repo/target/debug/deps/libfns_nic-e58ba126d8545ae5.rmeta: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

crates/nic/src/lib.rs:
crates/nic/src/buffer.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/ring.rs:
