/root/repo/target/debug/deps/fig2-1bfc4d8ce16602ba.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-1bfc4d8ce16602ba: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
