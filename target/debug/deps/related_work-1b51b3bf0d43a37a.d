/root/repo/target/debug/deps/related_work-1b51b3bf0d43a37a.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-1b51b3bf0d43a37a: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
