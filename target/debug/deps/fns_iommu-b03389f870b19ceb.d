/root/repo/target/debug/deps/fns_iommu-b03389f870b19ceb.d: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libfns_iommu-b03389f870b19ceb.rmeta: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs Cargo.toml

crates/iommu/src/lib.rs:
crates/iommu/src/config.rs:
crates/iommu/src/fault.rs:
crates/iommu/src/invalidation.rs:
crates/iommu/src/iommu.rs:
crates/iommu/src/iotlb.rs:
crates/iommu/src/lru.rs:
crates/iommu/src/pagetable.rs:
crates/iommu/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
