/root/repo/target/debug/deps/proptest_allocator-cd19fcd9cb388582.d: crates/iova/tests/proptest_allocator.rs

/root/repo/target/debug/deps/proptest_allocator-cd19fcd9cb388582: crates/iova/tests/proptest_allocator.rs

crates/iova/tests/proptest_allocator.rs:
