/root/repo/target/debug/deps/fig10-ba305767696203e6.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-ba305767696203e6: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
