/root/repo/target/debug/deps/fig12-a61c4692f4bad716.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-a61c4692f4bad716: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
