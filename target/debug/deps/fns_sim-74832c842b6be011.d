/root/repo/target/debug/deps/fns_sim-74832c842b6be011.d: src/bin/fns-sim.rs

/root/repo/target/debug/deps/fns_sim-74832c842b6be011: src/bin/fns-sim.rs

src/bin/fns-sim.rs:
