/root/repo/target/debug/deps/future_work-2eb65825b2798847.d: crates/bench/src/bin/future_work.rs Cargo.toml

/root/repo/target/debug/deps/libfuture_work-2eb65825b2798847.rmeta: crates/bench/src/bin/future_work.rs Cargo.toml

crates/bench/src/bin/future_work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
