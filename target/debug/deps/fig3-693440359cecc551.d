/root/repo/target/debug/deps/fig3-693440359cecc551.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-693440359cecc551: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
