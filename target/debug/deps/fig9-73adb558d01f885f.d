/root/repo/target/debug/deps/fig9-73adb558d01f885f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-73adb558d01f885f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
