/root/repo/target/debug/deps/proptest_lru-77ee28bf1baf0960.d: crates/iommu/tests/proptest_lru.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_lru-77ee28bf1baf0960.rmeta: crates/iommu/tests/proptest_lru.rs Cargo.toml

crates/iommu/tests/proptest_lru.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
