/root/repo/target/debug/deps/headline_results-a023b0ab08774ccb.d: tests/headline_results.rs Cargo.toml

/root/repo/target/debug/deps/libheadline_results-a023b0ab08774ccb.rmeta: tests/headline_results.rs Cargo.toml

tests/headline_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
