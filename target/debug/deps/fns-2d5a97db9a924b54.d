/root/repo/target/debug/deps/fns-2d5a97db9a924b54.d: src/lib.rs

/root/repo/target/debug/deps/libfns-2d5a97db9a924b54.rlib: src/lib.rs

/root/repo/target/debug/deps/libfns-2d5a97db9a924b54.rmeta: src/lib.rs

src/lib.rs:
