/root/repo/target/debug/deps/fns_net-bcd96bcf5e442edc.d: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

/root/repo/target/debug/deps/fns_net-bcd96bcf5e442edc: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

crates/net/src/lib.rs:
crates/net/src/fault.rs:
crates/net/src/packet.rs:
crates/net/src/receiver.rs:
crates/net/src/sender.rs:
crates/net/src/switchq.rs:
