/root/repo/target/debug/deps/sweeps-e39b2b12a8b29bc0.d: crates/bench/src/bin/sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libsweeps-e39b2b12a8b29bc0.rmeta: crates/bench/src/bin/sweeps.rs Cargo.toml

crates/bench/src/bin/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
