/root/repo/target/debug/deps/related_work-c6e7d159bfb22dd9.d: crates/bench/src/bin/related_work.rs Cargo.toml

/root/repo/target/debug/deps/librelated_work-c6e7d159bfb22dd9.rmeta: crates/bench/src/bin/related_work.rs Cargo.toml

crates/bench/src/bin/related_work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
