/root/repo/target/debug/deps/sweeps-155deaf3ca09114d.d: crates/bench/src/bin/sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libsweeps-155deaf3ca09114d.rmeta: crates/bench/src/bin/sweeps.rs Cargo.toml

crates/bench/src/bin/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
