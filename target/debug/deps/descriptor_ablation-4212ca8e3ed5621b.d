/root/repo/target/debug/deps/descriptor_ablation-4212ca8e3ed5621b.d: crates/bench/src/bin/descriptor_ablation.rs

/root/repo/target/debug/deps/descriptor_ablation-4212ca8e3ed5621b: crates/bench/src/bin/descriptor_ablation.rs

crates/bench/src/bin/descriptor_ablation.rs:
