/root/repo/target/debug/deps/headline_results-aa934a38e23a7e99.d: tests/headline_results.rs

/root/repo/target/debug/deps/headline_results-aa934a38e23a7e99: tests/headline_results.rs

tests/headline_results.rs:
