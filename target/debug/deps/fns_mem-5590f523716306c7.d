/root/repo/target/debug/deps/fns_mem-5590f523716306c7.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

/root/repo/target/debug/deps/libfns_mem-5590f523716306c7.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

/root/repo/target/debug/deps/libfns_mem-5590f523716306c7.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/frames.rs:
crates/mem/src/latency.rs:
