/root/repo/target/debug/deps/fns_net-4c2d56086108aece.d: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

/root/repo/target/debug/deps/libfns_net-4c2d56086108aece.rlib: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

/root/repo/target/debug/deps/libfns_net-4c2d56086108aece.rmeta: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

crates/net/src/lib.rs:
crates/net/src/fault.rs:
crates/net/src/packet.rs:
crates/net/src/receiver.rs:
crates/net/src/sender.rs:
crates/net/src/switchq.rs:
