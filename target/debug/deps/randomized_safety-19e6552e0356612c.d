/root/repo/target/debug/deps/randomized_safety-19e6552e0356612c.d: crates/iommu/tests/randomized_safety.rs

/root/repo/target/debug/deps/randomized_safety-19e6552e0356612c: crates/iommu/tests/randomized_safety.rs

crates/iommu/tests/randomized_safety.rs:
