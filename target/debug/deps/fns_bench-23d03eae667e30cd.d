/root/repo/target/debug/deps/fns_bench-23d03eae667e30cd.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfns_bench-23d03eae667e30cd.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
