/root/repo/target/debug/deps/fig11-229c689b59fd2b2e.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-229c689b59fd2b2e: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
