/root/repo/target/debug/deps/fns-4c82ba3c7fbebe88.d: src/lib.rs

/root/repo/target/debug/deps/fns-4c82ba3c7fbebe88: src/lib.rs

src/lib.rs:
