/root/repo/target/debug/deps/future_work-3ad0a097ffa230d8.d: crates/bench/src/bin/future_work.rs

/root/repo/target/debug/deps/future_work-3ad0a097ffa230d8: crates/bench/src/bin/future_work.rs

crates/bench/src/bin/future_work.rs:
