/root/repo/target/debug/deps/fns_sim-a6579ddd80b1f227.d: src/bin/fns-sim.rs

/root/repo/target/debug/deps/fns_sim-a6579ddd80b1f227: src/bin/fns-sim.rs

src/bin/fns-sim.rs:
