/root/repo/target/debug/deps/descriptor_ablation-c9656658e7120882.d: crates/bench/src/bin/descriptor_ablation.rs

/root/repo/target/debug/deps/descriptor_ablation-c9656658e7120882: crates/bench/src/bin/descriptor_ablation.rs

crates/bench/src/bin/descriptor_ablation.rs:
