/root/repo/target/debug/deps/fns_sim-f02cc434ff044741.d: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libfns_sim-f02cc434ff044741.rlib: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libfns_sim-f02cc434ff044741.rmeta: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
