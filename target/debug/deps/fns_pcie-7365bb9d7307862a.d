/root/repo/target/debug/deps/fns_pcie-7365bb9d7307862a.d: crates/pcie/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfns_pcie-7365bb9d7307862a.rmeta: crates/pcie/src/lib.rs Cargo.toml

crates/pcie/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
