/root/repo/target/debug/deps/proptest_stats-93aca0c6e63a6f6d.d: crates/sim/tests/proptest_stats.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_stats-93aca0c6e63a6f6d.rmeta: crates/sim/tests/proptest_stats.rs Cargo.toml

crates/sim/tests/proptest_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
