/root/repo/target/debug/deps/randomized_allocator-ab36eb66844f9d00.d: crates/iova/tests/randomized_allocator.rs

/root/repo/target/debug/deps/randomized_allocator-ab36eb66844f9d00: crates/iova/tests/randomized_allocator.rs

crates/iova/tests/randomized_allocator.rs:
