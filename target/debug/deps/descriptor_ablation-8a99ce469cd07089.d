/root/repo/target/debug/deps/descriptor_ablation-8a99ce469cd07089.d: crates/bench/src/bin/descriptor_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdescriptor_ablation-8a99ce469cd07089.rmeta: crates/bench/src/bin/descriptor_ablation.rs Cargo.toml

crates/bench/src/bin/descriptor_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
