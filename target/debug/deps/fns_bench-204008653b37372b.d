/root/repo/target/debug/deps/fns_bench-204008653b37372b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fns_bench-204008653b37372b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
