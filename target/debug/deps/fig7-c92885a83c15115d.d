/root/repo/target/debug/deps/fig7-c92885a83c15115d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c92885a83c15115d: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
