/root/repo/target/debug/deps/fns_sim-3889a5b949f9e9b4.d: src/bin/fns-sim.rs Cargo.toml

/root/repo/target/debug/deps/libfns_sim-3889a5b949f9e9b4.rmeta: src/bin/fns-sim.rs Cargo.toml

src/bin/fns-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
