/root/repo/target/debug/deps/extensions-d9fda3261d22ba01.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-d9fda3261d22ba01.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
