/root/repo/target/debug/deps/proptest_safety-fea84500b84d2413.d: crates/iommu/tests/proptest_safety.rs

/root/repo/target/debug/deps/proptest_safety-fea84500b84d2413: crates/iommu/tests/proptest_safety.rs

crates/iommu/tests/proptest_safety.rs:
