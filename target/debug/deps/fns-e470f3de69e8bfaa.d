/root/repo/target/debug/deps/fns-e470f3de69e8bfaa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfns-e470f3de69e8bfaa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
