/root/repo/target/debug/deps/hugepages-907417f22213780f.d: crates/iommu/tests/hugepages.rs Cargo.toml

/root/repo/target/debug/deps/libhugepages-907417f22213780f.rmeta: crates/iommu/tests/hugepages.rs Cargo.toml

crates/iommu/tests/hugepages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
