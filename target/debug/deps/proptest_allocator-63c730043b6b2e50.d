/root/repo/target/debug/deps/proptest_allocator-63c730043b6b2e50.d: crates/iova/tests/proptest_allocator.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_allocator-63c730043b6b2e50.rmeta: crates/iova/tests/proptest_allocator.rs Cargo.toml

crates/iova/tests/proptest_allocator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
