/root/repo/target/debug/deps/fns-4f982ba5c826306b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfns-4f982ba5c826306b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
