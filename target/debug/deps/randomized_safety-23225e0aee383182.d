/root/repo/target/debug/deps/randomized_safety-23225e0aee383182.d: crates/iommu/tests/randomized_safety.rs Cargo.toml

/root/repo/target/debug/deps/librandomized_safety-23225e0aee383182.rmeta: crates/iommu/tests/randomized_safety.rs Cargo.toml

crates/iommu/tests/randomized_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
