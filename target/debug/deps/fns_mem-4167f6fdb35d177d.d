/root/repo/target/debug/deps/fns_mem-4167f6fdb35d177d.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

/root/repo/target/debug/deps/fns_mem-4167f6fdb35d177d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/frames.rs:
crates/mem/src/latency.rs:
