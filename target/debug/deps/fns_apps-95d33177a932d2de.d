/root/repo/target/debug/deps/fns_apps-95d33177a932d2de.d: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs Cargo.toml

/root/repo/target/debug/deps/libfns_apps-95d33177a932d2de.rmeta: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/bidir.rs:
crates/apps/src/iperf.rs:
crates/apps/src/nginx.rs:
crates/apps/src/redis.rs:
crates/apps/src/rpc.rs:
crates/apps/src/spdk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
