/root/repo/target/debug/deps/hugepages-f0c4ab78ef62b82c.d: crates/iommu/tests/hugepages.rs

/root/repo/target/debug/deps/hugepages-f0c4ab78ef62b82c: crates/iommu/tests/hugepages.rs

crates/iommu/tests/hugepages.rs:
