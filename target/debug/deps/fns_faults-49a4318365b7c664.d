/root/repo/target/debug/deps/fns_faults-49a4318365b7c664.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfns_faults-49a4318365b7c664.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
