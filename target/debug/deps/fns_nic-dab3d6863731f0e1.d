/root/repo/target/debug/deps/fns_nic-dab3d6863731f0e1.d: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

/root/repo/target/debug/deps/fns_nic-dab3d6863731f0e1: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

crates/nic/src/lib.rs:
crates/nic/src/buffer.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/ring.rs:
