/root/repo/target/debug/deps/proptest_driver-57d724500da52939.d: crates/core/tests/proptest_driver.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_driver-57d724500da52939.rmeta: crates/core/tests/proptest_driver.rs Cargo.toml

crates/core/tests/proptest_driver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
