/root/repo/target/debug/deps/sweeps-d0774f3997a5d242.d: crates/bench/src/bin/sweeps.rs

/root/repo/target/debug/deps/sweeps-d0774f3997a5d242: crates/bench/src/bin/sweeps.rs

crates/bench/src/bin/sweeps.rs:
