/root/repo/target/debug/deps/proptest_transport-f1c17d1d99c3400b.d: crates/net/tests/proptest_transport.rs

/root/repo/target/debug/deps/proptest_transport-f1c17d1d99c3400b: crates/net/tests/proptest_transport.rs

crates/net/tests/proptest_transport.rs:
