/root/repo/target/debug/deps/model_validation-97012384460333be.d: crates/bench/src/bin/model_validation.rs

/root/repo/target/debug/deps/model_validation-97012384460333be: crates/bench/src/bin/model_validation.rs

crates/bench/src/bin/model_validation.rs:
