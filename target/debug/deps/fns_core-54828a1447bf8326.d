/root/repo/target/debug/deps/fns_core-54828a1447bf8326.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libfns_core-54828a1447bf8326.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/errors.rs:
crates/core/src/metrics.rs:
crates/core/src/mode.rs:
crates/core/src/model.rs:
crates/core/src/resources.rs:
crates/core/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
