/root/repo/target/debug/deps/related_work-9b78d2711614b35e.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-9b78d2711614b35e: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
