/root/repo/target/debug/deps/fig9-2cd764d48100b7c6.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-2cd764d48100b7c6: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
