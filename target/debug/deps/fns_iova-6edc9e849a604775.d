/root/repo/target/debug/deps/fns_iova-6edc9e849a604775.d: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

/root/repo/target/debug/deps/fns_iova-6edc9e849a604775: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

crates/iova/src/lib.rs:
crates/iova/src/carver.rs:
crates/iova/src/rbtree.rs:
crates/iova/src/rbtree_alloc.rs:
crates/iova/src/rcache.rs:
crates/iova/src/types.rs:
