/root/repo/target/debug/examples/storage_disaggregation-17a6e1502630332e.d: examples/storage_disaggregation.rs

/root/repo/target/debug/examples/storage_disaggregation-17a6e1502630332e: examples/storage_disaggregation.rs

examples/storage_disaggregation.rs:
