/root/repo/target/debug/examples/multi_tenant_latency-aa5e55b666890bc9.d: examples/multi_tenant_latency.rs

/root/repo/target/debug/examples/multi_tenant_latency-aa5e55b666890bc9: examples/multi_tenant_latency.rs

examples/multi_tenant_latency.rs:
