/root/repo/target/debug/examples/allocator_locality-55173eed5483247d.d: examples/allocator_locality.rs Cargo.toml

/root/repo/target/debug/examples/liballocator_locality-55173eed5483247d.rmeta: examples/allocator_locality.rs Cargo.toml

examples/allocator_locality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
