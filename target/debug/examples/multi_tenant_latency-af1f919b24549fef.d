/root/repo/target/debug/examples/multi_tenant_latency-af1f919b24549fef.d: examples/multi_tenant_latency.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_tenant_latency-af1f919b24549fef.rmeta: examples/multi_tenant_latency.rs Cargo.toml

examples/multi_tenant_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
