/root/repo/target/debug/examples/quickstart-1da898bd284a50a6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1da898bd284a50a6: examples/quickstart.rs

examples/quickstart.rs:
