/root/repo/target/debug/examples/storage_disaggregation-e52be314bb2225c2.d: examples/storage_disaggregation.rs Cargo.toml

/root/repo/target/debug/examples/libstorage_disaggregation-e52be314bb2225c2.rmeta: examples/storage_disaggregation.rs Cargo.toml

examples/storage_disaggregation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
