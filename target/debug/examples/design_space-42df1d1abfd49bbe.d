/root/repo/target/debug/examples/design_space-42df1d1abfd49bbe.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-42df1d1abfd49bbe: examples/design_space.rs

examples/design_space.rs:
