/root/repo/target/debug/examples/allocator_locality-1fdbf415e6fe5c21.d: examples/allocator_locality.rs

/root/repo/target/debug/examples/allocator_locality-1fdbf415e6fe5c21: examples/allocator_locality.rs

examples/allocator_locality.rs:
