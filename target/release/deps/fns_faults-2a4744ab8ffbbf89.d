/root/repo/target/release/deps/fns_faults-2a4744ab8ffbbf89.d: crates/faults/src/lib.rs

/root/repo/target/release/deps/libfns_faults-2a4744ab8ffbbf89.rlib: crates/faults/src/lib.rs

/root/repo/target/release/deps/libfns_faults-2a4744ab8ffbbf89.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
