/root/repo/target/release/deps/fns_core-cf1a2a74502b1c76.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libfns_core-cf1a2a74502b1c76.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libfns_core-cf1a2a74502b1c76.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/errors.rs crates/core/src/metrics.rs crates/core/src/mode.rs crates/core/src/model.rs crates/core/src/resources.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/errors.rs:
crates/core/src/metrics.rs:
crates/core/src/mode.rs:
crates/core/src/model.rs:
crates/core/src/resources.rs:
crates/core/src/sim.rs:
