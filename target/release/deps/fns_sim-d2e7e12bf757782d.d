/root/repo/target/release/deps/fns_sim-d2e7e12bf757782d.d: src/bin/fns-sim.rs

/root/repo/target/release/deps/fns_sim-d2e7e12bf757782d: src/bin/fns-sim.rs

src/bin/fns-sim.rs:
