/root/repo/target/release/deps/fns_iova-bec2cb197bcf1915.d: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

/root/repo/target/release/deps/libfns_iova-bec2cb197bcf1915.rlib: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

/root/repo/target/release/deps/libfns_iova-bec2cb197bcf1915.rmeta: crates/iova/src/lib.rs crates/iova/src/carver.rs crates/iova/src/rbtree.rs crates/iova/src/rbtree_alloc.rs crates/iova/src/rcache.rs crates/iova/src/types.rs

crates/iova/src/lib.rs:
crates/iova/src/carver.rs:
crates/iova/src/rbtree.rs:
crates/iova/src/rbtree_alloc.rs:
crates/iova/src/rcache.rs:
crates/iova/src/types.rs:
