/root/repo/target/release/deps/fns_net-dd879d55d474f7c9.d: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

/root/repo/target/release/deps/libfns_net-dd879d55d474f7c9.rlib: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

/root/repo/target/release/deps/libfns_net-dd879d55d474f7c9.rmeta: crates/net/src/lib.rs crates/net/src/fault.rs crates/net/src/packet.rs crates/net/src/receiver.rs crates/net/src/sender.rs crates/net/src/switchq.rs

crates/net/src/lib.rs:
crates/net/src/fault.rs:
crates/net/src/packet.rs:
crates/net/src/receiver.rs:
crates/net/src/sender.rs:
crates/net/src/switchq.rs:
