/root/repo/target/release/deps/fns_iommu-a5b92e98a06c3feb.d: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs

/root/repo/target/release/deps/libfns_iommu-a5b92e98a06c3feb.rlib: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs

/root/repo/target/release/deps/libfns_iommu-a5b92e98a06c3feb.rmeta: crates/iommu/src/lib.rs crates/iommu/src/config.rs crates/iommu/src/fault.rs crates/iommu/src/invalidation.rs crates/iommu/src/iommu.rs crates/iommu/src/iotlb.rs crates/iommu/src/lru.rs crates/iommu/src/pagetable.rs crates/iommu/src/stats.rs

crates/iommu/src/lib.rs:
crates/iommu/src/config.rs:
crates/iommu/src/fault.rs:
crates/iommu/src/invalidation.rs:
crates/iommu/src/iommu.rs:
crates/iommu/src/iotlb.rs:
crates/iommu/src/lru.rs:
crates/iommu/src/pagetable.rs:
crates/iommu/src/stats.rs:
