/root/repo/target/release/deps/fns_apps-3db4279cce7b3c1a.d: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs

/root/repo/target/release/deps/libfns_apps-3db4279cce7b3c1a.rlib: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs

/root/repo/target/release/deps/libfns_apps-3db4279cce7b3c1a.rmeta: crates/apps/src/lib.rs crates/apps/src/bidir.rs crates/apps/src/iperf.rs crates/apps/src/nginx.rs crates/apps/src/redis.rs crates/apps/src/rpc.rs crates/apps/src/spdk.rs

crates/apps/src/lib.rs:
crates/apps/src/bidir.rs:
crates/apps/src/iperf.rs:
crates/apps/src/nginx.rs:
crates/apps/src/redis.rs:
crates/apps/src/rpc.rs:
crates/apps/src/spdk.rs:
