/root/repo/target/release/deps/fns-45e0db38af9023e0.d: src/lib.rs

/root/repo/target/release/deps/libfns-45e0db38af9023e0.rlib: src/lib.rs

/root/repo/target/release/deps/libfns-45e0db38af9023e0.rmeta: src/lib.rs

src/lib.rs:
