/root/repo/target/release/deps/fns_mem-9d2a283e32f2615e.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

/root/repo/target/release/deps/libfns_mem-9d2a283e32f2615e.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

/root/repo/target/release/deps/libfns_mem-9d2a283e32f2615e.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/frames.rs crates/mem/src/latency.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/frames.rs:
crates/mem/src/latency.rs:
