/root/repo/target/release/deps/fns_pcie-73f0181e33652e91.d: crates/pcie/src/lib.rs

/root/repo/target/release/deps/libfns_pcie-73f0181e33652e91.rlib: crates/pcie/src/lib.rs

/root/repo/target/release/deps/libfns_pcie-73f0181e33652e91.rmeta: crates/pcie/src/lib.rs

crates/pcie/src/lib.rs:
