/root/repo/target/release/deps/fns_sim-c7e81905466a144f.d: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libfns_sim-c7e81905466a144f.rlib: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libfns_sim-c7e81905466a144f.rmeta: crates/sim/src/lib.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
