/root/repo/target/release/deps/fns_nic-3c4579b88e6ed10b.d: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

/root/repo/target/release/deps/libfns_nic-3c4579b88e6ed10b.rlib: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

/root/repo/target/release/deps/libfns_nic-3c4579b88e6ed10b.rmeta: crates/nic/src/lib.rs crates/nic/src/buffer.rs crates/nic/src/descriptor.rs crates/nic/src/ring.rs

crates/nic/src/lib.rs:
crates/nic/src/buffer.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/ring.rs:
