/root/repo/target/release/examples/quickstart-3e76f9a6a7ffcd14.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3e76f9a6a7ffcd14: examples/quickstart.rs

examples/quickstart.rs:
