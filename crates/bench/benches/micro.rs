//! Criterion micro-benchmarks for the hot substrate operations.
//!
//! These measure the *simulator's* own data structures (not simulated
//! time): IOVA allocator paths, page-table map/unmap, translation with
//! warm/cold caches, and invalidation processing. They guard against
//! regressions that would make the figure harness slow.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use fns_iommu::{InvalidationScope, Iommu, IommuConfig};
use fns_iova::types::{Iova, IovaRange};
use fns_iova::{CachingAllocator, IovaAllocator, RbTreeAllocator};
use fns_mem::PhysAddr;

fn bench_iova(c: &mut Criterion) {
    let mut g = c.benchmark_group("iova");
    g.bench_function("rcache_hit_alloc_free", |b| {
        let mut a = CachingAllocator::with_defaults(1);
        // Warm the magazine.
        let r = a.alloc(1, 0).unwrap();
        a.free(r, 0);
        b.iter(|| {
            let r = a.alloc(1, 0).unwrap();
            a.free(r, 0);
            r
        });
    });
    g.bench_function("rbtree_alloc_free", |b| {
        let mut a = RbTreeAllocator::new();
        b.iter(|| {
            let r = a.alloc(1, 0).unwrap();
            a.free(r, 0);
            r
        });
    });
    g.bench_function("rbtree_alloc_free_under_load", |b| {
        let mut a = RbTreeAllocator::new();
        let live: Vec<_> = (0..10_000).map(|_| a.alloc(1, 0).unwrap()).collect();
        b.iter(|| {
            let r = a.alloc(64, 0).unwrap();
            a.free(r, 0);
            r
        });
        for r in live {
            a.free(r, 0);
        }
    });
    g.finish();
}

fn bench_pagetable(c: &mut Criterion) {
    let mut g = c.benchmark_group("pagetable");
    g.bench_function("map_unmap_page", |b| {
        let mut mmu = Iommu::new(IommuConfig::default());
        let iova = Iova::from_pfn(0x12345);
        b.iter(|| {
            mmu.map(iova, PhysAddr::from_pfn(1)).unwrap();
            mmu.unmap_range(IovaRange::new(iova, 1)).unwrap();
        });
    });
    g.bench_function("map_unmap_descriptor_64", |b| {
        let mut mmu = Iommu::new(IommuConfig::default());
        let range = IovaRange::new(Iova::from_pfn(0x40000), 64);
        b.iter(|| {
            for p in range.iter_pages() {
                mmu.map(p, PhysAddr::from_pfn(p.pfn())).unwrap();
            }
            mmu.unmap_range(range).unwrap();
        });
    });
    g.finish();
}

fn bench_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate");
    g.bench_function("iotlb_hit", |b| {
        let mut mmu = Iommu::new(IommuConfig::default());
        let iova = Iova::from_pfn(7);
        mmu.map(iova, PhysAddr::from_pfn(1)).unwrap();
        mmu.translate(iova);
        b.iter(|| mmu.translate(iova));
    });
    g.bench_function("ptcache_l3_hit_walk", |b| {
        // Strict-mode steady state: IOTLB invalidated per use, PTcache warm.
        let mut mmu = Iommu::new(IommuConfig::default());
        let range = IovaRange::new(Iova::from_pfn(0x80000), 64);
        for p in range.iter_pages() {
            mmu.map(p, PhysAddr::from_pfn(p.pfn())).unwrap();
        }
        mmu.translate(range.base());
        b.iter_batched(
            || (),
            |_| {
                let t = mmu.translate(range.base());
                mmu.invalidate_range(
                    IovaRange::new(range.base(), 1),
                    InvalidationScope::IotlbOnly,
                );
                t
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("full_walk", |b| {
        let mut mmu = Iommu::new(IommuConfig::default());
        let range = IovaRange::new(Iova::from_pfn(0xC0000), 64);
        for p in range.iter_pages() {
            mmu.map(p, PhysAddr::from_pfn(p.pfn())).unwrap();
        }
        b.iter(|| {
            let t = mmu.translate(range.base());
            mmu.invalidate_range(
                IovaRange::new(range.base(), 1),
                InvalidationScope::IotlbAndFullPtcache,
            );
            t
        });
    });
    g.finish();
}

criterion_group!(benches, bench_iova, bench_pagetable, bench_translate);
criterion_main!(benches);
