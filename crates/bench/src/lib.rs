//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each `bin/` target regenerates one figure of the paper (see DESIGN.md's
//! experiment index). This library provides the shared row formatting and
//! the standard sweep runner so every figure prints comparable tables.

use fns_core::{HostSim, ProtectionMode, RunMetrics, SimConfig};

pub use fns_harness::SweepRunner;

/// Measurement duration used by the figure binaries (ns). Long enough for
/// stable steady-state averages, short enough that a full figure regenerates
/// in seconds.
pub const MEASURE_NS: u64 = 60_000_000;

/// Runs one configuration to completion.
pub fn run(cfg: SimConfig) -> RunMetrics {
    HostSim::new(cfg).run()
}

/// The sweep runner every figure binary uses: `FNS_JOBS` workers (default:
/// the machine's available parallelism), results in submission order, so
/// figure output is byte-identical at any job count.
pub fn runner() -> SweepRunner {
    SweepRunner::from_env()
}

/// The three modes every figure compares.
pub const HEADLINE_MODES: [ProtectionMode; 3] = [
    ProtectionMode::IommuOff,
    ProtectionMode::LinuxStrict,
    ProtectionMode::FastAndSafe,
];

/// Prints the standard microbenchmark row (Figures 2/3/7/8 panels a–d).
pub fn print_micro_row(label: &str, mode: ProtectionMode, m: &RunMetrics) {
    println!(
        "{label:>10} {:>14}  rx {:6.1} Gbps  drops {:6.3} %  iotlb/pg {:5.2}  \
         l1 {:6.3}  l2 {:6.3}  l3 {:6.3}  tx-pkts/pg {:5.3}  M {:5.2}  cpu {:4.2}",
        mode.label(),
        m.rx_gbps(),
        m.drop_rate() * 100.0,
        m.iotlb_misses_per_page(),
        m.l1_misses_per_page(),
        m.l2_misses_per_page(),
        m.l3_misses_per_page(),
        m.tx_packets_per_page(),
        m.memory_reads_per_page(),
        m.max_cpu(),
    );
}

/// Prints the locality panel (Figures 2e/3e/7e/8e): reuse-distance summary
/// of the IOVA allocation stream plus the likely-miss fractions at two
/// hypothetical PTcache-L3 sizes (the paper's red threshold lines).
pub fn print_locality_row(label: &str, mode: ProtectionMode, m: &RunMetrics) {
    let vals: Vec<u64> = m.locality_distances.iter().filter_map(|d| *d).collect();
    let mut sorted = vals.clone();
    sorted.sort_unstable();
    let pct = |p: usize| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            sorted[(sorted.len() - 1) * p / 100]
        }
    };
    println!(
        "{label:>10} {:>14}  reuse-dist mean {:6.2}  p50 {:3}  p95 {:3}  p99 {:3}  \
         frac>=16 {:5.3}  frac>=32 {:5.3}  (n={})",
        mode.label(),
        m.locality_mean(),
        pct(50),
        pct(95),
        pct(99),
        m.locality_fraction_at_least(16),
        m.locality_fraction_at_least(32),
        vals.len(),
    );
}

/// Prints a latency whisker row (Figure 9).
pub fn print_latency_row(label: &str, mode: ProtectionMode, m: &RunMetrics) {
    let p = |q: f64| m.latency.percentile(q) as f64 / 1000.0;
    println!(
        "{label:>10} {:>14}  rpc-us p50 {:8.1}  p90 {:8.1}  p99 {:8.1}  p99.9 {:8.1}  \
         p99.99 {:8.1}  (n={})",
        mode.label(),
        p(50.0),
        p(90.0),
        p(99.0),
        p(99.9),
        p(99.99),
        m.latency.count(),
    );
}

/// Asserts the invariant every strict-safe mode must satisfy in every run:
/// zero stale IOTLB hits and zero use-after-free PTcache walks.
pub fn check_safety(mode: ProtectionMode, m: &RunMetrics) {
    if mode.is_strict_safe() {
        assert_eq!(
            m.stale_iotlb_hits, 0,
            "{mode}: device reached unmapped memory"
        );
    }
    assert_eq!(
        m.stale_ptcache_walks, 0,
        "{mode}: walk through a reclaimed page-table page"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fns_core::{SimConfig, Workload};

    #[test]
    fn headline_modes_cover_the_comparison() {
        assert_eq!(HEADLINE_MODES.len(), 3);
        assert!(HEADLINE_MODES.contains(&ProtectionMode::FastAndSafe));
    }

    #[test]
    fn quick_run_produces_metrics() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::IommuOff);
        cfg.warmup = 2_000_000;
        cfg.measure = 3_000_000;
        cfg.workload = Workload::IperfRx;
        let m = run(cfg);
        assert!(m.rx_gbps() > 1.0);
        check_safety(ProtectionMode::IommuOff, &m);
    }
}

#[cfg(test)]
mod safety_check_tests {
    use super::*;
    use fns_core::Workload;

    #[test]
    #[should_panic(expected = "device reached unmapped memory")]
    fn check_safety_panics_on_violation() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
        cfg.warmup = 1_000_000;
        cfg.measure = 2_000_000;
        cfg.workload = Workload::IperfRx;
        let mut m = run(cfg);
        m.stale_iotlb_hits = 7; // forge a violation
        check_safety(ProtectionMode::FastAndSafe, &m);
    }

    #[test]
    fn check_safety_ignores_stale_hits_in_weak_modes() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::LinuxDeferred);
        cfg.warmup = 1_000_000;
        cfg.measure = 2_000_000;
        let mut m = run(cfg);
        m.stale_iotlb_hits = 7;
        check_safety(ProtectionMode::LinuxDeferred, &m); // must not panic
    }
}

/// Optional CSV sink for figure data: when the `FNS_CSV_DIR` environment
/// variable is set, each figure binary also appends its data points to
/// `$FNS_CSV_DIR/<figure>.csv` for plotting.
///
/// # Examples
///
/// ```no_run
/// let mut sink = fns_bench::CsvSink::create("fig2");
/// fns_bench::csv_row(&mut sink, &["flows", "mode", "gbps"], &["5", "linux", "78.8"]);
/// ```
pub struct CsvSink {
    file: Option<std::fs::File>,
    wrote_header: bool,
}

impl CsvSink {
    /// Opens (truncating) `$FNS_CSV_DIR/<name>.csv` if the variable is set;
    /// otherwise returns an inert sink.
    pub fn create(name: &str) -> Self {
        let file = std::env::var_os("FNS_CSV_DIR").and_then(|dir| {
            let mut path = std::path::PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&path) {
                eprintln!("FNS_CSV_DIR: cannot create directory: {e}");
                return None;
            }
            path.push(format!("{name}.csv"));
            match std::fs::File::create(&path) {
                Ok(f) => Some(f),
                Err(e) => {
                    eprintln!("FNS_CSV_DIR: cannot create {}: {e}", path.display());
                    None
                }
            }
        });
        Self {
            file,
            wrote_header: false,
        }
    }

    /// Returns `true` when rows are actually being written.
    pub fn is_active(&self) -> bool {
        self.file.is_some()
    }
}

/// Writes one CSV row (emitting the header on first use). Values containing
/// commas are not expected in this numeric data and are not quoted.
pub fn csv_row(sink: &mut CsvSink, header: &[&str], values: &[&str]) {
    use std::io::Write;
    let Some(f) = sink.file.as_mut() else { return };
    assert_eq!(header.len(), values.len(), "CSV row shape mismatch");
    if !sink.wrote_header {
        let _ = writeln!(f, "{}", header.join(","));
        sink.wrote_header = true;
    }
    let _ = writeln!(f, "{}", values.join(","));
}

/// Standard microbenchmark CSV row matching [`print_micro_row`].
pub fn csv_micro_row(
    sink: &mut CsvSink,
    sweep: &str,
    x: u64,
    mode: ProtectionMode,
    m: &RunMetrics,
) {
    csv_row(
        sink,
        &[
            "sweep",
            "x",
            "mode",
            "rx_gbps",
            "drop_pct",
            "iotlb_pp",
            "l1_pp",
            "l2_pp",
            "l3_pp",
            "tx_pkts_pp",
            "reads_pp",
            "max_cpu",
        ],
        &[
            sweep,
            &x.to_string(),
            mode.label(),
            &format!("{:.3}", m.rx_gbps()),
            &format!("{:.4}", m.drop_rate() * 100.0),
            &format!("{:.4}", m.iotlb_misses_per_page()),
            &format!("{:.4}", m.l1_misses_per_page()),
            &format!("{:.4}", m.l2_misses_per_page()),
            &format!("{:.4}", m.l3_misses_per_page()),
            &format!("{:.4}", m.tx_packets_per_page()),
            &format!("{:.4}", m.memory_reads_per_page()),
            &format!("{:.3}", m.max_cpu()),
        ],
    );
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    /// One combined test: the env var is process-global mutable state, so
    /// splitting these into parallel tests would race.
    #[test]
    fn sink_follows_the_env_var() {
        std::env::remove_var("FNS_CSV_DIR");
        let mut sink = CsvSink::create("unit-test");
        assert!(!sink.is_active());
        csv_row(&mut sink, &["a"], &["1"]); // no-op

        let dir = std::env::temp_dir().join(format!("fns-csv-test-{}", std::process::id()));
        std::env::set_var("FNS_CSV_DIR", &dir);
        let mut sink = CsvSink::create("unit");
        std::env::remove_var("FNS_CSV_DIR");
        assert!(sink.is_active());
        csv_row(&mut sink, &["a", "b"], &["1", "2"]);
        csv_row(&mut sink, &["a", "b"], &["3", "4"]);
        drop(sink);
        let body = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
