//! Extension: descriptor-size generality (paper §3, "Generality of F&S").
//!
//! F&S was designed around 64-page Mellanox descriptors, but the paper
//! argues two of its three ideas (contiguous IOVAs via cross-descriptor
//! carving, PTcache preservation) carry over to single-page-descriptor
//! devices like Intel ICE — only the batched invalidation loses power,
//! since strict safety forces invalidations at descriptor granularity.
//! This sweep makes that argument measurable.

use fns_apps::iperf_config;
use fns_bench::{check_safety, runner, MEASURE_NS};
use fns_core::ProtectionMode;

fn main() {
    println!("=== Descriptor-size ablation: 64-page vs single-page devices ===");
    println!(
        "{:>10} {:>14} {:>10} {:>8} {:>9} {:>12} {:>10}",
        "desc", "mode", "goodput", "M", "l3/pg", "inval-entr.", "inval-cpu"
    );
    let results = runner().run_grid(
        &[64u32, 8, 1],
        &[ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe],
        |pages, mode| {
            let mut cfg = iperf_config(mode, 5, 256);
            cfg.pages_per_descriptor = pages;
            cfg.measure = MEASURE_NS;
            cfg
        },
    );
    let mut current_pages = u32::MAX;
    for (pages, mode, m) in &results {
        if *pages != current_pages {
            if current_pages != u32::MAX {
                println!();
            }
            current_pages = *pages;
        }
        check_safety(*mode, m);
        println!(
            "{:>10} {:>14} {:>8.1} G {:>8.2} {:>9.3} {:>12} {:>8}ms",
            format!("{pages}pg"),
            mode.label(),
            m.rx_gbps(),
            m.memory_reads_per_page(),
            m.l3_misses_per_page(),
            m.iommu.invalidation_queue_entries,
            m.invalidation_cpu_ns / 1_000_000,
        );
    }
    println!();
    println!(
        "expectation: F&S keeps PTcache misses ~0 at every descriptor size\n\
         (contiguity + preservation survive), but its invalidation batching\n\
         shrinks with the descriptor — motivating multi-page descriptors, as\n\
         the paper concludes."
    );
}
