//! Figure 9: tail latency of an RPC colocated with throughput traffic.
//!
//! A closed-loop netperf-style RPC runs on its own core next to 5 iperf
//! flows; the paper reports P50/P90/P99/P99.9/P99.99 for RPC sizes
//! 128 B – 32 KB. Under stock protection, P99 inflates from NIC-buffer
//! queueing and P99.9+ from retransmission timeouts; F&S stays within
//! ~1.2x of IOMMU-off (1.42x at P99.99).

use fns_apps::rpc_config;
use fns_bench::{check_safety, print_latency_row, runner, HEADLINE_MODES};

fn main() {
    println!("=== Figure 9: RPC tail latency colocated with iperf ===");
    let results = runner().run_grid(
        &[128u64, 1024, 4096, 32 * 1024],
        &HEADLINE_MODES,
        |rpc_bytes, mode| rpc_config(mode, rpc_bytes),
    );
    let mut current_size = 0u64;
    for (rpc_bytes, mode, m) in &results {
        if *rpc_bytes != current_size {
            current_size = *rpc_bytes;
            println!("--- RPC size {rpc_bytes} B ---");
        }
        check_safety(*mode, m);
        print_latency_row(&format!("{rpc_bytes}B"), *mode, m);
    }
    println!(
        "expectation: linux-strict P99.9 in the milliseconds (RTO-driven), \
         F&S within ~1.2-1.4x of IOMMU-off at every percentile"
    );
}
