//! Figure 3: stock memory-protection overheads vs ring buffer size.
//!
//! Sweeps ring sizes 256/512/1024/2048 MTU-sized packets (5 flows, 4 KB
//! MTU) with the IOMMU off and in Linux strict mode. The paper's headline:
//! PTcache-L3 locality collapses as the IOVA working set grows 8x, IOTLB
//! misses stay roughly constant, and throughput degrades further.

use fns_apps::iperf_config;
use fns_bench::{check_safety, print_locality_row, print_micro_row, runner, MEASURE_NS};
use fns_core::ProtectionMode;

fn main() {
    println!("=== Figure 3: Linux strict-mode overheads vs ring buffer size ===");
    println!("(paper: throughput down to ~65G at ring 2048; PTcache-L3 misses grow");
    println!(" 0.36->0.9/page from locality loss; IOTLB misses roughly constant)");
    let mut csv = fns_bench::CsvSink::create("fig3");
    let results = runner().run_grid(
        &[256u32, 512, 1024, 2048],
        &[ProtectionMode::IommuOff, ProtectionMode::LinuxStrict],
        |ring, mode| {
            let mut cfg = iperf_config(mode, 5, ring);
            cfg.measure = MEASURE_NS;
            cfg
        },
    );
    for (ring, mode, m) in &results {
        check_safety(*mode, m);
        print_micro_row(&format!("ring={ring}"), *mode, m);
        fns_bench::csv_micro_row(&mut csv, "ring", *ring as u64, *mode, m);
    }
    println!("--- panel (e): IOVA allocation locality ---");
    for (ring, mode, m) in &results {
        if *mode == ProtectionMode::LinuxStrict {
            print_locality_row(&format!("ring={ring}"), *mode, m);
        }
    }
    let loc = |r: u32| {
        results
            .iter()
            .find(|(ring, m, _)| *ring == r && *m == ProtectionMode::LinuxStrict)
            .map(|(_, _, res)| res.locality_mean())
            .expect("swept")
    };
    println!(
        "locality decay: mean reuse distance {:.1} at ring 256 -> {:.1} at ring 2048",
        loc(256),
        loc(2048)
    );
}
