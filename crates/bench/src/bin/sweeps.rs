//! Extension: the tech-report sweeps and hardware-sensitivity ablations.
//!
//! The paper's extended version \[42\] reports that F&S's benefits hold with
//! varying MTU sizes, core counts and direct-cache-access (DDIO) settings.
//! This binary reproduces those sweeps, plus two ablations of the
//! simulation's own knobs that the paper could not vary on real hardware:
//! the PTcache-L3 size and the allocator-aging level.
//!
//! Usage: `sweeps [mtu|cores|ddio|ptcache|aging|assoc|all]` (default: all).

use fns_apps::iperf_config;
use fns_bench::{runner, HEADLINE_MODES, MEASURE_NS};
use fns_core::ProtectionMode;

fn row(label: &str, mode: ProtectionMode, m: &fns_core::RunMetrics) {
    println!(
        "{label:>12} {:>14}  rx {:6.1} Gbps  M {:5.2}  l3/pg {:6.3}  cpu {:4.2}",
        mode.label(),
        m.rx_gbps(),
        m.memory_reads_per_page(),
        m.l3_misses_per_page(),
        m.max_cpu(),
    );
}

fn mtu_sweep() {
    println!("--- MTU sweep (tech report: F&S benefits hold across sizes) ---");
    let results = runner().run_grid(&[1500u32, 4096, 9000], &HEADLINE_MODES, |mtu, mode| {
        let mut cfg = iperf_config(mode, 5, 256);
        cfg.mtu = mtu;
        cfg.measure = MEASURE_NS;
        cfg
    });
    for (mtu, mode, m) in &results {
        row(&format!("mtu={mtu}"), *mode, m);
    }
}

fn core_sweep() {
    println!("--- core-count sweep (one flow per core) ---");
    let results = runner().run_grid(&[3usize, 5, 8], &HEADLINE_MODES, |cores, mode| {
        let mut cfg = iperf_config(mode, cores as u32, 256);
        cfg.cores = cores;
        cfg.measure = MEASURE_NS;
        cfg
    });
    for (cores, mode, m) in &results {
        row(&format!("cores={cores}"), *mode, m);
    }
}

fn ddio_sweep() {
    println!("--- DDIO on/off (tech report: negligible impact on IOMMU behaviour) ---");
    let points = [("ddio-off", 2_000u64), ("ddio-on", 400)];
    let results = runner().run_grid(&points, &HEADLINE_MODES, |(_, data_read_ns), mode| {
        let mut cfg = iperf_config(mode, 5, 2048);
        cfg.cpu.pkt_data_read_ns = data_read_ns;
        cfg.measure = MEASURE_NS;
        cfg
    });
    for ((label, _), mode, m) in &results {
        row(label, *mode, m);
    }
    println!("(DDIO lands DMA data in the LLC: lower per-packet read cost, so the");
    println!(" ring-2048 CPU bottleneck of Figure 8a relaxes; misses are unchanged.)");
}

fn ptcache_sweep() {
    println!("--- PTcache-L3 size ablation (hardware sizes are not public) ---");
    let modes = [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe];
    let results = runner().run_grid(&[8usize, 16, 32, 64], &modes, |entries, mode| {
        let mut cfg = iperf_config(mode, 5, 2048);
        cfg.iommu.ptcache_l3_entries = entries;
        cfg.measure = MEASURE_NS;
        cfg
    });
    for (entries, mode, m) in &results {
        row(&format!("l3={entries}"), *mode, m);
    }
    println!("(F&S is insensitive to the PTcache-L3 size — its working set is <=2");
    println!(" entries per descriptor; Linux leans on capacity it may not have.)");
}

fn assoc_sweep() {
    println!("--- IOTLB associativity ablation (organization is not public) ---");
    let points: [(&str, Option<usize>); 3] =
        [("full", None), ("8-way", Some(8)), ("4-way", Some(4))];
    let modes = [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe];
    let results = runner().run_grid(&points, &modes, |(_, assoc), mode| {
        let mut cfg = iperf_config(mode, 40, 256);
        cfg.iommu.iotlb_assoc = assoc;
        cfg.measure = MEASURE_NS;
        cfg
    });
    for ((label, _), mode, m) in &results {
        println!(
            "{label:>12} {:>14}  rx {:6.1} Gbps  iotlb/pg {:5.2}  M {:5.2}",
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
            m.memory_reads_per_page(),
        );
    }
    println!("(Strict invalidation makes every first touch miss regardless of");
    println!(" organization; associativity only adds conflict misses on top.)");
}

fn aging_sweep() {
    println!("--- allocator-aging ablation (pristine vs long-running allocator) ---");
    let modes = [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe];
    let results = runner().run_grid(&[0.0f64, 1.5], &modes, |aging, mode| {
        let mut cfg = iperf_config(mode, 5, 2048);
        cfg.aging_factor = aging;
        cfg.measure = MEASURE_NS;
        cfg
    });
    for (aging, mode, m) in &results {
        row(&format!("aging={aging}"), *mode, m);
    }
    println!("(A freshly booted allocator hands out near-contiguous IOVAs, hiding");
    println!(" the locality problem; aged caches reveal the Figure 3 behaviour.)");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "mtu" => mtu_sweep(),
        "cores" => core_sweep(),
        "ddio" => ddio_sweep(),
        "ptcache" => ptcache_sweep(),
        "aging" => aging_sweep(),
        "assoc" => assoc_sweep(),
        "all" => {
            mtu_sweep();
            core_sweep();
            ddio_sweep();
            ptcache_sweep();
            aging_sweep();
            assoc_sweep();
        }
        other => {
            eprintln!("unknown sweep {other:?}; use mtu|cores|ddio|ptcache|aging|assoc|all");
            std::process::exit(2);
        }
    }
}
