//! Simulator-performance smoke benchmark.
//!
//! Times a fixed basket of figure-shaped sweeps — sequentially and across
//! a worker-count curve (1/2/4/8 jobs) — and writes the wall-clock
//! numbers, events/sec, ns/event and ns/translation to
//! `BENCH_simcore.json` (override the path with `FNS_BENCH_OUT`). Every
//! timing is best-of-N wall clock (`FNS_BENCH_REPEATS`, default 3): the
//! simulator is deterministic, so the *minimum* wall time is the least
//! noise-contaminated estimate of its true cost — means and single shots
//! on a shared box swing 2–3x with scheduler interference.
//!
//! The sequential and parallel passes run identical configurations, so the
//! basket doubles as an end-to-end determinism check: any metric
//! divergence between passes aborts the benchmark. A warm-arena pass also
//! asserts the recycled event queue never grows in steady state.
//!
//! This measures the *simulator's* performance, not the simulated
//! system's; the JSON is a tracking artifact. The only perf *assertion*
//! here is the 8-job basket speedup (> 1.5x), and it is skipped — loudly —
//! when the host has fewer than 4 CPUs, when `FNS_SKIP_SPEEDUP_ASSERT` is
//! set, or when the committed baseline JSON itself records `host_cpus: 1`
//! (a ratchet minted on a starved container says nothing a fresh run on
//! one could contradict), because a 1-CPU container cannot exhibit
//! parallel speedup no matter how scalable the runner is (see DESIGN.md
//! §11).
//!
//! Alongside the inter-run `jobs_curve`, a `shards_curve` times the
//! *intra-run* sharded engine on a dc-scale-lite shape (8 NICs ×
//! 4 queues plus 2 storage devices) at shard-worker caps of 1/2/4. The
//! curve doubles as a determinism gate: metrics must be bit-identical at
//! every cap.

use std::time::Instant;

use fns_apps::{dc_scale_config, iperf_config, redis_config};
use fns_bench::SweepRunner;
use fns_core::{Engine, HostSim, ProtectionMode, RunArena, RunMetrics, SimConfig};
use fns_trace::{JsonWriter, ObserveConfig, RegMetric, RegistryReport, Span, SpanSet};

/// Shortened windows: the basket must finish in CI seconds, not minutes.
const SMOKE_WARMUP_NS: u64 = 5_000_000;
const SMOKE_MEASURE_NS: u64 = 10_000_000;

/// Worker counts for the scaling curve.
const JOBS_CURVE: [usize; 4] = [1, 2, 4, 8];

/// Shard-worker caps for the intra-run scaling curve.
const SHARDS_CURVE: [usize; 3] = [1, 2, 4];

fn smoke(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup = SMOKE_WARMUP_NS;
    cfg.measure = SMOKE_MEASURE_NS;
    cfg
}

/// The basket: one sweep per headline figure shape.
fn basket() -> Vec<(&'static str, Vec<SimConfig>)> {
    let headline = [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::FastAndSafe,
    ];
    let mut figures = Vec::new();

    let mut fig2 = Vec::new();
    for flows in [5u32, 10, 20, 40] {
        for mode in [ProtectionMode::IommuOff, ProtectionMode::LinuxStrict] {
            fig2.push(smoke(iperf_config(mode, flows, 256)));
        }
    }
    figures.push(("fig2_flow_sweep", fig2));

    let mut fig7 = Vec::new();
    for flows in [5u32, 10, 20, 40] {
        for mode in headline {
            fig7.push(smoke(iperf_config(mode, flows, 256)));
        }
    }
    figures.push(("fig7_flow_sweep", fig7));

    let mut fig8 = Vec::new();
    for ring in [256u32, 512, 1024, 2048] {
        for mode in headline {
            fig8.push(smoke(iperf_config(mode, 5, ring)));
        }
    }
    figures.push(("fig8_ring_sweep", fig8));

    let mut fig11a = Vec::new();
    for value in [4u64 << 10, 8 << 10, 32 << 10, 128 << 10] {
        for mode in headline {
            fig11a.push(smoke(redis_config(mode, value)));
        }
    }
    figures.push(("fig11a_redis_sweep", fig11a));

    figures
}

/// A compact equality fingerprint of one run's metrics: enough to catch any
/// sequential/parallel divergence without a full PartialEq on RunMetrics.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, usize) {
    (
        m.rx_goodput_bytes,
        m.tx_goodput_bytes,
        m.events_processed,
        m.iommu.translations,
        m.iommu.memory_reads,
        m.fault_log.len(),
    )
}

/// Runs `sweep` `repeats` times and returns the results plus the minimum
/// wall-clock time in nanoseconds. Determinism makes the repeats free of
/// result ambiguity; the min strips scheduler noise.
fn best_of<F>(repeats: u32, mut sweep: F) -> (Vec<RunMetrics>, u128)
where
    F: FnMut() -> Vec<RunMetrics>,
{
    let mut best_wall = u128::MAX;
    let mut out = Vec::new();
    for _ in 0..repeats {
        let t = Instant::now();
        let results = sweep();
        let wall = t.elapsed().as_nanos();
        if wall < best_wall {
            best_wall = wall;
        }
        out = results;
    }
    (out, best_wall)
}

struct FigureResult {
    name: &'static str,
    runs: usize,
    events: u64,
    translations: u64,
    /// CPU-span attribution summed over the figure's runs (simulated CPU
    /// ns, not wall clock) — tracks where the modelled driver time goes.
    spans: SpanSet,
    /// Registry percentiles from the observability-armed shadow pass,
    /// aggregated over the figure's runs.
    registry: RegistryReport,
    seq_wall_ns: u128,
    par_wall_ns: u128,
    /// Wall clock of the fully-armed sequential pass; only timed for the
    /// figure that carries the overhead gate.
    obs_seq_wall_ns: Option<u128>,
}

impl FigureResult {
    fn speedup(&self) -> f64 {
        self.seq_wall_ns as f64 / self.par_wall_ns.max(1) as f64
    }
    fn events_per_sec(&self, wall_ns: u128) -> f64 {
        self.events as f64 / (wall_ns as f64 / 1e9)
    }
    fn ns_per_event(&self, wall_ns: u128) -> f64 {
        wall_ns as f64 / self.events.max(1) as f64
    }
    fn ns_per_translation(&self, wall_ns: u128) -> f64 {
        wall_ns as f64 / self.translations.max(1) as f64
    }
    /// Share of the figure's modelled driver CPU spent in `span`, in
    /// percent of the figure's span total (0 when the figure charges no
    /// spans at all, e.g. a pure-IOMMU-off basket).
    fn span_share_pct(&self, span: Span) -> f64 {
        let total = self.spans.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.spans.get(span) as f64 * 100.0 / total as f64
    }
}

struct CurvePoint {
    jobs: usize,
    wall_ns: u128,
    events: u64,
}

/// The `host_cpus` recorded in the committed benchmark JSON at `path`,
/// if the file exists and carries one. Hand-rolled scan — the workspace
/// is offline, no serde — tolerant of whitespace around the colon.
fn committed_host_cpus(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let rest = &text[text.find("\"host_cpus\"")? + "\"host_cpus\"".len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The dc-scale topology (8 NICs × 4 queues + 2 storage = 10 domains) at
/// a CI-sized flow count and smoke windows: enough work per shard for the
/// curve to mean something, small enough to finish in bench seconds.
fn dc_scale_lite() -> SimConfig {
    let mut cfg = smoke(dc_scale_config(ProtectionMode::FastAndSafe));
    cfg.flows = 1024;
    cfg
}

/// Warm-arena steady-state check: after one priming run, a recycled event
/// queue must absorb an identical run without growing its storage.
fn assert_steady_state_reallocs() {
    let cfg = smoke(iperf_config(ProtectionMode::FastAndSafe, 5, 256));
    let mut arena = RunArena::new();
    let prime = HostSim::run_in(cfg, &mut arena);
    let warm = HostSim::run_in(cfg, &mut arena);
    assert_eq!(
        fingerprint(&prime),
        fingerprint(&warm),
        "warm-arena run diverged from priming run"
    );
    assert_eq!(
        arena.last_queue_reallocs(),
        0,
        "recycled event queue grew during a steady-state run"
    );
    println!("steady-state check: warm-arena event queue reallocs = 0");
}

/// Snapshot round-trip gate. Two parts: every basket config must be
/// checkpointable — a non-snapshottable config is an explicit error
/// naming the reason, never a silently skipped round-trip — and one
/// representative run per figure must reproduce its uninterrupted
/// fingerprint after a mid-run snapshot/restore (the full mode × backend
/// matrix lives in tests/golden_determinism.rs; this is the smoke gate).
fn assert_snapshot_roundtrip(name: &str, configs: &[SimConfig], golden: &RunMetrics) {
    for (i, cfg) in configs.iter().enumerate() {
        if let Some(reason) = cfg.snapshot_ineligibility() {
            panic!("{name} run {i}: config cannot be checkpointed: {reason}");
        }
    }
    let cfg = configs[0];
    let mut sim = HostSim::new(cfg);
    sim.step_until(cfg.warmup + cfg.measure / 2);
    let bytes = sim.snapshot();
    drop(sim);
    let resumed = HostSim::restore(cfg, &bytes)
        .unwrap_or_else(|e| panic!("{name}: snapshot failed to restore: {e:?}"))
        .run();
    assert_eq!(
        fingerprint(golden),
        fingerprint(&resumed),
        "{name}: snapshot/restore diverged from the uninterrupted run"
    );
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let repeats = std::env::var("FNS_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let out_path = std::env::var("FNS_BENCH_OUT").unwrap_or_else(|_| "BENCH_simcore.json".into());
    // Read the committed baseline's host_cpus *before* overwriting it: a
    // ratchet minted on a 1-CPU container carries no speedup information.
    let baseline_cpus = committed_host_cpus(&out_path);
    let parallel = SweepRunner::from_env();
    let sequential = SweepRunner::new(1);
    println!(
        "=== perf_smoke: best of {repeats} wall-clock runs, sequential vs {} workers, \
         {host_cpus} host CPUs ===",
        parallel.jobs()
    );

    assert_steady_state_reallocs();

    let mut figures = Vec::new();
    for (name, configs) in basket() {
        let runs = configs.len();

        let (seq, seq_wall_ns) = best_of(repeats, || sequential.run_sims(configs.clone()));
        let (par, par_wall_ns) = best_of(repeats, || parallel.run_sims(configs.clone()));

        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                fingerprint(a),
                fingerprint(b),
                "{name} run {i}: parallel metrics diverged from sequential"
            );
        }
        assert_snapshot_roundtrip(name, &configs, &seq[0]);

        // Observability-armed shadow pass: same configs with every tier on
        // (provenance + txn spans + registry + flight). Yields the registry
        // percentiles for the JSON, doubles as a behavior-invisibility
        // check against the bare pass, and — for fig2 — is timed to gate
        // the instrumentation overhead.
        let armed: Vec<SimConfig> = configs
            .iter()
            .map(|&c| {
                let mut c = c;
                c.observe = ObserveConfig::full();
                c
            })
            .collect();
        let (obs, obs_seq_wall_ns) = if name == "fig2_flow_sweep" {
            let (obs, wall) = best_of(repeats, || sequential.run_sims(armed.clone()));
            (obs, Some(wall))
        } else {
            (sequential.run_sims(armed), None)
        };
        for (i, (a, b)) in seq.iter().zip(&obs).enumerate() {
            assert_eq!(
                fingerprint(a),
                fingerprint(b),
                "{name} run {i}: armed-observability metrics diverged from bare"
            );
        }
        let mut registry = RegistryReport {
            enabled: true,
            stats: Vec::new(),
            series: Vec::new(),
        };
        for m in &obs {
            registry.stats.extend(m.registry.stats.iter().copied());
        }

        let mut spans = SpanSet::default();
        for m in &seq {
            spans.merge(&m.spans);
        }
        let fig = FigureResult {
            name,
            runs,
            events: seq.iter().map(|m| m.events_processed).sum(),
            translations: seq.iter().map(|m| m.iommu.translations).sum(),
            spans,
            registry,
            seq_wall_ns,
            par_wall_ns,
            obs_seq_wall_ns,
        };
        println!(
            "{:>20}: {:2} runs  seq {:7.2} ms  par {:7.2} ms  speedup {:4.2}x  \
             {:6.2} Mev/s seq  {:6.1} ns/event seq  {:6.1} ns/translation seq  \
             inv-wait {:4.1}%",
            fig.name,
            fig.runs,
            seq_wall_ns as f64 / 1e6,
            par_wall_ns as f64 / 1e6,
            fig.speedup(),
            fig.events_per_sec(seq_wall_ns) / 1e6,
            fig.ns_per_event(seq_wall_ns),
            fig.ns_per_translation(seq_wall_ns),
            fig.span_share_pct(Span::InvalidationWait),
        );
        figures.push(fig);
    }

    // Worker-count scaling curve over the concatenated basket. Each point
    // is best-of-N of the full basket through one runner.
    let all_configs: Vec<SimConfig> = basket().into_iter().flat_map(|(_, c)| c).collect();
    let mut curve = Vec::new();
    for &jobs in &JOBS_CURVE {
        let runner = SweepRunner::new(jobs);
        let (results, wall_ns) = best_of(repeats, || runner.run_sims(all_configs.clone()));
        let events: u64 = results.iter().map(|m| m.events_processed).sum();
        println!(
            "jobs curve: {jobs} workers  {:7.2} ms  {:6.2} Mev/s",
            wall_ns as f64 / 1e6,
            events as f64 / (wall_ns as f64 / 1e9) / 1e6,
        );
        curve.push(CurvePoint {
            jobs,
            wall_ns,
            events,
        });
    }
    let basket_speedup = curve[0].wall_ns as f64 / curve.last().unwrap().wall_ns.max(1) as f64;
    println!(
        "basket: {:.2} ms at 1 worker, {:.2} ms at {} workers, speedup {:.2}x \
         ({host_cpus} host CPUs)",
        curve[0].wall_ns as f64 / 1e6,
        curve.last().unwrap().wall_ns as f64 / 1e6,
        curve.last().unwrap().jobs,
        basket_speedup,
    );

    // Intra-run sharding curve: the dc-scale-lite shape through the
    // sharded engine at shard-worker caps of 1/2/4. Bit-identical metrics
    // at every cap are asserted unconditionally (determinism needs no
    // cores); the wall-clock speedup is tracking data, gated like the
    // basket speedup only on hosts with the CPUs to show it.
    let lite = dc_scale_lite();
    let mut shards_curve = Vec::new();
    let mut shards_fp = None;
    for &shards in &SHARDS_CURVE {
        let mut cfg = lite;
        cfg.shards = shards;
        let (results, wall_ns) = best_of(repeats, || vec![Engine::new(cfg).run()]);
        let fp = fingerprint(&results[0]);
        match shards_fp {
            None => shards_fp = Some(fp),
            Some(first) => assert_eq!(
                first, fp,
                "shards={shards}: sharded metrics diverged from the shards=1 run"
            ),
        }
        let events: u64 = results.iter().map(|m| m.events_processed).sum();
        println!(
            "shards curve: {shards} shard workers  {:7.2} ms  {:6.2} Mev/s",
            wall_ns as f64 / 1e6,
            events as f64 / (wall_ns as f64 / 1e9) / 1e6,
        );
        shards_curve.push(CurvePoint {
            jobs: shards,
            wall_ns,
            events,
        });
    }
    let shards_speedup =
        shards_curve[0].wall_ns as f64 / shards_curve.last().unwrap().wall_ns.max(1) as f64;
    println!(
        "dc-scale-lite: {:.2} ms at 1 shard worker, {:.2} ms at {}, speedup {:.2}x",
        shards_curve[0].wall_ns as f64 / 1e6,
        shards_curve.last().unwrap().wall_ns as f64 / 1e6,
        shards_curve.last().unwrap().jobs,
        shards_speedup,
    );

    // The one hard perf gate: the 8-job basket must beat sequential by
    // 1.5x. Guarded because speedup physically requires cores — on a
    // starved runner the gate would only measure the container, not the
    // code. FNS_SKIP_SPEEDUP_ASSERT=1 force-skips on flaky shared hosts,
    // and a committed baseline that itself recorded host_cpus=1 skips the
    // same way (its ratchet was minted without cores to compare against).
    let skip_env = std::env::var("FNS_SKIP_SPEEDUP_ASSERT").is_ok();
    let baseline_single_cpu = baseline_cpus.is_some_and(|n| n <= 1);
    if skip_env || host_cpus < 4 || baseline_single_cpu {
        println!(
            "speedup assert SKIPPED ({})",
            if skip_env {
                "FNS_SKIP_SPEEDUP_ASSERT set".to_string()
            } else if host_cpus < 4 {
                format!("{host_cpus} host CPUs < 4")
            } else {
                "committed baseline recorded host_cpus=1 — same escape as \
                 FNS_SKIP_SPEEDUP_ASSERT"
                    .to_string()
            }
        );
    } else {
        assert!(
            basket_speedup > 1.5,
            "8-job basket speedup {basket_speedup:.2}x <= 1.5x on a {host_cpus}-CPU host"
        );
        println!("speedup assert PASSED: {basket_speedup:.2}x > 1.5x");
    }

    // Observability overhead gate: the fully-armed fig2 basket must keep
    // >= 90% of the bare sequential event rate. Best-of-N minima on both
    // sides strip scheduler noise; FNS_SKIP_OBS_OVERHEAD_ASSERT=1 escapes
    // on hosts too noisy even for minima.
    let fig2 = figures
        .iter()
        .find(|f| f.name == "fig2_flow_sweep")
        .expect("fig2 in basket");
    let obs_wall = fig2.obs_seq_wall_ns.expect("fig2 armed pass is timed");
    let bare_rate = fig2.events_per_sec(fig2.seq_wall_ns);
    let armed_rate = fig2.events_per_sec(obs_wall);
    let overhead_pct = (1.0 - armed_rate / bare_rate) * 100.0;
    println!(
        "observability overhead (fig2): bare {:.2} Mev/s, armed {:.2} Mev/s, {overhead_pct:+.1}%",
        bare_rate / 1e6,
        armed_rate / 1e6,
    );
    if std::env::var("FNS_SKIP_OBS_OVERHEAD_ASSERT").is_ok() {
        println!("observability overhead assert SKIPPED (FNS_SKIP_OBS_OVERHEAD_ASSERT set)");
    } else {
        assert!(
            armed_rate >= 0.9 * bare_rate,
            "full observability costs {overhead_pct:.1}% of fig2 sequential event rate (>10%)"
        );
        println!("observability overhead assert PASSED: {overhead_pct:.1}% <= 10%");
    }

    // Hand-rolled JSON through the fns-trace writer: the workspace is
    // offline, no serde.
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.field_u64("jobs", parallel.jobs() as u64);
    w.field_u64("host_cpus", host_cpus as u64);
    w.field_u64("repeats", repeats as u64);
    w.field_f64("basket_seq_wall_ms", curve[0].wall_ns as f64 / 1e6);
    w.field_f64(
        "basket_par_wall_ms",
        curve.last().unwrap().wall_ns as f64 / 1e6,
    );
    w.field_f64("basket_speedup", basket_speedup);
    w.key("jobs_curve");
    w.begin_array();
    for p in &curve {
        w.begin_object();
        w.field_u64("jobs", p.jobs as u64);
        w.field_f64("wall_ms", p.wall_ns as f64 / 1e6);
        w.field_f64("events_per_sec", p.events as f64 / (p.wall_ns as f64 / 1e9));
        w.field_f64(
            "speedup_vs_seq",
            curve[0].wall_ns as f64 / p.wall_ns.max(1) as f64,
        );
        w.end_object();
    }
    w.end_array();
    w.field_f64("shards_speedup", shards_speedup);
    w.key("shards_curve");
    w.begin_array();
    for p in &shards_curve {
        w.begin_object();
        w.field_u64("shards", p.jobs as u64);
        w.field_f64("wall_ms", p.wall_ns as f64 / 1e6);
        w.field_f64("events_per_sec", p.events as f64 / (p.wall_ns as f64 / 1e9));
        w.field_f64(
            "speedup_vs_1shard",
            shards_curve[0].wall_ns as f64 / p.wall_ns.max(1) as f64,
        );
        w.end_object();
    }
    w.end_array();
    w.key("figures");
    w.begin_array();
    for f in &figures {
        w.begin_object();
        w.field_str("name", f.name);
        w.field_u64("runs", f.runs as u64);
        w.field_u64("events", f.events);
        w.field_u64("translations", f.translations);
        w.field_f64("seq_wall_ms", f.seq_wall_ns as f64 / 1e6);
        w.field_f64("par_wall_ms", f.par_wall_ns as f64 / 1e6);
        w.field_f64("speedup", f.speedup());
        w.field_f64("seq_events_per_sec", f.events_per_sec(f.seq_wall_ns));
        w.field_f64("par_events_per_sec", f.events_per_sec(f.par_wall_ns));
        w.field_f64("seq_ns_per_event", f.ns_per_event(f.seq_wall_ns));
        w.field_f64("par_ns_per_event", f.ns_per_event(f.par_wall_ns));
        w.field_f64(
            "seq_ns_per_translation",
            f.ns_per_translation(f.seq_wall_ns),
        );
        w.field_f64(
            "par_ns_per_translation",
            f.ns_per_translation(f.par_wall_ns),
        );
        w.key("spans");
        w.begin_object();
        for span in Span::ALL {
            w.field_u64(span.name(), f.spans.get(span));
        }
        w.end_object();
        // The same buckets as shares of the figure's span total, so a
        // ratchet on (say) invalidation_wait_pct needs no client-side
        // arithmetic over the raw nanosecond counters.
        w.key("span_shares_pct");
        w.begin_object();
        for span in Span::ALL {
            w.field_f64(span.name(), f.span_share_pct(span));
        }
        w.end_object();
        w.field_f64(
            "invalidation_wait_pct",
            f.span_share_pct(Span::InvalidationWait),
        );
        // Registry percentiles from the armed shadow pass: per metric,
        // `(count, p50, p99, p999)` aggregated over the figure's runs.
        w.key("registry");
        w.begin_object();
        for metric in RegMetric::ALL {
            let (count, p50, p99, p999) = f.registry.percentiles(metric);
            w.key(metric.name());
            w.begin_object();
            w.field_u64("count", count);
            w.field_u64("p50", p50);
            w.field_u64("p99", p99);
            w.field_u64("p999", p999);
            w.end_object();
        }
        w.end_object();
        if let Some(obs_wall) = f.obs_seq_wall_ns {
            w.field_f64("obs_seq_wall_ms", obs_wall as f64 / 1e6);
            w.field_f64("obs_seq_events_per_sec", f.events_per_sec(obs_wall));
            w.field_f64(
                "obs_overhead_pct",
                (1.0 - f.events_per_sec(obs_wall) / f.events_per_sec(f.seq_wall_ns)) * 100.0,
            );
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();

    std::fs::write(&out_path, w.finish()).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
