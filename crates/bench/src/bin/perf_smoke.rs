//! Simulator-performance smoke benchmark.
//!
//! Times a fixed basket of figure-shaped sweeps twice — once sequentially
//! (1 worker) and once on the parallel sweep runner — and writes the
//! wall-clock numbers, events/sec and ns/translation to
//! `BENCH_simcore.json` (override the path with `FNS_BENCH_OUT`). The two
//! passes run identical configurations, so the basket doubles as an
//! end-to-end determinism check: any metric divergence between the
//! sequential and parallel pass aborts the benchmark.
//!
//! This measures the *simulator's* performance, not the simulated system's;
//! the JSON is a tracking artifact (CI uploads it), and nothing fails on a
//! regression — only on a panic or a determinism violation.

use std::time::Instant;

use fns_apps::{iperf_config, redis_config};
use fns_bench::SweepRunner;
use fns_core::{ProtectionMode, RunMetrics, SimConfig};
use fns_trace::{JsonWriter, Span, SpanSet};

/// Shortened windows: the basket must finish in CI seconds, not minutes.
const SMOKE_WARMUP_NS: u64 = 5_000_000;
const SMOKE_MEASURE_NS: u64 = 10_000_000;

fn smoke(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup = SMOKE_WARMUP_NS;
    cfg.measure = SMOKE_MEASURE_NS;
    cfg
}

/// The basket: one sweep per headline figure shape.
fn basket() -> Vec<(&'static str, Vec<SimConfig>)> {
    let headline = [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::FastAndSafe,
    ];
    let mut figures = Vec::new();

    let mut fig2 = Vec::new();
    for flows in [5u32, 10, 20, 40] {
        for mode in [ProtectionMode::IommuOff, ProtectionMode::LinuxStrict] {
            fig2.push(smoke(iperf_config(mode, flows, 256)));
        }
    }
    figures.push(("fig2_flow_sweep", fig2));

    let mut fig7 = Vec::new();
    for flows in [5u32, 10, 20, 40] {
        for mode in headline {
            fig7.push(smoke(iperf_config(mode, flows, 256)));
        }
    }
    figures.push(("fig7_flow_sweep", fig7));

    let mut fig8 = Vec::new();
    for ring in [256u32, 512, 1024, 2048] {
        for mode in headline {
            fig8.push(smoke(iperf_config(mode, 5, ring)));
        }
    }
    figures.push(("fig8_ring_sweep", fig8));

    let mut fig11a = Vec::new();
    for value in [4u64 << 10, 8 << 10, 32 << 10, 128 << 10] {
        for mode in headline {
            fig11a.push(smoke(redis_config(mode, value)));
        }
    }
    figures.push(("fig11a_redis_sweep", fig11a));

    figures
}

/// A compact equality fingerprint of one run's metrics: enough to catch any
/// sequential/parallel divergence without a full PartialEq on RunMetrics.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, usize) {
    (
        m.rx_goodput_bytes,
        m.tx_goodput_bytes,
        m.events_processed,
        m.iommu.translations,
        m.iommu.memory_reads,
        m.fault_log.len(),
    )
}

struct FigureResult {
    name: &'static str,
    runs: usize,
    events: u64,
    translations: u64,
    /// CPU-span attribution summed over the figure's runs (simulated CPU
    /// ns, not wall clock) — tracks where the modelled driver time goes.
    spans: SpanSet,
    seq_wall_ns: u128,
    par_wall_ns: u128,
}

impl FigureResult {
    fn speedup(&self) -> f64 {
        self.seq_wall_ns as f64 / self.par_wall_ns.max(1) as f64
    }
    fn events_per_sec(&self, wall_ns: u128) -> f64 {
        self.events as f64 / (wall_ns as f64 / 1e9)
    }
    fn ns_per_translation(&self, wall_ns: u128) -> f64 {
        wall_ns as f64 / self.translations.max(1) as f64
    }
}

fn main() {
    let parallel = SweepRunner::from_env();
    let sequential = SweepRunner::new(1);
    println!(
        "=== perf_smoke: simulator wall-clock, sequential vs {} workers ===",
        parallel.jobs()
    );

    let mut figures = Vec::new();
    for (name, configs) in basket() {
        let runs = configs.len();

        let t0 = Instant::now();
        let seq = sequential.run_sims(configs.clone());
        let seq_wall_ns = t0.elapsed().as_nanos();

        let t1 = Instant::now();
        let par = parallel.run_sims(configs);
        let par_wall_ns = t1.elapsed().as_nanos();

        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                fingerprint(a),
                fingerprint(b),
                "{name} run {i}: parallel metrics diverged from sequential"
            );
        }

        let mut spans = SpanSet::default();
        for m in &seq {
            spans.merge(&m.spans);
        }
        let fig = FigureResult {
            name,
            runs,
            events: seq.iter().map(|m| m.events_processed).sum(),
            translations: seq.iter().map(|m| m.iommu.translations).sum(),
            spans,
            seq_wall_ns,
            par_wall_ns,
        };
        println!(
            "{:>20}: {:2} runs  seq {:7.2} ms  par {:7.2} ms  speedup {:4.2}x  \
             {:6.2} Mev/s par  {:6.1} ns/translation par",
            fig.name,
            fig.runs,
            seq_wall_ns as f64 / 1e6,
            par_wall_ns as f64 / 1e6,
            fig.speedup(),
            fig.events_per_sec(par_wall_ns) / 1e6,
            fig.ns_per_translation(par_wall_ns),
        );
        figures.push(fig);
    }

    let seq_total: u128 = figures.iter().map(|f| f.seq_wall_ns).sum();
    let par_total: u128 = figures.iter().map(|f| f.par_wall_ns).sum();
    let basket_speedup = seq_total as f64 / par_total.max(1) as f64;
    println!(
        "basket: seq {:.2} ms, par {:.2} ms, speedup {:.2}x with {} workers",
        seq_total as f64 / 1e6,
        par_total as f64 / 1e6,
        basket_speedup,
        parallel.jobs()
    );

    // Hand-rolled JSON through the fns-trace writer: the workspace is
    // offline, no serde.
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.field_u64("jobs", parallel.jobs() as u64);
    w.field_f64("basket_seq_wall_ms", seq_total as f64 / 1e6);
    w.field_f64("basket_par_wall_ms", par_total as f64 / 1e6);
    w.field_f64("basket_speedup", basket_speedup);
    w.key("figures");
    w.begin_array();
    for f in &figures {
        w.begin_object();
        w.field_str("name", f.name);
        w.field_u64("runs", f.runs as u64);
        w.field_u64("events", f.events);
        w.field_u64("translations", f.translations);
        w.field_f64("seq_wall_ms", f.seq_wall_ns as f64 / 1e6);
        w.field_f64("par_wall_ms", f.par_wall_ns as f64 / 1e6);
        w.field_f64("speedup", f.speedup());
        w.field_f64("seq_events_per_sec", f.events_per_sec(f.seq_wall_ns));
        w.field_f64("par_events_per_sec", f.events_per_sec(f.par_wall_ns));
        w.field_f64(
            "seq_ns_per_translation",
            f.ns_per_translation(f.seq_wall_ns),
        );
        w.field_f64(
            "par_ns_per_translation",
            f.ns_per_translation(f.par_wall_ns),
        );
        w.key("spans");
        w.begin_object();
        for span in Span::ALL {
            w.field_u64(span.name(), f.spans.get(span));
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();

    let path = std::env::var("FNS_BENCH_OUT").unwrap_or_else(|_| "BENCH_simcore.json".into());
    std::fs::write(&path, w.finish()).expect("write benchmark JSON");
    println!("wrote {path}");
}
