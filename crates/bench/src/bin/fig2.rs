//! Figure 2: stock memory-protection overheads vs number of flows.
//!
//! Sweeps 5/10/20/40 iperf flows into the 5-core receiver (4 KB MTU,
//! 256-packet rings) with the IOMMU off and in Linux strict mode, printing
//! the five panels of the paper's Figure 2: throughput (a), drop rate (b),
//! IOTLB misses + Tx packets per page (c), PTcache-L1/L2/L3 misses per page
//! (d), and the IOVA locality trace summary (e).

use fns_apps::iperf_config;
use fns_bench::{check_safety, print_locality_row, print_micro_row, runner, MEASURE_NS};
use fns_core::ProtectionMode;

fn main() {
    println!("=== Figure 2: Linux strict-mode overheads vs flow count ===");
    println!("(paper: 20-65% throughput loss, drops up to 4%, IOTLB 1.3->2.2/page,");
    println!(" PTcache-L1/L2 0.05->0.63, PTcache-L3 0.36->0.90 as flows go 5->40)");
    let mut csv = fns_bench::CsvSink::create("fig2");
    let results = runner().run_grid(
        &[5u32, 10, 20, 40],
        &[ProtectionMode::IommuOff, ProtectionMode::LinuxStrict],
        |flows, mode| {
            let mut cfg = iperf_config(mode, flows, 256);
            cfg.measure = MEASURE_NS;
            cfg
        },
    );
    for (flows, mode, m) in &results {
        check_safety(*mode, m);
        print_micro_row(&format!("flows={flows}"), *mode, m);
        fns_bench::csv_micro_row(&mut csv, "flows", *flows as u64, *mode, m);
    }
    println!("--- panel (e): IOVA allocation locality ---");
    for (flows, mode, m) in &results {
        if *mode == ProtectionMode::LinuxStrict {
            print_locality_row(&format!("flows={flows}"), *mode, m);
        }
    }
    // Headline check: degradation grows with flow count.
    let gbps = |f: u32, mo: ProtectionMode| {
        results
            .iter()
            .find(|(fl, m, _)| *fl == f && *m == mo)
            .map(|(_, _, r)| r.rx_gbps())
            .expect("swept")
    };
    let deg5 = 1.0 - gbps(5, ProtectionMode::LinuxStrict) / gbps(5, ProtectionMode::IommuOff);
    let deg40 = 1.0 - gbps(40, ProtectionMode::LinuxStrict) / gbps(40, ProtectionMode::IommuOff);
    println!(
        "degradation: {:.0}% at 5 flows -> {:.0}% at 40 flows (paper: 20% -> 65%)",
        deg5 * 100.0,
        deg40 * 100.0
    );
}
