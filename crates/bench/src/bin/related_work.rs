//! Extension: the paper's §5 related-work landscape, made concrete.
//!
//! Runs the two related-work baselines the paper discusses — pinned
//! hugepages (Farshin et al. \[16\]) and DAMN-style persistent recycled
//! mappings (Markuze et al. \[34\]) — next to stock Linux, F&S and IOMMU-off,
//! and prints the safety property alongside the performance. The point the
//! paper makes in one table: the alternatives buy speed by weakening
//! safety; F&S is the only strict-safe design at line rate.

use fns_apps::iperf_config;
use fns_bench::{runner, MEASURE_NS};
use fns_core::ProtectionMode;

fn main() {
    println!("=== Related work (§5): performance vs safety property ===");
    println!(
        "{:>6} {:>15} {:>10} {:>11} {:>9} {:>14}",
        "flows", "mode", "goodput", "IOTLB/page", "reads/pg", "safety"
    );
    let modes = [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::LinuxDeferred,
        ProtectionMode::DamnRecycle,
        ProtectionMode::HugepagePinned,
        ProtectionMode::FastAndSafe,
    ];
    let results = runner().run_grid(&[5u32, 40], &modes, |flows, mode| {
        let mut cfg = iperf_config(mode, flows, 256);
        cfg.measure = MEASURE_NS;
        cfg
    });
    let mut current_flows = 0u32;
    for (flows, mode, m) in &results {
        if *flows != current_flows {
            if current_flows != 0 {
                println!();
            }
            current_flows = *flows;
        }
        let safety = if *mode == ProtectionMode::IommuOff {
            "none"
        } else if mode.is_strict_safe() {
            "STRICT"
        } else {
            "weakened"
        };
        println!(
            "{flows:>6} {:>15} {:>8.1} G {:>11.2} {:>9.2} {:>14}",
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
            m.memory_reads_per_page(),
            safety,
        );
        assert_eq!(m.stale_ptcache_walks, 0);
    }
    println!();
    println!(
        "hugepage-pin reaches 2 MB per IOTLB entry (misses ~0) and damn-recycle\n\
         skips all unmap/invalidate work — but both leave buffers permanently\n\
         device-accessible. F&S is the only strict-safe row at line rate."
    );
}
