//! Figure 10: concurrent Rx + Tx data traffic (extreme Rx/Tx interference).
//!
//! Ice Lake-like host with `n` Rx flows and `n` Tx flows on disjoint cores,
//! n = 1..4. The paper: stock protection degrades Rx by up to ~80% (vs
//! ~20% without Tx data traffic); Tx degrades less because PCIe reads
//! tolerate translation latency better; F&S roughly matches IOMMU-off,
//! with a small Rx gap below 4 cores (§4.4).

use fns_apps::bidirectional_config;
use fns_bench::{check_safety, runner, HEADLINE_MODES, MEASURE_NS};

fn main() {
    println!("=== Figure 10: Rx/Tx interference, n flows per direction ===");
    let results = runner().run_grid(&[1u32, 2, 3, 4], &HEADLINE_MODES, |n, mode| {
        let mut cfg = bidirectional_config(mode, n);
        cfg.measure = MEASURE_NS;
        cfg
    });
    let mut current_n = 0u32;
    for (n, mode, m) in &results {
        if *n != current_n {
            current_n = *n;
            println!("--- {n} flow(s) per direction ---");
        }
        check_safety(*mode, m);
        println!(
            "{:>6} {:>14}  rx {:6.1} Gbps  tx {:6.1} Gbps  iotlb/pg {:5.2}  M {:5.2}",
            format!("n={n}"),
            mode.label(),
            m.rx_gbps(),
            m.tx_gbps(),
            m.iotlb_misses_per_page(),
            m.memory_reads_per_page(),
        );
    }
    println!("expectation: linux Rx collapses hardest; Tx degrades less; F&S recovers most");
}
