//! §2.2 model validation: `T = p / (l0 + M·lm)` vs simulated throughput.
//!
//! The paper fits `l0 = 65 ns`, `lm = 197 ns` from its 5- and 10-flow
//! datapoints and reports the model predicts measured throughput within 10%
//! across most experiments. This binary replays that validation against the
//! simulator: for every flow-count and ring-size microbenchmark point, it
//! feeds the simulator's own measured `M` into the analytical model and
//! compares the prediction with the simulated throughput.

use fns_apps::iperf_config;
use fns_bench::{runner, MEASURE_NS};
use fns_core::model::ThroughputModel;
use fns_core::ProtectionMode;

fn main() {
    println!("=== Section 2.2 analytical-model validation ===");
    let model = ThroughputModel::paper_fit();
    let points = [
        (5u32, 256u32),
        (10, 256),
        (20, 256),
        (40, 256),
        (5, 512),
        (5, 1024),
        (5, 2048),
    ];
    let modes = [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe];
    let results = runner().run_grid(&points, &modes, |(flows, ring), mode| {
        let mut cfg = iperf_config(mode, flows, ring);
        cfg.measure = MEASURE_NS;
        cfg
    });
    let mut worst: f64 = 0.0;
    let mut rows = Vec::new();
    for ((flows, ring), mode, m) in &results {
        // CPU-bound points are outside the PCIe model's domain (the
        // paper's model predicts the PCIe ceiling, not CPU ceilings).
        if m.max_cpu() > 0.95 {
            continue;
        }
        let predicted = model.predict_gbps(m.memory_reads_per_page(), 100.0);
        let measured = m.rx_gbps();
        let err = (predicted - measured).abs() / measured;
        worst = worst.max(err);
        rows.push((*flows, *ring, *mode, measured, predicted, err));
    }
    println!(
        "{:>6} {:>6} {:>14} {:>10} {:>10} {:>7}",
        "flows", "ring", "mode", "measured", "model", "err"
    );
    for (flows, ring, mode, meas, pred, err) in &rows {
        println!(
            "{flows:>6} {ring:>6} {:>14} {meas:>9.1}G {pred:>9.1}G {:>6.1}%",
            mode.label(),
            err * 100.0
        );
    }
    println!(
        "worst-case model error: {:.1}% (paper: within 10% for most points)",
        worst * 100.0
    );
}
