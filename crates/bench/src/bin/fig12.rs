//! Figure 12: ablation — the necessity of each F&S idea.
//!
//! Runs the Redis 8 KB workload under four configurations: stock Linux,
//! Linux + A (preserve PTcaches), Linux + B (contiguous IOVAs + batched
//! invalidations), and full F&S. The paper: neither ingredient alone
//! recovers the throughput; only their combination does.

use fns_apps::redis_config;
use fns_bench::{check_safety, runner, MEASURE_NS};
use fns_core::ProtectionMode;

fn main() {
    println!("=== Figure 12: ablation at Redis 8 KB values ===");
    let modes = [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::LinuxPreserve,
        ProtectionMode::LinuxContig,
        ProtectionMode::FastAndSafe,
    ];
    let metrics = runner().run_sims(
        modes
            .iter()
            .map(|&mode| {
                let mut cfg = redis_config(mode, 8 << 10);
                cfg.measure = MEASURE_NS;
                cfg
            })
            .collect(),
    );
    let results: Vec<_> = modes.into_iter().zip(metrics).collect();
    for (mode, m) in &results {
        check_safety(*mode, m);
        println!(
            "{:>14}  set-throughput {:6.1} Gbps  iotlb/pg {:5.2}  l1 {:5.3}  l2 {:5.3}  l3 {:5.3}  M {:5.2}  inval-cpu {:4} ms",
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
            m.l1_misses_per_page(),
            m.l2_misses_per_page(),
            m.l3_misses_per_page(),
            m.memory_reads_per_page(),
            m.invalidation_cpu_ns / 1_000_000,
        );
    }
    let g = |mo: ProtectionMode| {
        results
            .iter()
            .find(|(m, _)| *m == mo)
            .map(|(_, r)| r.rx_gbps())
            .expect("ran")
    };
    println!(
        "ordering check: linux {:.1} <= linux+A {:.1}, linux+B {:.1} <= F&S {:.1} (paper: each idea alone is insufficient)",
        g(ProtectionMode::LinuxStrict),
        g(ProtectionMode::LinuxPreserve),
        g(ProtectionMode::LinuxContig),
        g(ProtectionMode::FastAndSafe),
    );
}
