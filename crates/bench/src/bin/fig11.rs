//! Figure 11: real-world applications (Redis, Nginx, SPDK).
//!
//! Runs one of the three application workloads (or all) across the headline
//! modes. Paper expectations: Redis loses 38–70% under stock protection
//! (worse at small values, extra IOTLB misses from per-request replies);
//! Nginx caps at ~90 Gbps app-limited and loses 65–70% under stock
//! protection; SPDK drops to ~60 Gbps under stock protection; F&S restores
//! all three to (near) IOMMU-off throughput.
//!
//! Usage: `fig11 [redis|nginx|spdk|all]` (default: all).

use fns_apps::{nginx_config, redis_config, spdk_config};
use fns_bench::{check_safety, runner, HEADLINE_MODES, MEASURE_NS};

fn redis() {
    println!("--- Figure 11a: Redis 100% SET, value-size sweep ---");
    let results = runner().run_grid(
        &[4u64 << 10, 8 << 10, 32 << 10, 128 << 10],
        &HEADLINE_MODES,
        |value, mode| {
            let mut cfg = redis_config(mode, value);
            cfg.measure = MEASURE_NS;
            cfg
        },
    );
    for (value, mode, m) in &results {
        check_safety(*mode, m);
        println!(
            "{:>7} {:>14}  set-throughput {:6.1} Gbps  iotlb/pg {:5.2}  drops {:5.2} %",
            format!("{}K", value >> 10),
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
            m.drop_rate() * 100.0,
        );
    }
}

fn nginx() {
    println!("--- Figure 11b: Nginx web serving, page-size sweep ---");
    let results = runner().run_grid(
        &[128u64 << 10, 512 << 10, 2 << 20],
        &HEADLINE_MODES,
        |page, mode| {
            let mut cfg = nginx_config(mode, page);
            cfg.measure = MEASURE_NS;
            cfg
        },
    );
    for (page, mode, m) in &results {
        check_safety(*mode, m);
        println!(
            "{:>7} {:>14}  page-throughput {:6.1} Gbps  cpu {:4.2}",
            format!("{}K", page >> 10),
            mode.label(),
            m.tx_gbps(),
            m.max_cpu(),
        );
    }
}

fn spdk() {
    println!("--- Figure 11c: SPDK remote reads, block-size sweep ---");
    let results = runner().run_grid(
        &[32u64 << 10, 64 << 10, 128 << 10, 256 << 10],
        &HEADLINE_MODES,
        |block, mode| {
            let mut cfg = spdk_config(mode, block);
            cfg.measure = MEASURE_NS;
            cfg
        },
    );
    for (block, mode, m) in &results {
        check_safety(*mode, m);
        println!(
            "{:>7} {:>14}  read-throughput {:6.1} Gbps  iotlb/pg {:5.2}",
            format!("{}K", block >> 10),
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    println!("=== Figure 11: real-world applications ===");
    match which.as_str() {
        "redis" => redis(),
        "nginx" => nginx(),
        "spdk" => spdk(),
        "all" => {
            redis();
            nginx();
            spdk();
        }
        other => {
            eprintln!("unknown app {other:?}; use redis|nginx|spdk|all");
            std::process::exit(2);
        }
    }
}
