//! Figure 7: F&S near-completely eliminates the flow-count overheads.
//!
//! The same sweep as Figure 2 with Fast & Safe added: F&S should match the
//! IOMMU-off throughput, eliminate PTcache-L1/L2 misses entirely, cut
//! PTcache-L3 misses by >10x, and (indirectly, via fewer drops and ACKs)
//! reduce IOTLB misses — by ~2x in the 40-flow case.

use fns_apps::iperf_config;
use fns_bench::{
    check_safety, print_locality_row, print_micro_row, runner, HEADLINE_MODES, MEASURE_NS,
};
use fns_core::ProtectionMode;

fn main() {
    println!("=== Figure 7: F&S vs Linux strict vs IOMMU off, flow sweep ===");
    let mut csv = fns_bench::CsvSink::create("fig7");
    let results = runner().run_grid(&[5u32, 10, 20, 40], &HEADLINE_MODES, |flows, mode| {
        let mut cfg = iperf_config(mode, flows, 256);
        cfg.measure = MEASURE_NS;
        cfg
    });
    for (flows, mode, m) in &results {
        check_safety(*mode, m);
        print_micro_row(&format!("flows={flows}"), *mode, m);
        fns_bench::csv_micro_row(&mut csv, "flows", *flows as u64, *mode, m);
    }
    println!("--- panel (e): IOVA allocation locality ---");
    for (flows, mode, m) in &results {
        if *mode != ProtectionMode::IommuOff {
            print_locality_row(&format!("flows={flows}"), *mode, m);
        }
    }
    // The paper's §4.1 headline numbers.
    for (flows, mode, m) in &results {
        if *mode == ProtectionMode::FastAndSafe {
            assert_eq!(
                m.iommu.ptcache_l1_misses, 0,
                "F&S must have 0 PTcache-L1 misses"
            );
            assert_eq!(
                m.iommu.ptcache_l2_misses, 0,
                "F&S must have 0 PTcache-L2 misses"
            );
            assert!(
                m.l3_misses_per_page() < 0.054,
                "F&S PTcache-L3 misses/page {:.3} above the paper's bound at {flows} flows",
                m.l3_misses_per_page()
            );
        }
    }
    let iotlb = |f: u32, mo: ProtectionMode| {
        results
            .iter()
            .find(|(fl, m, _)| *fl == f && *m == mo)
            .map(|(_, _, r)| r.iotlb_misses_per_page())
            .expect("swept")
    };
    println!(
        "IOTLB misses/page at 40 flows: linux {:.2} vs F&S {:.2} (paper: ~2x reduction)",
        iotlb(40, ProtectionMode::LinuxStrict),
        iotlb(40, ProtectionMode::FastAndSafe)
    );
    println!("F&S PTcache: L1 = L2 = 0 misses, L3 <= 0.054/page — paper bounds hold");
}
