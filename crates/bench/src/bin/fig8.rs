//! Figure 8: F&S keeps PTcache-L3 locality as the IO working set grows.
//!
//! The Figure 3 ring-size sweep with Fast & Safe added. F&S's contiguous
//! per-descriptor IOVAs bound the PTcache-L3 working set at <=2 entries per
//! descriptor independent of ring size; at ring 2048 the host becomes
//! CPU-bound and F&S shows its only gap vs IOMMU-off (§4.4).

use fns_apps::iperf_config;
use fns_bench::{
    check_safety, print_locality_row, print_micro_row, runner, HEADLINE_MODES, MEASURE_NS,
};
use fns_core::ProtectionMode;

fn main() {
    println!("=== Figure 8: F&S vs Linux strict vs IOMMU off, ring-size sweep ===");
    let mut csv = fns_bench::CsvSink::create("fig8");
    let results = runner().run_grid(&[256u32, 512, 1024, 2048], &HEADLINE_MODES, |ring, mode| {
        let mut cfg = iperf_config(mode, 5, ring);
        cfg.measure = MEASURE_NS;
        cfg
    });
    for (ring, mode, m) in &results {
        check_safety(*mode, m);
        print_micro_row(&format!("ring={ring}"), *mode, m);
        fns_bench::csv_micro_row(&mut csv, "ring", *ring as u64, *mode, m);
    }
    println!("--- panel (e): IOVA allocation locality ---");
    for (ring, mode, m) in &results {
        if *mode != ProtectionMode::IommuOff {
            print_locality_row(&format!("ring={ring}"), *mode, m);
        }
    }
    for (ring, mode, m) in &results {
        if *mode == ProtectionMode::FastAndSafe {
            assert!(
                m.l3_misses_per_page() < 0.054,
                "F&S PTcache-L3 misses/page {:.3} above the paper's bound at ring {ring}",
                m.l3_misses_per_page()
            );
            assert!(
                m.locality_mean() < 2.0,
                "F&S locality must stay within the per-descriptor bound"
            );
        }
    }
    println!("F&S PTcache-L3 misses stay <= 0.054/page at every ring size (paper: <= 0.053)");
}
