//! Profiling companion to `perf_smoke`: pins ONE figure-shaped sweep in a
//! tight sequential loop so a sampling profiler (`gprofng collect app`,
//! `perf record`) sees steady-state simulator cost instead of basket
//! setup, and reports the construction-vs-event-loop wall split that
//! whole-basket numbers hide.
//!
//! Usage: `perf_profile [fig2|fig7|fig8|fig11a] [iterations]`
//! (defaults: fig2, 10 iterations)

use std::time::Instant;

use fns_apps::{iperf_config, redis_config};
use fns_core::{HostSim, ProtectionMode, RunArena, SimConfig};

/// Same shortened windows as `perf_smoke` so profiles match the benchmark.
const SMOKE_WARMUP_NS: u64 = 5_000_000;
const SMOKE_MEASURE_NS: u64 = 10_000_000;

fn smoke(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup = SMOKE_WARMUP_NS;
    cfg.measure = SMOKE_MEASURE_NS;
    cfg
}

/// One figure's config list, shaped exactly like `perf_smoke`'s basket.
fn figure(name: &str) -> Vec<SimConfig> {
    let headline = [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::FastAndSafe,
    ];
    let mut configs = Vec::new();
    match name {
        "fig2" => {
            for flows in [5u32, 10, 20, 40] {
                for mode in [ProtectionMode::IommuOff, ProtectionMode::LinuxStrict] {
                    configs.push(smoke(iperf_config(mode, flows, 256)));
                }
            }
        }
        "fig7" => {
            for flows in [5u32, 10, 20, 40] {
                for mode in headline {
                    configs.push(smoke(iperf_config(mode, flows, 256)));
                }
            }
        }
        "fig8" => {
            for ring in [256u32, 512, 1024, 2048] {
                for mode in headline {
                    configs.push(smoke(iperf_config(mode, 5, ring)));
                }
            }
        }
        "fig11a" => {
            for value in [4u64 << 10, 8 << 10, 32 << 10, 128 << 10] {
                for mode in headline {
                    configs.push(smoke(redis_config(mode, value)));
                }
            }
        }
        other => panic!("unknown figure {other:?} (want fig2|fig7|fig8|fig11a)"),
    }
    configs
}

fn main() {
    let mut args = std::env::args().skip(1);
    let fig = args.next().unwrap_or_else(|| "fig2".into());
    let iters: u32 = args.next().and_then(|v| v.parse().ok()).unwrap_or(10);
    let configs = figure(&fig);

    let mut arena = RunArena::new();
    let mut init_ns: u128 = 0;
    let mut loop_ns: u128 = 0;
    let mut events: u64 = 0;
    let mut translations: u64 = 0;
    for _ in 0..iters {
        for cfg in &configs {
            let t = Instant::now();
            let sim = HostSim::new_in(*cfg, &mut arena);
            init_ns += t.elapsed().as_nanos();
            let t = Instant::now();
            let m = sim.run_salvaging(&mut arena);
            loop_ns += t.elapsed().as_nanos();
            events += m.events_processed;
            translations += m.iommu.translations;
        }
    }
    let total = init_ns + loop_ns;
    println!(
        "{fig}: {iters} x {} runs   init {:>8.2} ms ({:>4.1}%)   event loop {:>8.2} ms ({:>4.1}%)",
        configs.len(),
        init_ns as f64 / 1e6,
        100.0 * init_ns as f64 / total as f64,
        loop_ns as f64 / 1e6,
        100.0 * loop_ns as f64 / total as f64,
    );
    println!(
        "   {:>7.2} ns/event overall   {:>7.2} ns/event loop-only   {:>7.2} ns/translation",
        total as f64 / events.max(1) as f64,
        loop_ns as f64 / events.max(1) as f64,
        total as f64 / translations.max(1) as f64,
    );
}
