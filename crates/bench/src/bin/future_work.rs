//! Extension: F&S + hugepages with strict safety (the paper's §5 proposal).
//!
//! The paper closes by suggesting hugepages as a *complementary* direction:
//! F&S cuts the cost of each IOTLB miss but not the miss count; hugepages
//! cut the count through reach. `FnsHugeStrict` implements the combination
//! with the strict safety property intact — Rx descriptors grow to 2 MB and
//! are backed by a single huge mapping, unmapped and invalidated as one
//! unit per descriptor.
//!
//! The §4.4 scenarios where plain F&S shows a residual gap (reply-heavy
//! small-value Redis; high-flow-count IOTLB contention) are exactly where
//! the combination should help.

use fns_apps::{iperf_config, redis_config};
use fns_bench::{check_safety, runner, MEASURE_NS};
use fns_core::ProtectionMode;

const MODES: [ProtectionMode; 3] = [
    ProtectionMode::IommuOff,
    ProtectionMode::FastAndSafe,
    ProtectionMode::FnsHugeStrict,
];

fn main() {
    println!("=== Future work (§5): F&S + strict hugepages ===");
    // One combined submission: the iperf grid points are flows=5/40, the
    // redis point rides along as flows=0 so the whole basket shares the pool.
    let results = runner().run_grid(&[5u32, 40, 0], &MODES, |flows, mode| {
        let mut cfg = if flows == 0 {
            redis_config(mode, 4 << 10)
        } else {
            iperf_config(mode, flows, 256)
        };
        cfg.measure = MEASURE_NS;
        cfg
    });
    println!("--- iperf flow sweep: IOTLB misses per page ---");
    for (flows, mode, m) in &results {
        if *flows == 0 {
            continue;
        }
        check_safety(*mode, m);
        println!(
            "{:>9} {:>14}  rx {:6.1} Gbps  iotlb/pg {:5.3}  M {:5.2}  strict={}",
            format!("flows={flows}"),
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
            m.memory_reads_per_page(),
            mode.is_strict_safe(),
        );
    }
    println!("--- Redis 4 KB values (the paper's §4.4 residual-gap case) ---");
    for (flows, mode, m) in &results {
        if *flows != 0 {
            continue;
        }
        check_safety(*mode, m);
        println!(
            "{:>9} {:>14}  set-throughput {:6.1} Gbps  iotlb/pg {:5.3}",
            "4K",
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
        );
    }
    println!(
        "\nexpectation: FnsHugeStrict cuts IOTLB misses/page by ~5-6x vs F&S\n\
         (one miss per 512 pages of Rx data instead of one per page) while\n\
         keeping the strict unmap-per-descriptor safety property."
    );
}
