//! Time-series gauge probes.
//!
//! A [`Sampler`] snapshots integer gauges at a fixed sim-time interval
//! into a bounded [`SampleSet`]. All fields are integers (the rolling hit
//! rate is basis points computed with integer division), so two runs of
//! the same configuration produce bitwise-equal series regardless of
//! platform or worker count.

use fns_sim::time::Nanos;

/// Probe configuration, embedded in `SimConfig` (hence `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Sampling interval in sim nanoseconds; 0 disables probing.
    pub interval_ns: u64,
    /// Maximum retained samples (earliest-kept; further samples stop).
    pub max_samples: u32,
}

impl ProbeConfig {
    /// Probing disabled.
    pub fn off() -> Self {
        Self {
            interval_ns: 0,
            max_samples: 4096,
        }
    }

    /// Probing every `interval_ns` sim nanoseconds.
    pub fn every(interval_ns: u64) -> Self {
        Self {
            interval_ns,
            max_samples: 4096,
        }
    }

    /// Whether probing is enabled.
    pub fn enabled(&self) -> bool {
        self.interval_ns > 0 && self.max_samples > 0
    }
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// One gauge snapshot. Every field is an integer for determinism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Sim time of the snapshot.
    pub at: Nanos,
    /// IOTLB entries currently resident.
    pub iotlb_occupancy: u32,
    /// IOTLB hit rate over the last interval, in basis points (0..=10000).
    pub iotlb_hit_rate_bp: u32,
    /// PTcache L1 (leaf) entries resident.
    pub ptcache_l1: u32,
    /// PTcache L2 entries resident.
    pub ptcache_l2: u32,
    /// PTcache L3 entries resident.
    pub ptcache_l3: u32,
    /// Deferred-invalidation epochs pending in the driver.
    pub inv_queue_depth: u32,
    /// Total occupied RX descriptor-ring slots across cores.
    pub ring_occupancy: u32,
    /// Bytes buffered in the NIC internal buffer.
    pub nic_buffer_bytes: u64,
    /// Bytes queued in the switch (to-DUT) queue.
    pub switch_queue_bytes: u64,
    /// Outstanding IOVA-mapped bytes (live allocations × page size).
    pub iova_live_bytes: u64,
    /// Free interior spans in the IOVA allocator (fragmentation gauge:
    /// more spans at the same live footprint means a more shattered
    /// address space).
    pub iova_free_spans: u64,
    /// Largest contiguous free run in the IOVA allocator, in pages.
    pub iova_largest_free_run: u64,
}

impl Sample {
    /// Serializes every gauge field for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.at);
        w.u32(self.iotlb_occupancy);
        w.u32(self.iotlb_hit_rate_bp);
        w.u32(self.ptcache_l1);
        w.u32(self.ptcache_l2);
        w.u32(self.ptcache_l3);
        w.u32(self.inv_queue_depth);
        w.u32(self.ring_occupancy);
        w.u64(self.nic_buffer_bytes);
        w.u64(self.switch_queue_bytes);
        w.u64(self.iova_live_bytes);
        w.u64(self.iova_free_spans);
        w.u64(self.iova_largest_free_run);
    }

    /// Rebuilds a sample captured by [`Sample::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        Ok(Self {
            at: r.u64()?,
            iotlb_occupancy: r.u32()?,
            iotlb_hit_rate_bp: r.u32()?,
            ptcache_l1: r.u32()?,
            ptcache_l2: r.u32()?,
            ptcache_l3: r.u32()?,
            inv_queue_depth: r.u32()?,
            ring_occupancy: r.u32()?,
            nic_buffer_bytes: r.u64()?,
            switch_queue_bytes: r.u64()?,
            iova_live_bytes: r.u64()?,
            iova_free_spans: r.u64()?,
            iova_largest_free_run: r.u64()?,
        })
    }
}

/// The collected series, attached to `RunMetrics`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleSet {
    /// Interval the series was sampled at (0 when probing was off).
    pub interval_ns: u64,
    /// Snapshots in chronological order.
    pub samples: Vec<Sample>,
}

impl SampleSet {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Accumulates [`Sample`]s and the rolling-rate state between them.
#[derive(Debug)]
pub struct Sampler {
    cfg: ProbeConfig,
    prev_translations: u64,
    prev_hits: u64,
    set: SampleSet,
}

impl Sampler {
    /// A sampler for `cfg`; inert when probing is disabled.
    pub fn new(cfg: ProbeConfig) -> Self {
        Self {
            cfg,
            prev_translations: 0,
            prev_hits: 0,
            set: SampleSet {
                interval_ns: if cfg.enabled() { cfg.interval_ns } else { 0 },
                samples: Vec::new(),
            },
        }
    }

    /// Whether this sampler records anything.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The sampling interval.
    pub fn interval_ns(&self) -> u64 {
        self.cfg.interval_ns
    }

    /// IOTLB hit rate since the previous call, in basis points. Feeds the
    /// cumulative `translations`/`hits` counters through an internal
    /// high-water mark so each interval reports its own delta.
    pub fn rolling_hit_rate_bp(&mut self, translations: u64, hits: u64) -> u32 {
        let dt = translations.saturating_sub(self.prev_translations);
        let dh = hits.saturating_sub(self.prev_hits);
        self.prev_translations = translations;
        self.prev_hits = hits;
        (dh * 10_000).checked_div(dt).unwrap_or(0) as u32
    }

    /// Appends a sample; returns `false` (and drops it) once the series
    /// has reached `max_samples`.
    pub fn push(&mut self, sample: Sample) -> bool {
        if !self.cfg.enabled() || self.set.samples.len() >= self.cfg.max_samples as usize {
            return false;
        }
        self.set.samples.push(sample);
        true
    }

    /// Consumes the sampler, yielding the collected series.
    pub fn take(self) -> SampleSet {
        self.set
    }

    /// Serializes the sampler (config, rolling-rate state, collected
    /// series) for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.cfg.interval_ns);
        w.u32(self.cfg.max_samples);
        w.u64(self.prev_translations);
        w.u64(self.prev_hits);
        w.u64(self.set.interval_ns);
        w.seq(self.set.samples.len());
        for s in &self.set.samples {
            s.snap(w);
        }
    }

    /// Rebuilds a sampler captured by [`Sampler::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let cfg = ProbeConfig {
            interval_ns: r.u64()?,
            max_samples: r.u32()?,
        };
        let prev_translations = r.u64()?;
        let prev_hits = r.u64()?;
        let interval_ns = r.u64()?;
        let n = r.seq()?;
        let mut samples = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            samples.push(Sample::unsnap(r)?);
        }
        Ok(Self {
            cfg,
            prev_translations,
            prev_hits,
            set: SampleSet {
                interval_ns,
                samples,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sampler_rejects_pushes() {
        let mut s = Sampler::new(ProbeConfig::off());
        assert!(!s.enabled());
        assert!(!s.push(Sample::default()));
        assert!(s.take().is_empty());
    }

    #[test]
    fn max_samples_caps_the_series() {
        let mut s = Sampler::new(ProbeConfig {
            interval_ns: 100,
            max_samples: 2,
        });
        assert!(s.push(Sample {
            at: 100,
            ..Sample::default()
        }));
        assert!(s.push(Sample {
            at: 200,
            ..Sample::default()
        }));
        assert!(!s.push(Sample {
            at: 300,
            ..Sample::default()
        }));
        let set = s.take();
        assert_eq!(set.len(), 2);
        assert_eq!(set.interval_ns, 100);
        assert_eq!(set.samples[1].at, 200);
    }

    #[test]
    fn rolling_hit_rate_uses_interval_deltas() {
        let mut s = Sampler::new(ProbeConfig::every(1000));
        // First interval: 80 hits / 100 translations.
        assert_eq!(s.rolling_hit_rate_bp(100, 80), 8_000);
        // Second interval: +100 translations, +100 hits => 100%.
        assert_eq!(s.rolling_hit_rate_bp(200, 180), 10_000);
        // Idle interval: no new translations.
        assert_eq!(s.rolling_hit_rate_bp(200, 180), 0);
    }
}
