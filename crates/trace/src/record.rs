//! Bounded, sim-time-stamped event recording.
//!
//! The recorder is a fixed-capacity ring that keeps the *latest* events:
//! once full, each push overwrites the oldest record and bumps a `dropped`
//! counter, so a long run degrades to "the most recent N events" instead
//! of unbounded memory growth. Every record carries the sim-time [`Nanos`]
//! at which it was emitted; nothing in a record depends on wall clock,
//! thread identity, or allocation addresses, which is what lets a drained
//! [`Trace`] be compared byte-for-byte across `--jobs` counts.
//!
//! Instrumentation sites hold a [`TraceHandle`]. The disabled variant is a
//! unit enum discriminant — `wants()`/`emit()` on it compile to a single
//! branch, so a build with tracing off pays no measurable cost.

use std::cell::RefCell;
use std::rc::Rc;

use fns_sim::time::Nanos;

/// Default ring capacity when tracing is enabled without an explicit size.
pub const DEFAULT_TRACE_CAPACITY: u32 = 65_536;

/// Event categories, usable as a bitmask for run-start filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceCategory {
    /// DMA map / unmap operations in the driver.
    Map = 1,
    /// IOTLB and PTcache activity on the device translation path.
    Translate = 2,
    /// Invalidation-queue enqueue / drain / flush / fallback.
    Invalidation = 4,
    /// NIC descriptor-ring post / complete / overrun.
    Ring = 8,
    /// Fault-plane injections and recoveries.
    Fault = 16,
    /// Safety-oracle audit findings (see `fns-oracle`).
    Audit = 32,
}

impl TraceCategory {
    /// All categories, in mask-bit order.
    pub const ALL: [TraceCategory; 6] = [
        TraceCategory::Map,
        TraceCategory::Translate,
        TraceCategory::Invalidation,
        TraceCategory::Ring,
        TraceCategory::Fault,
        TraceCategory::Audit,
    ];

    /// Mask with every category enabled.
    pub const ALL_MASK: u8 = 63;

    /// This category's mask bit.
    pub fn bit(self) -> u8 {
        self as u8
    }

    /// Stable lowercase name (used by `--trace-cats` and Chrome `cat`).
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::Map => "map",
            TraceCategory::Translate => "translate",
            TraceCategory::Invalidation => "invalidation",
            TraceCategory::Ring => "ring",
            TraceCategory::Fault => "fault",
            TraceCategory::Audit => "audit",
        }
    }

    /// Parses a comma-separated category list (e.g. `"map,ring"`) into a
    /// mask. `"all"` selects everything. Returns `None` on an unknown name.
    pub fn parse_mask(list: &str) -> Option<u8> {
        let mut mask = 0u8;
        for part in list.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part == "all" {
                mask |= Self::ALL_MASK;
                continue;
            }
            let cat = Self::ALL.iter().find(|c| c.name() == part)?;
            mask |= cat.bit();
        }
        Some(mask)
    }
}

/// Run-start trace configuration, embedded in `SimConfig` (hence `Copy`).
/// Output paths stay on the CLI side; the simulation only knows *what* to
/// record, never *where* it goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Bitmask of [`TraceCategory`] values to record; 0 disables tracing.
    pub mask: u8,
    /// Ring capacity in events (latest-kept once exceeded).
    pub capacity: u32,
}

impl TraceConfig {
    /// Tracing disabled.
    pub fn off() -> Self {
        Self {
            mask: 0,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// All categories at the default capacity.
    pub fn all() -> Self {
        Self {
            mask: TraceCategory::ALL_MASK,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Whether any category is selected.
    pub fn enabled(&self) -> bool {
        self.mask != 0
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Compact event payloads. Each variant is a few machine words; the whole
/// struct (with its timestamp) stays `Copy` so pushes never allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceData {
    /// Pages mapped through the IOMMU.
    Map { pages: u32 },
    /// Pages unmapped.
    Unmap { pages: u32 },
    /// Device translation hit the IOTLB.
    IotlbHit,
    /// IOTLB miss; `reads` memory accesses performed by the walk.
    IotlbMiss { reads: u32 },
    /// Translation faulted (stale/absent mapping under fault injection).
    TranslationFault,
    /// PTcache fill at `level` (1 = leaf); `evicted` if it displaced an entry.
    PtcacheFill { level: u8, evicted: bool },
    /// Deferred PTcache wipe applied, reclaiming `entries` cached entries.
    PtcacheReclaim { entries: u32 },
    /// Invalidation batch submitted to the queue.
    InvEnqueue { entries: u32, cost_ns: u64 },
    /// Deferred-invalidation epochs drained before device access.
    InvDrain { epochs: u32 },
    /// Full invalidate-all flush (deferred mode high-water).
    InvFlush { cost_ns: u64 },
    /// Batched invalidation fell back to per-page after `retries` retries.
    InvBatchFallback { retries: u32 },
    /// RX descriptor posted to a ring on `core`.
    RingPost { core: u8 },
    /// Descriptor completed (DMA done) on `core`.
    RingComplete { core: u8 },
    /// RX ring had no free slot on `core`; packet dropped.
    RingOverrun { core: u8 },
    /// Fault plane fired `kind` (index into `FaultKind::ALL`) at `visit`.
    FaultInject { kind: u8, visit: u64 },
    /// A recovery path completed for fault `kind`.
    FaultRecover { kind: u8 },
    /// The safety oracle recorded a violation of `invariant` (index into
    /// `fns_oracle::Invariant::ALL`) anchored on `pfn`.
    AuditViolation { invariant: u8, pfn: u64 },
}

impl TraceData {
    /// The category this event belongs to (drives mask filtering).
    pub fn category(self) -> TraceCategory {
        match self {
            TraceData::Map { .. } | TraceData::Unmap { .. } => TraceCategory::Map,
            TraceData::IotlbHit
            | TraceData::IotlbMiss { .. }
            | TraceData::TranslationFault
            | TraceData::PtcacheFill { .. }
            | TraceData::PtcacheReclaim { .. } => TraceCategory::Translate,
            TraceData::InvEnqueue { .. }
            | TraceData::InvDrain { .. }
            | TraceData::InvFlush { .. }
            | TraceData::InvBatchFallback { .. } => TraceCategory::Invalidation,
            TraceData::RingPost { .. }
            | TraceData::RingComplete { .. }
            | TraceData::RingOverrun { .. } => TraceCategory::Ring,
            TraceData::FaultInject { .. } | TraceData::FaultRecover { .. } => TraceCategory::Fault,
            TraceData::AuditViolation { .. } => TraceCategory::Audit,
        }
    }

    /// Serializes the payload as a tag byte plus fields (checkpointing).
    pub fn snap(self, w: &mut fns_snap::SnapWriter) {
        match self {
            TraceData::Map { pages } => {
                w.u8(0);
                w.u32(pages);
            }
            TraceData::Unmap { pages } => {
                w.u8(1);
                w.u32(pages);
            }
            TraceData::IotlbHit => w.u8(2),
            TraceData::IotlbMiss { reads } => {
                w.u8(3);
                w.u32(reads);
            }
            TraceData::TranslationFault => w.u8(4),
            TraceData::PtcacheFill { level, evicted } => {
                w.u8(5);
                w.u8(level);
                w.bool(evicted);
            }
            TraceData::PtcacheReclaim { entries } => {
                w.u8(6);
                w.u32(entries);
            }
            TraceData::InvEnqueue { entries, cost_ns } => {
                w.u8(7);
                w.u32(entries);
                w.u64(cost_ns);
            }
            TraceData::InvDrain { epochs } => {
                w.u8(8);
                w.u32(epochs);
            }
            TraceData::InvFlush { cost_ns } => {
                w.u8(9);
                w.u64(cost_ns);
            }
            TraceData::InvBatchFallback { retries } => {
                w.u8(10);
                w.u32(retries);
            }
            TraceData::RingPost { core } => {
                w.u8(11);
                w.u8(core);
            }
            TraceData::RingComplete { core } => {
                w.u8(12);
                w.u8(core);
            }
            TraceData::RingOverrun { core } => {
                w.u8(13);
                w.u8(core);
            }
            TraceData::FaultInject { kind, visit } => {
                w.u8(14);
                w.u8(kind);
                w.u64(visit);
            }
            TraceData::FaultRecover { kind } => {
                w.u8(15);
                w.u8(kind);
            }
            TraceData::AuditViolation { invariant, pfn } => {
                w.u8(16);
                w.u8(invariant);
                w.u64(pfn);
            }
        }
    }

    /// Rebuilds a payload captured by [`TraceData::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let tag = r.u8()?;
        Ok(match tag {
            0 => TraceData::Map { pages: r.u32()? },
            1 => TraceData::Unmap { pages: r.u32()? },
            2 => TraceData::IotlbHit,
            3 => TraceData::IotlbMiss { reads: r.u32()? },
            4 => TraceData::TranslationFault,
            5 => TraceData::PtcacheFill {
                level: r.u8()?,
                evicted: r.bool()?,
            },
            6 => TraceData::PtcacheReclaim { entries: r.u32()? },
            7 => TraceData::InvEnqueue {
                entries: r.u32()?,
                cost_ns: r.u64()?,
            },
            8 => TraceData::InvDrain { epochs: r.u32()? },
            9 => TraceData::InvFlush { cost_ns: r.u64()? },
            10 => TraceData::InvBatchFallback { retries: r.u32()? },
            11 => TraceData::RingPost { core: r.u8()? },
            12 => TraceData::RingComplete { core: r.u8()? },
            13 => TraceData::RingOverrun { core: r.u8()? },
            14 => TraceData::FaultInject {
                kind: r.u8()?,
                visit: r.u64()?,
            },
            15 => TraceData::FaultRecover { kind: r.u8()? },
            16 => TraceData::AuditViolation {
                invariant: r.u8()?,
                pfn: r.u64()?,
            },
            t => {
                return Err(fns_snap::SnapError::BadTag {
                    what: "trace event",
                    tag: t as u64,
                })
            }
        })
    }

    /// Stable snake_case event name (Chrome `name` field).
    pub fn name(self) -> &'static str {
        match self {
            TraceData::Map { .. } => "map",
            TraceData::Unmap { .. } => "unmap",
            TraceData::IotlbHit => "iotlb_hit",
            TraceData::IotlbMiss { .. } => "iotlb_miss",
            TraceData::TranslationFault => "translation_fault",
            TraceData::PtcacheFill { .. } => "ptcache_fill",
            TraceData::PtcacheReclaim { .. } => "ptcache_reclaim",
            TraceData::InvEnqueue { .. } => "inv_enqueue",
            TraceData::InvDrain { .. } => "inv_drain",
            TraceData::InvFlush { .. } => "inv_flush",
            TraceData::InvBatchFallback { .. } => "inv_batch_fallback",
            TraceData::RingPost { .. } => "ring_post",
            TraceData::RingComplete { .. } => "ring_complete",
            TraceData::RingOverrun { .. } => "ring_overrun",
            TraceData::FaultInject { .. } => "fault_inject",
            TraceData::FaultRecover { .. } => "fault_recover",
            TraceData::AuditViolation { .. } => "audit_violation",
        }
    }
}

/// A recorded event: sim-time stamp plus payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time at emission.
    pub at: Nanos,
    /// The event payload.
    pub data: TraceData,
}

/// The drained, chronological result of a traced run. Attached to
/// `RunMetrics`, so it participates in golden-determinism equality.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in chronological order (oldest kept first).
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

impl Trace {
    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Stable k-way chronological merge of per-shard traces. Within one
    /// timestamp, events from an earlier part precede events from a later
    /// part (and each part's own internal order is preserved), so the
    /// result is a pure function of the inputs regardless of how many
    /// worker threads produced them. Drop counts sum.
    pub fn merge_chrono(parts: Vec<Trace>) -> Trace {
        let dropped = parts.iter().map(|p| p.dropped).sum();
        let total = parts.iter().map(|p| p.events.len()).sum();
        let mut events = Vec::with_capacity(total);
        let mut cursors: Vec<std::slice::Iter<'_, TraceEvent>> =
            parts.iter().map(|p| p.events.iter()).collect();
        let mut heads: Vec<Option<&TraceEvent>> = cursors.iter_mut().map(|c| c.next()).collect();
        loop {
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(ev) = head {
                    // Strict `<` keeps the tie-break on part index: the
                    // earliest part wins equal timestamps.
                    match best {
                        Some(b) if heads[b].unwrap().at <= ev.at => {}
                        _ => best = Some(i),
                    }
                }
            }
            let Some(i) = best else { break };
            events.push(*heads[i].take().unwrap());
            heads[i] = cursors[i].next();
        }
        Trace { events, dropped }
    }
}

/// The mutable ring behind a recording [`TraceHandle`].
#[derive(Debug)]
pub struct Recorder {
    now: Nanos,
    capacity: usize,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Recorder {
    fn new(capacity: usize) -> Self {
        Self {
            now: 0,
            capacity,
            head: 0,
            events: Vec::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    fn push(&mut self, data: TraceData) {
        let ev = TraceEvent { at: self.now, data };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Trace {
        // Rotate so the oldest retained event comes first.
        let mut events = std::mem::take(&mut self.events);
        events.rotate_left(self.head);
        let dropped = self.dropped;
        self.head = 0;
        self.dropped = 0;
        Trace { events, dropped }
    }

    fn view(&self) -> Trace {
        let mut events = self.events.clone();
        events.rotate_left(self.head);
        Trace {
            events,
            dropped: self.dropped,
        }
    }

    fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.now);
        w.usize(self.capacity);
        w.usize(self.head);
        w.u64(self.dropped);
        w.seq(self.events.len());
        for ev in &self.events {
            w.u64(ev.at);
            ev.data.snap(w);
        }
    }

    fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let now = r.u64()?;
        let capacity = r.usize()?;
        let head = r.usize()?;
        let dropped = r.u64()?;
        let n = r.seq()?;
        let mut events = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let at = r.u64()?;
            let data = TraceData::unsnap(r)?;
            events.push(TraceEvent { at, data });
        }
        if capacity == 0 || head >= capacity || events.len() > capacity {
            return Err(fns_snap::SnapError::BadTag {
                what: "trace ring geometry",
                tag: head as u64,
            });
        }
        Ok(Self {
            now,
            capacity,
            head,
            events,
            dropped,
        })
    }
}

/// Enum-dispatch recorder handle held by every instrumented component.
///
/// `Off` (the default) makes every call a single discriminant branch.
/// `On` shares one [`Recorder`] ring via `Rc<RefCell<..>>` — each
/// simulation is constructed and run on a single worker thread, and the
/// drained [`Trace`] handed across threads is plain owned data.
#[derive(Debug, Clone, Default)]
pub enum TraceHandle {
    /// No recording; all operations are no-ops.
    #[default]
    Off,
    /// Recording into a shared ring, filtered by `mask`.
    On {
        /// Enabled-category bitmask.
        mask: u8,
        /// The shared ring.
        rec: Rc<RefCell<Recorder>>,
        /// Optional flight-recorder crash ring: every emitted event lands
        /// here *unconditionally* (no mask filter), so the last N events
        /// before an abort are always available. An armed flight makes
        /// [`TraceHandle::wants`] answer true for every category, so
        /// sites that guard event construction behind it construct the
        /// event for the crash ring even when its category is masked out
        /// of the main ring.
        flight: Option<Rc<RefCell<Recorder>>>,
    },
}

impl TraceHandle {
    /// A recording handle over a fresh ring of `capacity` events.
    pub fn recording(mask: u8, capacity: usize) -> Self {
        Self::recording_with_flight(mask, capacity, 0)
    }

    /// A recording handle with an additional flight-recorder crash ring of
    /// `flight_capacity` events (0 disables it).
    pub fn recording_with_flight(mask: u8, capacity: usize, flight_capacity: usize) -> Self {
        TraceHandle::On {
            mask,
            rec: Rc::new(RefCell::new(Recorder::new(capacity.max(1)))),
            flight: (flight_capacity > 0)
                .then(|| Rc::new(RefCell::new(Recorder::new(flight_capacity)))),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_on(&self) -> bool {
        matches!(self, TraceHandle::On { .. })
    }

    /// Whether events of `cat` would be recorded — into the main ring
    /// (mask bit set) or the flight-recorder crash ring. An armed flight
    /// ring forces every category *except* [`TraceCategory::Translate`]:
    /// per-translation microevents (IOTLB hit/miss, PTcache fills) would
    /// both flood the crash window and slow the hot path; ask for them
    /// explicitly via the mask when a crash dump needs them. Use this to
    /// guard event-construction work that is not free (e.g. cache-state
    /// diffs).
    #[inline]
    pub fn wants(&self, cat: TraceCategory) -> bool {
        match self {
            TraceHandle::Off => false,
            TraceHandle::On { mask, flight, .. } => {
                mask & cat.bit() != 0 || (flight.is_some() && cat != TraceCategory::Translate)
            }
        }
    }

    /// Advances the recorder clock; events emitted after this call are
    /// stamped `now`. Called once per dispatched simulation event.
    #[inline]
    pub fn set_now(&self, now: Nanos) {
        if let TraceHandle::On { rec, flight, .. } = self {
            rec.borrow_mut().now = now;
            if let Some(f) = flight {
                f.borrow_mut().now = now;
            }
        }
    }

    /// Records `data` if its category is enabled; the flight ring (when
    /// armed) receives every emitted event regardless of mask.
    #[inline]
    pub fn emit(&self, data: TraceData) {
        if let TraceHandle::On { mask, rec, flight } = self {
            if mask & data.category().bit() != 0 {
                rec.borrow_mut().push(data);
            }
            if let Some(f) = flight {
                f.borrow_mut().push(data);
            }
        }
    }

    /// Whether a flight-recorder crash ring is armed.
    pub fn has_flight(&self) -> bool {
        matches!(
            self,
            TraceHandle::On {
                flight: Some(_),
                ..
            }
        )
    }

    /// Drains the ring into a chronological [`Trace`]. On a disabled
    /// handle this returns an empty trace.
    pub fn drain(&self) -> Trace {
        match self {
            TraceHandle::Off => Trace::default(),
            TraceHandle::On { rec, .. } => rec.borrow_mut().drain(),
        }
    }

    /// Drains the flight ring (empty when not armed).
    pub fn drain_flight(&self) -> Trace {
        match self {
            TraceHandle::On {
                flight: Some(f), ..
            } => f.borrow_mut().drain(),
            _ => Trace::default(),
        }
    }

    /// Non-consuming snapshot of the flight ring for mid-run crash dumps
    /// (empty when not armed).
    pub fn flight_view(&self) -> Trace {
        match self {
            TraceHandle::On {
                flight: Some(f), ..
            } => f.borrow().view(),
            _ => Trace::default(),
        }
    }

    /// Serializes the handle and the full ring state (verbatim: slot order,
    /// head, drop count) for checkpointing. A restored ring continues to
    /// overwrite and drain exactly as the original would have.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        match self {
            TraceHandle::Off => w.u8(0),
            TraceHandle::On { mask, rec, flight } => {
                w.u8(1);
                w.u8(*mask);
                rec.borrow().snap(w);
                w.opt(flight, |w, f| f.borrow().snap(w));
            }
        }
    }

    /// Rebuilds a handle captured by [`TraceHandle::snap`]. The returned
    /// handle owns a fresh ring; clone it into every component that held
    /// the original.
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        match r.u8()? {
            0 => Ok(TraceHandle::Off),
            1 => {
                let mask = r.u8()?;
                let rec = Recorder::unsnap(r)?;
                let flight = r.opt(Recorder::unsnap)?;
                Ok(TraceHandle::On {
                    mask,
                    rec: Rc::new(RefCell::new(rec)),
                    flight: flight.map(|f| Rc::new(RefCell::new(f))),
                })
            }
            t => Err(fns_snap::SnapError::BadTag {
                what: "trace handle",
                tag: t as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Nanos, pages: u32) -> TraceEvent {
        TraceEvent {
            at,
            data: TraceData::Map { pages },
        }
    }

    #[test]
    fn ring_keeps_latest_and_counts_drops() {
        let h = TraceHandle::recording(TraceCategory::ALL_MASK, 3);
        for i in 0..5u32 {
            h.set_now(i as Nanos * 10);
            h.emit(TraceData::Map { pages: i });
        }
        let t = h.drain();
        assert_eq!(t.dropped, 2);
        assert_eq!(t.events, vec![ev(20, 2), ev(30, 3), ev(40, 4)]);
    }

    #[test]
    fn drain_without_wrap_preserves_order() {
        let h = TraceHandle::recording(TraceCategory::ALL_MASK, 8);
        h.set_now(5);
        h.emit(TraceData::IotlbHit);
        h.set_now(7);
        h.emit(TraceData::Unmap { pages: 1 });
        let t = h.drain();
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].at, 5);
        assert_eq!(t.events[1].at, 7);
    }

    #[test]
    fn category_mask_filters_events() {
        let h = TraceHandle::recording(TraceCategory::Ring.bit(), 16);
        h.emit(TraceData::Map { pages: 1 });
        h.emit(TraceData::RingPost { core: 0 });
        h.emit(TraceData::IotlbHit);
        h.emit(TraceData::RingOverrun { core: 1 });
        let t = h.drain();
        assert_eq!(t.events.len(), 2);
        assert!(t
            .events
            .iter()
            .all(|e| e.data.category() == TraceCategory::Ring));
        assert!(h.wants(TraceCategory::Ring));
        assert!(!h.wants(TraceCategory::Map));
    }

    #[test]
    fn off_handle_is_inert() {
        let h = TraceHandle::default();
        assert!(!h.is_on());
        assert!(!h.wants(TraceCategory::Fault));
        h.set_now(100);
        h.emit(TraceData::IotlbHit);
        assert!(h.drain().is_empty());
    }

    #[test]
    fn parse_mask_understands_lists_and_all() {
        assert_eq!(TraceCategory::parse_mask("all"), Some(63));
        assert_eq!(TraceCategory::parse_mask("audit"), Some(32));
        assert_eq!(
            TraceCategory::parse_mask("map,ring"),
            Some(TraceCategory::Map.bit() | TraceCategory::Ring.bit())
        );
        assert_eq!(TraceCategory::parse_mask("fault"), Some(16));
        assert_eq!(TraceCategory::parse_mask("bogus"), None);
        assert_eq!(TraceCategory::parse_mask(""), Some(0));
    }

    #[test]
    fn flight_ring_ignores_the_mask_and_keeps_latest() {
        let h = TraceHandle::recording_with_flight(TraceCategory::Ring.bit(), 16, 2);
        assert!(h.has_flight());
        h.set_now(1);
        h.emit(TraceData::Map { pages: 4 });
        h.set_now(2);
        h.emit(TraceData::RingPost { core: 0 });
        h.set_now(3);
        h.emit(TraceData::IotlbHit);
        // Main ring saw only the masked-in category.
        let t = h.drain();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].data, TraceData::RingPost { core: 0 });
        // Flight ring saw everything, bounded at 2.
        let f = h.flight_view();
        assert_eq!(f.dropped, 1);
        assert_eq!(f.events.len(), 2);
        assert_eq!(f.events[0].at, 2);
        assert_eq!(f.events[1].data, TraceData::IotlbHit);
        // The view did not consume; drain matches it.
        assert_eq!(h.drain_flight(), f);
    }

    #[test]
    fn flight_ring_survives_snapshot() {
        let h = TraceHandle::recording_with_flight(0, 4, 4);
        h.set_now(9);
        h.emit(TraceData::Unmap { pages: 2 });
        let mut w = fns_snap::SnapWriter::new();
        h.snap(&mut w);
        let bytes = w.finish();
        let mut r = fns_snap::SnapReader::new(&bytes).unwrap();
        let back = TraceHandle::unsnap(&mut r).unwrap();
        r.done().unwrap();
        assert!(back.has_flight());
        assert_eq!(back.flight_view(), h.flight_view());
        assert!(back.drain().is_empty());
        let mut w2 = fns_snap::SnapWriter::new();
        back.snap(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn every_category_round_trips_through_its_name() {
        for cat in TraceCategory::ALL {
            assert_eq!(TraceCategory::parse_mask(cat.name()), Some(cat.bit()));
        }
    }
}
