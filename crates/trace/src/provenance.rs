//! Per-page provenance timelines: the causal history of every tracked
//! IOVA page.
//!
//! The paper's safety argument (§3) is a story about per-page lifecycles —
//! map, DMA, unmap, invalidate, reclaim — but aggregate counters cannot
//! say *which* page missed its invalidation or *when* a translation hit a
//! stale entry. The [`ProvenanceBook`] answers with bounded, deterministic
//! per-page timelines of [`PageEvent`]s (keyed by IOVA pfn, the same
//! coordinate the safety oracle anchors its [`Violation`]s on), so an
//! audit failure can be explained by replaying the page's own timeline
//! instead of re-running the experiment under ddmin.
//!
//! Hot-path design: the recorder itself is a single bounded chronological
//! *journal* of `(pfn, event)` entries — recording is an append (or a
//! ring overwrite once the journal fills), never a per-page table lookup,
//! which keeps a fully-armed run within the observability overhead budget
//! (`perf_smoke` gates it at <10% of the bare event rate). The per-page
//! rings are *materialized* from the journal at dump/explain time, where
//! the page-admission cap (`max_pages`, first-come, focus always
//! admitted) and the per-page ring cap (`per_page`, keep-latest) apply
//! exactly as if they had been enforced eagerly. The only semantic
//! difference from an eager table is the journal's finite window: events
//! older than the last `journal capacity` records are gone (counted in
//! [`ProvenanceDump::window_dropped`]) — except [`InvSkipped`] smoking
//! guns, which are pinned in a side table the moment they happen and
//! survive any amount of churn.
//!
//! Determinism rules: events are stamped with sim-time only, the book
//! consumes no RNG, materialization is keyed through a fixed
//! multiplicative hasher, and every dump is emitted in sorted-pfn order —
//! a provenance-armed run is bit-identical to a bare run modulo the dump
//! itself (`tests/golden_determinism.rs` pins it).
//!
//! [`InvSkipped`]: PageEventKind::InvSkipped
//!
//! [`Violation`]: https://docs.rs/ — `fns_oracle::Violation.pfn == iova.pfn()`

use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::Nanos;

/// Default cap on distinct tracked pages (first-come; the focus page is
/// always admitted).
pub const DEFAULT_PROV_PAGES: u32 = 4096;

/// Default per-page event-ring capacity.
pub const DEFAULT_PROV_EVENTS: u32 = 32;

/// Deterministic multiply-rotate hasher for pfn keys (no per-process
/// seed: provenance iteration and capacity decisions must replay
/// identically).
#[derive(Default, Clone, Copy)]
struct ProvHasher(u64);

impl Hasher for ProvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(23);
    }
}

/// What happened to a page at one point in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageEventKind {
    /// The page was mapped for DMA.
    Map,
    /// The page was unmapped (translations must stop being answerable).
    Unmap,
    /// An invalidation request covering the page was submitted; `detail`
    /// is the whole-run submission ordinal.
    InvSubmit,
    /// A queued PTcache-wipe epoch covering the page retired; `detail` is
    /// the number of requests in the epoch.
    InvComplete,
    /// An invalidation covering the page was *dropped* by a seeded driver
    /// bug (`Sabotage::SkipRangeInvalidation`); `detail` is the skipped
    /// whole-run submission ordinal. This is the event a failure artifact
    /// names when explaining a stale-access violation.
    InvSkipped,
    /// A page-table page covering the page was reclaimed; `detail` is the
    /// reclaimed PT level.
    Reclaim,
    /// A device translation of the page hit the IOTLB.
    TranslateHit,
    /// A device translation of the page missed the IOTLB; `detail` is the
    /// number of page-walk memory reads.
    TranslateMiss,
}

impl PageEventKind {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            PageEventKind::Map => "map",
            PageEventKind::Unmap => "unmap",
            PageEventKind::InvSubmit => "inv-submit",
            PageEventKind::InvComplete => "inv-complete",
            PageEventKind::InvSkipped => "inv-SKIPPED",
            PageEventKind::Reclaim => "pt-reclaim",
            PageEventKind::TranslateHit => "translate-hit",
            PageEventKind::TranslateMiss => "translate-miss",
        }
    }

    fn snap_tag(&self) -> u8 {
        match self {
            PageEventKind::Map => 0,
            PageEventKind::Unmap => 1,
            PageEventKind::InvSubmit => 2,
            PageEventKind::InvComplete => 3,
            PageEventKind::InvSkipped => 4,
            PageEventKind::Reclaim => 5,
            PageEventKind::TranslateHit => 6,
            PageEventKind::TranslateMiss => 7,
        }
    }

    fn unsnap_tag(tag: u8) -> Result<Self, SnapError> {
        Ok(match tag {
            0 => PageEventKind::Map,
            1 => PageEventKind::Unmap,
            2 => PageEventKind::InvSubmit,
            3 => PageEventKind::InvComplete,
            4 => PageEventKind::InvSkipped,
            5 => PageEventKind::Reclaim,
            6 => PageEventKind::TranslateHit,
            7 => PageEventKind::TranslateMiss,
            t => {
                return Err(SnapError::BadTag {
                    what: "page event kind",
                    tag: t as u64,
                })
            }
        })
    }
}

/// Flow value marking device-originated events (translations), where no
/// submitting core exists.
pub const DEVICE_FLOW: u32 = u32::MAX;

/// One entry in a page's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEvent {
    /// Sim-time stamp.
    pub at: Nanos,
    /// What happened.
    pub kind: PageEventKind,
    /// Whole-run invalidation-submission ordinal at record time — the
    /// run's epoch coordinate, relating the event to the invalidation
    /// stream without a wall clock.
    pub epoch: u64,
    /// Originating flow (the submitting core; [`DEVICE_FLOW`] for
    /// device-side translations).
    pub flow: u32,
    /// Kind-specific payload (see [`PageEventKind`]).
    pub detail: u64,
}

impl PageEvent {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.at);
        w.u8(self.kind.snap_tag());
        w.u64(self.epoch);
        w.u32(self.flow);
        w.u64(self.detail);
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Self {
            at: r.u64()?,
            kind: PageEventKind::unsnap_tag(r.u8()?)?,
            epoch: r.u64()?,
            flow: r.u32()?,
            detail: r.u64()?,
        })
    }

    fn render(&self, out: &mut String) {
        let _ = write!(
            out,
            "  [{:>12} ns] {:<14} epoch {:<8} flow ",
            self.at,
            self.kind.name(),
            self.epoch
        );
        if self.flow == DEVICE_FLOW {
            out.push_str("dev ");
        } else {
            let _ = write!(out, "{:<3} ", self.flow);
        }
        match self.kind {
            PageEventKind::Map | PageEventKind::Unmap => {
                let _ = write!(out, "({} page(s))", self.detail);
            }
            PageEventKind::InvSubmit => {
                let _ = write!(out, "(submission ordinal {})", self.detail);
            }
            PageEventKind::InvComplete => {
                let _ = write!(out, "({} request(s) retired)", self.detail);
            }
            PageEventKind::InvSkipped => {
                let _ = write!(
                    out,
                    "(invalidation skipped: submission ordinal {})",
                    self.detail
                );
            }
            PageEventKind::Reclaim => {
                let _ = write!(out, "(PT level {})", self.detail);
            }
            PageEventKind::TranslateHit => {}
            PageEventKind::TranslateMiss => {
                let _ = write!(out, "({} walk read(s))", self.detail);
            }
        }
        out.push('\n');
    }
}

/// Cap on pinned smoking-gun events per page (see
/// [`ProvenanceBook::record`]).
const PINNED_CAP: usize = 4;

/// Journal capacity = `max_pages × per_page`, clamped into this range
/// (the upper bound keeps the materialization pass out of the run's
/// wall-clock budget; the lower bound keeps tiny test books usable).
const JOURNAL_MIN: usize = 16;
const JOURNAL_MAX: usize = 65_536;

/// A bounded event ring for one page — the materialization accumulator
/// built from the journal at dump time, never touched on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PageRing {
    events: Vec<PageEvent>,
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// `InvSkipped` events, attached from the pinned side table: a
    /// failure artifact must name the skipped invalidation even when
    /// ordinary traffic laps the ring (or the whole journal window).
    pinned: Vec<PageEvent>,
}

impl PageRing {
    fn new() -> Self {
        Self {
            events: Vec::new(),
            head: 0,
            dropped: 0,
            pinned: Vec::new(),
        }
    }

    fn push(&mut self, capacity: usize, ev: PageEvent) {
        if self.events.len() < capacity {
            self.events.push(ev);
        } else {
            // Overwrite-oldest; branchy wraparound keeps integer division
            // out of the loop.
            self.events[self.head] = ev;
            self.head += 1;
            if self.head == capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Events in chronological order (ring and pinned merged by
    /// timestamp; both sequences are already chronological).
    fn ordered(&self) -> Vec<PageEvent> {
        let mut ring = self.events.clone();
        ring.rotate_left(self.head);
        let mut out = Vec::with_capacity(ring.len() + self.pinned.len());
        let (mut i, mut j) = (0, 0);
        while i < ring.len() && j < self.pinned.len() {
            if self.pinned[j].at <= ring[i].at {
                out.push(self.pinned[j]);
                j += 1;
            } else {
                out.push(ring[i]);
                i += 1;
            }
        }
        out.extend_from_slice(&ring[i..]);
        out.extend_from_slice(&self.pinned[j..]);
        out
    }
}

/// One page's dumped timeline (chronological).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTimeline {
    /// IOVA page-frame number (matches `fns_oracle::Violation::pfn`).
    pub pfn: u64,
    /// Events in chronological order (oldest retained first).
    pub events: Vec<PageEvent>,
    /// Events lost to the per-page ring bound.
    pub dropped: u64,
}

impl PageTimeline {
    /// Renders the timeline as the deterministic text block used by
    /// `fns-sim --explain-page` and the failure artifact.
    pub fn render(&self) -> String {
        let mut out = format!(
            "page {:#x}: {} event(s), {} dropped\n",
            self.pfn,
            self.events.len(),
            self.dropped
        );
        for ev in &self.events {
            ev.render(&mut out);
        }
        out
    }
}

type PfnTable = HashMap<u64, PageRing, BuildHasherDefault<ProvHasher>>;
type PinnedTable = HashMap<u64, Vec<PageEvent>, BuildHasherDefault<ProvHasher>>;

/// One journal entry: the page an event happened to, plus the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JournalEntry {
    pfn: u64,
    ev: PageEvent,
}

/// The live provenance recorder: a bounded chronological journal of page
/// events, materialized into per-page timelines on demand.
#[derive(Debug, Clone)]
pub struct ProvenanceBook {
    per_page: usize,
    max_pages: usize,
    /// Always-admitted page (u64::MAX = none): `--explain-page` targets
    /// survive even when the tracked set is full.
    focus: u64,
    journal_cap: usize,
    /// The journal ring; chronological order is `journal[head..]` then
    /// `journal[..head]` once full.
    journal: Vec<JournalEntry>,
    head: usize,
    /// Events lost to the journal's finite window.
    window_dropped: u64,
    /// `InvSkipped` smoking guns, pinned eagerly per page (at most
    /// [`PINNED_CAP`] each) so they survive any amount of journal churn.
    pinned: PinnedTable,
}

impl ProvenanceBook {
    /// Creates a book tracking up to `max_pages` pages of `per_page`
    /// events each; `focus` (an IOVA pfn) is always admitted. The
    /// recording window is `max_pages × per_page` journal entries
    /// (clamped to [`JOURNAL_MIN`]..=[`JOURNAL_MAX`]).
    pub fn new(max_pages: u32, per_page: u32, focus: u64) -> Self {
        let per_page = per_page.max(1) as usize;
        let max_pages = max_pages.max(1) as usize;
        Self {
            per_page,
            max_pages,
            focus,
            journal_cap: (max_pages * per_page).clamp(JOURNAL_MIN, JOURNAL_MAX),
            journal: Vec::new(),
            head: 0,
            window_dropped: 0,
            pinned: PinnedTable::default(),
        }
    }

    /// Records one event for `pfn`. This is the hot path — a bounded
    /// append, no per-page lookup; page admission and per-page ring caps
    /// apply at materialization. `InvSkipped` events bypass the journal
    /// into the pinned side table so the smoking gun can never scroll out.
    pub fn record(&mut self, pfn: u64, ev: PageEvent) {
        if ev.kind == PageEventKind::InvSkipped {
            let slot = self.pinned.entry(pfn).or_default();
            if slot.len() < PINNED_CAP {
                slot.push(ev);
            }
            return;
        }
        let entry = JournalEntry { pfn, ev };
        if self.journal.len() < self.journal_cap {
            self.journal.push(entry);
        } else {
            // Overwrite-oldest; branchy wraparound keeps integer division
            // off the hot path.
            self.journal[self.head] = entry;
            self.head += 1;
            if self.head == self.journal_cap {
                self.head = 0;
            }
            self.window_dropped += 1;
        }
    }

    /// Records the same event for every page of a range starting at
    /// `base_pfn`.
    pub fn record_range(&mut self, base_pfn: u64, pages: u64, ev: PageEvent) {
        for i in 0..pages {
            self.record(base_pfn + i, ev);
        }
    }

    /// Replays the journal window into per-page rings, applying the
    /// first-come page-admission cap (focus always admitted) and the
    /// per-page keep-latest ring cap; pinned smoking guns are attached
    /// last and always admit their page. Returns the table plus the
    /// count of events on pages the admission cap rejected.
    fn materialize(&self) -> (PfnTable, u64) {
        let mut pages = PfnTable::default();
        let mut dropped_pages = 0;
        let chrono = self.journal[self.head..]
            .iter()
            .chain(&self.journal[..self.head]);
        for e in chrono {
            if let Some(ring) = pages.get_mut(&e.pfn) {
                ring.push(self.per_page, e.ev);
            } else if pages.len() < self.max_pages || e.pfn == self.focus {
                let mut ring = PageRing::new();
                ring.push(self.per_page, e.ev);
                pages.insert(e.pfn, ring);
            } else {
                dropped_pages += 1;
            }
        }
        for (&pfn, evs) in &self.pinned {
            pages.entry(pfn).or_insert_with(PageRing::new).pinned = evs.clone();
        }
        (pages, dropped_pages)
    }

    /// Tracked-page count (materializes: O(journal window)).
    pub fn len(&self) -> usize {
        self.materialize().0.len()
    }

    /// Whether no page is tracked.
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty() && self.pinned.is_empty()
    }

    /// Dumps every timeline in sorted-pfn order.
    pub fn dump(&self) -> ProvenanceDump {
        let (table, dropped_pages) = self.materialize();
        let mut pfns: Vec<u64> = table.keys().copied().collect();
        pfns.sort_unstable();
        let pages = pfns
            .into_iter()
            .map(|pfn| {
                let ring = &table[&pfn];
                PageTimeline {
                    pfn,
                    events: ring.ordered(),
                    dropped: ring.dropped,
                }
            })
            .collect();
        ProvenanceDump {
            enabled: true,
            pages,
            dropped_pages,
            window_dropped: self.window_dropped,
        }
    }

    /// Serializes the book (journal verbatim, pinned pages in sorted-pfn
    /// order, so the byte stream is deterministic).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.per_page);
        w.usize(self.max_pages);
        w.u64(self.focus);
        w.u64(self.window_dropped);
        w.usize(self.head);
        w.seq(self.journal.len());
        for e in &self.journal {
            w.u64(e.pfn);
            e.ev.snap(w);
        }
        let mut pfns: Vec<u64> = self.pinned.keys().copied().collect();
        pfns.sort_unstable();
        w.seq(pfns.len());
        for pfn in pfns {
            let evs = &self.pinned[&pfn];
            w.u64(pfn);
            w.seq(evs.len());
            for ev in evs {
                ev.snap(w);
            }
        }
    }

    /// Rebuilds a book captured by [`ProvenanceBook::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let per_page = r.usize()?.max(1);
        let max_pages = r.usize()?.max(1);
        let focus = r.u64()?;
        let window_dropped = r.u64()?;
        let head = r.usize()?;
        let journal_cap = (max_pages * per_page).clamp(JOURNAL_MIN, JOURNAL_MAX);
        let n = r.seq()?;
        if n > journal_cap || (head != 0 && (n < journal_cap || head >= n)) {
            return Err(SnapError::BadTag {
                what: "provenance journal geometry",
                tag: n as u64,
            });
        }
        let mut journal = Vec::with_capacity(n);
        for _ in 0..n {
            journal.push(JournalEntry {
                pfn: r.u64()?,
                ev: PageEvent::unsnap(r)?,
            });
        }
        let p = r.seq()?;
        let mut pinned = PinnedTable::default();
        for _ in 0..p {
            let pfn = r.u64()?;
            let m = r.seq()?;
            if m > PINNED_CAP {
                return Err(SnapError::BadTag {
                    what: "provenance pinned-event count",
                    tag: m as u64,
                });
            }
            let mut evs = Vec::with_capacity(m);
            for _ in 0..m {
                evs.push(PageEvent::unsnap(r)?);
            }
            pinned.insert(pfn, evs);
        }
        Ok(Self {
            per_page,
            max_pages,
            focus,
            journal_cap,
            journal,
            head,
            window_dropped,
            pinned,
        })
    }
}

/// End-of-run provenance dump: every tracked timeline, sorted by pfn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceDump {
    /// Whether a book was armed at all.
    pub enabled: bool,
    /// Timelines in ascending-pfn order.
    pub pages: Vec<PageTimeline>,
    /// Events on pages rejected by the tracked-set bound.
    pub dropped_pages: u64,
    /// Events lost to the journal's finite recording window.
    pub window_dropped: u64,
}

impl ProvenanceDump {
    /// The timeline for one pfn, if tracked.
    pub fn timeline(&self, pfn: u64) -> Option<&PageTimeline> {
        self.pages
            .binary_search_by_key(&pfn, |t| t.pfn)
            .ok()
            .map(|i| &self.pages[i])
    }

    /// Deterministic `--explain-page` text for one pfn.
    pub fn explain(&self, pfn: u64) -> String {
        match self.timeline(pfn) {
            Some(t) => t.render(),
            None => format!("page {pfn:#x}: no recorded events (not tracked)\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Nanos, kind: PageEventKind, detail: u64) -> PageEvent {
        PageEvent {
            at,
            kind,
            epoch: 7,
            flow: 1,
            detail,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_dump_is_chronological() {
        let mut book = ProvenanceBook::new(8, 2, u64::MAX);
        book.record(5, ev(10, PageEventKind::Map, 1));
        book.record(5, ev(20, PageEventKind::InvSubmit, 3));
        book.record(5, ev(30, PageEventKind::Unmap, 1));
        let dump = book.dump();
        let t = dump.timeline(5).unwrap();
        assert_eq!(t.dropped, 1);
        assert_eq!(
            t.events.iter().map(|e| e.at).collect::<Vec<_>>(),
            vec![20, 30]
        );
    }

    #[test]
    fn page_cap_drops_new_pages_but_admits_the_focus() {
        let mut book = ProvenanceBook::new(1, 4, 99);
        book.record(1, ev(10, PageEventKind::Map, 1));
        book.record(2, ev(20, PageEventKind::Map, 1));
        book.record(99, ev(30, PageEventKind::Map, 1));
        assert_eq!(book.len(), 2);
        assert_eq!(book.dump().dropped_pages, 1);
        assert!(book.dump().timeline(99).is_some());
    }

    #[test]
    fn journal_window_keeps_the_newest_events() {
        // Capacity clamps up to JOURNAL_MIN (16); lap it and the oldest
        // entries fall off, counted in window_dropped.
        let mut book = ProvenanceBook::new(1, 1, u64::MAX);
        for at in 0..20u64 {
            book.record(at, ev(at, PageEventKind::Map, 1));
        }
        let dump = book.dump();
        assert_eq!(dump.window_dropped, 4);
        // Pages 0..4 scrolled out; the admission cap then applies to the
        // survivors in chronological order.
        assert!(dump.timeline(3).is_none());
        assert!(dump.timeline(4).is_some());
    }

    #[test]
    fn explain_names_a_skipped_invalidation() {
        let mut book = ProvenanceBook::new(8, 8, u64::MAX);
        book.record(3, ev(10, PageEventKind::Map, 1));
        book.record(3, ev(20, PageEventKind::InvSkipped, 500));
        let text = book.dump().explain(3);
        assert!(text.contains("inv-SKIPPED"), "{text}");
        assert!(text.contains("submission ordinal 500"), "{text}");
    }

    #[test]
    fn skipped_invalidations_survive_ring_wraparound() {
        let mut book = ProvenanceBook::new(8, 2, u64::MAX);
        book.record(3, ev(10, PageEventKind::Map, 1));
        book.record(3, ev(20, PageEventKind::InvSkipped, 500));
        // Lap the 2-slot ring many times over: the smoking gun must stay.
        for at in 0..100 {
            book.record(3, ev(30 + at, PageEventKind::TranslateHit, 0));
        }
        let dump = book.dump();
        let text = dump.explain(3);
        assert!(text.contains("inv-SKIPPED"), "{text}");
        assert!(text.contains("submission ordinal 500"), "{text}");
        // And it merged back in time order: the skip precedes the ring's
        // surviving (later) events.
        let t = dump.timeline(3).unwrap();
        assert_eq!(t.events[0].kind, PageEventKind::InvSkipped);
        assert!(t.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let mut book = ProvenanceBook::new(4, 2, 7);
        for pfn in [1u64, 2, 7, 9] {
            for at in 0..3 {
                book.record(pfn, ev(at, PageEventKind::TranslateHit, 0));
            }
        }
        let mut w = SnapWriter::new();
        book.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        let back = ProvenanceBook::unsnap(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(back.dump(), book.dump());
        let mut w2 = SnapWriter::new();
        back.snap(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }
}
