//! HDR-style log-bucketed metrics registry: per-mode/per-flow latency and
//! occupancy percentiles, tenant-ready (keyed by IOMMU domain ID).
//!
//! [`LogHistogram`] is the usual HDR construction reduced to integers: a
//! value lands in one of 64 power-of-two octaves, each split into
//! [`SUB_BUCKETS`] linear sub-buckets, giving ≤ ~12.5% relative error at
//! any magnitude with a fixed 512-slot table and no floating point —
//! percentile queries are exact integer walks over the cumulative counts,
//! so p50/p99/p999 replay bit-identically at any worker count.
//!
//! The [`MetricsRegistry`] keys histograms by `(metric, domain, flow)`:
//! `domain` is the IOMMU domain ID (one device/tenant today, the
//! multi-tenant coordinate the ROADMAP needs tomorrow), `flow` the
//! originating core. A streaming [`RegSample`] series reuses the gauge
//! sampler cadence so `--metrics-json` can plot percentile drift over
//! sim-time.

use std::collections::BTreeMap;

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::Nanos;

/// Linear sub-buckets per power-of-two octave (3 bits → ≤12.5% error).
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = 3;
const BUCKETS: usize = 64 * SUB_BUCKETS;

/// Cap on streamed [`RegSample`]s (matches the gauge sampler's spirit:
/// bounded, deterministic).
pub const MAX_REG_SAMPLES: usize = 4096;

/// A fixed-size log-bucketed histogram of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    fn bucket(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros();
        let sub = (v >> (octave - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
        ((octave - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub as usize
    }

    /// Lower bound of a bucket (the value a percentile query reports).
    fn bucket_floor(b: usize) -> u64 {
        if b < SUB_BUCKETS {
            return b as u64;
        }
        let octave = (b / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let sub = (b % SUB_BUCKETS) as u64;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at permille `p` (0..=1000): the lower bound of the bucket
    /// holding the `ceil(count * p / 1000)`-th recorded value. 0 when
    /// empty; `p = 1000` reports the exact maximum.
    pub fn permille(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 1000 {
            return self.max;
        }
        let rank = (self.count * p).div_ceil(1000).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(b);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.permille(500)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.permille(990)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.permille(999)
    }

    /// Serializes the histogram sparsely (nonzero buckets only).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.max);
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count();
        w.seq(nonzero);
        for (b, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                w.u32(b as u32);
                w.u64(c);
            }
        }
    }

    /// Rebuilds a histogram captured by [`LogHistogram::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let mut h = Self {
            count: r.u64()?,
            sum: r.u64()?,
            max: r.u64()?,
            ..Self::default()
        };
        let n = r.seq()?;
        for _ in 0..n {
            let b = r.u32()? as usize;
            if b >= BUCKETS {
                return Err(SnapError::BadTag {
                    what: "histogram bucket index",
                    tag: b as u64,
                });
            }
            h.counts[b] = r.u64()?;
        }
        Ok(h)
    }
}

/// What a registry histogram measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegMetric {
    /// Rx-descriptor lifetime: preparation to completion, sim-time ns.
    DescLatency,
    /// Invalidation-queue CPU wait per completed descriptor, ns.
    InvWait,
    /// Total Rx-ring occupancy at gauge-sample times (descriptors).
    RingOccupancy,
    /// Pending PTcache-wipe epochs at gauge-sample times.
    WipeBacklog,
}

impl RegMetric {
    /// All metrics, in key order.
    pub const ALL: [RegMetric; 4] = [
        RegMetric::DescLatency,
        RegMetric::InvWait,
        RegMetric::RingOccupancy,
        RegMetric::WipeBacklog,
    ];

    /// Stable display/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            RegMetric::DescLatency => "desc_latency_ns",
            RegMetric::InvWait => "inv_wait_ns",
            RegMetric::RingOccupancy => "ring_occupancy",
            RegMetric::WipeBacklog => "wipe_backlog",
        }
    }

    fn snap_tag(&self) -> u8 {
        match self {
            RegMetric::DescLatency => 0,
            RegMetric::InvWait => 1,
            RegMetric::RingOccupancy => 2,
            RegMetric::WipeBacklog => 3,
        }
    }

    fn unsnap_tag(tag: u8) -> Result<Self, SnapError> {
        Ok(match tag {
            0 => RegMetric::DescLatency,
            1 => RegMetric::InvWait,
            2 => RegMetric::RingOccupancy,
            3 => RegMetric::WipeBacklog,
            t => {
                return Err(SnapError::BadTag {
                    what: "registry metric",
                    tag: t as u64,
                })
            }
        })
    }
}

/// Registry key: metric × tenant (IOMMU domain) × flow (core).
pub type RegKey = (RegMetric, u16, u32);

/// One streamed percentile sample (gauge-sampler cadence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegSample {
    /// Sim-time stamp.
    pub at: Nanos,
    /// Descriptor-latency p50 across all keys, so far.
    pub desc_p50: u64,
    /// Descriptor-latency p99 across all keys, so far.
    pub desc_p99: u64,
    /// Descriptor-latency p999 across all keys, so far.
    pub desc_p999: u64,
    /// Invalidation-wait p99 across all keys, so far.
    pub inv_wait_p99: u64,
}

impl RegSample {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.at);
        w.u64(self.desc_p50);
        w.u64(self.desc_p99);
        w.u64(self.desc_p999);
        w.u64(self.inv_wait_p99);
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Self {
            at: r.u64()?,
            desc_p50: r.u64()?,
            desc_p99: r.u64()?,
            desc_p999: r.u64()?,
            inv_wait_p99: r.u64()?,
        })
    }
}

/// The live registry: keyed histograms plus the streaming sample series.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    hists: BTreeMap<RegKey, LogHistogram>,
    series: Vec<RegSample>,
}

impl MetricsRegistry {
    /// Records one value under `(metric, domain, flow)`.
    pub fn record(&mut self, metric: RegMetric, domain: u16, flow: u32, value: u64) {
        self.hists
            .entry((metric, domain, flow))
            .or_default()
            .record(value);
    }

    /// All-key merge of one metric's histograms.
    pub fn merged(&self, metric: RegMetric) -> LogHistogram {
        let mut out = LogHistogram::default();
        for ((m, _, _), h) in &self.hists {
            if *m == metric {
                out.merge(h);
            }
        }
        out
    }

    /// Pushes one streaming percentile sample (called at the gauge
    /// sampler's cadence; bounded by [`MAX_REG_SAMPLES`]).
    pub fn sample(&mut self, at: Nanos) {
        if self.series.len() >= MAX_REG_SAMPLES {
            return;
        }
        let desc = self.merged(RegMetric::DescLatency);
        let inv = self.merged(RegMetric::InvWait);
        self.series.push(RegSample {
            at,
            desc_p50: desc.p50(),
            desc_p99: desc.p99(),
            desc_p999: desc.p999(),
            inv_wait_p99: inv.p99(),
        });
    }

    /// Distinct keys recorded.
    pub fn len(&self) -> usize {
        self.hists.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.hists.is_empty()
    }

    /// Derives the end-of-run report (keys in `BTreeMap` order, so the
    /// report is deterministic).
    pub fn report(&self) -> RegistryReport {
        RegistryReport {
            enabled: true,
            stats: self
                .hists
                .iter()
                .map(|(&(metric, domain, flow), h)| RegStat {
                    metric,
                    domain,
                    flow,
                    count: h.count,
                    sum: h.sum,
                    p50: h.p50(),
                    p99: h.p99(),
                    p999: h.p999(),
                    max: h.max,
                })
                .collect(),
            series: self.series.clone(),
        }
    }

    /// Serializes the registry.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.hists.len());
        for ((metric, domain, flow), h) in &self.hists {
            w.u8(metric.snap_tag());
            w.u32(*domain as u32);
            w.u32(*flow);
            h.snap(w);
        }
        w.seq(self.series.len());
        for s in &self.series {
            s.snap(w);
        }
    }

    /// Rebuilds a registry captured by [`MetricsRegistry::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.seq()?;
        let mut hists = BTreeMap::new();
        for _ in 0..n {
            let metric = RegMetric::unsnap_tag(r.u8()?)?;
            let domain = r.u32()? as u16;
            let flow = r.u32()?;
            hists.insert((metric, domain, flow), LogHistogram::unsnap(r)?);
        }
        let m = r.seq()?;
        let mut series = Vec::with_capacity(m.min(MAX_REG_SAMPLES));
        for _ in 0..m {
            series.push(RegSample::unsnap(r)?);
        }
        Ok(Self { hists, series })
    }
}

/// One key's derived percentiles in the end-of-run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegStat {
    /// What was measured.
    pub metric: RegMetric,
    /// IOMMU domain (tenant) the values belong to.
    pub domain: u16,
    /// Originating flow (core).
    pub flow: u32,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

/// End-of-run registry report: per-key percentiles plus the streamed
/// series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryReport {
    /// Whether a registry was armed at all.
    pub enabled: bool,
    /// Per-key stats in `(metric, domain, flow)` order.
    pub stats: Vec<RegStat>,
    /// Streamed percentile samples (gauge-sampler cadence).
    pub series: Vec<RegSample>,
}

impl RegistryReport {
    /// All-key merged percentile triple for one metric:
    /// `(count, p50, p99, p999)`.
    pub fn percentiles(&self, metric: RegMetric) -> (u64, u64, u64, u64) {
        // Derived stats cannot be re-merged exactly; report the dominant
        // key's percentiles weighted by count when several exist. For the
        // single-domain single-device runs of today, per-flow counts are
        // what matter and the weighted pick is exact for one key.
        let mut count = 0;
        let mut best: Option<&RegStat> = None;
        for s in self.stats.iter().filter(|s| s.metric == metric) {
            count += s.count;
            if best.is_none_or(|b| s.count > b.count) {
                best = Some(s);
            }
        }
        match best {
            Some(b) => (count, b.p50, b.p99, b.p999),
            None => (0, 0, 0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_floors_bound_values() {
        let mut prev = 0;
        for v in [0u64, 1, 7, 8, 9, 100, 1000, 4096, 1 << 20, u64::MAX] {
            let b = LogHistogram::bucket(v);
            assert!(b >= prev, "bucket order broke at {v}");
            prev = b;
            assert!(
                LogHistogram::bucket_floor(b) <= v.max(1),
                "floor > value at {v}"
            );
        }
        assert!(LogHistogram::bucket(u64::MAX) < BUCKETS);
    }

    #[test]
    fn percentiles_are_within_sub_bucket_error() {
        let mut h = LogHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((438..=500).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((875..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(h.permille(1000), 1000);
        assert_eq!(h.count, 1000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn registry_report_is_key_ordered_and_snap_roundtrips() {
        let mut reg = MetricsRegistry::default();
        reg.record(RegMetric::InvWait, 0, 1, 50);
        reg.record(RegMetric::DescLatency, 0, 0, 1000);
        reg.record(RegMetric::DescLatency, 0, 1, 2000);
        reg.sample(1_000);
        let report = reg.report();
        assert_eq!(report.stats.len(), 3);
        assert_eq!(report.stats[0].metric, RegMetric::DescLatency);
        assert_eq!(report.stats[0].flow, 0);
        let (count, p50, _, _) = report.percentiles(RegMetric::DescLatency);
        assert_eq!(count, 2);
        assert!(p50 > 0);
        let mut w = SnapWriter::new();
        reg.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        let back = MetricsRegistry::unsnap(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(back.report(), report);
    }
}
