//! Chrome `trace_event` export.
//!
//! Serializes a drained [`Trace`] plus a [`SampleSet`] into the JSON
//! object format (`{"traceEvents":[...]}`) understood by Perfetto and
//! `chrome://tracing`. Discrete events become global instants
//! (`"ph":"i","s":"g"`); gauge samples become counter tracks (`"ph":"C"`).
//! Timestamps are microseconds with fixed three-digit nanosecond
//! fractions, formatted with pure integer arithmetic so the output is
//! byte-identical on every platform and at every `--jobs` count.

use crate::json::JsonWriter;
use crate::record::{Trace, TraceData};
use crate::sampler::SampleSet;
use crate::txn::TxnDump;
use fns_sim::time::Nanos;

/// Formats sim-time `ns` as a Chrome `ts` value (microseconds) with a
/// fixed `.xxx` fraction, using only integer math.
fn ts_micros(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn instant(w: &mut JsonWriter, name: &str, cat: &str, at: Nanos) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("cat", cat);
    w.field_str("ph", "i");
    w.field_str("s", "g");
    w.key("ts");
    w.raw(&ts_micros(at));
    w.field_u64("pid", 1);
    w.field_u64("tid", 1);
}

fn counter(w: &mut JsonWriter, name: &str, at: Nanos, value: u64) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("cat", "probe");
    w.field_str("ph", "C");
    w.key("ts");
    w.raw(&ts_micros(at));
    w.field_u64("pid", 1);
    w.key("args");
    w.begin_object();
    w.field_u64("value", value);
    w.end_object();
    w.end_object();
}

fn txn_marker(w: &mut JsonWriter, name: &str, ph: &str, id: u64, at: Nanos, tid: u64) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("cat", "txn");
    w.field_str("ph", ph);
    w.field_u64("id", id);
    w.key("ts");
    w.raw(&ts_micros(at));
    w.field_u64("pid", 1);
    w.field_u64("tid", tid);
}

fn txn_slice(w: &mut JsonWriter, name: &str, at: Nanos, dur_ns: Nanos, tid: u64) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("cat", "txn");
    w.field_str("ph", "X");
    w.key("ts");
    w.raw(&ts_micros(at));
    w.key("dur");
    w.raw(&ts_micros(dur_ns));
    w.field_u64("pid", 1);
    w.field_u64("tid", tid);
    w.end_object();
}

/// Renders `trace` and `samples` as a Chrome `trace_event` JSON document.
///
/// `fault_kinds` maps the `u8` kind index carried by fault events back to
/// a human-readable name (pass `FaultKind::ALL` names); out-of-range
/// indices fall back to the raw number.
pub fn chrome_trace_json(trace: &Trace, samples: &SampleSet, fault_kinds: &[&str]) -> String {
    chrome_trace_json_with(trace, samples, fault_kinds, &TxnDump::default())
}

/// Like [`chrome_trace_json`], plus DMA transaction causal spans.
///
/// Each completed [`TxnRecord`](crate::txn::TxnRecord) becomes an async
/// `b`/`e` span pair (`id` = descriptor ID, one track per preparing core)
/// bracketing `X` child slices for the mapping and invalidation-wait
/// phases, tied together by `s`/`f` flow events so Perfetto draws the
/// causal arrow from preparation to completion. A run with zero events,
/// samples, and transactions still yields a valid document with an empty
/// `traceEvents` array.
pub fn chrome_trace_json_with(
    trace: &Trace,
    samples: &SampleSet,
    fault_kinds: &[&str],
    txns: &TxnDump,
) -> String {
    let mut w = JsonWriter::with_capacity(
        128 * trace.len() + 256 * samples.len() + 512 * txns.records.len() + 256,
    );
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    for ev in &trace.events {
        instant(&mut w, ev.data.name(), ev.data.category().name(), ev.at);
        w.key("args");
        w.begin_object();
        match ev.data {
            TraceData::Map { pages } | TraceData::Unmap { pages } => {
                w.field_u64("pages", pages as u64);
            }
            TraceData::IotlbHit | TraceData::TranslationFault => {}
            TraceData::IotlbMiss { reads } => {
                w.field_u64("reads", reads as u64);
            }
            TraceData::PtcacheFill { level, evicted } => {
                w.field_u64("level", level as u64);
                w.field_bool("evicted", evicted);
            }
            TraceData::PtcacheReclaim { entries } => {
                w.field_u64("entries", entries as u64);
            }
            TraceData::InvEnqueue { entries, cost_ns } => {
                w.field_u64("entries", entries as u64);
                w.field_u64("cost_ns", cost_ns);
            }
            TraceData::InvDrain { epochs } => {
                w.field_u64("epochs", epochs as u64);
            }
            TraceData::InvFlush { cost_ns } => {
                w.field_u64("cost_ns", cost_ns);
            }
            TraceData::InvBatchFallback { retries } => {
                w.field_u64("retries", retries as u64);
            }
            TraceData::RingPost { core }
            | TraceData::RingComplete { core }
            | TraceData::RingOverrun { core } => {
                w.field_u64("core", core as u64);
            }
            TraceData::FaultInject { kind, visit } => {
                w.key("kind");
                match fault_kinds.get(kind as usize) {
                    Some(name) => w.string(name),
                    None => w.u64(kind as u64),
                }
                w.field_u64("visit", visit);
            }
            TraceData::FaultRecover { kind } => {
                w.key("kind");
                match fault_kinds.get(kind as usize) {
                    Some(name) => w.string(name),
                    None => w.u64(kind as u64),
                }
            }
            TraceData::AuditViolation { invariant, pfn } => {
                w.field_u64("invariant", invariant as u64);
                w.field_u64("pfn", pfn);
            }
        }
        w.end_object();
        w.end_object();
    }

    for s in &samples.samples {
        counter(&mut w, "iotlb_occupancy", s.at, s.iotlb_occupancy as u64);
        counter(
            &mut w,
            "iotlb_hit_rate_bp",
            s.at,
            s.iotlb_hit_rate_bp as u64,
        );
        counter(&mut w, "ptcache_l1", s.at, s.ptcache_l1 as u64);
        counter(&mut w, "ptcache_l2", s.at, s.ptcache_l2 as u64);
        counter(&mut w, "ptcache_l3", s.at, s.ptcache_l3 as u64);
        counter(&mut w, "inv_queue_depth", s.at, s.inv_queue_depth as u64);
        counter(&mut w, "ring_occupancy", s.at, s.ring_occupancy as u64);
        counter(&mut w, "nic_buffer_bytes", s.at, s.nic_buffer_bytes);
        counter(&mut w, "switch_queue_bytes", s.at, s.switch_queue_bytes);
        counter(&mut w, "iova_live_bytes", s.at, s.iova_live_bytes);
        counter(&mut w, "iova_free_spans", s.at, s.iova_free_spans);
        counter(
            &mut w,
            "iova_largest_free_run",
            s.at,
            s.iova_largest_free_run,
        );
    }

    for rec in &txns.records {
        let tid = rec.flow as u64 + 1;
        // Parent async span: preparation → completion.
        txn_marker(&mut w, "dma_txn", "b", rec.id, rec.start_ns, tid);
        w.key("args");
        w.begin_object();
        w.field_u64("pages", rec.pages as u64);
        w.end_object();
        w.end_object();
        // Child slices: where the span's CPU time actually went.
        if rec.map_ns > 0 {
            txn_slice(&mut w, "map_cpu", rec.start_ns, rec.map_ns, tid);
        }
        if rec.inv_wait_ns > 0 {
            let at = rec.end_ns.saturating_sub(rec.inv_wait_ns);
            txn_slice(&mut w, "inv_wait", at, rec.inv_wait_ns, tid);
        }
        txn_marker(&mut w, "dma_txn", "e", rec.id, rec.end_ns, tid);
        w.end_object();
        // Flow arrow from preparation to completion.
        txn_marker(&mut w, "dma_flow", "s", rec.id, rec.start_ns, tid);
        w.end_object();
        txn_marker(&mut w, "dma_flow", "f", rec.id, rec.end_ns, tid);
        w.field_str("bp", "e");
        w.end_object();
    }

    w.end_array();
    w.field_str("displayTimeUnit", "ns");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{TraceCategory, TraceHandle};
    use crate::sampler::Sample;

    #[test]
    fn timestamps_are_fixed_point_micros() {
        assert_eq!(ts_micros(0), "0.000");
        assert_eq!(ts_micros(999), "0.999");
        assert_eq!(ts_micros(1_000), "1.000");
        assert_eq!(ts_micros(1_234_567), "1234.567");
    }

    #[test]
    fn timestamps_survive_u64_extremes() {
        // u64::MAX = 18_446_744_073_709_551_615 ns.
        assert_eq!(ts_micros(u64::MAX), "18446744073709551.615");
        assert_eq!(ts_micros(u64::MAX - 1), "18446744073709551.614");
        assert_eq!(ts_micros(u64::MAX - 615), "18446744073709551.000");
        assert_eq!(ts_micros(1), "0.001");
    }

    #[test]
    fn empty_run_yields_a_valid_empty_trace_events_array() {
        // Zero events of the selected categories, zero samples, zero
        // transactions must still be a loadable document.
        let json = chrome_trace_json(&Trace::default(), &SampleSet::default(), &[]);
        assert_eq!(json, r#"{"traceEvents":[],"displayTimeUnit":"ns"}"#);
        let with = chrome_trace_json_with(
            &Trace::default(),
            &SampleSet::default(),
            &[],
            &TxnDump::default(),
        );
        assert_eq!(with, json);
    }

    #[test]
    fn txn_records_export_spans_slices_and_flow_arrows() {
        let txns = TxnDump {
            enabled: true,
            records: vec![crate::txn::TxnRecord {
                id: 7,
                flow: 2,
                pages: 64,
                start_ns: 1_000,
                map_ns: 200,
                inv_wait_ns: 300,
                end_ns: 5_000,
            }],
            open: 0,
            dropped: 0,
        };
        let json = chrome_trace_json_with(&Trace::default(), &SampleSet::default(), &[], &txns);
        assert!(json.contains(
            r#"{"name":"dma_txn","cat":"txn","ph":"b","id":7,"ts":1.000,"pid":1,"tid":3,"args":{"pages":64}}"#
        ));
        assert!(json.contains(
            r#"{"name":"map_cpu","cat":"txn","ph":"X","ts":1.000,"dur":0.200,"pid":1,"tid":3}"#
        ));
        // inv_wait child sits at end - inv_wait.
        assert!(json.contains(
            r#"{"name":"inv_wait","cat":"txn","ph":"X","ts":4.700,"dur":0.300,"pid":1,"tid":3}"#
        ));
        assert!(json.contains(
            r#"{"name":"dma_txn","cat":"txn","ph":"e","id":7,"ts":5.000,"pid":1,"tid":3}"#
        ));
        assert!(json.contains(
            r#"{"name":"dma_flow","cat":"txn","ph":"s","id":7,"ts":1.000,"pid":1,"tid":3}"#
        ));
        assert!(json.contains(
            r#"{"name":"dma_flow","cat":"txn","ph":"f","id":7,"ts":5.000,"pid":1,"tid":3,"bp":"e"}"#
        ));
    }

    #[test]
    fn exports_instants_counters_and_fault_names() {
        let h = TraceHandle::recording(TraceCategory::ALL_MASK, 16);
        h.set_now(1_500);
        h.emit(TraceData::Map { pages: 4 });
        h.set_now(2_000);
        h.emit(TraceData::FaultInject { kind: 0, visit: 3 });
        h.emit(TraceData::FaultInject { kind: 9, visit: 1 });
        let trace = h.drain();
        let samples = SampleSet {
            interval_ns: 1_000,
            samples: vec![Sample {
                at: 1_000,
                iotlb_occupancy: 7,
                ..Sample::default()
            }],
        };
        let json = chrome_trace_json(&trace, &samples, &["iotlb_drop"]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            r#"{"name":"map","cat":"map","ph":"i","s":"g","ts":1.500,"pid":1,"tid":1,"args":{"pages":4}}"#
        ));
        // Known kind resolves to its name; unknown index falls back to the number.
        assert!(json.contains(r#""kind":"iotlb_drop","visit":3"#));
        assert!(json.contains(r#""kind":9,"visit":1"#));
        assert!(json.contains(
            r#"{"name":"iotlb_occupancy","cat":"probe","ph":"C","ts":1.000,"pid":1,"args":{"value":7}}"#
        ));
        assert!(json.ends_with("\"displayTimeUnit\":\"ns\"}"));
    }

    #[test]
    fn every_event_variant_serializes() {
        let h = TraceHandle::recording(TraceCategory::ALL_MASK, 64);
        let all = [
            TraceData::Map { pages: 1 },
            TraceData::Unmap { pages: 2 },
            TraceData::IotlbHit,
            TraceData::IotlbMiss { reads: 3 },
            TraceData::TranslationFault,
            TraceData::PtcacheFill {
                level: 1,
                evicted: true,
            },
            TraceData::PtcacheReclaim { entries: 5 },
            TraceData::InvEnqueue {
                entries: 8,
                cost_ns: 700,
            },
            TraceData::InvDrain { epochs: 2 },
            TraceData::InvFlush { cost_ns: 300 },
            TraceData::InvBatchFallback { retries: 1 },
            TraceData::RingPost { core: 0 },
            TraceData::RingComplete { core: 1 },
            TraceData::RingOverrun { core: 2 },
            TraceData::FaultInject { kind: 1, visit: 9 },
            TraceData::FaultRecover { kind: 1 },
            TraceData::AuditViolation {
                invariant: 0,
                pfn: 0x40,
            },
        ];
        for d in all {
            h.emit(d);
        }
        let trace = h.drain();
        assert_eq!(trace.len(), all.len());
        let json = chrome_trace_json(&trace, &SampleSet::default(), &["a", "b"]);
        for ev in &trace.events {
            assert!(
                json.contains(&format!("\"name\":\"{}\"", ev.data.name())),
                "missing {}",
                ev.data.name()
            );
        }
    }
}
