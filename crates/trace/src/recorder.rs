//! The causal observability plane: configuration and the shared,
//! enum-dispatch recorder handle tying [`provenance`], [`txn`], and
//! [`metrics`] together, plus the flight-recorder arming knobs (the
//! flight ring itself lives inside [`TraceHandle`] so every emit site
//! feeds it for free).
//!
//! Determinism contract (pinned in `tests/golden_determinism.rs`):
//!
//! * **Zero-cost off** — a disabled [`ObsHandle`] is a single
//!   discriminant check per hook site, and a disabled run is bit-identical
//!   to a build without the plane.
//! * **RNG-free on** — an armed observer only *reads* the simulation;
//!   armed runs are bit-identical to bare runs modulo the dumps
//!   themselves, which is only possible if no randomness is consumed and
//!   no event order perturbed.
//! * **Checkpointable** — the observer serializes with the simulation and
//!   restores bit-identically ([`ObsHandle::snap`]).
//!
//! [`provenance`]: crate::provenance
//! [`txn`]: crate::txn
//! [`metrics`]: crate::metrics
//! [`TraceHandle`]: crate::TraceHandle

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::metrics::{MetricsRegistry, RegMetric, RegistryReport};
use crate::provenance::{
    PageEvent, PageEventKind, ProvenanceBook, ProvenanceDump, DEFAULT_PROV_EVENTS,
    DEFAULT_PROV_PAGES, DEVICE_FLOW,
};
use crate::txn::{TxnDump, TxnTrace, DEFAULT_TXN_CAPACITY};
use crate::Nanos;

/// Default flight-recorder (crash ring) capacity, in trace events.
pub const DEFAULT_FLIGHT_CAPACITY: u32 = 4096;

/// Sentinel for "no focus page".
pub const NO_FOCUS: u64 = u64::MAX;

/// Arming knobs for the observability plane. Lives in `SimConfig`
/// (`Copy`, total `Debug` — it joins the snapshot config fingerprint
/// automatically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Record per-page provenance timelines.
    pub provenance: bool,
    /// Cap on distinct tracked pages.
    pub prov_pages: u32,
    /// Per-page event-ring capacity.
    pub prov_events: u32,
    /// Always-tracked IOVA pfn ([`NO_FOCUS`] = none) — the
    /// `--explain-page` target.
    pub prov_focus: u64,
    /// Record DMA transaction causal spans.
    pub txn: bool,
    /// Completed-transaction ring capacity.
    pub txn_capacity: u32,
    /// Record the HDR-style percentile registry.
    pub registry: bool,
    /// Arm the flight recorder (last-N crash ring inside the trace
    /// handle).
    pub flight: bool,
    /// Flight-ring capacity, in trace events.
    pub flight_capacity: u32,
}

impl ObserveConfig {
    /// Everything disabled (the default; changes no run by a single bit).
    pub fn off() -> Self {
        Self {
            provenance: false,
            prov_pages: DEFAULT_PROV_PAGES,
            prov_events: DEFAULT_PROV_EVENTS,
            prov_focus: NO_FOCUS,
            txn: false,
            txn_capacity: DEFAULT_TXN_CAPACITY,
            registry: false,
            flight: false,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }

    /// Everything armed at default capacities.
    pub fn full() -> Self {
        Self {
            provenance: true,
            txn: true,
            registry: true,
            flight: true,
            ..Self::off()
        }
    }

    /// Whether any observer-side layer (provenance/txn/registry) is armed.
    /// The flight ring is armed separately, through the trace handle.
    pub fn any(&self) -> bool {
        self.provenance || self.txn || self.registry
    }
}

impl Default for ObserveConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// The live observer: the armed subset of the three layers. The shared
/// sim-time stamp lives next to it in the handle (a `Cell`, so the
/// once-per-event `set_now` skips the `RefCell` borrow bookkeeping).
#[derive(Debug, Clone)]
pub struct Observer {
    prov: Option<ProvenanceBook>,
    txns: Option<TxnTrace>,
    reg: Option<MetricsRegistry>,
}

impl Observer {
    fn new(cfg: ObserveConfig) -> Self {
        Self {
            prov: cfg
                .provenance
                .then(|| ProvenanceBook::new(cfg.prov_pages, cfg.prov_events, cfg.prov_focus)),
            txns: cfg.txn.then(|| TxnTrace::new(cfg.txn_capacity)),
            reg: cfg.registry.then(MetricsRegistry::default),
        }
    }

    fn snap(&self, w: &mut SnapWriter) {
        w.opt(&self.prov, |w, p| p.snap(w));
        w.opt(&self.txns, |w, t| t.snap(w));
        w.opt(&self.reg, |w, m| m.snap(w));
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Self {
            prov: r.opt(ProvenanceBook::unsnap)?,
            txns: r.opt(TxnTrace::unsnap)?,
            reg: r.opt(MetricsRegistry::unsnap)?,
        })
    }
}

/// Shared observability handle: enum dispatch so a disabled plane costs
/// one discriminant check per hook site. Clones share one [`Observer`]
/// (the simulation and the driver each hold one). The per-event clock
/// and the "provenance armed" flag are hoisted out of the `RefCell` —
/// `set_now` and `wants_translate` run on the hottest paths and must not
/// pay borrow bookkeeping.
#[derive(Clone, Default)]
pub enum ObsHandle {
    /// Observation disabled (the default).
    #[default]
    Off,
    /// Observation armed; clones share the observer and the clock.
    On {
        /// Shared sim-time stamp, advanced once per dispatched event.
        now: Rc<Cell<Nanos>>,
        /// Cached `prov.is_some()` (arming never changes mid-run).
        prov_on: bool,
        /// The armed layers.
        obs: Rc<RefCell<Observer>>,
    },
}

impl ObsHandle {
    fn armed(now: Nanos, observer: Observer) -> Self {
        ObsHandle::On {
            now: Rc::new(Cell::new(now)),
            prov_on: observer.prov.is_some(),
            obs: Rc::new(RefCell::new(observer)),
        }
    }

    /// Creates an armed handle for the given config ([`ObsHandle::Off`]
    /// when nothing observer-side is armed).
    pub fn recording(cfg: ObserveConfig) -> Self {
        if !cfg.any() {
            return ObsHandle::Off;
        }
        Self::armed(0, Observer::new(cfg))
    }

    /// Whether observation is armed.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, ObsHandle::On { .. })
    }

    /// Advances the shared sim-time stamp (called once per dispatched
    /// event, next to `TraceHandle::set_now`).
    #[inline]
    pub fn set_now(&self, t: Nanos) {
        if let ObsHandle::On { now, .. } = self {
            now.set(t);
        }
    }

    /// Whether translations must route through an observed tier so
    /// per-access hit/miss provenance can be derived.
    #[inline]
    pub fn wants_translate(&self) -> bool {
        matches!(self, ObsHandle::On { prov_on: true, .. })
    }

    /// Current stamp + a borrow of the observer, for the record hooks.
    #[inline]
    fn parts(&self) -> Option<(Nanos, &RefCell<Observer>)> {
        match self {
            ObsHandle::Off => None,
            ObsHandle::On { now, obs, .. } => Some((now.get(), obs)),
        }
    }

    /// Records a map of `pages` pages at `base_pfn`.
    #[inline]
    pub fn on_map(&self, base_pfn: u64, pages: u64, flow: u32, epoch: u64) {
        if let Some((at, obs)) = self.parts() {
            let ev = PageEvent {
                at,
                kind: PageEventKind::Map,
                epoch,
                flow,
                detail: pages,
            };
            if let Some(p) = obs.borrow_mut().prov.as_mut() {
                p.record_range(base_pfn, pages, ev);
            }
        }
    }

    /// Records an unmap of `pages` pages at `base_pfn`.
    #[inline]
    pub fn on_unmap(&self, base_pfn: u64, pages: u64, flow: u32, epoch: u64) {
        if let Some((at, obs)) = self.parts() {
            let ev = PageEvent {
                at,
                kind: PageEventKind::Unmap,
                epoch,
                flow,
                detail: pages,
            };
            if let Some(p) = obs.borrow_mut().prov.as_mut() {
                p.record_range(base_pfn, pages, ev);
            }
        }
    }

    /// Records a submitted invalidation request (`ordinal` = whole-run
    /// submission ordinal).
    #[inline]
    pub fn on_inv_submit(&self, base_pfn: u64, pages: u64, ordinal: u64) {
        if let Some((at, obs)) = self.parts() {
            let ev = PageEvent {
                at,
                kind: PageEventKind::InvSubmit,
                epoch: ordinal,
                flow: DEVICE_FLOW,
                detail: ordinal,
            };
            if let Some(p) = obs.borrow_mut().prov.as_mut() {
                p.record_range(base_pfn, pages, ev);
            }
        }
    }

    /// Records an invalidation request *dropped by a seeded bug* — the
    /// event a failure artifact names.
    #[inline]
    pub fn on_inv_skipped(&self, base_pfn: u64, pages: u64, ordinal: u64) {
        if let Some((at, obs)) = self.parts() {
            let ev = PageEvent {
                at,
                kind: PageEventKind::InvSkipped,
                epoch: ordinal,
                flow: DEVICE_FLOW,
                detail: ordinal,
            };
            if let Some(p) = obs.borrow_mut().prov.as_mut() {
                p.record_range(base_pfn, pages, ev);
            }
        }
    }

    /// Records the retirement of a queued PTcache-wipe request.
    #[inline]
    pub fn on_inv_complete(&self, base_pfn: u64, pages: u64, epoch_len: u64) {
        if let Some((at, obs)) = self.parts() {
            let ev = PageEvent {
                at,
                kind: PageEventKind::InvComplete,
                epoch: 0,
                flow: DEVICE_FLOW,
                detail: epoch_len,
            };
            if let Some(p) = obs.borrow_mut().prov.as_mut() {
                p.record_range(base_pfn, pages, ev);
            }
        }
    }

    /// Records a page-table-page reclamation anchored at the span's base
    /// pfn.
    #[inline]
    pub fn on_reclaim(&self, base_pfn: u64, level: u8) {
        if let Some((at, obs)) = self.parts() {
            let ev = PageEvent {
                at,
                kind: PageEventKind::Reclaim,
                epoch: 0,
                flow: DEVICE_FLOW,
                detail: level as u64,
            };
            if let Some(p) = obs.borrow_mut().prov.as_mut() {
                p.record(base_pfn, ev);
            }
        }
    }

    /// Records a device translation (`reads` = page-walk memory reads;
    /// 0 ⇒ IOTLB hit).
    #[inline]
    pub fn on_translate(&self, pfn: u64, hit: bool, reads: u64) {
        if let Some((at, obs)) = self.parts() {
            let ev = PageEvent {
                at,
                kind: if hit {
                    PageEventKind::TranslateHit
                } else {
                    PageEventKind::TranslateMiss
                },
                epoch: 0,
                flow: DEVICE_FLOW,
                detail: reads,
            };
            if let Some(p) = obs.borrow_mut().prov.as_mut() {
                p.record(pfn, ev);
            }
        }
    }

    /// Opens a transaction span at descriptor preparation.
    #[inline]
    pub fn txn_start(&self, id: u64, flow: u32, pages: u32, map_ns: Nanos) {
        if let Some((now, obs)) = self.parts() {
            if let Some(t) = obs.borrow_mut().txns.as_mut() {
                t.start(id, now, flow, pages, map_ns);
            }
        }
    }

    /// Closes a transaction span at descriptor completion and feeds the
    /// registry's latency histograms (keyed by `domain` and the
    /// completing `flow`).
    #[inline]
    pub fn txn_complete(&self, id: u64, flow: u32, domain: u16, inv_wait_ns: Nanos) {
        if let Some((now, obs)) = self.parts() {
            let mut o = obs.borrow_mut();
            let mut latency = None;
            if let Some(t) = o.txns.as_mut() {
                if let Some(rec) = t.complete(id, now, inv_wait_ns) {
                    latency = Some(rec.end_ns.saturating_sub(rec.start_ns));
                }
            }
            if let Some(reg) = o.reg.as_mut() {
                if let Some(lat) = latency {
                    reg.record(RegMetric::DescLatency, domain, flow, lat);
                }
                reg.record(RegMetric::InvWait, domain, flow, inv_wait_ns);
            }
        }
    }

    /// Feeds the registry's occupancy gauges and pushes one streaming
    /// percentile sample (called at the gauge sampler's cadence).
    #[inline]
    pub fn gauge_sample(&self, at: Nanos, domain: u16, ring_occupancy: u64, wipe_backlog: u64) {
        if let Some((_, obs)) = self.parts() {
            if let Some(reg) = obs.borrow_mut().reg.as_mut() {
                reg.record(RegMetric::RingOccupancy, domain, 0, ring_occupancy);
                reg.record(RegMetric::WipeBacklog, domain, 0, wipe_backlog);
                reg.sample(at);
            }
        }
    }

    /// Deterministic `--explain-page` text for one pfn, from the live
    /// book (`None` when provenance is not armed).
    pub fn explain_page(&self, pfn: u64) -> Option<String> {
        match self {
            ObsHandle::Off => None,
            ObsHandle::On { obs, .. } => {
                let o = obs.borrow();
                o.prov.as_ref().map(|p| p.dump().explain(pfn))
            }
        }
    }

    /// End-of-run dumps (disabled layers report `Default`, so a bare run
    /// and a never-armed run compare equal).
    pub fn dump(&self) -> (ProvenanceDump, TxnDump, RegistryReport) {
        match self {
            ObsHandle::Off => Default::default(),
            ObsHandle::On { obs, .. } => {
                let o = obs.borrow();
                (
                    o.prov.as_ref().map(|p| p.dump()).unwrap_or_default(),
                    o.txns.as_ref().map(|t| t.dump()).unwrap_or_default(),
                    o.reg.as_ref().map(|m| m.report()).unwrap_or_default(),
                )
            }
        }
    }

    /// Serializes the handle (tag + clock + observer when armed).
    pub fn snap(&self, w: &mut SnapWriter) {
        match self {
            ObsHandle::Off => w.u8(0),
            ObsHandle::On { now, obs, .. } => {
                w.u8(1);
                w.u64(now.get());
                obs.borrow().snap(w);
            }
        }
    }

    /// Rebuilds a handle captured by [`ObsHandle::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(ObsHandle::Off),
            1 => {
                let now = r.u64()?;
                Ok(Self::armed(now, Observer::unsnap(r)?))
            }
            t => Err(SnapError::BadTag {
                what: "observe handle",
                tag: t as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let h = ObsHandle::recording(ObserveConfig::off());
        assert!(!h.is_on());
        h.on_map(1, 4, 0, 0);
        h.txn_start(1, 0, 64, 10);
        let (prov, txns, reg) = h.dump();
        assert!(!prov.enabled && !txns.enabled && !reg.enabled);
        assert_eq!(h.explain_page(1), None);
    }

    #[test]
    fn txn_completion_feeds_the_registry() {
        let h = ObsHandle::recording(ObserveConfig::full());
        h.set_now(1_000);
        h.txn_start(7, 2, 64, 100);
        h.set_now(5_000);
        h.txn_complete(7, 3, 0, 400);
        let (_, txns, reg) = h.dump();
        assert_eq!(txns.records.len(), 1);
        assert_eq!(txns.records[0].end_ns, 5_000);
        let (count, p50, _, _) = reg.percentiles(RegMetric::DescLatency);
        assert_eq!(count, 1);
        assert!(p50 <= 4_000 && p50 > 3_000, "p50 = {p50}");
    }

    #[test]
    fn shared_clones_observe_one_book() {
        let a = ObsHandle::recording(ObserveConfig::full());
        let b = a.clone();
        a.set_now(10);
        b.on_map(5, 1, 0, 0);
        let (prov, _, _) = a.dump();
        assert_eq!(prov.pages.len(), 1);
        assert_eq!(prov.pages[0].events[0].at, 10);
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let h = ObsHandle::recording(ObserveConfig::full());
        h.set_now(100);
        h.on_map(1, 2, 0, 0);
        h.txn_start(1, 0, 2, 5);
        h.set_now(200);
        h.txn_complete(1, 0, 0, 3);
        h.gauge_sample(200, 0, 10, 2);
        let mut w = SnapWriter::new();
        h.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        let back = ObsHandle::unsnap(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(back.dump(), h.dump());
        let mut w2 = SnapWriter::new();
        back.snap(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }
}
