//! Disjoint CPU-span attribution.
//!
//! The legacy counters overlap: `map_cpu_ns` is *all* driver datapath CPU
//! (it includes invalidation submission) and `invalidation_cpu_ns` is the
//! invalidation subset of it. [`SpanSet`] splits the same charges into six
//! disjoint buckets, so `total_ns()` equals the legacy `map_cpu_ns` and
//! `invalidation_ns()` equals the legacy `invalidation_cpu_ns` — an
//! identity the differential test in `tests/telemetry.rs` pins down.

/// The disjoint CPU attribution buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// IOVA allocator work (cache hits, tree walks) on the map path.
    Alloc,
    /// IOMMU page-table mapping on RX-prepare and TX-map paths.
    Map,
    /// IOMMU page-table unmapping on completion paths.
    Unmap,
    /// Synchronous invalidation-queue wait (batched or per-call).
    InvalidationWait,
    /// Completion-side bookkeeping (frees, pinned-pool recycling).
    Completion,
    /// Fault-recovery overhead (per-page fallback retries, extra flushes).
    Recovery,
}

impl Span {
    /// Number of spans.
    pub const COUNT: usize = 6;

    /// All spans, in index order.
    pub const ALL: [Span; Span::COUNT] = [
        Span::Alloc,
        Span::Map,
        Span::Unmap,
        Span::InvalidationWait,
        Span::Completion,
        Span::Recovery,
    ];

    /// Dense index of this span.
    pub fn index(self) -> usize {
        match self {
            Span::Alloc => 0,
            Span::Map => 1,
            Span::Unmap => 2,
            Span::InvalidationWait => 3,
            Span::Completion => 4,
            Span::Recovery => 5,
        }
    }

    /// Stable lowercase name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Span::Alloc => "alloc",
            Span::Map => "map",
            Span::Unmap => "unmap",
            Span::InvalidationWait => "invalidation-wait",
            Span::Completion => "completion",
            Span::Recovery => "recovery",
        }
    }
}

/// Accumulated CPU nanoseconds per [`Span`], whole-run (warmup included),
/// matching the windowing of the legacy `map_cpu_ns` counter it refines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanSet {
    ns: [u64; Span::COUNT],
}

impl SpanSet {
    /// An all-zero span set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` nanoseconds to `span`.
    #[inline]
    pub fn charge(&mut self, span: Span, ns: u64) {
        self.ns[span.index()] += ns;
    }

    /// Accumulated nanoseconds in `span`.
    pub fn get(&self, span: Span) -> u64 {
        self.ns[span.index()]
    }

    /// Sum over all spans — equals the legacy `map_cpu_ns`.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Invalidation-attributed subset (wait + recovery) — equals the
    /// legacy `invalidation_cpu_ns`.
    pub fn invalidation_ns(&self) -> u64 {
        self.get(Span::InvalidationWait) + self.get(Span::Recovery)
    }

    /// Non-invalidation datapath CPU (alloc/map/unmap/completion).
    pub fn datapath_ns(&self) -> u64 {
        self.total_ns() - self.invalidation_ns()
    }

    /// Merges another span set into this one.
    pub fn merge(&mut self, other: &SpanSet) {
        for i in 0..Span::COUNT {
            self.ns[i] += other.ns[i];
        }
    }

    /// Serializes all buckets in index order for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        for &ns in &self.ns {
            w.u64(ns);
        }
    }

    /// Rebuilds a span set captured by [`SpanSet::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let mut ns = [0u64; Span::COUNT];
        for slot in &mut ns {
            *slot = r.u64()?;
        }
        Ok(Self { ns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, s) in Span::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn totals_partition_into_invalidation_and_datapath() {
        let mut s = SpanSet::new();
        s.charge(Span::Alloc, 10);
        s.charge(Span::Map, 20);
        s.charge(Span::Unmap, 30);
        s.charge(Span::InvalidationWait, 40);
        s.charge(Span::Completion, 50);
        s.charge(Span::Recovery, 60);
        assert_eq!(s.total_ns(), 210);
        assert_eq!(s.invalidation_ns(), 100);
        assert_eq!(s.datapath_ns(), 110);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = SpanSet::new();
        a.charge(Span::Map, 5);
        let mut b = SpanSet::new();
        b.charge(Span::Map, 7);
        b.charge(Span::Recovery, 1);
        a.merge(&b);
        assert_eq!(a.get(Span::Map), 12);
        assert_eq!(a.get(Span::Recovery), 1);
    }
}
