//! A minimal, dependency-free JSON writer.
//!
//! The workspace builds offline, so there is no serde; every JSON artifact
//! (Chrome traces, `--metrics-json`, `BENCH_simcore.json`) goes through
//! this writer instead of ad-hoc `format!` strings. Output is fully
//! deterministic: fields appear exactly in emission order and integers are
//! formatted with no locale or platform variation.

/// Appends `s` to `buf` with JSON string escaping (quotes, backslashes,
/// and control characters; non-ASCII passes through as UTF-8).
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Streaming JSON writer with automatic comma placement.
///
/// ```
/// use fns_trace::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("runs");
/// w.begin_array();
/// w.u64(3);
/// w.u64(4);
/// w.end_array();
/// w.key("label");
/// w.string("fig2");
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"runs":[3,4],"label":"fig2"}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once it holds an element.
    has_elem: Vec<bool>,
    /// A key was just written; the next value must not emit a comma.
    after_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with a preallocated buffer (for large traces).
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: String::with_capacity(bytes),
            ..Self::default()
        }
    }

    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
        }
    }

    /// Opens an object (`{`) in value position.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.has_elem.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.has_elem.pop();
        self.buf.push('}');
    }

    /// Opens an array (`[`) in value position.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.has_elem.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.has_elem.pop();
        self.buf.push(']');
    }

    /// Writes an object key; the next write supplies its value.
    pub fn key(&mut self, k: &str) {
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        self.after_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.pre_value();
        self.buf.push_str(itoa(v).as_str());
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.pre_value();
        if v < 0 {
            self.buf.push('-');
            self.buf.push_str(itoa(v.unsigned_abs()).as_str());
        } else {
            self.buf.push_str(itoa(v as u64).as_str());
        }
    }

    /// Writes a float value (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            let s = format!("{v}");
            self.buf.push_str(&s);
            // `{}` renders integral floats without a fraction; keep the
            // value typed as a float for strict consumers.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                self.buf.push_str(".0");
            }
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Writes a pre-formatted raw token (caller guarantees valid JSON).
    /// Used for the fixed-point Chrome timestamps, which must be emitted
    /// digit-for-digit identically on every platform.
    pub fn raw(&mut self, token: &str) {
        self.pre_value();
        self.buf.push_str(token);
    }

    /// Convenience: `key` + `u64` value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// Convenience: `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Convenience: `key` + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// Convenience: `key` + bool value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
    }

    /// Returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Allocation-free u64 formatting into a stack buffer.
fn itoa(mut v: u64) -> ItoaBuf {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    ItoaBuf { buf, start: i }
}

struct ItoaBuf {
    buf: [u8; 20],
    start: usize,
}

impl ItoaBuf {
    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[self.start..]).expect("ASCII digits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\r\u{1}π");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\r\\u0001π");
    }

    #[test]
    fn nested_containers_place_commas_correctly() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.begin_object();
        w.field_u64("x", 1);
        w.end_object();
        w.begin_object();
        w.field_u64("x", 2);
        w.field_str("y", "z");
        w.end_object();
        w.end_array();
        w.field_bool("ok", true);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[{"x":1},{"x":2,"y":"z"}],"ok":true}"#);
    }

    #[test]
    fn numbers_format_plainly() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.u64(0);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(1.5);
        w.f64(3.0);
        w.f64(f64::NAN);
        w.end_array();
        assert_eq!(w.finish(), "[0,18446744073709551615,-42,1.5,3.0,null]");
    }

    #[test]
    fn escaping_boundary_values() {
        // Empty string, the control-range boundary (0x1f escaped, 0x20
        // passes), DEL (0x7f is not a JSON control char — passes through),
        // and escapes inside keys.
        let mut s = String::new();
        escape_into(&mut s, "");
        assert_eq!(s, "");
        s.clear();
        escape_into(&mut s, "\u{1f}\u{20}\u{7f}");
        assert_eq!(s, "\\u001f \u{7f}");
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("a\"b", "c\\d");
        w.end_object();
        assert_eq!(w.finish(), r#"{"a\"b":"c\\d"}"#);
    }

    #[test]
    fn integer_extremes_format_exactly() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.u64(u64::MAX - 1);
        w.u64(1);
        w.i64(i64::MIN);
        w.i64(i64::MAX);
        w.end_array();
        assert_eq!(
            w.finish(),
            "[18446744073709551614,1,-9223372036854775808,9223372036854775807]"
        );
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.end_array();
        w.key("b");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[],"b":{}}"#);
    }
}
