//! Deterministic telemetry plane for the F&S simulation.
//!
//! The paper's argument rests on *mechanism-level* observables — IOTLB miss
//! cost, PTcache hit rates, invalidation-queue wait time — but end-of-run
//! aggregates cannot show *when* a PTcache went cold or *where*
//! `map_cpu_ns` was actually spent. This crate provides three facilities,
//! all stamped with sim-time [`Nanos`] and free of wall-clock reads so a
//! traced run stays bit-identical at any worker count:
//!
//! * [`record`] — a bounded ring-buffer recorder of compact typed events
//!   ([`TraceData`]), shared between the simulation layers through the
//!   enum-dispatch [`TraceHandle`] (a disabled handle is a single
//!   discriminant check per site, so tracing off costs ~0);
//! * [`sampler`] — fixed-size time series of integer gauges (cache
//!   occupancy, queue depths, outstanding DMA bytes) snapshotted at a
//!   configurable sim-time interval;
//! * [`span`] — disjoint CPU-span attribution ([`SpanSet`]) replacing the
//!   overlapping `map_cpu_ns`/`invalidation_cpu_ns` pair with a
//!   six-way breakdown charged at the existing driver cost sites.
//!
//! [`chrome`] exports a drained [`Trace`] (plus the sample series) as
//! Chrome `trace_event` JSON that loads directly in Perfetto or
//! `chrome://tracing`; [`json`] is the dependency-free JSON writer behind
//! it, reused by the metrics serializer and the benchmark harness.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod provenance;
pub mod record;
pub mod recorder;
pub mod sampler;
pub mod span;
pub mod txn;

pub use chrome::{chrome_trace_json, chrome_trace_json_with};
pub use json::{escape_into, JsonWriter};
pub use metrics::{LogHistogram, MetricsRegistry, RegMetric, RegSample, RegStat, RegistryReport};
pub use provenance::{
    PageEvent, PageEventKind, PageTimeline, ProvenanceBook, ProvenanceDump, DEFAULT_PROV_EVENTS,
    DEFAULT_PROV_PAGES, DEVICE_FLOW,
};
pub use record::{
    Trace, TraceCategory, TraceConfig, TraceData, TraceEvent, TraceHandle, DEFAULT_TRACE_CAPACITY,
};
pub use recorder::{ObsHandle, ObserveConfig, Observer, DEFAULT_FLIGHT_CAPACITY, NO_FOCUS};
pub use sampler::{ProbeConfig, Sample, SampleSet, Sampler};
pub use span::{Span, SpanSet};
pub use txn::{TxnDump, TxnRecord, TxnTrace, DEFAULT_TXN_CAPACITY};

pub use fns_sim::time::Nanos;
