//! DMA transaction causal spans: one record per Rx descriptor, threading
//! it from preparation (allocation + mapping) through device DMA to
//! completion (unmap + invalidation wait).
//!
//! Each record carries the child-span durations the critical path is made
//! of — mapping CPU at preparation, the invalidation-queue wait at
//! completion — so the 50–60% invalidation-wait share the span table
//! reports in aggregate becomes visible *per transaction*. The Chrome
//! exporter renders the records as async `b`/`e` span pairs plus
//! `s`/`f` flow events so Perfetto draws the causal arrows.
//!
//! Transaction IDs are the driver's monotonically assigned descriptor IDs
//! (no RNG); records live in a bounded ring, oldest-overwritten, and every
//! dump is emitted in completion order — an armed run stays bit-identical
//! to a bare run modulo the dump itself.

use std::collections::BTreeMap;

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::Nanos;

/// Default completed-transaction ring capacity.
pub const DEFAULT_TXN_CAPACITY: u32 = 8192;

/// One descriptor's causal span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnRecord {
    /// Descriptor ID (monotone per run; doubles as the Chrome span ID).
    pub id: u64,
    /// Core the descriptor was prepared on.
    pub flow: u32,
    /// Pages in the descriptor.
    pub pages: u32,
    /// Preparation sim-time.
    pub start_ns: Nanos,
    /// CPU spent mapping at preparation (child span).
    pub map_ns: Nanos,
    /// CPU spent waiting on the invalidation queue at completion (child
    /// span; the per-transaction face of the invalidation-wait share).
    pub inv_wait_ns: Nanos,
    /// Completion sim-time (0 while the transaction is open).
    pub end_ns: Nanos,
}

impl TxnRecord {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.id);
        w.u32(self.flow);
        w.u32(self.pages);
        w.u64(self.start_ns);
        w.u64(self.map_ns);
        w.u64(self.inv_wait_ns);
        w.u64(self.end_ns);
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Self {
            id: r.u64()?,
            flow: r.u32()?,
            pages: r.u32()?,
            start_ns: r.u64()?,
            map_ns: r.u64()?,
            inv_wait_ns: r.u64()?,
            end_ns: r.u64()?,
        })
    }
}

/// The live transaction recorder: open spans keyed by descriptor ID plus
/// a bounded ring of completed records.
#[derive(Debug, Clone)]
pub struct TxnTrace {
    capacity: usize,
    done: Vec<TxnRecord>,
    head: usize,
    /// Completed records overwritten after the ring filled.
    pub dropped: u64,
    /// Open (prepared, not yet completed) spans. Bounded in practice by
    /// ring occupancy: a descriptor is completed before its slot is
    /// reposted.
    open: BTreeMap<u64, TxnRecord>,
}

impl TxnTrace {
    /// Creates a recorder with a completed-record ring of `capacity`.
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity: capacity.max(1) as usize,
            done: Vec::new(),
            head: 0,
            dropped: 0,
            open: BTreeMap::new(),
        }
    }

    /// Opens a transaction at preparation time.
    pub fn start(&mut self, id: u64, at: Nanos, flow: u32, pages: u32, map_ns: Nanos) {
        self.open.insert(
            id,
            TxnRecord {
                id,
                flow,
                pages,
                start_ns: at,
                map_ns,
                inv_wait_ns: 0,
                end_ns: 0,
            },
        );
    }

    /// Completes a transaction and returns the finished record; unmatched
    /// IDs (e.g. descriptors prepared before the recorder was armed) are
    /// ignored.
    pub fn complete(&mut self, id: u64, at: Nanos, inv_wait_ns: Nanos) -> Option<TxnRecord> {
        let mut rec = self.open.remove(&id)?;
        rec.inv_wait_ns = inv_wait_ns;
        rec.end_ns = at;
        if self.done.len() < self.capacity {
            self.done.push(rec);
        } else {
            self.done[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
        Some(rec)
    }

    /// Completed records currently held.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether no record has completed.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Open (uncompleted) spans.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Dumps completed records in completion order (open spans are
    /// counted, not listed — they are still in flight).
    pub fn dump(&self) -> TxnDump {
        let mut records = self.done.clone();
        records.rotate_left(self.head);
        TxnDump {
            enabled: true,
            records,
            open: self.open.len() as u64,
            dropped: self.dropped,
        }
    }

    /// Serializes the recorder (ring + open table, deterministic order).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.capacity);
        w.usize(self.head);
        w.u64(self.dropped);
        w.seq(self.done.len());
        for rec in &self.done {
            rec.snap(w);
        }
        w.seq(self.open.len());
        for rec in self.open.values() {
            rec.snap(w);
        }
    }

    /// Rebuilds a recorder captured by [`TxnTrace::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let capacity = r.usize()?;
        let head = r.usize()?;
        let dropped = r.u64()?;
        let n = r.seq()?;
        if capacity == 0 || n > capacity || (head >= n && head != 0) {
            return Err(SnapError::BadTag {
                what: "txn ring geometry",
                tag: n as u64,
            });
        }
        let mut done = Vec::with_capacity(n);
        for _ in 0..n {
            done.push(TxnRecord::unsnap(r)?);
        }
        let m = r.seq()?;
        let mut open = BTreeMap::new();
        for _ in 0..m {
            let rec = TxnRecord::unsnap(r)?;
            open.insert(rec.id, rec);
        }
        Ok(Self {
            capacity,
            done,
            head,
            dropped,
            open,
        })
    }
}

/// End-of-run transaction dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnDump {
    /// Whether a recorder was armed at all.
    pub enabled: bool,
    /// Completed records in completion order (oldest retained first).
    pub records: Vec<TxnRecord>,
    /// Spans still open at the end of the run.
    pub open: u64,
    /// Completed records lost to the ring bound.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_in_order_and_overwrites_oldest() {
        let mut t = TxnTrace::new(2);
        for id in 0..3u64 {
            t.start(id, id * 10, 0, 64, 5);
            t.complete(id, id * 10 + 7, 3);
        }
        let d = t.dump();
        assert_eq!(d.dropped, 1);
        assert_eq!(
            d.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(d.records[0].end_ns, 17);
        assert_eq!(d.open, 0);
    }

    #[test]
    fn unmatched_completion_is_ignored() {
        let mut t = TxnTrace::new(4);
        t.complete(42, 10, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn snapshot_roundtrip_preserves_open_spans() {
        let mut t = TxnTrace::new(4);
        t.start(1, 10, 0, 64, 5);
        t.complete(1, 20, 2);
        t.start(2, 30, 1, 64, 6);
        let mut w = SnapWriter::new();
        t.snap(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        let mut back = TxnTrace::unsnap(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(back.dump(), t.dump());
        back.complete(2, 40, 3);
        assert_eq!(back.dump().records.len(), 2);
    }
}
