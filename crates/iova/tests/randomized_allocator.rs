//! Dependency-free randomized tests for the IOVA allocation substrate.
//!
//! These port the safety-critical allocator invariants from
//! `proptest_allocator.rs` (DESIGN.md §6) to plain `#[test]`s driven by
//! [`fns_sim::rng::SimRng`], so they run in the offline tier-1 suite: live
//! ranges never overlap, frees always succeed for live ranges, and the
//! red-black tree structure invariants hold after arbitrary op sequences.

use std::collections::VecDeque;

use fns_iova::rbtree::RbIntervalTree;
use fns_iova::{CachingAllocator, IovaAllocator, IovaRange, RbTreeAllocator, RcacheConfig};
use fns_sim::rng::SimRng;

/// A randomly generated allocator workload step.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        pages: u64,
        core: usize,
    },
    /// Frees the `idx % live`-th live range (no-op when none are live).
    Free {
        idx: usize,
        core: usize,
    },
}

fn random_ops(rng: &mut SimRng, max_pages: u64, cores: usize, max_len: u64) -> Vec<Op> {
    let n = rng.range(1, max_len);
    (0..n)
        .map(|_| {
            if rng.chance(0.5) {
                Op::Alloc {
                    pages: rng.range(1, max_pages + 1),
                    core: rng.index(cores),
                }
            } else {
                Op::Free {
                    idx: rng.next_u64() as usize,
                    core: rng.index(cores),
                }
            }
        })
        .collect()
}

/// Runs ops against an allocator, asserting the no-overlap invariant on the
/// live set after every step.
fn run_workload<A: IovaAllocator>(alloc: &mut A, ops: &[Op], check_every: usize) {
    let mut live: Vec<IovaRange> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Alloc { pages, core } => {
                if let Some(r) = alloc.alloc(pages, core) {
                    assert_eq!(r.pages(), pages);
                    for l in &live {
                        assert!(!l.overlaps(r), "allocator returned overlapping range");
                    }
                    live.push(r);
                }
            }
            Op::Free { idx, core } => {
                if !live.is_empty() {
                    let r = live.swap_remove(idx % live.len());
                    alloc.free(r, core);
                }
            }
        }
        if step % check_every == 0 {
            assert_eq!(alloc.live_ranges(), live.len());
        }
    }
    // Drain and make sure the allocator agrees nothing is live.
    for r in live.drain(..) {
        alloc.free(r, 0);
    }
    assert_eq!(alloc.live_ranges(), 0);
}

#[test]
fn rbtree_allocator_never_overlaps() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed(0x1EAF + case);
        let ops = random_ops(&mut rng, 64, 1, 200);
        let mut a = RbTreeAllocator::new();
        run_workload(&mut a, &ops, 7);
        a.tree().check_invariants().unwrap();
    }
}

#[test]
fn caching_allocator_never_overlaps() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed(0x2EAF + case);
        let ops = random_ops(&mut rng, 64, 4, 300);
        let mut a = CachingAllocator::with_defaults(4);
        run_workload(&mut a, &ops, 7);
        a.tree().tree().check_invariants().unwrap();
    }
}

#[test]
fn caching_allocator_small_magazines() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed(0x3EAF + case);
        let ops = random_ops(&mut rng, 8, 2, 300);
        // Tiny magazines + depot force constant rotation/eviction traffic.
        let cfg = RcacheConfig {
            magazine_size: 2,
            depot_max: 1,
            max_cached_pages: 8,
        };
        let mut a = CachingAllocator::new(2, cfg);
        run_workload(&mut a, &ops, 3);
        a.tree().tree().check_invariants().unwrap();
    }
}

#[test]
fn rbtree_invariants_under_random_ops() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed(0x4EAF + case);
        let mut t = RbIntervalTree::new();
        let mut inserted: Vec<u64> = Vec::new();
        let n = rng.range(1, 200);
        for _ in 0..n {
            let lo = rng.range(0, 10_000);
            let len = rng.range(1, 64);
            if t.insert(lo, lo + len - 1).is_ok() {
                inserted.push(lo);
            }
            if rng.chance(0.5) && !inserted.is_empty() {
                let victim = inserted.swap_remove(rng.index(inserted.len()));
                assert!(t.remove(victim));
            }
            t.check_invariants().unwrap();
        }
        // In-order traversal must be sorted and disjoint.
        let ranges = t.iter_inorder();
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "overlap or disorder: {w:?}");
        }
        assert_eq!(ranges.len(), inserted.len());
    }
}

#[test]
fn rbtree_black_height_is_logarithmic() {
    // Sequential inserts are the classic worst case for naive BSTs; the
    // RB tree must stay balanced.
    let mut rng = SimRng::seed(0x5EAF);
    for _ in 0..16 {
        let n = rng.range(1, 800);
        let mut t = RbIntervalTree::new();
        for i in 0..n {
            t.insert(i * 2, i * 2).unwrap();
        }
        t.check_invariants().unwrap();
        // Spot-check lookups still work.
        assert_eq!(t.get((n - 1) * 2), Some(((n - 1) * 2, (n - 1) * 2)));
    }
}

#[test]
fn alloc_free_alloc_is_stable_same_core() {
    // Freeing to a core's magazine and re-allocating on the same core must
    // return the same range (LIFO hit), for every size class.
    for pages in 1u64..32 {
        let mut a = CachingAllocator::with_defaults(2);
        let r = a.alloc(pages, 1).unwrap();
        a.free(r, 1);
        assert_eq!(a.alloc(pages, 1), Some(r), "size class {pages}");
    }
}

/// Drives a multi-core Rx + Tx(ACK) alloc/free pattern against the caching
/// allocator and returns the mean reuse distance of PT-L4 page keys over the
/// second half of the allocation stream (the measurement behind Figures
/// 2e/3e).
///
/// Tx frees land on the *next* core — in Linux the Tx completion IRQ often
/// runs on a different core than the one that allocated the IOVA — which is
/// the cross-core churn §2.2 blames for locality decay.
fn locality_mean_reuse_distance(cores: usize, ring_pages: usize, rounds: usize) -> f64 {
    use fns_sim::stats::ReuseDistance;

    let mut a = CachingAllocator::with_defaults(cores);
    let mut rx: Vec<VecDeque<IovaRange>> = vec![VecDeque::new(); cores];
    let mut tx: Vec<VecDeque<IovaRange>> = vec![VecDeque::new(); cores];
    let mut rd = ReuseDistance::new();
    let mut state: u64 = 999;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..rounds {
        for c in 0..cores {
            // Descriptor refill: 64 pages.
            for _ in 0..64 {
                let r = a.alloc(1, c).unwrap();
                rd.access(r.base().l4_page_key());
                rx[c].push_back(r);
            }
            // ACK transmissions, freed by the completion core.
            for _ in 0..(next() % 21) {
                let r = a.alloc(1, c).unwrap();
                rd.access(r.base().l4_page_key());
                tx[c].push_back(r);
            }
            while tx[c].len() > 8 {
                let r = tx[c].pop_front().unwrap();
                a.free(r, (c + 1) % cores);
            }
            while rx[c].len() > ring_pages {
                for _ in 0..64 {
                    let r = rx[c].pop_front().unwrap();
                    a.free(r, c);
                }
            }
        }
    }
    let ds = rd.distances();
    let vals: Vec<u64> = ds[ds.len() / 2..].iter().filter_map(|d| *d).collect();
    vals.iter().sum::<u64>() as f64 / vals.len().max(1) as f64
}

#[test]
fn locality_decays_with_working_set_size() {
    // The Figure 3e mechanism: an 8x larger ring buffer spreads the IOVA
    // working set over many more PT-L4 pages, and the per-core caches mix
    // them, inflating reuse distances well past the F&S per-descriptor bound
    // of <= 2 unique PTcache-L3 entries.
    let small = locality_mean_reuse_distance(5, 512, 1500);
    let large = locality_mean_reuse_distance(5, 4096, 1500);
    assert!(
        large > 2.0 * small,
        "expected ring-size-driven decay: small={small:.2} large={large:.2}"
    );
    assert!(
        large > 2.0,
        "stock allocator should exceed the F&S locality bound, got {large:.2}"
    );
}
