#![cfg(feature = "proptest")]
//! Requires re-adding `proptest` to this crate's [dev-dependencies].

//! Property tests for the IOVA allocation substrate.
//!
//! These encode the safety-critical allocator invariants from DESIGN.md §6:
//! live ranges never overlap, frees always succeed for live ranges, and the
//! red-black tree structure invariants hold after arbitrary op sequences.

use proptest::prelude::*;

use fns_iova::rbtree::RbIntervalTree;
use fns_iova::{CachingAllocator, IovaAllocator, IovaRange, RbTreeAllocator, RcacheConfig};

/// A randomly generated allocator workload step.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        pages: u64,
        core: usize,
    },
    /// Frees the `idx % live`-th live range (no-op when none are live).
    Free {
        idx: usize,
        core: usize,
    },
}

fn op_strategy(max_pages: u64, cores: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..=max_pages, 0..cores).prop_map(|(pages, core)| Op::Alloc { pages, core }),
        (any::<usize>(), 0..cores).prop_map(|(idx, core)| Op::Free { idx, core }),
    ]
}

/// Runs ops against an allocator, asserting the no-overlap invariant on the
/// live set after every step.
fn run_workload<A: IovaAllocator>(alloc: &mut A, ops: &[Op], check_every: usize) {
    let mut live: Vec<IovaRange> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Alloc { pages, core } => {
                if let Some(r) = alloc.alloc(pages, core) {
                    assert_eq!(r.pages(), pages);
                    for l in &live {
                        assert!(!l.overlaps(r), "allocator returned overlapping range");
                    }
                    live.push(r);
                }
            }
            Op::Free { idx, core } => {
                if !live.is_empty() {
                    let r = live.swap_remove(idx % live.len());
                    alloc.free(r, core);
                }
            }
        }
        if step % check_every == 0 {
            assert_eq!(alloc.live_ranges(), live.len());
        }
    }
    // Drain and make sure the allocator agrees nothing is live.
    for r in live.drain(..) {
        alloc.free(r, 0);
    }
    assert_eq!(alloc.live_ranges(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rbtree_allocator_never_overlaps(ops in proptest::collection::vec(op_strategy(64, 1), 1..200)) {
        let mut a = RbTreeAllocator::new();
        run_workload(&mut a, &ops, 7);
        a.tree().check_invariants().unwrap();
    }

    #[test]
    fn caching_allocator_never_overlaps(ops in proptest::collection::vec(op_strategy(64, 4), 1..300)) {
        let mut a = CachingAllocator::with_defaults(4);
        run_workload(&mut a, &ops, 7);
        a.tree().tree().check_invariants().unwrap();
    }

    #[test]
    fn caching_allocator_small_magazines(ops in proptest::collection::vec(op_strategy(8, 2), 1..300)) {
        // Tiny magazines + depot force constant rotation/eviction traffic.
        let cfg = RcacheConfig { magazine_size: 2, depot_max: 1, max_cached_pages: 8 };
        let mut a = CachingAllocator::new(2, cfg);
        run_workload(&mut a, &ops, 3);
        a.tree().tree().check_invariants().unwrap();
    }

    #[test]
    fn rbtree_invariants_under_random_ops(
        inserts in proptest::collection::vec((0u64..10_000, 1u64..64), 1..200),
        remove_mask in proptest::collection::vec(any::<bool>(), 200),
    ) {
        let mut t = RbIntervalTree::new();
        let mut inserted: Vec<u64> = Vec::new();
        for (i, &(lo, len)) in inserts.iter().enumerate() {
            if t.insert(lo, lo + len - 1).is_ok() {
                inserted.push(lo);
            }
            if remove_mask[i % remove_mask.len()] && !inserted.is_empty() {
                let victim = inserted.swap_remove(i % inserted.len());
                assert!(t.remove(victim));
            }
            t.check_invariants().unwrap();
        }
        // In-order traversal must be sorted and disjoint.
        let ranges = t.iter_inorder();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "overlap or disorder: {:?}", w);
        }
        prop_assert_eq!(ranges.len(), inserted.len());
    }

    #[test]
    fn rbtree_black_height_is_logarithmic(n in 1usize..800) {
        // Sequential inserts are the classic worst case for naive BSTs; the
        // RB tree must stay balanced.
        let mut t = RbIntervalTree::new();
        for i in 0..n as u64 {
            t.insert(i * 2, i * 2).unwrap();
        }
        t.check_invariants().unwrap();
        // Spot-check lookups still work.
        prop_assert_eq!(t.get((n as u64 - 1) * 2), Some(((n as u64 - 1) * 2, (n as u64 - 1) * 2)));
    }

    #[test]
    fn alloc_free_alloc_is_stable_same_core(pages in 1u64..32) {
        // Freeing to a core's magazine and re-allocating on the same core
        // must return the same range (LIFO hit), for every size class.
        let mut a = CachingAllocator::with_defaults(2);
        let r = a.alloc(pages, 1).unwrap();
        a.free(r, 1);
        prop_assert_eq!(a.alloc(pages, 1), Some(r));
    }
}

// The dependency-free locality-decay test moved to
// `randomized_allocator.rs`, which runs in the offline tier-1 suite.
