//! Per-core IOVA magazine caches (Linux `iova_rcache`).
//!
//! Linux fronts the red-black tree with per-CPU caches to make the common
//! alloc/free path O(1) and lock-free: each core holds two magazines
//! (`loaded` and `prev`) of cached pfns per size class, with a bounded global
//! depot of full magazines behind them. Cached pfns *remain inserted in the
//! tree* — they are address space held hostage by the cache — and only
//! return to the tree when a magazine is evicted from a full depot.
//!
//! This design is the villain of the paper's §2.2: per-core LIFO recycling
//! scrambles the correspondence between allocation order and address order,
//! so successive IOVAs handed to a descriptor land on many different PT-L4
//! pages, blowing out the PTcache-L3 working set (Figures 2e and 3e).

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::rbtree_alloc::{snap_alloc_stats, unsnap_alloc_stats, RbTreeAllocator};
use crate::types::IovaRange;
use crate::{AllocError, AllocStats, IovaAllocator};

/// Configuration of the magazine cache hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct RcacheConfig {
    /// Entries per magazine (Linux: `IOVA_MAG_SIZE = 128`).
    pub magazine_size: usize,
    /// Maximum full magazines in the global depot per size class
    /// (Linux: `MAX_GLOBAL_MAGS = 32`).
    pub depot_max: usize,
    /// Largest allocation size, in pages, served from the caches
    /// (Linux caches orders 0..=5, i.e. up to 32 pages; larger requests –
    /// such as F&S's 64-page descriptor chunks – go straight to the tree).
    pub max_cached_pages: u64,
}

impl Default for RcacheConfig {
    fn default() -> Self {
        Self {
            magazine_size: 128,
            depot_max: 32,
            max_cached_pages: 32,
        }
    }
}

/// One core's two-magazine cache for a single size class.
#[derive(Debug, Clone, Default)]
struct CpuRcache {
    loaded: Vec<u64>,
    prev: Vec<u64>,
}

/// Per-size-class shared state: the global depot of full magazines.
#[derive(Debug, Clone, Default)]
struct Depot {
    magazines: Vec<Vec<u64>>,
}

/// The Linux-style caching IOVA allocator: per-core magazines over a
/// red-black tree.
///
/// # Examples
///
/// ```
/// use fns_iova::{CachingAllocator, IovaAllocator};
///
/// let mut a = CachingAllocator::with_defaults(4);
/// let r = a.alloc(1, 2).unwrap();
/// a.free(r, 2);
/// // The free went into core 2's magazine, so the next alloc on core 2
/// // recycles the same range without touching the tree...
/// assert_eq!(a.alloc(1, 2), Some(r));
/// // ...but another core cannot see it and must hit the tree.
/// assert_ne!(a.alloc(1, 3), Some(r));
/// ```
#[derive(Debug, Clone)]
pub struct CachingAllocator {
    tree: RbTreeAllocator,
    config: RcacheConfig,
    /// `caches[core][pages - 1]`, only for `pages <= max_cached_pages`.
    caches: Vec<Vec<CpuRcache>>,
    /// `depots[pages - 1]`.
    depots: Vec<Depot>,
    live: usize,
    /// Total pages across currently-live allocations (telemetry gauge).
    live_pages: u64,
    stats: AllocStats,
    /// Allocations satisfied from a per-core magazine.
    pub cache_hits: u64,
    /// Allocations satisfied by pulling a magazine from the depot.
    pub depot_refills: u64,
}

impl CachingAllocator {
    /// Creates an allocator with Linux-default cache parameters for `cores`
    /// CPU cores.
    pub fn with_defaults(cores: usize) -> Self {
        Self::new(cores, RcacheConfig::default())
    }

    /// Creates an allocator with explicit cache parameters.
    pub fn new(cores: usize, config: RcacheConfig) -> Self {
        assert!(cores > 0, "need at least one core");
        let classes = config.max_cached_pages as usize;
        Self {
            tree: RbTreeAllocator::new(),
            config,
            caches: vec![vec![CpuRcache::default(); classes]; cores],
            depots: vec![Depot::default(); classes],
            live: 0,
            live_pages: 0,
            stats: AllocStats::default(),
            cache_hits: 0,
            depot_refills: 0,
        }
    }

    /// The cache configuration in use.
    pub fn config(&self) -> RcacheConfig {
        self.config
    }

    /// Read access to the backing tree allocator.
    pub fn tree(&self) -> &RbTreeAllocator {
        &self.tree
    }

    /// Total pages held by live allocations (outstanding mapped address
    /// space, before the cache layer's parked ranges).
    pub fn live_pages(&self) -> u64 {
        self.live_pages
    }

    fn class(&self, pages: u64) -> Option<usize> {
        if pages >= 1 && pages <= self.config.max_cached_pages {
            Some(pages as usize - 1)
        } else {
            None
        }
    }

    /// Number of pfns currently parked in magazines/depot for `pages`-sized
    /// ranges (address space held by the cache layer).
    pub fn cached_count(&self, pages: u64) -> usize {
        let Some(cls) = self.class(pages) else {
            return 0;
        };
        let per_core: usize = self
            .caches
            .iter()
            .map(|c| c[cls].loaded.len() + c[cls].prev.len())
            .sum();
        let depot: usize = self.depots[cls].magazines.iter().map(Vec::len).sum();
        per_core + depot
    }

    /// Fragmentation of the backing tree's allocated region, in pages:
    /// `(free_spans, largest_run)` over interior gaps. See
    /// [`RbTreeAllocator::fragmentation`]. Magazine-parked pfns stay in the
    /// tree, so this gauge sees the cache layer's held-hostage address
    /// space exactly as the hardware page tables would.
    pub fn fragmentation(&self) -> (u64, u64) {
        self.tree.fragmentation()
    }

    /// Serializes the full allocator state for checkpointing. Magazine and
    /// depot stack orders travel verbatim — they decide which pfn the next
    /// alloc hands out.
    pub fn snap(&self, w: &mut SnapWriter) {
        self.tree.snap(w);
        w.usize(self.config.magazine_size);
        w.usize(self.config.depot_max);
        w.u64(self.config.max_cached_pages);
        w.seq(self.caches.len());
        for core in &self.caches {
            w.seq(core.len());
            for c in core {
                w.u64_slice(&c.loaded);
                w.u64_slice(&c.prev);
            }
        }
        w.seq(self.depots.len());
        for d in &self.depots {
            w.seq(d.magazines.len());
            for mag in &d.magazines {
                w.u64_slice(mag);
            }
        }
        w.usize(self.live);
        w.u64(self.live_pages);
        snap_alloc_stats(&self.stats, w);
        w.u64(self.cache_hits);
        w.u64(self.depot_refills);
    }

    /// Rebuilds an allocator captured by [`CachingAllocator::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let tree = RbTreeAllocator::unsnap(r)?;
        let config = RcacheConfig {
            magazine_size: r.usize()?,
            depot_max: r.usize()?,
            max_cached_pages: r.u64()?,
        };
        let cores = r.seq()?;
        let mut caches = Vec::with_capacity(cores.min(1 << 12));
        for _ in 0..cores {
            let classes = r.seq()?;
            let mut core = Vec::with_capacity(classes.min(1 << 12));
            for _ in 0..classes {
                core.push(CpuRcache {
                    loaded: r.u64_vec()?,
                    prev: r.u64_vec()?,
                });
            }
            caches.push(core);
        }
        let classes = r.seq()?;
        let mut depots = Vec::with_capacity(classes.min(1 << 12));
        for _ in 0..classes {
            let mags = r.seq()?;
            let mut magazines = Vec::with_capacity(mags.min(1 << 12));
            for _ in 0..mags {
                magazines.push(r.u64_vec()?);
            }
            depots.push(Depot { magazines });
        }
        Ok(Self {
            tree,
            config,
            caches,
            depots,
            live: r.usize()?,
            live_pages: r.u64()?,
            stats: unsnap_alloc_stats(r)?,
            cache_hits: r.u64()?,
            depot_refills: r.u64()?,
        })
    }

    /// Drops every cached magazine back into the tree (Linux's
    /// `free_cpu_cached_iovas` / cache purge on hotplug). Exposed so tests
    /// and long-running simulations can emulate cache pressure.
    pub fn purge_caches(&mut self) {
        for cls in 0..self.depots.len() {
            let pages = cls as u64 + 1;
            let mut pfns: Vec<u64> = Vec::new();
            for core in &mut self.caches {
                pfns.append(&mut core[cls].loaded);
                pfns.append(&mut core[cls].prev);
            }
            let depot = std::mem::take(&mut self.depots[cls].magazines);
            for mag in depot {
                pfns.extend(mag);
            }
            for pfn in pfns {
                self.tree
                    .free_range(IovaRange::new(crate::types::Iova::from_pfn(pfn), pages));
            }
        }
    }
}

impl IovaAllocator for CachingAllocator {
    fn alloc(&mut self, pages: u64, core: usize) -> Option<IovaRange> {
        let Some(cls) = self.class(pages) else {
            // Oversized: straight to the tree (Linux behaviour for > 32 pages).
            let r = self.tree.alloc_range(pages);
            if r.is_some() {
                self.live += 1;
                self.live_pages += pages;
                self.stats.allocs += 1;
                self.stats.tree_allocs += 1;
            } else {
                self.stats.failures += 1;
            }
            return r;
        };
        let cache = &mut self.caches[core][cls];
        // 1. Loaded magazine.
        let pfn = if let Some(pfn) = cache.loaded.pop() {
            self.cache_hits += 1;
            Some(pfn)
        } else if !cache.prev.is_empty() {
            // 2. Swap in the previous magazine.
            std::mem::swap(&mut cache.loaded, &mut cache.prev);
            self.cache_hits += 1;
            cache.loaded.pop()
        } else if let Some(mag) = self.depots[cls].magazines.pop() {
            // 3. Refill from the depot.
            self.caches[core][cls].loaded = mag;
            self.depot_refills += 1;
            self.caches[core][cls].loaded.pop()
        } else {
            None
        };
        if let Some(pfn) = pfn {
            self.live += 1;
            self.live_pages += pages;
            self.stats.allocs += 1;
            return Some(IovaRange::new(crate::types::Iova::from_pfn(pfn), pages));
        }
        // 4. Fall through to the tree.
        let r = self.tree.alloc_range(pages);
        if r.is_some() {
            self.live += 1;
            self.live_pages += pages;
            self.stats.allocs += 1;
            self.stats.tree_allocs += 1;
        } else {
            self.stats.failures += 1;
        }
        r
    }

    fn free(&mut self, range: IovaRange, core: usize) {
        self.try_free(range, core)
            .expect("free without matching alloc");
    }

    fn try_free(&mut self, range: IovaRange, core: usize) -> Result<(), AllocError> {
        // A live count of zero means this range cannot have a matching
        // alloc; report it instead of underflowing.
        let live = self
            .live
            .checked_sub(1)
            .ok_or(AllocError::UnbalancedFree { range })?;
        let Some(cls) = self.class(range.pages()) else {
            // Oversized: straight back to the tree, which verifies the
            // range really was allocated.
            self.tree.try_free_range(range)?;
            self.live = live;
            self.live_pages = self.live_pages.saturating_sub(range.pages());
            self.stats.frees += 1;
            self.stats.tree_frees += 1;
            return Ok(());
        };
        self.live = live;
        self.live_pages = self.live_pages.saturating_sub(range.pages());
        self.stats.frees += 1;
        let mag_size = self.config.magazine_size;
        let cache = &mut self.caches[core][cls];
        if cache.loaded.len() < mag_size {
            cache.loaded.push(range.pfn_lo());
            return Ok(());
        }
        if cache.prev.len() < mag_size {
            // Loaded is full: rotate it to prev (Linux swaps and starts a
            // fresh loaded magazine).
            std::mem::swap(&mut cache.loaded, &mut cache.prev);
            cache.loaded.push(range.pfn_lo());
            return Ok(());
        }
        // Both magazines full: push the full prev magazine to the depot.
        let full = std::mem::take(&mut cache.prev);
        std::mem::swap(&mut cache.loaded, &mut cache.prev);
        cache.loaded.push(range.pfn_lo());
        let depot = &mut self.depots[cls];
        if depot.magazines.len() < self.config.depot_max {
            depot.magazines.push(full);
        } else {
            // Depot full: return the magazine's address space to the tree.
            let pages = range.pages();
            for pfn in full {
                self.tree
                    .free_range(IovaRange::new(crate::types::Iova::from_pfn(pfn), pages));
                self.stats.tree_frees += 1;
            }
        }
        Ok(())
    }

    fn live_ranges(&self) -> usize {
        self.live
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Iova;

    #[test]
    fn cache_hit_recycles_lifo() {
        let mut a = CachingAllocator::with_defaults(1);
        let r1 = a.alloc(1, 0).unwrap();
        let r2 = a.alloc(1, 0).unwrap();
        a.free(r1, 0);
        a.free(r2, 0);
        // LIFO: the most recently freed range comes back first.
        assert_eq!(a.alloc(1, 0), Some(r2));
        assert_eq!(a.alloc(1, 0), Some(r1));
        assert_eq!(a.cache_hits, 2);
    }

    #[test]
    fn cached_ranges_stay_in_tree() {
        let mut a = CachingAllocator::with_defaults(1);
        let r = a.alloc(1, 0).unwrap();
        a.free(r, 0);
        // The pfn sits in a magazine but its tree node remains, so a fresh
        // tree allocation cannot collide with it.
        assert_eq!(a.tree().live_ranges(), 1);
        assert_eq!(a.cached_count(1), 1);
        let other = a.alloc(2, 0).unwrap(); // different class: tree path
        assert!(!other.overlaps(r));
    }

    #[test]
    fn per_core_isolation() {
        let mut a = CachingAllocator::with_defaults(2);
        let r = a.alloc(1, 0).unwrap();
        a.free(r, 0);
        // Core 1 cannot see core 0's magazine.
        let other = a.alloc(1, 1).unwrap();
        assert_ne!(other, r);
    }

    #[test]
    fn oversized_bypasses_cache() {
        let mut a = CachingAllocator::with_defaults(1);
        let r = a.alloc(64, 0).unwrap();
        a.free(r, 0);
        assert_eq!(a.cached_count(64), 0);
        assert_eq!(a.stats().tree_frees, 1);
        let r2 = a.alloc(64, 0).unwrap();
        assert_eq!(r2, r, "tree reuses the same top-down slot");
        assert_eq!(a.cache_hits, 0);
    }

    #[test]
    fn magazine_rotation_and_depot() {
        let cfg = RcacheConfig {
            magazine_size: 4,
            depot_max: 1,
            max_cached_pages: 32,
        };
        let mut a = CachingAllocator::new(1, cfg);
        let ranges: Vec<_> = (0..20).map(|_| a.alloc(1, 0).unwrap()).collect();
        for r in &ranges {
            a.free(*r, 0);
        }
        // 20 frees with mag=4: loaded(4) + prev(4) + depot 1 mag (4) = 12
        // cached; the rest returned to the tree.
        assert_eq!(a.cached_count(1), 12);
        assert_eq!(a.live_ranges(), 0);
        // Tree holds only the cached ranges.
        assert_eq!(a.tree().live_ranges(), 12);
    }

    #[test]
    fn depot_refill_on_other_core() {
        let cfg = RcacheConfig {
            magazine_size: 2,
            depot_max: 4,
            max_cached_pages: 32,
        };
        let mut a = CachingAllocator::new(2, cfg);
        let ranges: Vec<_> = (0..6).map(|_| a.alloc(1, 0).unwrap()).collect();
        for r in &ranges {
            a.free(*r, 0); // core 0 fills loaded+prev+1 depot magazine
        }
        assert_eq!(a.cached_count(1), 6);
        // Core 1 starts empty; after draining nothing locally it pulls the
        // depot magazine.
        let got = a.alloc(1, 1).unwrap();
        assert!(ranges.contains(&got));
        assert!(a.depot_refills >= 1);
    }

    #[test]
    fn purge_returns_everything_to_tree() {
        let mut a = CachingAllocator::with_defaults(2);
        let ranges: Vec<_> = (0..50).map(|i| a.alloc(1, i % 2).unwrap()).collect();
        for (i, r) in ranges.iter().enumerate() {
            a.free(*r, i % 2);
        }
        assert_eq!(a.cached_count(1), 50);
        a.purge_caches();
        assert_eq!(a.cached_count(1), 0);
        assert_eq!(a.tree().live_ranges(), 0);
        a.tree().tree().check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "free without matching alloc")]
    fn unbalanced_free_panics() {
        let mut a = CachingAllocator::with_defaults(1);
        a.free(IovaRange::new(Iova::from_pfn(3), 1), 0);
    }

    #[test]
    fn try_free_reports_unbalanced_free() {
        let mut a = CachingAllocator::with_defaults(1);
        let r = IovaRange::new(Iova::from_pfn(3), 1);
        assert_eq!(
            a.try_free(r, 0),
            Err(AllocError::UnbalancedFree { range: r })
        );
        // Allocator state is untouched by the failed free.
        assert_eq!(a.live_ranges(), 0);
        assert_eq!(a.stats().frees, 0);
    }

    #[test]
    fn try_free_reports_unknown_oversized_range() {
        let mut a = CachingAllocator::with_defaults(1);
        // One live range so the live counter cannot catch the bad free; the
        // tree lookup must.
        let keep = a.alloc(64, 0).unwrap();
        let bogus = IovaRange::new(Iova::from_pfn(7), 64);
        assert_eq!(
            a.try_free(bogus, 0),
            Err(AllocError::UnbalancedFree { range: bogus })
        );
        assert_eq!(a.live_ranges(), 1);
        a.free(keep, 0);
    }

    #[test]
    fn locality_decays_with_cross_ring_interleaving() {
        // Demonstrates the paper's §2.2 observation: after Rx/Tx-style
        // interleaved alloc/free on different cores, consecutive allocations
        // stop being address-contiguous.
        let mut a = CachingAllocator::with_defaults(2);
        // Warm up: allocate a window and free it in interleaved order.
        let window: Vec<_> = (0..256).map(|_| a.alloc(1, 0).unwrap()).collect();
        for (i, r) in window.iter().enumerate() {
            // Alternate frees between cores, emulating Rx and Tx completion.
            a.free(*r, i % 2);
        }
        let again: Vec<_> = (0..64).map(|_| a.alloc(1, 0).unwrap()).collect();
        let contiguous = again
            .windows(2)
            .filter(|w| w[1].pfn_lo() + 1 == w[0].pfn_lo() || w[0].pfn_lo() + 1 == w[1].pfn_lo())
            .count();
        // With perfect locality this would be 63; the cache scrambles most
        // of it (every other free went to the other core's magazine).
        assert!(contiguous < 40, "unexpectedly good locality: {contiguous}");
    }
}
