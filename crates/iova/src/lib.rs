//! IO virtual address (IOVA) allocation substrate.
//!
//! The paper traces most PTcache-L3 misses to the *allocation pattern* of
//! Linux's IOVA allocator (§2.2): a globally locked red-black tree of
//! allocated ranges, fronted by per-core magazine caches that trade locality
//! for CPU efficiency. This crate reproduces those mechanics from scratch:
//!
//! * [`types`] — the [`Iova`]/[`IovaRange`] address types,
//! * [`rbtree`] — an arena-based red-black interval tree (the ground-truth
//!   allocator, mirroring `drivers/iommu/iova.c`),
//! * [`rbtree_alloc`] — top-down first-fit allocation over the tree,
//! * [`rcache`] — per-core magazine caches with a global depot (Linux's
//!   `iova_rcache`), whose locality decay over time is exactly what
//!   Figures 2e/3e measure,
//! * [`carver`] — F&S-style carving of page-sized pieces out of a large
//!   contiguous chunk (used by the Tx datapath, §3).
//!
//! # Examples
//!
//! ```
//! use fns_iova::{CachingAllocator, IovaAllocator};
//!
//! let mut alloc = CachingAllocator::with_defaults(2 /* cores */);
//! let r = alloc.alloc(1, 0).expect("one page");
//! assert_eq!(r.pages(), 1);
//! alloc.free(r, 0);
//! ```

pub mod carver;
pub mod rbtree;
pub mod rbtree_alloc;
pub mod rcache;
pub mod types;

pub use carver::ChunkCarver;
pub use rbtree::RbIntervalTree;
pub use rbtree_alloc::RbTreeAllocator;
pub use rcache::{CachingAllocator, RcacheConfig};
pub use types::{Iova, IovaRange, IOVA_SPACE_TOP};

/// Typed IOVA-allocation errors.
///
/// `alloc` keeps its `Option` shape (callers mostly want "did it fit"); the
/// error type carries the *why* for layers — like the DMA driver — that
/// propagate failures instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The address space (or configured retry budget) could not satisfy a
    /// request for `pages` contiguous pages.
    Exhausted { pages: u64 },
    /// A range was freed that was never allocated — in the kernel this is
    /// address-space corruption.
    UnbalancedFree { range: IovaRange },
    /// Fault injection forced this allocation to fail.
    Injected,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Exhausted { pages } => {
                write!(f, "IOVA space exhausted allocating {pages} pages")
            }
            AllocError::UnbalancedFree { range } => {
                write!(f, "free of unallocated IOVA range {range}")
            }
            AllocError::Injected => write!(f, "injected IOVA allocation failure"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Statistics every allocator implementation keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Allocations that had to fall through to the red-black tree
    /// (i.e. missed every cache layer).
    pub tree_allocs: u64,
    /// Frees that had to push ranges back into the red-black tree.
    pub tree_frees: u64,
    /// Failed allocations (address space exhausted).
    pub failures: u64,
}

/// Common interface of all IOVA allocators.
///
/// `core` is the CPU core issuing the call; the caching allocator uses it to
/// select a per-core magazine, mirroring Linux's per-CPU `iova_rcache`.
pub trait IovaAllocator {
    /// Allocates a contiguous range of `pages` 4 KB pages.
    ///
    /// Returns `None` when the address space (or configured retry budget) is
    /// exhausted.
    fn alloc(&mut self, pages: u64, core: usize) -> Option<IovaRange>;

    /// Returns a previously allocated range to the allocator.
    ///
    /// # Panics
    ///
    /// Implementations panic on frees of ranges that were never allocated —
    /// in the kernel that is address-space corruption. Fault-tolerant
    /// callers use [`IovaAllocator::try_free`] instead.
    fn free(&mut self, range: IovaRange, core: usize);

    /// Non-panicking free: reports an unbalanced free as
    /// [`AllocError::UnbalancedFree`] instead of aborting.
    fn try_free(&mut self, range: IovaRange, core: usize) -> Result<(), AllocError>;

    /// Number of ranges currently live (allocated and not freed).
    fn live_ranges(&self) -> usize;

    /// Lifetime statistics.
    fn stats(&self) -> AllocStats;
}
