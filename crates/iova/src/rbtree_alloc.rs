//! Ground-truth IOVA allocator: top-down first fit over the red-black tree.
//!
//! Mirrors Linux's `__alloc_and_insert_iova_range`: candidate ranges descend
//! from the top of the 48-bit space, and each allocation is size-aligned
//! (for power-of-two sizes), so the active working set stays compact in the
//! highest PT-L1/PT-L2 region — the compactness §2.2 of the paper assumes.

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::rbtree::RbIntervalTree;
use crate::types::{Iova, IovaRange, IOVA_SPACE_TOP, PAGE_SHIFT};
use crate::{AllocError, AllocStats, IovaAllocator};

/// Red-black-tree-backed IOVA allocator (no per-core caching).
///
/// Every operation touches the global tree; Linux avoids this cost with the
/// per-core caches modelled in [`crate::rcache`], at the price of the
/// locality decay the paper measures.
///
/// # Examples
///
/// ```
/// use fns_iova::{IovaAllocator, RbTreeAllocator};
///
/// let mut a = RbTreeAllocator::new();
/// let r1 = a.alloc(1, 0).unwrap();
/// let r2 = a.alloc(1, 0).unwrap();
/// // Top-down: the second allocation sits directly below the first.
/// assert_eq!(r2.pfn_hi() + 1, r1.pfn_lo());
/// a.free(r1, 0);
/// a.free(r2, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RbTreeAllocator {
    tree: RbIntervalTree,
    limit_pfn: u64,
    align_to_size: bool,
    /// Cached search start (Linux's `cached_node` optimization): everything
    /// at or above this pfn is known-allocated, modulo alignment holes, so
    /// the descending gap search can start here instead of at the top.
    search_start: u64,
    stats: AllocStats,
}

impl Default for RbTreeAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl RbTreeAllocator {
    /// Creates an allocator spanning the full 48-bit IOVA space.
    pub fn new() -> Self {
        Self::with_limit(IOVA_SPACE_TOP >> PAGE_SHIFT)
    }

    /// Creates an allocator whose highest allocatable pfn is `limit_pfn - 1`
    /// (i.e. `limit_pfn` is one past the top).
    pub fn with_limit(limit_pfn: u64) -> Self {
        Self {
            tree: RbIntervalTree::new(),
            limit_pfn,
            align_to_size: true,
            search_start: limit_pfn,
            stats: AllocStats::default(),
        }
    }

    /// Disables size-alignment of allocations (Linux aligns; this exists for
    /// ablation tests).
    pub fn set_align_to_size(&mut self, align: bool) {
        self.align_to_size = align;
    }

    /// Read access to the underlying interval tree (for tests/inspection).
    pub fn tree(&self) -> &RbIntervalTree {
        &self.tree
    }

    fn align_down(&self, pfn_lo: u64, pages: u64) -> u64 {
        if self.align_to_size && pages.is_power_of_two() {
            pfn_lo & !(pages - 1)
        } else {
            pfn_lo
        }
    }

    /// Core top-down first-fit search; also used by the caching allocator's
    /// fall-through path.
    pub(crate) fn alloc_range(&mut self, pages: u64) -> Option<IovaRange> {
        assert!(pages > 0, "zero-page allocation");
        // Fast path starts from the cached position; if the space below it
        // is exhausted, retry once from the true top (Linux's behaviour of
        // resetting the cached node and rescanning), which also reclaims
        // alignment holes skipped by the cache.
        if let Some(r) = self.try_alloc_below(self.search_start, pages) {
            return Some(r);
        }
        if self.search_start < self.limit_pfn {
            if let Some(r) = self.try_alloc_below(self.limit_pfn, pages) {
                return Some(r);
            }
        }
        self.stats.failures += 1;
        None
    }

    fn try_alloc_below(&mut self, start: u64, pages: u64) -> Option<IovaRange> {
        let mut high = start; // candidate range must end below this
        loop {
            if high < pages {
                return None;
            }
            let cand_lo = self.align_down(high - pages, pages);
            // Highest existing range starting below the candidate's end.
            match self.tree.prev_below(cand_lo + pages) {
                Some((lo, hi)) if hi >= cand_lo => {
                    // Conflict: slide the candidate below the blocking range.
                    high = lo;
                }
                _ => {
                    self.tree
                        .insert(cand_lo, cand_lo + pages - 1)
                        .expect("gap search found an overlapping slot");
                    self.stats.allocs += 1;
                    self.stats.tree_allocs += 1;
                    self.search_start = cand_lo;
                    return Some(IovaRange::new(Iova::from_pfn(cand_lo), pages));
                }
            }
        }
    }

    /// Removes a range from the tree (panics if it was never allocated).
    pub(crate) fn free_range(&mut self, range: IovaRange) {
        self.try_free_range(range)
            .unwrap_or_else(|_| panic!("freeing unallocated IOVA range {range}"));
    }

    /// Fragmentation of the allocated region: `(free_spans, largest_run)`
    /// over the *interior* gaps between consecutive allocated ranges, in
    /// pages. A freshly warmed top-down allocator reports `(0, 0)` — holes
    /// only appear as the address space ages, which is exactly the decay
    /// curve the soak plane samples.
    pub fn fragmentation(&self) -> (u64, u64) {
        let ranges = self.tree.iter_inorder();
        let mut spans = 0u64;
        let mut largest = 0u64;
        for w in ranges.windows(2) {
            let gap = w[1].0 - w[0].1 - 1;
            if gap > 0 {
                spans += 1;
                largest = largest.max(gap);
            }
        }
        (spans, largest)
    }

    /// Serializes the full allocator state for checkpointing. The interval
    /// tree travels logically (in-order ranges, re-inserted on restore):
    /// every query on it is shape-independent, while `search_start` — which
    /// *does* steer future allocations — travels verbatim.
    pub fn snap(&self, w: &mut SnapWriter) {
        let ranges = self.tree.iter_inorder();
        w.seq(ranges.len());
        for (lo, hi) in ranges {
            w.u64(lo);
            w.u64(hi);
        }
        w.u64(self.limit_pfn);
        w.bool(self.align_to_size);
        w.u64(self.search_start);
        snap_alloc_stats(&self.stats, w);
    }

    /// Rebuilds an allocator captured by [`RbTreeAllocator::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.seq()?;
        let mut tree = RbIntervalTree::new();
        for _ in 0..n {
            let lo = r.u64()?;
            let hi = r.u64()?;
            tree.insert(lo, hi).map_err(|_| SnapError::BadTag {
                what: "overlapping iova range",
                tag: lo,
            })?;
        }
        Ok(Self {
            tree,
            limit_pfn: r.u64()?,
            align_to_size: r.bool()?,
            search_start: r.u64()?,
            stats: unsnap_alloc_stats(r)?,
        })
    }

    /// Removes a range from the tree, reporting an unbalanced free as an
    /// error instead of panicking.
    pub(crate) fn try_free_range(&mut self, range: IovaRange) -> Result<(), AllocError> {
        if !self.tree.remove(range.pfn_lo()) {
            return Err(AllocError::UnbalancedFree { range });
        }
        // Freed space above the cached search position becomes visible again.
        self.search_start = self
            .search_start
            .max(range.pfn_hi() + 1)
            .min(self.limit_pfn);
        self.stats.frees += 1;
        self.stats.tree_frees += 1;
        Ok(())
    }
}

/// Serializes an [`AllocStats`] (shared by both allocators' snapshots).
pub(crate) fn snap_alloc_stats(s: &AllocStats, w: &mut SnapWriter) {
    w.u64(s.allocs);
    w.u64(s.frees);
    w.u64(s.tree_allocs);
    w.u64(s.tree_frees);
    w.u64(s.failures);
}

/// Rebuilds an [`AllocStats`] captured by [`snap_alloc_stats`].
pub(crate) fn unsnap_alloc_stats(r: &mut SnapReader) -> Result<AllocStats, SnapError> {
    Ok(AllocStats {
        allocs: r.u64()?,
        frees: r.u64()?,
        tree_allocs: r.u64()?,
        tree_frees: r.u64()?,
        failures: r.u64()?,
    })
}

impl IovaAllocator for RbTreeAllocator {
    fn alloc(&mut self, pages: u64, _core: usize) -> Option<IovaRange> {
        self.alloc_range(pages)
    }

    fn free(&mut self, range: IovaRange, _core: usize) {
        self.free_range(range);
    }

    fn try_free(&mut self, range: IovaRange, _core: usize) -> Result<(), AllocError> {
        self.try_free_range(range)
    }

    fn live_ranges(&self) -> usize {
        self.tree.len()
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_top_down() {
        let mut a = RbTreeAllocator::new();
        let r1 = a.alloc(1, 0).unwrap();
        assert_eq!(r1.pfn_hi(), (IOVA_SPACE_TOP >> PAGE_SHIFT) - 1);
        let r2 = a.alloc(1, 0).unwrap();
        assert_eq!(r2.pfn_hi() + 1, r1.pfn_lo());
    }

    #[test]
    fn size_alignment() {
        let mut a = RbTreeAllocator::new();
        let r = a.alloc(64, 0).unwrap();
        assert_eq!(r.pfn_lo() % 64, 0);
        let r2 = a.alloc(64, 0).unwrap();
        assert_eq!(r2.pfn_lo() % 64, 0);
        assert_eq!(r2.pfn_hi() + 1, r.pfn_lo());
    }

    #[test]
    fn fills_gaps_after_free() {
        let mut a = RbTreeAllocator::new();
        let r1 = a.alloc(1, 0).unwrap();
        let r2 = a.alloc(1, 0).unwrap();
        let r3 = a.alloc(1, 0).unwrap();
        a.free(r2, 0);
        let r4 = a.alloc(1, 0).unwrap();
        assert_eq!(r4, r2, "top-down first fit reuses the highest gap");
        let _ = (r1, r3);
    }

    #[test]
    fn skips_over_blocking_ranges() {
        let mut a = RbTreeAllocator::new();
        // Fill the top with single pages, then ask for a 64-page range: it
        // must land below all of them.
        let singles: Vec<_> = (0..10).map(|_| a.alloc(1, 0).unwrap()).collect();
        let big = a.alloc(64, 0).unwrap();
        assert!(big.pfn_hi() < singles.last().unwrap().pfn_lo());
        assert_eq!(big.pfn_lo() % 64, 0);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let mut a = RbTreeAllocator::with_limit(8);
        assert!(a.alloc(8, 0).is_some());
        assert!(a.alloc(1, 0).is_none());
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    #[should_panic(expected = "freeing unallocated")]
    fn free_of_unallocated_panics() {
        let mut a = RbTreeAllocator::new();
        a.free(IovaRange::new(Iova::from_pfn(42), 1), 0);
    }

    #[test]
    fn stats_track_ops() {
        let mut a = RbTreeAllocator::new();
        let r = a.alloc(2, 0).unwrap();
        a.free(r, 0);
        let s = a.stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.tree_allocs, 1);
        assert_eq!(s.tree_frees, 1);
        assert_eq!(a.live_ranges(), 0);
    }

    #[test]
    fn compactness_working_set_in_one_l2_region() {
        // All of a 2^27-byte working set allocated top-down shares one
        // PT-L2 page key — the paper's §2.2 coverage argument.
        let mut a = RbTreeAllocator::new();
        let ranges: Vec<_> = (0..(1 << 15)).map(|_| a.alloc(1, 0).unwrap()).collect();
        let key0 = ranges[0].base().l3_page_key();
        assert!(ranges.iter().all(|r| r.base().l3_page_key() == key0));
    }
}
