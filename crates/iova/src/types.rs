//! IOVA address types.
//!
//! IO virtual addresses are 48 bits wide (Intel VT-d with 4-level tables).
//! Like Linux, allocation proceeds *top-down* from the top of the address
//! space, which keeps the active working set compact within the highest
//! PT-L1/PT-L2 regions — the property §2.2 of the paper relies on when
//! computing PTcache coverage.

/// Page shift shared with the physical side (4 KB pages).
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Width of the IOVA space in bits.
pub const IOVA_BITS: u32 = 48;
/// One-past-the-top of the IOVA space.
pub const IOVA_SPACE_TOP: u64 = 1 << IOVA_BITS;

/// An IO virtual address — the only kind of address a device ever sees.
///
/// # Examples
///
/// ```
/// use fns_iova::types::Iova;
///
/// let iova = Iova::new(0x0000_8000_1000);
/// assert_eq!(iova.pfn(), 0x80001);
/// assert_eq!(iova.pt_index(4), 1); // PT-L4 index: bits 12..21
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Iova(u64);

impl Iova {
    /// Creates an IOVA from a raw 48-bit value.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 48 bits.
    pub fn new(raw: u64) -> Self {
        assert!(raw < IOVA_SPACE_TOP, "IOVA {raw:#x} exceeds 48 bits");
        Self(raw)
    }

    /// Raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// IOVA page frame number.
    pub const fn pfn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Constructs the IOVA for page frame number `pfn`.
    pub fn from_pfn(pfn: u64) -> Self {
        Self::new(pfn << PAGE_SHIFT)
    }

    /// Index into the IO page table at `level` (1 = root .. 4 = leaf).
    ///
    /// Each level consumes 9 bits: PT-L1 uses bits 39..48, PT-L2 bits 30..39,
    /// PT-L3 bits 21..30 and PT-L4 bits 12..21 (§2.1 of the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= level <= 4`.
    pub fn pt_index(self, level: u8) -> usize {
        assert!((1..=4).contains(&level), "bad page-table level {level}");
        let shift = PAGE_SHIFT + 9 * (4 - level as u32);
        ((self.0 >> shift) & 0x1FF) as usize
    }

    /// Key identifying the PT-L4 page (leaf page-table page) covering this
    /// IOVA; two IOVAs share a PTcache-L3 entry iff these keys are equal.
    pub const fn l4_page_key(self) -> u64 {
        self.0 >> (PAGE_SHIFT + 9)
    }

    /// Key identifying the PT-L3 page covering this IOVA (PTcache-L2 entry
    /// granularity: 1 GB).
    pub const fn l3_page_key(self) -> u64 {
        self.0 >> (PAGE_SHIFT + 18)
    }

    /// Key identifying the PT-L2 page covering this IOVA (PTcache-L1 entry
    /// granularity: 512 GB).
    pub const fn l2_page_key(self) -> u64 {
        self.0 >> (PAGE_SHIFT + 27)
    }

    /// IOVA `bytes` past this one.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Self {
        Self::new(self.0 + bytes)
    }
}

impl std::fmt::Display for Iova {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IOVA:{:#x}", self.0)
    }
}

/// A contiguous, page-aligned IOVA range `[base, base + pages * 4K)`.
///
/// # Examples
///
/// ```
/// use fns_iova::types::{Iova, IovaRange};
///
/// let r = IovaRange::new(Iova::from_pfn(100), 64);
/// assert_eq!(r.pages(), 64);
/// assert_eq!(r.bytes(), 256 * 1024);
/// assert!(r.contains(Iova::from_pfn(163)));
/// assert!(!r.contains(Iova::from_pfn(164)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IovaRange {
    base: Iova,
    pages: u64,
}

impl IovaRange {
    /// Creates a range of `pages` pages starting at page-aligned `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned, `pages` is zero, or the range
    /// overflows the IOVA space.
    pub fn new(base: Iova, pages: u64) -> Self {
        assert!(
            base.as_u64().is_multiple_of(PAGE_SIZE),
            "unaligned IOVA range base"
        );
        assert!(pages > 0, "empty IOVA range");
        assert!(
            base.as_u64() + pages * PAGE_SIZE <= IOVA_SPACE_TOP,
            "IOVA range exceeds address space"
        );
        Self { base, pages }
    }

    /// First address of the range.
    pub const fn base(self) -> Iova {
        self.base
    }

    /// Length in pages.
    pub const fn pages(self) -> u64 {
        self.pages
    }

    /// Length in bytes.
    pub const fn bytes(self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// First page frame number.
    pub const fn pfn_lo(self) -> u64 {
        self.base.pfn()
    }

    /// Last page frame number (inclusive).
    pub const fn pfn_hi(self) -> u64 {
        self.base.pfn() + self.pages - 1
    }

    /// IOVA of the `i`-th page in the range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= pages`.
    pub fn page(self, i: u64) -> Iova {
        assert!(i < self.pages, "page index {i} out of range");
        self.base.add(i * PAGE_SIZE)
    }

    /// Returns `true` if `iova` falls inside the range.
    pub fn contains(self, iova: Iova) -> bool {
        let a = iova.as_u64();
        a >= self.base.as_u64() && a < self.base.as_u64() + self.bytes()
    }

    /// Returns `true` if the two ranges share any page.
    pub fn overlaps(self, other: IovaRange) -> bool {
        self.pfn_lo() <= other.pfn_hi() && other.pfn_lo() <= self.pfn_hi()
    }

    /// Iterates over the page-granularity sub-ranges.
    pub fn iter_pages(self) -> impl Iterator<Item = Iova> {
        (0..self.pages).map(move |i| self.base.add(i * PAGE_SIZE))
    }
}

impl std::fmt::Display for IovaRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:#x}..{:#x})",
            self.base.as_u64(),
            self.base.as_u64() + self.bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt_indices_decompose_address() {
        // Compose an address from known indices and decompose it again.
        let l1 = 0x1ABusize;
        let l2 = 0x055usize;
        let l3 = 0x1FFusize;
        let l4 = 0x002usize;
        let raw =
            ((l1 as u64) << 39) | ((l2 as u64) << 30) | ((l3 as u64) << 21) | ((l4 as u64) << 12);
        let iova = Iova::new(raw);
        assert_eq!(iova.pt_index(1), l1);
        assert_eq!(iova.pt_index(2), l2);
        assert_eq!(iova.pt_index(3), l3);
        assert_eq!(iova.pt_index(4), l4);
    }

    #[test]
    fn l4_key_changes_every_2mb() {
        let a = Iova::new(0x0000_0020_0000 - PAGE_SIZE); // last page of first 2MB
        let b = Iova::new(0x0000_0020_0000); // first page of second 2MB
        assert_ne!(a.l4_page_key(), b.l4_page_key());
        assert_eq!(a.l4_page_key() + 1, b.l4_page_key());
        assert_eq!(a.l3_page_key(), b.l3_page_key());
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn iova_width_enforced() {
        Iova::new(IOVA_SPACE_TOP);
    }

    #[test]
    fn range_geometry() {
        let r = IovaRange::new(Iova::from_pfn(10), 4);
        assert_eq!(r.pfn_lo(), 10);
        assert_eq!(r.pfn_hi(), 13);
        assert_eq!(r.page(0), Iova::from_pfn(10));
        assert_eq!(r.page(3), Iova::from_pfn(13));
        assert_eq!(r.iter_pages().count(), 4);
    }

    #[test]
    fn range_overlap() {
        let a = IovaRange::new(Iova::from_pfn(10), 4); // 10..=13
        let b = IovaRange::new(Iova::from_pfn(13), 4); // 13..=16
        let c = IovaRange::new(Iova::from_pfn(14), 4); // 14..=17
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
    }

    #[test]
    #[should_panic(expected = "empty IOVA range")]
    fn empty_range_rejected() {
        IovaRange::new(Iova::from_pfn(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_index_checked() {
        IovaRange::new(Iova::from_pfn(1), 2).page(2);
    }

    #[test]
    fn top_down_addresses_share_high_level_keys() {
        // The top 2^27 bytes of the space all share one L2/L1 key — the
        // paper's argument for why PTcache-L1/L2 working set is 1 entry.
        let top = Iova::new(IOVA_SPACE_TOP - PAGE_SIZE);
        let lower = Iova::new(IOVA_SPACE_TOP - (1 << 27));
        assert_eq!(top.l2_page_key(), lower.l2_page_key());
        assert_eq!(top.l3_page_key(), lower.l3_page_key());
        assert_ne!(top.l4_page_key(), lower.l4_page_key());
    }

    #[test]
    fn display_formats() {
        let r = IovaRange::new(Iova::from_pfn(1), 1);
        assert_eq!(r.to_string(), "[0x1000..0x2000)");
        assert_eq!(Iova::from_pfn(1).to_string(), "IOVA:0x1000");
    }
}
