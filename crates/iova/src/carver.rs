//! Carving page-sized pieces out of a contiguous IOVA chunk (F&S, §3).
//!
//! F&S allocates one large IOVA range per descriptor (Rx) or per 256 KB of
//! Tx traffic, then maps individual 4 KB pages into consecutive slots of
//! that range *in the order the NIC will access them*. The Tx side needs
//! bookkeeping: pages are carved on demand as packets arrive, possibly
//! spanning multiple descriptors, and the chunk's IOVA can only be freed
//! once every carved page has been unmapped. [`ChunkCarver`] is that
//! bookkeeping.

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::types::{Iova, IovaRange};

/// Sequential carver over one contiguous IOVA chunk.
///
/// # Examples
///
/// ```
/// use fns_iova::carver::ChunkCarver;
/// use fns_iova::types::{Iova, IovaRange};
///
/// let chunk = IovaRange::new(Iova::from_pfn(1024), 4);
/// let mut c = ChunkCarver::new(chunk);
/// let a = c.take_page().unwrap();
/// let b = c.take_page().unwrap();
/// assert_eq!(b.pfn(), a.pfn() + 1); // carved in NIC access order
/// assert!(!c.note_unmapped());
/// c.take_page().unwrap();
/// c.take_page().unwrap();
/// assert!(c.is_exhausted());
/// assert!(!c.note_unmapped());
/// assert!(!c.note_unmapped());
/// assert!(c.note_unmapped()); // fourth unmap retires the chunk
/// ```
#[derive(Debug, Clone)]
pub struct ChunkCarver {
    range: IovaRange,
    next: u64,
    unmapped: u64,
}

impl ChunkCarver {
    /// Wraps a freshly allocated chunk.
    pub fn new(range: IovaRange) -> Self {
        Self {
            range,
            next: 0,
            unmapped: 0,
        }
    }

    /// The underlying chunk.
    pub fn range(&self) -> IovaRange {
        self.range
    }

    /// Carves the next page-sized IOVA, or `None` when the chunk is used up.
    pub fn take_page(&mut self) -> Option<Iova> {
        if self.next >= self.range.pages() {
            return None;
        }
        let iova = self.range.page(self.next);
        self.next += 1;
        Some(iova)
    }

    /// Pages carved so far.
    pub fn carved(&self) -> u64 {
        self.next
    }

    /// Returns `true` once every page has been carved.
    pub fn is_exhausted(&self) -> bool {
        self.next == self.range.pages()
    }

    /// Records that one carved page has been unmapped; returns `true` when
    /// the *entire* chunk is both exhausted and fully unmapped, i.e. its
    /// IOVA range may be returned to the allocator.
    ///
    /// # Panics
    ///
    /// Panics if more pages are unmapped than were carved.
    pub fn note_unmapped(&mut self) -> bool {
        self.unmapped += 1;
        assert!(
            self.unmapped <= self.next,
            "unmapped {} pages but only carved {}",
            self.unmapped,
            self.next
        );
        self.is_exhausted() && self.unmapped == self.range.pages()
    }

    /// Pages unmapped so far.
    pub fn unmapped(&self) -> u64 {
        self.unmapped
    }

    /// Serializes the carver for checkpointing.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.range.base().as_u64());
        w.u64(self.range.pages());
        w.u64(self.next);
        w.u64(self.unmapped);
    }

    /// Rebuilds a carver captured by [`ChunkCarver::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let base = Iova::new(r.u64()?);
        let pages = r.u64()?;
        Ok(Self {
            range: IovaRange::new(base, pages),
            next: r.u64()?,
            unmapped: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(pages: u64) -> ChunkCarver {
        ChunkCarver::new(IovaRange::new(Iova::from_pfn(4096), pages))
    }

    #[test]
    fn carves_sequentially() {
        let mut c = chunk(64);
        let pages: Vec<_> = std::iter::from_fn(|| c.take_page()).collect();
        assert_eq!(pages.len(), 64);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.pfn(), 4096 + i as u64);
        }
        assert!(c.is_exhausted());
        assert_eq!(c.take_page(), None);
    }

    #[test]
    fn retires_only_when_all_unmapped() {
        let mut c = chunk(3);
        c.take_page();
        c.take_page();
        assert!(!c.note_unmapped());
        assert!(!c.note_unmapped()); // all carved pages unmapped, but not exhausted
        c.take_page();
        assert!(c.note_unmapped());
    }

    #[test]
    fn unmap_before_exhaustion_never_retires() {
        let mut c = chunk(2);
        c.take_page();
        assert!(!c.note_unmapped());
        assert_eq!(c.unmapped(), 1);
        assert_eq!(c.carved(), 1);
    }

    #[test]
    #[should_panic(expected = "only carved")]
    fn over_unmap_panics() {
        let mut c = chunk(2);
        c.take_page();
        c.note_unmapped();
        c.note_unmapped();
    }

    #[test]
    fn chunk_pages_share_l4_key_when_aligned() {
        // A 64-page chunk aligned to 64 pages spans at most one 2 MB
        // PT-L4 page unless it crosses a 2 MB boundary — the paper's "at
        // most 2 unique PTcache-L3 entries per descriptor".
        let aligned = IovaRange::new(Iova::from_pfn(512), 64);
        let keys: std::collections::HashSet<_> =
            aligned.iter_pages().map(|p| p.l4_page_key()).collect();
        assert_eq!(keys.len(), 1);
        let crossing = IovaRange::new(Iova::from_pfn(512 - 32), 64);
        let keys: std::collections::HashSet<_> =
            crossing.iter_pages().map(|p| p.l4_page_key()).collect();
        assert_eq!(keys.len(), 2);
    }
}
