//! Arena-based red-black interval tree of allocated IOVA ranges.
//!
//! Linux's IOVA allocator (`drivers/iommu/iova.c`) keeps every allocated
//! range in a red-black tree ordered by start pfn; allocation searches for a
//! gap between neighbouring nodes, top-down from the end of the address
//! space. This module implements that tree from scratch (CLRS-style, arena
//! indices instead of pointers, zero `unsafe`), exposing exactly the
//! operations the allocator needs: insert, remove, ordered neighbour
//! traversal, and rightmost lookup.
//!
//! Invariants (checked by [`RbIntervalTree::check_invariants`] and exercised
//! by property tests):
//!
//! 1. Binary-search-tree order on `pfn_lo`, with no overlapping ranges.
//! 2. Red nodes have black children.
//! 3. Every root-to-leaf path has the same black height.

/// Sentinel index representing the absent child ("NIL" leaf).
const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node {
    lo: u64,
    hi: u64,
    color: Color,
    parent: usize,
    left: usize,
    right: usize,
}

/// A red-black tree of disjoint `[lo, hi]` pfn ranges.
///
/// # Examples
///
/// ```
/// use fns_iova::rbtree::RbIntervalTree;
///
/// let mut t = RbIntervalTree::new();
/// t.insert(10, 19).unwrap();
/// t.insert(30, 39).unwrap();
/// assert!(t.insert(15, 25).is_err()); // overlap rejected
/// assert_eq!(t.last(), Some((30, 39)));
/// assert_eq!(t.prev_below(30), Some((10, 19)));
/// assert!(t.remove(10));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RbIntervalTree {
    arena: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

/// Error returned when inserting a range that overlaps an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapError {
    /// The conflicting existing range.
    pub existing: (u64, u64),
}

impl std::fmt::Display for OverlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "range overlaps existing [{}, {}]",
            self.existing.0, self.existing.1
        )
    }
}

impl std::error::Error for OverlapError {}

impl RbIntervalTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            arena: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of ranges in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no ranges.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, i: usize) -> &Node {
        &self.arena[i]
    }

    fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.arena[i]
    }

    fn alloc_node(&mut self, lo: u64, hi: u64) -> usize {
        let n = Node {
            lo,
            hi,
            color: Color::Red,
            parent: NIL,
            left: NIL,
            right: NIL,
        };
        if let Some(i) = self.free.pop() {
            self.arena[i] = n;
            i
        } else {
            self.arena.push(n);
            self.arena.len() - 1
        }
    }

    /// Inserts the inclusive pfn range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn insert(&mut self, lo: u64, hi: u64) -> Result<(), OverlapError> {
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        // Standard BST descent, rejecting overlap.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            if hi < n.lo {
                parent = cur;
                cur = n.left;
            } else if lo > n.hi {
                parent = cur;
                cur = n.right;
            } else {
                return Err(OverlapError {
                    existing: (n.lo, n.hi),
                });
            }
        }
        let idx = self.alloc_node(lo, hi);
        self.node_mut(idx).parent = parent;
        if parent == NIL {
            self.root = idx;
        } else if hi < self.node(parent).lo {
            self.node_mut(parent).left = idx;
        } else {
            self.node_mut(parent).right = idx;
        }
        self.len += 1;
        self.insert_fixup(idx);
        Ok(())
    }

    /// Removes the range starting exactly at `lo`; returns `false` if absent.
    pub fn remove(&mut self, lo: u64) -> bool {
        let Some(idx) = self.find_index(lo) else {
            return false;
        };
        self.delete(idx);
        self.len -= 1;
        true
    }

    /// Looks up the range starting exactly at `lo`.
    pub fn get(&self, lo: u64) -> Option<(u64, u64)> {
        self.find_index(lo).map(|i| {
            let n = self.node(i);
            (n.lo, n.hi)
        })
    }

    /// Finds the range containing `pfn`, if any.
    pub fn containing(&self, pfn: u64) -> Option<(u64, u64)> {
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            if pfn < n.lo {
                cur = n.left;
            } else if pfn > n.hi {
                cur = n.right;
            } else {
                return Some((n.lo, n.hi));
            }
        }
        None
    }

    /// Rightmost (highest) range.
    pub fn last(&self) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let i = self.maximum(self.root);
        let n = self.node(i);
        Some((n.lo, n.hi))
    }

    /// Highest range whose `lo` is strictly below `pfn`.
    pub fn prev_below(&self, pfn: u64) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            if n.lo < pfn {
                best = Some((n.lo, n.hi));
                cur = n.right;
            } else {
                cur = n.left;
            }
        }
        best
    }

    /// In-order (ascending) list of all ranges.
    pub fn iter_inorder(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        self.inorder(self.root, &mut out);
        out
    }

    fn inorder(&self, i: usize, out: &mut Vec<(u64, u64)>) {
        if i == NIL {
            return;
        }
        let n = self.node(i);
        self.inorder(n.left, out);
        out.push((n.lo, n.hi));
        self.inorder(n.right, out);
    }

    fn find_index(&self, lo: u64) -> Option<usize> {
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            if lo < n.lo {
                cur = n.left;
            } else if lo > n.lo {
                cur = n.right;
            } else {
                return Some(cur);
            }
        }
        None
    }

    fn minimum(&self, mut i: usize) -> usize {
        while self.node(i).left != NIL {
            i = self.node(i).left;
        }
        i
    }

    fn maximum(&self, mut i: usize) -> usize {
        while self.node(i).right != NIL {
            i = self.node(i).right;
        }
        i
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.node(x).right;
        debug_assert_ne!(y, NIL);
        let y_left = self.node(y).left;
        self.node_mut(x).right = y_left;
        if y_left != NIL {
            self.node_mut(y_left).parent = x;
        }
        let xp = self.node(x).parent;
        self.node_mut(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.node(xp).left == x {
            self.node_mut(xp).left = y;
        } else {
            self.node_mut(xp).right = y;
        }
        self.node_mut(y).left = x;
        self.node_mut(x).parent = y;
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.node(x).left;
        debug_assert_ne!(y, NIL);
        let y_right = self.node(y).right;
        self.node_mut(x).left = y_right;
        if y_right != NIL {
            self.node_mut(y_right).parent = x;
        }
        let xp = self.node(x).parent;
        self.node_mut(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.node(xp).right == x {
            self.node_mut(xp).right = y;
        } else {
            self.node_mut(xp).left = y;
        }
        self.node_mut(y).right = x;
        self.node_mut(x).parent = y;
    }

    fn color_of(&self, i: usize) -> Color {
        if i == NIL {
            Color::Black
        } else {
            self.node(i).color
        }
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while z != self.root && self.color_of(self.node(z).parent) == Color::Red {
            let p = self.node(z).parent;
            let g = self.node(p).parent;
            debug_assert_ne!(g, NIL, "red parent must have a parent");
            if p == self.node(g).left {
                let u = self.node(g).right;
                if self.color_of(u) == Color::Red {
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(u).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    z = g;
                } else {
                    if z == self.node(p).right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    self.rotate_right(g);
                }
            } else {
                let u = self.node(g).left;
                if self.color_of(u) == Color::Red {
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(u).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    z = g;
                } else {
                    if z == self.node(p).left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    self.rotate_left(g);
                }
            }
        }
        let r = self.root;
        self.node_mut(r).color = Color::Black;
    }

    /// Replaces subtree rooted at `u` with subtree rooted at `v` (CLRS
    /// transplant). `v` may be NIL; `fix_parent` records the parent `v`
    /// should be considered attached to for the delete fixup.
    fn transplant(&mut self, u: usize, v: usize) -> usize {
        let up = self.node(u).parent;
        if up == NIL {
            self.root = v;
        } else if self.node(up).left == u {
            self.node_mut(up).left = v;
        } else {
            self.node_mut(up).right = v;
        }
        if v != NIL {
            self.node_mut(v).parent = up;
        }
        up
    }

    fn delete(&mut self, z: usize) {
        // CLRS delete, adapted for NIL-as-sentinel-index: we track the fixup
        // node `x` together with its effective parent, because x may be NIL.
        let mut y = z;
        let mut y_orig_color = self.node(y).color;
        let x: usize;
        let x_parent: usize;
        if self.node(z).left == NIL {
            x = self.node(z).right;
            x_parent = self.transplant(z, x);
        } else if self.node(z).right == NIL {
            x = self.node(z).left;
            x_parent = self.transplant(z, x);
        } else {
            y = self.minimum(self.node(z).right);
            y_orig_color = self.node(y).color;
            x = self.node(y).right;
            if self.node(y).parent == z {
                x_parent = y;
                if x != NIL {
                    self.node_mut(x).parent = y;
                }
            } else {
                x_parent = self.transplant(y, x);
                let zr = self.node(z).right;
                self.node_mut(y).right = zr;
                self.node_mut(zr).parent = y;
            }
            self.transplant(z, y);
            let zl = self.node(z).left;
            self.node_mut(y).left = zl;
            self.node_mut(zl).parent = y;
            self.node_mut(y).color = self.node(z).color;
        }
        if y_orig_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
        self.free.push(z);
    }

    fn delete_fixup(&mut self, mut x: usize, mut parent: usize) {
        while x != self.root && self.color_of(x) == Color::Black {
            if parent == NIL {
                break;
            }
            if x == self.node(parent).left {
                let mut w = self.node(parent).right;
                if self.color_of(w) == Color::Red {
                    self.node_mut(w).color = Color::Black;
                    self.node_mut(parent).color = Color::Red;
                    self.rotate_left(parent);
                    w = self.node(parent).right;
                }
                if self.color_of(self.node(w).left) == Color::Black
                    && self.color_of(self.node(w).right) == Color::Black
                {
                    self.node_mut(w).color = Color::Red;
                    x = parent;
                    parent = self.node(x).parent;
                } else {
                    if self.color_of(self.node(w).right) == Color::Black {
                        let wl = self.node(w).left;
                        if wl != NIL {
                            self.node_mut(wl).color = Color::Black;
                        }
                        self.node_mut(w).color = Color::Red;
                        self.rotate_right(w);
                        w = self.node(parent).right;
                    }
                    self.node_mut(w).color = self.node(parent).color;
                    self.node_mut(parent).color = Color::Black;
                    let wr = self.node(w).right;
                    if wr != NIL {
                        self.node_mut(wr).color = Color::Black;
                    }
                    self.rotate_left(parent);
                    x = self.root;
                    break;
                }
            } else {
                let mut w = self.node(parent).left;
                if self.color_of(w) == Color::Red {
                    self.node_mut(w).color = Color::Black;
                    self.node_mut(parent).color = Color::Red;
                    self.rotate_right(parent);
                    w = self.node(parent).left;
                }
                if self.color_of(self.node(w).right) == Color::Black
                    && self.color_of(self.node(w).left) == Color::Black
                {
                    self.node_mut(w).color = Color::Red;
                    x = parent;
                    parent = self.node(x).parent;
                } else {
                    if self.color_of(self.node(w).left) == Color::Black {
                        let wr = self.node(w).right;
                        if wr != NIL {
                            self.node_mut(wr).color = Color::Black;
                        }
                        self.node_mut(w).color = Color::Red;
                        self.rotate_left(w);
                        w = self.node(parent).left;
                    }
                    self.node_mut(w).color = self.node(parent).color;
                    self.node_mut(parent).color = Color::Black;
                    let wl = self.node(w).left;
                    if wl != NIL {
                        self.node_mut(wl).color = Color::Black;
                    }
                    self.rotate_right(parent);
                    x = self.root;
                    break;
                }
            }
        }
        if x != NIL {
            self.node_mut(x).color = Color::Black;
        }
    }

    /// Verifies all red-black and ordering invariants; returns an error
    /// string describing the first violation. Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.root == NIL {
            if self.len != 0 {
                return Err(format!("empty tree but len = {}", self.len));
            }
            return Ok(());
        }
        if self.color_of(self.root) != Color::Black {
            return Err("root is red".into());
        }
        if self.node(self.root).parent != NIL {
            return Err("root has a parent".into());
        }
        let mut count = 0;
        self.check_subtree(self.root, None, None, &mut count)?;
        if count != self.len {
            return Err(format!("len {} but counted {count}", self.len));
        }
        Ok(())
    }

    /// Returns the black height of the subtree and checks all invariants.
    fn check_subtree(
        &self,
        i: usize,
        min: Option<u64>,
        max: Option<u64>,
        count: &mut usize,
    ) -> Result<u32, String> {
        if i == NIL {
            return Ok(1);
        }
        *count += 1;
        let n = self.node(i);
        if n.lo > n.hi {
            return Err(format!("inverted range at [{}, {}]", n.lo, n.hi));
        }
        if let Some(m) = min {
            if n.lo <= m {
                return Err(format!("order violation: {} <= min bound {m}", n.lo));
            }
        }
        if let Some(m) = max {
            if n.hi >= m {
                return Err(format!("order violation: {} >= max bound {m}", n.hi));
            }
        }
        if n.color == Color::Red
            && (self.color_of(n.left) == Color::Red || self.color_of(n.right) == Color::Red)
        {
            return Err(format!("red node [{}, {}] has a red child", n.lo, n.hi));
        }
        for &c in [n.left, n.right].iter() {
            if c != NIL && self.node(c).parent != i {
                return Err("broken parent pointer".into());
            }
        }
        let lh = self.check_subtree(n.left, min, Some(n.lo), count)?;
        let rh = self.check_subtree(n.right, Some(n.hi), max, count)?;
        if lh != rh {
            return Err(format!("black-height mismatch: {lh} vs {rh}"));
        }
        Ok(lh + if n.color == Color::Black { 1 } else { 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_order() {
        let mut t = RbIntervalTree::new();
        for lo in [50u64, 10, 30, 70, 20] {
            t.insert(lo, lo + 5).unwrap();
            t.check_invariants().unwrap();
        }
        assert_eq!(
            t.iter_inorder(),
            vec![(10, 15), (20, 25), (30, 35), (50, 55), (70, 75)]
        );
        assert_eq!(t.last(), Some((70, 75)));
    }

    #[test]
    fn overlap_rejected() {
        let mut t = RbIntervalTree::new();
        t.insert(10, 20).unwrap();
        assert!(t.insert(20, 30).is_err());
        assert!(t.insert(5, 10).is_err());
        assert!(t.insert(12, 18).is_err());
        assert!(t.insert(0, 100).is_err());
        t.insert(21, 30).unwrap();
        t.insert(0, 9).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_and_rebalance() {
        let mut t = RbIntervalTree::new();
        for lo in 0..100u64 {
            t.insert(lo * 10, lo * 10 + 5).unwrap();
        }
        for lo in (0..100u64).step_by(2) {
            assert!(t.remove(lo * 10));
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 50);
        assert!(!t.remove(0));
    }

    #[test]
    fn containing_lookup() {
        let mut t = RbIntervalTree::new();
        t.insert(100, 163).unwrap();
        assert_eq!(t.containing(100), Some((100, 163)));
        assert_eq!(t.containing(163), Some((100, 163)));
        assert_eq!(t.containing(99), None);
        assert_eq!(t.containing(164), None);
    }

    #[test]
    fn prev_below_walks_down() {
        let mut t = RbIntervalTree::new();
        t.insert(10, 19).unwrap();
        t.insert(40, 49).unwrap();
        t.insert(70, 79).unwrap();
        assert_eq!(t.prev_below(70), Some((40, 49)));
        assert_eq!(t.prev_below(40), Some((10, 19)));
        assert_eq!(t.prev_below(10), None);
        assert_eq!(t.prev_below(u64::MAX), Some((70, 79)));
    }

    #[test]
    fn node_reuse_after_remove() {
        let mut t = RbIntervalTree::new();
        t.insert(1, 1).unwrap();
        t.remove(1);
        t.insert(2, 2).unwrap();
        // Arena should not grow beyond one node.
        assert_eq!(t.arena.len(), 1);
    }

    #[test]
    fn ascending_descending_torture() {
        let mut t = RbIntervalTree::new();
        for lo in 0..500u64 {
            t.insert(lo * 2, lo * 2).unwrap();
        }
        t.check_invariants().unwrap();
        for lo in (0..500u64).rev() {
            assert!(t.remove(lo * 2));
        }
        t.check_invariants().unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn get_exact() {
        let mut t = RbIntervalTree::new();
        t.insert(5, 9).unwrap();
        assert_eq!(t.get(5), Some((5, 9)));
        assert_eq!(t.get(6), None);
    }
}
