//! Multi-page DMA descriptors.

use fns_iova::types::Iova;
use fns_mem::addr::PhysAddr;

/// Pages per Rx descriptor (Mellanox CX-5 default used throughout the
/// paper: 64 pages = 256 KB per descriptor).
pub const PAGES_PER_RX_DESCRIPTOR: usize = 64;

/// One page slot of a descriptor: the device-visible IOVA and the backing
/// physical frame (the latter is what the IOMMU must resolve to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescriptorPage {
    /// Device-visible address.
    pub iova: Iova,
    /// Backing physical frame (driver-side knowledge only).
    pub pa: PhysAddr,
}

/// A prepared multi-page descriptor.
///
/// The NIC consumes the pages in order as packets arrive; once every page
/// has been consumed the driver unmaps the IOVAs and recycles the
/// descriptor (step 4 of the paper's Figure 1).
///
/// # Examples
///
/// ```
/// use fns_nic::descriptor::{Descriptor, DescriptorPage};
/// use fns_iova::types::Iova;
/// use fns_mem::addr::PhysAddr;
///
/// let pages = (0..4).map(|i| DescriptorPage {
///     iova: Iova::from_pfn(100 + i),
///     pa: PhysAddr::from_pfn(500 + i),
/// }).collect();
/// let mut d = Descriptor::new(7, pages);
/// assert_eq!(d.remaining(), 4);
/// let p = d.consume_page().unwrap();
/// assert_eq!(p.iova, Iova::from_pfn(100));
/// assert!(!d.is_consumed());
/// ```
#[derive(Debug, Clone)]
pub struct Descriptor {
    id: u64,
    pages: Vec<DescriptorPage>,
    next: usize,
}

impl Descriptor {
    /// Creates a descriptor from prepared pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is empty.
    pub fn new(id: u64, pages: Vec<DescriptorPage>) -> Self {
        assert!(!pages.is_empty(), "empty descriptor");
        Self { id, pages, next: 0 }
    }

    /// Driver-assigned identifier (for completion matching).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Total pages in the descriptor.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Always false: descriptors are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Pages not yet consumed by the NIC.
    pub fn remaining(&self) -> usize {
        self.pages.len() - self.next
    }

    /// Takes the next unused page for an incoming packet's DMA.
    pub fn consume_page(&mut self) -> Option<DescriptorPage> {
        let p = self.pages.get(self.next).copied()?;
        self.next += 1;
        Some(p)
    }

    /// Returns `true` once the NIC has used every page.
    pub fn is_consumed(&self) -> bool {
        self.next == self.pages.len()
    }

    /// All pages of the descriptor (used by the driver at unmap time).
    pub fn pages(&self) -> &[DescriptorPage] {
        &self.pages
    }

    /// Consumes the descriptor and returns its page vector, letting the
    /// driver recycle the allocation for the next prepared descriptor.
    pub fn into_pages(self) -> Vec<DescriptorPage> {
        self.pages
    }

    /// Serializes the descriptor (id, consumption cursor, page list) for
    /// checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.id);
        w.usize(self.next);
        w.seq(self.pages.len());
        for p in &self.pages {
            w.u64(p.iova.as_u64());
            w.u64(p.pa.as_u64());
        }
    }

    /// Rebuilds a descriptor captured by [`Descriptor::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let id = r.u64()?;
        let next = r.usize()?;
        let n = r.seq()?;
        let mut pages = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            pages.push(DescriptorPage {
                iova: Iova::new(r.u64()?),
                pa: PhysAddr::new(r.u64()?),
            });
        }
        Ok(Self { id, pages, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(n: u64) -> Descriptor {
        let pages = (0..n)
            .map(|i| DescriptorPage {
                iova: Iova::from_pfn(1000 + i),
                pa: PhysAddr::from_pfn(2000 + i),
            })
            .collect();
        Descriptor::new(1, pages)
    }

    #[test]
    fn consumes_in_order() {
        let mut d = desc(3);
        assert_eq!(d.consume_page().unwrap().iova, Iova::from_pfn(1000));
        assert_eq!(d.consume_page().unwrap().iova, Iova::from_pfn(1001));
        assert_eq!(d.consume_page().unwrap().iova, Iova::from_pfn(1002));
        assert!(d.is_consumed());
        assert_eq!(d.consume_page(), None);
    }

    #[test]
    fn remaining_counts_down() {
        let mut d = desc(64);
        assert_eq!(d.remaining(), 64);
        d.consume_page();
        assert_eq!(d.remaining(), 63);
        assert_eq!(d.len(), 64);
    }

    #[test]
    #[should_panic(expected = "empty descriptor")]
    fn empty_rejected() {
        Descriptor::new(0, vec![]);
    }
}
