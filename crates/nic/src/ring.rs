//! Per-core Rx descriptor ring.

use std::collections::VecDeque;

use fns_faults::{FaultKind, FaultPlane};

use crate::descriptor::Descriptor;

/// Typed Rx-ring errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The producer index caught the consumer: no free slot for the
    /// descriptor (real or injected ring overrun).
    Overflow { capacity: usize },
    /// The head descriptor still has unconsumed pages — popping it would
    /// let the driver unmap pages the NIC may still write.
    HeadLive { remaining: usize },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Overflow { capacity } => {
                write!(f, "Rx ring overflow (capacity {capacity})")
            }
            RingError::HeadLive { remaining } => {
                write!(f, "head descriptor live with {remaining} pages unconsumed")
            }
        }
    }
}

impl std::error::Error for RingError {}

/// A ring buffer of prepared Rx descriptors for one core.
///
/// The driver keeps the ring topped up ("replenished") whenever the number
/// of prepared descriptors falls below a threshold; the NIC consumes pages
/// from the head descriptor as packets arrive (paper §2.1, step 1).
///
/// # Examples
///
/// ```
/// use fns_nic::ring::RxRing;
/// use fns_nic::descriptor::{Descriptor, DescriptorPage};
/// use fns_iova::types::Iova;
/// use fns_mem::addr::PhysAddr;
///
/// let mut ring = RxRing::new(4, 2);
/// assert!(ring.needs_replenish());
/// for id in 0..4 {
///     let pages = vec![DescriptorPage { iova: Iova::from_pfn(10 + id), pa: PhysAddr::from_pfn(id) }];
///     ring.push(Descriptor::new(id, pages));
/// }
/// assert!(!ring.needs_replenish());
/// assert!(ring.head_mut().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct RxRing {
    descriptors: VecDeque<Descriptor>,
    capacity: usize,
    replenish_threshold: usize,
}

impl RxRing {
    /// Creates a ring holding up to `capacity` descriptors, replenished when
    /// fewer than `replenish_threshold` remain.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the threshold exceeds the capacity.
    pub fn new(capacity: usize, replenish_threshold: usize) -> Self {
        assert!(capacity > 0, "zero-capacity ring");
        assert!(
            replenish_threshold <= capacity,
            "threshold above ring capacity"
        );
        Self {
            descriptors: VecDeque::with_capacity(capacity),
            capacity,
            replenish_threshold,
        }
    }

    /// Descriptors currently prepared.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Returns `true` if no descriptors are available.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Ring capacity in descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free descriptor slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.descriptors.len()
    }

    /// Returns `true` when the driver should prepare more descriptors.
    pub fn needs_replenish(&self) -> bool {
        self.descriptors.len() < self.replenish_threshold
    }

    /// Adds a prepared descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full. Fault-tolerant callers use
    /// [`RxRing::try_push`] or [`RxRing::push_with`].
    pub fn push(&mut self, d: Descriptor) {
        self.try_push(d).expect("ring overflow");
    }

    /// Adds a prepared descriptor, reporting a full ring as
    /// [`RingError::Overflow`] and returning the descriptor for recycling.
    pub fn try_push(&mut self, d: Descriptor) -> Result<(), (Descriptor, RingError)> {
        if self.descriptors.len() >= self.capacity {
            return Err((
                d,
                RingError::Overflow {
                    capacity: self.capacity,
                },
            ));
        }
        self.descriptors.push_back(d);
        Ok(())
    }

    /// Adds a prepared descriptor under fault injection: the plane may
    /// refuse the push as a ring overrun even while slots remain (modelling
    /// a producer index racing past the consumer). The refused descriptor
    /// comes back to the caller for recycling.
    pub fn push_with(
        &mut self,
        d: Descriptor,
        faults: &mut FaultPlane,
    ) -> Result<(), (Descriptor, RingError)> {
        if faults.roll(FaultKind::RingOverrun) {
            return Err((
                d,
                RingError::Overflow {
                    capacity: self.capacity,
                },
            ));
        }
        self.try_push(d)
    }

    /// The head descriptor the NIC is currently filling.
    pub fn head_mut(&mut self) -> Option<&mut Descriptor> {
        self.descriptors.front_mut()
    }

    /// Unconsumed pages remaining in the head descriptor.
    pub fn head_remaining(&self) -> usize {
        self.descriptors.front().map_or(0, |d| d.remaining())
    }

    /// Fully prepared descriptors queued behind the head.
    pub fn queued_behind_head(&self) -> usize {
        self.descriptors.len().saturating_sub(1)
    }

    /// Pops the head descriptor once fully consumed, handing it to the
    /// driver's completion path.
    ///
    /// # Panics
    ///
    /// Panics if the head is not fully consumed — popping a live descriptor
    /// would let the driver unmap pages the NIC may still write.
    pub fn pop_consumed(&mut self) -> Option<Descriptor> {
        self.try_pop_consumed()
            .expect("popping a descriptor the NIC is still filling")
    }

    /// Pops the head descriptor regardless of consumption state. This is
    /// the end-of-run teardown hook: once the simulation clock stops, the
    /// modelled NIC writes nothing further, so still-posted descriptors can
    /// be handed back for page-storage recycling.
    pub fn pop_any(&mut self) -> Option<Descriptor> {
        self.descriptors.pop_front()
    }

    /// Serializes the ring (configuration plus descriptors front-to-back)
    /// for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.usize(self.capacity);
        w.usize(self.replenish_threshold);
        w.seq(self.descriptors.len());
        for d in &self.descriptors {
            d.snap(w);
        }
    }

    /// Rebuilds a ring captured by [`RxRing::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let capacity = r.usize()?;
        let replenish_threshold = r.usize()?;
        let n = r.seq()?;
        let mut descriptors = VecDeque::with_capacity(capacity.min(1 << 16));
        for _ in 0..n {
            descriptors.push_back(Descriptor::unsnap(r)?);
        }
        Ok(Self {
            descriptors,
            capacity,
            replenish_threshold,
        })
    }

    /// Pops the head descriptor once fully consumed, reporting a
    /// still-live head as [`RingError::HeadLive`] instead of panicking.
    pub fn try_pop_consumed(&mut self) -> Result<Option<Descriptor>, RingError> {
        let Some(head) = self.descriptors.front() else {
            return Ok(None);
        };
        if head.is_consumed() {
            Ok(self.descriptors.pop_front())
        } else {
            Err(RingError::HeadLive {
                remaining: head.remaining(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescriptorPage;
    use fns_iova::types::Iova;
    use fns_mem::addr::PhysAddr;

    fn desc(id: u64, pages: u64) -> Descriptor {
        Descriptor::new(
            id,
            (0..pages)
                .map(|i| DescriptorPage {
                    iova: Iova::from_pfn(id * 100 + i),
                    pa: PhysAddr::from_pfn(id * 100 + i),
                })
                .collect(),
        )
    }

    #[test]
    fn replenish_threshold() {
        let mut r = RxRing::new(4, 2);
        assert!(r.needs_replenish());
        r.push(desc(0, 1));
        r.push(desc(1, 1));
        assert!(!r.needs_replenish());
        r.head_mut().unwrap().consume_page();
        r.pop_consumed().unwrap();
        assert!(r.needs_replenish());
    }

    #[test]
    fn consume_then_pop() {
        let mut r = RxRing::new(2, 1);
        r.push(desc(7, 2));
        r.head_mut().unwrap().consume_page();
        r.head_mut().unwrap().consume_page();
        let d = r.pop_consumed().unwrap();
        assert_eq!(d.id(), 7);
        assert!(r.is_empty());
        assert_eq!(r.free_slots(), 2);
    }

    #[test]
    #[should_panic(expected = "still filling")]
    fn pop_live_descriptor_panics() {
        let mut r = RxRing::new(2, 1);
        r.push(desc(7, 2));
        r.head_mut().unwrap().consume_page();
        r.pop_consumed();
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn overflow_panics() {
        let mut r = RxRing::new(1, 0);
        r.push(desc(0, 1));
        r.push(desc(1, 1));
    }

    #[test]
    fn pop_empty_is_none() {
        let mut r = RxRing::new(1, 0);
        assert!(r.pop_consumed().is_none());
    }

    #[test]
    fn try_push_returns_descriptor_on_overflow() {
        let mut r = RxRing::new(1, 0);
        r.push(desc(0, 1));
        let (d, e) = r.try_push(desc(1, 1)).unwrap_err();
        assert_eq!(d.id(), 1);
        assert_eq!(e, RingError::Overflow { capacity: 1 });
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn try_pop_live_head_is_error() {
        let mut r = RxRing::new(2, 1);
        r.push(desc(7, 2));
        r.head_mut().unwrap().consume_page();
        assert_eq!(
            r.try_pop_consumed().unwrap_err(),
            RingError::HeadLive { remaining: 1 }
        );
        // The head stays in place for the NIC to finish.
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn push_with_injected_overrun_refuses_despite_space() {
        use fns_faults::{FaultConfig, FaultPlane};
        use fns_sim::rng::SimRng;

        let cfg = FaultConfig::disabled().with_every(FaultKind::RingOverrun, 2);
        let mut plane = FaultPlane::new(cfg, SimRng::seed(1));
        let mut r = RxRing::new(8, 0);
        assert!(r.push_with(desc(0, 1), &mut plane).is_ok());
        let (d, e) = r.push_with(desc(1, 1), &mut plane).unwrap_err();
        assert_eq!(d.id(), 1);
        assert!(matches!(e, RingError::Overflow { .. }));
        assert_eq!(r.len(), 1, "injected overrun must not enqueue");
        assert_eq!(plane.stats().injected_of(FaultKind::RingOverrun), 1);
    }
}
