//! Per-core Rx descriptor ring.

use std::collections::VecDeque;

use crate::descriptor::Descriptor;

/// A ring buffer of prepared Rx descriptors for one core.
///
/// The driver keeps the ring topped up ("replenished") whenever the number
/// of prepared descriptors falls below a threshold; the NIC consumes pages
/// from the head descriptor as packets arrive (paper §2.1, step 1).
///
/// # Examples
///
/// ```
/// use fns_nic::ring::RxRing;
/// use fns_nic::descriptor::{Descriptor, DescriptorPage};
/// use fns_iova::types::Iova;
/// use fns_mem::addr::PhysAddr;
///
/// let mut ring = RxRing::new(4, 2);
/// assert!(ring.needs_replenish());
/// for id in 0..4 {
///     let pages = vec![DescriptorPage { iova: Iova::from_pfn(10 + id), pa: PhysAddr::from_pfn(id) }];
///     ring.push(Descriptor::new(id, pages));
/// }
/// assert!(!ring.needs_replenish());
/// assert!(ring.head_mut().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct RxRing {
    descriptors: VecDeque<Descriptor>,
    capacity: usize,
    replenish_threshold: usize,
}

impl RxRing {
    /// Creates a ring holding up to `capacity` descriptors, replenished when
    /// fewer than `replenish_threshold` remain.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the threshold exceeds the capacity.
    pub fn new(capacity: usize, replenish_threshold: usize) -> Self {
        assert!(capacity > 0, "zero-capacity ring");
        assert!(
            replenish_threshold <= capacity,
            "threshold above ring capacity"
        );
        Self {
            descriptors: VecDeque::with_capacity(capacity),
            capacity,
            replenish_threshold,
        }
    }

    /// Descriptors currently prepared.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Returns `true` if no descriptors are available.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Ring capacity in descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free descriptor slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.descriptors.len()
    }

    /// Returns `true` when the driver should prepare more descriptors.
    pub fn needs_replenish(&self) -> bool {
        self.descriptors.len() < self.replenish_threshold
    }

    /// Adds a prepared descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full.
    pub fn push(&mut self, d: Descriptor) {
        assert!(self.descriptors.len() < self.capacity, "ring overflow");
        self.descriptors.push_back(d);
    }

    /// The head descriptor the NIC is currently filling.
    pub fn head_mut(&mut self) -> Option<&mut Descriptor> {
        self.descriptors.front_mut()
    }

    /// Unconsumed pages remaining in the head descriptor.
    pub fn head_remaining(&self) -> usize {
        self.descriptors.front().map_or(0, |d| d.remaining())
    }

    /// Fully prepared descriptors queued behind the head.
    pub fn queued_behind_head(&self) -> usize {
        self.descriptors.len().saturating_sub(1)
    }

    /// Pops the head descriptor once fully consumed, handing it to the
    /// driver's completion path.
    ///
    /// # Panics
    ///
    /// Panics if the head is not fully consumed — popping a live descriptor
    /// would let the driver unmap pages the NIC may still write.
    pub fn pop_consumed(&mut self) -> Option<Descriptor> {
        if self.descriptors.front()?.is_consumed() {
            self.descriptors.pop_front()
        } else {
            panic!("popping a descriptor the NIC is still filling");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescriptorPage;
    use fns_iova::types::Iova;
    use fns_mem::addr::PhysAddr;

    fn desc(id: u64, pages: u64) -> Descriptor {
        Descriptor::new(
            id,
            (0..pages)
                .map(|i| DescriptorPage {
                    iova: Iova::from_pfn(id * 100 + i),
                    pa: PhysAddr::from_pfn(id * 100 + i),
                })
                .collect(),
        )
    }

    #[test]
    fn replenish_threshold() {
        let mut r = RxRing::new(4, 2);
        assert!(r.needs_replenish());
        r.push(desc(0, 1));
        r.push(desc(1, 1));
        assert!(!r.needs_replenish());
        r.head_mut().unwrap().consume_page();
        r.pop_consumed().unwrap();
        assert!(r.needs_replenish());
    }

    #[test]
    fn consume_then_pop() {
        let mut r = RxRing::new(2, 1);
        r.push(desc(7, 2));
        r.head_mut().unwrap().consume_page();
        r.head_mut().unwrap().consume_page();
        let d = r.pop_consumed().unwrap();
        assert_eq!(d.id(), 7);
        assert!(r.is_empty());
        assert_eq!(r.free_slots(), 2);
    }

    #[test]
    #[should_panic(expected = "still filling")]
    fn pop_live_descriptor_panics() {
        let mut r = RxRing::new(2, 1);
        r.push(desc(7, 2));
        r.head_mut().unwrap().consume_page();
        r.pop_consumed();
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn overflow_panics() {
        let mut r = RxRing::new(1, 0);
        r.push(desc(0, 1));
        r.push(desc(1, 1));
    }

    #[test]
    fn pop_empty_is_none() {
        let mut r = RxRing::new(1, 0);
        assert!(r.pop_consumed().is_none());
    }
}
