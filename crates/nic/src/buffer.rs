//! The finite on-NIC packet buffer.
//!
//! When the DMA pipeline cannot drain packets as fast as the wire delivers
//! them (because address translation inflates per-DMA latency), this buffer
//! fills and the NIC tail-drops — the direct cause of the drop rates in
//! Figures 2b/3b and, through retransmission timeouts, of the tail-latency
//! inflation in Figure 9.

use std::collections::VecDeque;

/// FIFO byte-budgeted packet buffer with tail-drop.
///
/// Generic over the packet type; the byte size is supplied at enqueue time
/// so this crate stays independent of the transport's packet layout.
///
/// # Examples
///
/// ```
/// use fns_nic::buffer::NicBuffer;
///
/// let mut b: NicBuffer<&str> = NicBuffer::new(100);
/// assert!(b.enqueue("p1", 60));
/// assert!(!b.enqueue("p2", 60)); // tail drop
/// assert_eq!(b.dropped_packets(), 1);
/// assert_eq!(b.dequeue(), Some(("p1", 60)));
/// ```
#[derive(Debug, Clone)]
pub struct NicBuffer<T> {
    queue: VecDeque<(T, u64)>,
    capacity_bytes: u64,
    used_bytes: u64,
    peak_bytes: u64,
    enqueued_packets: u64,
    dropped_packets: u64,
    dropped_bytes: u64,
}

impl<T> NicBuffer<T> {
    /// Creates a buffer of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "zero-capacity NIC buffer");
        Self {
            queue: VecDeque::new(),
            capacity_bytes,
            used_bytes: 0,
            peak_bytes: 0,
            enqueued_packets: 0,
            dropped_packets: 0,
            dropped_bytes: 0,
        }
    }

    /// Enqueues a packet of `bytes`; returns `false` and counts a drop if
    /// the buffer cannot hold it.
    pub fn enqueue(&mut self, packet: T, bytes: u64) -> bool {
        if self.used_bytes + bytes > self.capacity_bytes {
            self.dropped_packets += 1;
            self.dropped_bytes += bytes;
            return false;
        }
        self.used_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        self.enqueued_packets += 1;
        self.queue.push_back((packet, bytes));
        true
    }

    /// Dequeues the oldest packet.
    pub fn dequeue(&mut self) -> Option<(T, u64)> {
        let (p, b) = self.queue.pop_front()?;
        self.used_bytes -= b;
        Some((p, b))
    }

    /// Peeks at the oldest packet's size without dequeuing.
    pub fn head_bytes(&self) -> Option<u64> {
        self.queue.front().map(|&(_, b)| b)
    }

    /// Peeks at the oldest packet without dequeuing.
    pub fn peek_packet(&self) -> Option<&T> {
        self.queue.front().map(|(p, _)| p)
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes currently queued.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Peak queued bytes over the buffer's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Packets accepted over the buffer's lifetime.
    pub fn enqueued_packets(&self) -> u64 {
        self.enqueued_packets
    }

    /// Packets tail-dropped.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Bytes tail-dropped.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Serializes the buffer (queue front-to-back plus byte accounting)
    /// for checkpointing, with `f` encoding each packet.
    pub fn snap_with(
        &self,
        w: &mut fns_snap::SnapWriter,
        mut f: impl FnMut(&mut fns_snap::SnapWriter, &T),
    ) {
        w.u64(self.capacity_bytes);
        w.u64(self.used_bytes);
        w.u64(self.peak_bytes);
        w.u64(self.enqueued_packets);
        w.u64(self.dropped_packets);
        w.u64(self.dropped_bytes);
        w.seq(self.queue.len());
        for (p, b) in &self.queue {
            f(w, p);
            w.u64(*b);
        }
    }

    /// Rebuilds a buffer captured by [`NicBuffer::snap_with`], with `f`
    /// decoding each packet.
    pub fn unsnap_with(
        r: &mut fns_snap::SnapReader,
        mut f: impl FnMut(&mut fns_snap::SnapReader) -> Result<T, fns_snap::SnapError>,
    ) -> Result<Self, fns_snap::SnapError> {
        let capacity_bytes = r.u64()?;
        let used_bytes = r.u64()?;
        let peak_bytes = r.u64()?;
        let enqueued_packets = r.u64()?;
        let dropped_packets = r.u64()?;
        let dropped_bytes = r.u64()?;
        let n = r.seq()?;
        let mut queue = VecDeque::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let p = f(r)?;
            let b = r.u64()?;
            queue.push_back((p, b));
        }
        Ok(Self {
            queue,
            capacity_bytes,
            used_bytes,
            peak_bytes,
            enqueued_packets,
            dropped_packets,
            dropped_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut b = NicBuffer::new(1000);
        b.enqueue(1, 100);
        b.enqueue(2, 100);
        assert_eq!(b.dequeue(), Some((1, 100)));
        assert_eq!(b.dequeue(), Some((2, 100)));
        assert_eq!(b.dequeue(), None);
    }

    #[test]
    fn tail_drop_and_accounting() {
        let mut b = NicBuffer::new(250);
        assert!(b.enqueue('a', 100));
        assert!(b.enqueue('b', 100));
        assert!(!b.enqueue('c', 100));
        assert_eq!(b.used_bytes(), 200);
        assert_eq!(b.dropped_packets(), 1);
        assert_eq!(b.dropped_bytes(), 100);
        b.dequeue();
        assert!(b.enqueue('c', 100));
        assert_eq!(b.peak_bytes(), 200);
        assert_eq!(b.enqueued_packets(), 3);
    }

    #[test]
    fn head_bytes_peek() {
        let mut b = NicBuffer::new(100);
        assert_eq!(b.head_bytes(), None);
        b.enqueue((), 42);
        assert_eq!(b.head_bytes(), Some(42));
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        NicBuffer::<()>::new(0);
    }
}
