//! NIC model: descriptor rings, multi-page descriptors, and the finite
//! on-NIC packet buffer.
//!
//! Mirrors the Mellanox CX-5 receive datapath of §2.1: the driver prepares
//! per-core rings of Rx descriptors, each carrying 64 page-sized IOVAs; the
//! NIC buffers arriving packets in a finite input buffer (dropping on
//! overflow — the paper's Figures 2b/3b) and DMAs them through the
//! descriptors' IOVAs.

pub mod buffer;
pub mod descriptor;
pub mod ring;

pub use buffer::NicBuffer;
pub use descriptor::{Descriptor, DescriptorPage, PAGES_PER_RX_DESCRIPTOR};
pub use ring::{RingError, RxRing};
