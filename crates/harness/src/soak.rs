//! Long-horizon soak plane: aging scenarios, auto-checkpointing, and
//! mid-soak violation bisects.
//!
//! A *soak* is an ordinary simulation run stretched far past the paper's
//! 60 ms figure windows, driven by a workload shaped to age the host:
//! sustained connection churn, IOVA-space fragmentation, or PT-page
//! reclaim storms ([`SOAK_SCENARIOS`]). Because those horizons are hours
//! of wall clock at full scale, the runner checkpoints the complete
//! engine state every `snapshot_every` sim-nanoseconds
//! ([`run_soak`]); a killed run resumes from the newest checkpoint with
//! bit-identical final metrics (`Engine::restore` pins that, for the
//! monolithic and sharded engines alike), and a
//! degradation-watchdog abort surfaces the state at the abort boundary as
//! a replayable artifact instead of a dead process.
//!
//! When the safety oracle flags a violation deep into a soak, rerunning
//! from t=0 to debug it is exactly the cost the checkpoints exist to
//! avoid: [`bisect_violation`] replays each retained checkpoint forward
//! one interval to find the window where the violation count first grows,
//! and [`shrink_violation_window`] then bisects inside that interval down
//! to a replay a few microseconds long. The surviving
//! `(checkpoint, window)` pair is the soak-scale analogue of the ddmin
//! shrinker in [`crate::mbt`]: a minimal deterministic reproducer —
//! resumable via `fns-sim --resume` — where the model-level plane shrinks
//! op traces instead.

use std::collections::VecDeque;

use fns_core::{Engine, ProtectionMode, RunMetrics, SimConfig, WatchdogConfig};
use fns_sim::time::{Nanos, MICROS, MILLIS};

/// A named workload shaped to age the host over a long horizon.
pub struct SoakScenario {
    /// Stable CLI-facing name (`fns-sim --soak <name>`).
    pub name: &'static str,
    /// One-line description (shown by `--list-scenarios`).
    pub description: &'static str,
    /// Builds the soak config under `mode`: a 10-second default horizon
    /// (~150x the figure windows; scale further with `--measure-ms`),
    /// gauge probes on for time-series export, and the degradation
    /// watchdog armed.
    pub build: fn(ProtectionMode) -> SimConfig,
}

/// Default soak horizon: 10 sim-seconds.
const SOAK_MEASURE: Nanos = 10_000 * MILLIS;

/// Watchdog defaults for soak runs: check every millisecond, relieve a
/// wipe backlog past 256 epochs, flag an invalidation storm past 200k
/// invalidations per check interval, never abort (the CLI and tests opt
/// into `abort_after_degraded`).
fn soak_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        enabled: true,
        check_interval_ns: MILLIS,
        max_wipe_backlog: 256,
        storm_invalidations: 200_000,
        abort_after_degraded: 0,
    }
}

/// Applies the common soak shaping to a figure-style config: long
/// horizon, gauge probes sampling every 100 us, watchdog armed, and the
/// flight recorder auto-armed so a watchdog abort deep into the soak
/// flushes the last events leading up to it (the crash ring is
/// mask-independent, so this adds no instrumented-tier cost).
fn soakify(mut cfg: SimConfig) -> SimConfig {
    cfg.measure = SOAK_MEASURE;
    cfg.probes.interval_ns = 100 * MICROS;
    cfg.probes.max_samples = 262_144;
    cfg.watchdog = soak_watchdog();
    cfg.observe.flight = true;
    cfg
}

/// Every registered soak scenario, in display order.
pub const SOAK_SCENARIOS: &[SoakScenario] = &[
    SoakScenario {
        name: "churn",
        description: "sustained connection churn: 32 depth-1 request/response connections",
        build: |mode| {
            // Depth-1 connections spend most of their life idle-active
            // cycling, so mappings churn constantly without any one flow
            // pinning the allocator into a steady state.
            let mut cfg = soakify(fns_apps::redis_config(mode, 1024));
            cfg.flows = 32;
            cfg.aging_factor = 2.0;
            cfg
        },
    },
    SoakScenario {
        name: "iova-frag",
        description: "IOVA fragmentation: 9 KB MTU multi-page allocations under heavy aging",
        build: |mode| {
            // 3-page allocations interleaved with aging holes fragment the
            // rcache spans; the exported fragmentation gauge tracks it.
            let mut cfg = soakify(fns_apps::iperf_config(mode, 8, 256));
            cfg.mtu = 9000;
            cfg.aging_factor = 4.0;
            cfg
        },
    },
    SoakScenario {
        name: "reclaim-storm",
        description: "PT-page reclaim storms: per-page descriptors, eager invalidation batches",
        build: |mode| {
            // Single-page descriptors maximize map/unmap (and, in the
            // Linux-strict family, leaf-PTcache wipe) rates; a small
            // deferred threshold keeps invalidation batches coming.
            let mut cfg = soakify(fns_apps::iperf_config(mode, 8, 256));
            cfg.pages_per_descriptor = 1;
            cfg.deferred_flush_threshold = 32;
            cfg.aging_factor = 3.0;
            cfg
        },
    },
];

/// Names of all registered soak scenarios, in display order.
pub fn soak_names() -> Vec<&'static str> {
    SOAK_SCENARIOS.iter().map(|s| s.name).collect()
}

/// Builds the soak config for `name` under `mode`, or `None` if no soak
/// scenario with that name is registered.
pub fn soak_config(name: &str, mode: ProtectionMode) -> Option<SimConfig> {
    SOAK_SCENARIOS
        .iter()
        .find(|s| s.name == name)
        .map(|s| (s.build)(mode))
}

/// Checkpointing policy for [`run_soak`].
#[derive(Debug, Clone, Copy)]
pub struct SoakOptions {
    /// Checkpoint interval in sim nanoseconds; 0 disables checkpointing.
    pub snapshot_every: Nanos,
    /// Retained-checkpoint ring size (oldest dropped first; min 1).
    pub keep: usize,
}

impl Default for SoakOptions {
    fn default() -> Self {
        Self {
            snapshot_every: 0,
            keep: 4,
        }
    }
}

/// One retained checkpoint: the full serialized engine state at a
/// checkpoint boundary.
pub struct Checkpoint {
    /// Sim time of the boundary this checkpoint was taken at.
    pub at: Nanos,
    /// `Engine::snapshot` bytes — restore with `Engine::restore` under the
    /// same engine family (`shards >= 1` checkpoints restore at any
    /// `shards >= 1`; monolithic checkpoints restore monolithic).
    pub bytes: Vec<u8>,
}

/// What a soak run produced.
pub struct SoakOutcome {
    /// Final run metrics. Bit-identical to an uncheckpointed run of the
    /// same config (checkpointing never perturbs the simulation).
    pub metrics: RunMetrics,
    /// Retained checkpoints, oldest first. On a watchdog abort the last
    /// entry is the state at the abort boundary — the replayable artifact.
    pub checkpoints: Vec<Checkpoint>,
    /// Boundary at which the degradation watchdog aborted the run, if it
    /// did. The run stops there; `metrics` covers only the completed part.
    pub aborted_at: Option<Nanos>,
}

/// Runs `cfg` to completion (or watchdog abort), checkpointing at every
/// `opts.snapshot_every` boundary.
///
/// Errs — with the named reason, never silently dropping state — when
/// checkpointing is requested for a config that cannot round-trip
/// through a snapshot (see `SimConfig::snapshot_ineligibility`).
pub fn run_soak(cfg: SimConfig, opts: &SoakOptions) -> Result<SoakOutcome, &'static str> {
    run_soak_sim(Engine::new(cfg), opts)
}

/// [`run_soak`] over an already-built (possibly restored, possibly
/// sabotaged-for-testing) simulation. Accepts either engine — a bare
/// `HostSim` converts via `Engine::from`.
pub fn run_soak_sim(mut sim: Engine, opts: &SoakOptions) -> Result<SoakOutcome, &'static str> {
    if opts.snapshot_every > 0 {
        if let Some(reason) = sim.config().snapshot_ineligibility() {
            return Err(reason);
        }
    }
    let end = sim.config().end_time();
    let keep = opts.keep.max(1);
    let mut checkpoints: VecDeque<Checkpoint> = VecDeque::new();
    let mut aborted_at = None;
    // A restored sim starts mid-run; keep its boundaries aligned to the
    // original grid by stepping from the next multiple of the interval.
    let mut t = sim.now();
    loop {
        let next = t
            .checked_div(opts.snapshot_every)
            .map_or(end, |n| ((n + 1) * opts.snapshot_every).min(end));
        sim.step_until(next);
        t = next;
        if sim.watchdog_aborted() {
            // Checkpoint-then-abort: the state at the first boundary past
            // the abort is the artifact a human replays.
            checkpoints.push_back(Checkpoint {
                at: t,
                bytes: sim.snapshot(),
            });
            while checkpoints.len() > keep {
                checkpoints.pop_front();
            }
            aborted_at = Some(t);
            break;
        }
        if t >= end {
            break;
        }
        checkpoints.push_back(Checkpoint {
            at: t,
            bytes: sim.snapshot(),
        });
        while checkpoints.len() > keep {
            checkpoints.pop_front();
        }
    }
    Ok(SoakOutcome {
        metrics: sim.finish(),
        checkpoints: checkpoints.into(),
        aborted_at,
    })
}

/// A replay window localizing a mid-soak oracle violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolationWindow {
    /// Index into the retained checkpoint ring the replay starts from.
    pub index: usize,
    /// Replay start (the checkpoint's boundary).
    pub from: Nanos,
    /// Earliest replay end at which the violation count has grown.
    pub to: Nanos,
}

/// Finds the first checkpoint interval in which the safety oracle's
/// violation count grows, by restoring each retained checkpoint and
/// replaying it one interval forward.
///
/// Returns `None` when no interval reproduces growth — including when the
/// violation predates the oldest retained checkpoint (its count is
/// already baked into every restore; retain a deeper ring and rerun).
pub fn bisect_violation(
    cfg: SimConfig,
    checkpoints: &[Checkpoint],
    end: Nanos,
) -> Option<ViolationWindow> {
    for (index, ck) in checkpoints.iter().enumerate() {
        let to = checkpoints.get(index + 1).map_or(end, |next| next.at);
        if to <= ck.at {
            continue;
        }
        let mut sim = Engine::restore(cfg, &ck.bytes).ok()?;
        let before = sim.audit_violations();
        sim.step_until(to);
        if sim.audit_violations() > before {
            return Some(ViolationWindow {
                index,
                from: ck.at,
                to,
            });
        }
    }
    None
}

/// Shrinks a [`bisect_violation`] window to the smallest replay-from-the-
/// checkpoint that still reproduces violation growth, by binary search on
/// the replay end (the soak-scale counterpart of `mbt::shrink`'s ddmin).
/// Replays are deterministic, so the returned `to` is exact to
/// `resolution_ns` (min 1).
pub fn shrink_violation_window(
    cfg: SimConfig,
    checkpoint: &Checkpoint,
    window: ViolationWindow,
    resolution_ns: Nanos,
) -> ViolationWindow {
    let reproduces = |to: Nanos| -> bool {
        let Ok(mut sim) = Engine::restore(cfg, &checkpoint.bytes) else {
            return false;
        };
        let before = sim.audit_violations();
        sim.step_until(to);
        sim.audit_violations() > before
    };
    let (mut lo, mut hi) = (window.from, window.to);
    while hi - lo > resolution_ns.max(1) {
        let mid = lo + (hi - lo) / 2;
        if reproduces(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    ViolationWindow { to: hi, ..window }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fns_core::{HostSim, Sabotage};

    /// A soak-shaped config small enough for a unit test.
    fn tiny_soak(mode: ProtectionMode) -> SimConfig {
        let mut cfg = fns_apps::iperf_config(mode, 2, 64);
        cfg.cores = 2;
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        cfg.aging_factor = 0.0;
        cfg.watchdog = soak_watchdog();
        cfg.watchdog.check_interval_ns = 100_000;
        cfg
    }

    #[test]
    fn soak_scenarios_are_well_formed() {
        let names = soak_names();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate soak scenario name");
            }
        }
        for s in SOAK_SCENARIOS {
            let cfg = (s.build)(ProtectionMode::FastAndSafe);
            assert!(cfg.watchdog.enabled, "{}: watchdog off", s.name);
            assert!(cfg.probes.interval_ns > 0, "{}: probes off", s.name);
            assert!(cfg.observe.flight, "{}: flight recorder off", s.name);
            assert_eq!(
                cfg.snapshot_ineligibility(),
                None,
                "{}: not checkpointable",
                s.name
            );
        }
        assert!(soak_config("churn", ProtectionMode::LinuxStrict).is_some());
        assert!(soak_config("no-such-soak", ProtectionMode::LinuxStrict).is_none());
    }

    #[test]
    fn checkpointing_soak_matches_the_uninterrupted_run() {
        let cfg = tiny_soak(ProtectionMode::FastAndSafe);
        let golden = HostSim::new(cfg).run();
        let outcome = run_soak(
            cfg,
            &SoakOptions {
                snapshot_every: 400_000,
                keep: 3,
            },
        )
        .expect("eligible config");
        assert_eq!(outcome.aborted_at, None);
        assert_eq!(outcome.checkpoints.len(), 3);
        assert_eq!(golden, outcome.metrics, "checkpointing perturbed the run");
        // And every retained checkpoint resumes to the same end state.
        for ck in &outcome.checkpoints {
            let resumed = HostSim::restore(cfg, &ck.bytes)
                .expect("own checkpoint restores")
                .run();
            assert_eq!(golden, resumed, "resume from t={} diverged", ck.at);
        }
    }

    #[test]
    fn sharded_soak_checkpoints_and_resumes_identically() {
        // The same soak plane carries `--shards` configs: checkpoints are
        // sharded-engine snapshots, and every retained one resumes to the
        // same final metrics as the uninterrupted sharded run.
        let mut cfg = tiny_soak(ProtectionMode::FastAndSafe);
        cfg.topology = fns_core::Topology {
            nics: 2,
            queues_per_nic: 1,
            storage_devices: 0,
            ..fns_core::Topology::single_nic()
        };
        cfg.shards = 2;
        let golden = Engine::new(cfg).run();
        let outcome = run_soak(
            cfg,
            &SoakOptions {
                snapshot_every: 400_000,
                keep: 2,
            },
        )
        .expect("eligible config");
        assert_eq!(outcome.aborted_at, None);
        assert_eq!(golden, outcome.metrics, "checkpointing perturbed the run");
        for ck in &outcome.checkpoints {
            let resumed = Engine::restore(cfg, &ck.bytes)
                .expect("own checkpoint restores")
                .run();
            assert_eq!(golden, resumed, "resume from t={} diverged", ck.at);
        }
    }

    #[test]
    fn checkpointing_refuses_fatal_audit_with_the_named_reason() {
        let mut cfg = tiny_soak(ProtectionMode::FastAndSafe);
        cfg.audit.enabled = true;
        cfg.audit.fatal = true;
        let err = run_soak(
            cfg,
            &SoakOptions {
                snapshot_every: 400_000,
                keep: 3,
            },
        )
        .err()
        .expect("fatal audit must be rejected");
        assert!(err.contains("audit.fatal"), "unnamed reason: {err}");
        // Without checkpointing the same config is fine to soak.
        assert!(run_soak(cfg, &SoakOptions::default()).is_ok());
    }

    #[test]
    fn watchdog_abort_yields_a_replayable_artifact() {
        let mut cfg = tiny_soak(ProtectionMode::LinuxDeferred);
        cfg.watchdog.storm_invalidations = 1; // every interval is a "storm"
        cfg.watchdog.abort_after_degraded = 2;
        let outcome = run_soak(
            cfg,
            &SoakOptions {
                snapshot_every: 400_000,
                keep: 2,
            },
        )
        .expect("eligible config");
        let aborted_at = outcome.aborted_at.expect("watchdog must abort");
        assert!(aborted_at < cfg.end_time());
        assert!(outcome.metrics.watchdog.aborted);
        let artifact = outcome.checkpoints.last().expect("abort checkpoint");
        assert_eq!(artifact.at, aborted_at);
        // The artifact replays: restore it and step forward.
        let mut sim = HostSim::restore(cfg, &artifact.bytes).expect("artifact restores");
        sim.step_until(aborted_at + 100_000);
    }

    #[test]
    fn bisect_localizes_a_seeded_mid_soak_violation() {
        let mut cfg = tiny_soak(ProtectionMode::LinuxStrict);
        cfg.audit.enabled = true;
        let mut sim = HostSim::new(cfg);
        // Seed a driver bug deep enough into the run to land past the
        // first checkpoint: drop one range invalidation mid-soak (the
        // 500th submission lands ~1.8 ms in for this config).
        sim.set_sabotage(Sabotage::SkipRangeInvalidation { nth: 500 });
        let outcome = run_soak_sim(
            sim.into(),
            &SoakOptions {
                snapshot_every: 250_000,
                keep: 16,
            },
        )
        .expect("eligible config");
        assert!(
            outcome.metrics.audit.violations > 0,
            "sabotage produced no violation; tune nth"
        );
        // The restored runs re-execute the same sabotage (it serializes
        // with the driver), so replaying checkpoint intervals localizes
        // the first violation without rerunning from t=0.
        let window = bisect_violation(cfg, &outcome.checkpoints, cfg.end_time())
            .expect("violation postdates the oldest retained checkpoint");
        let shrunk =
            shrink_violation_window(cfg, &outcome.checkpoints[window.index], window, 1_000);
        assert!(shrunk.to <= window.to);
        assert!(shrunk.to > shrunk.from);
        // The shrunk window still reproduces from the checkpoint.
        let mut sim = HostSim::restore(cfg, &outcome.checkpoints[window.index].bytes)
            .expect("checkpoint restores");
        let before = sim.audit_violations();
        sim.step_until(shrunk.to);
        assert!(sim.audit_violations() > before);
    }
}
