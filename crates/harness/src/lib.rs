//! Deterministic parallel sweep runner.
//!
//! Every figure of the paper is a *sweep*: a grid of independent
//! `(config, mode, seed)` simulation runs whose results are printed in a
//! fixed order. Each run is single-threaded and deterministic, so the grid
//! is embarrassingly parallel — the only thing that must not change is the
//! order results come back in. [`SweepRunner`] provides exactly that
//! contract:
//!
//! * runs execute on a scoped `std::thread` pool (no external
//!   dependencies), sized by the `FNS_JOBS` environment variable or the
//!   machine's available parallelism;
//! * results are collected in **submission order**, so a sweep printed
//!   from the returned `Vec` is byte-identical to the sequential run no
//!   matter how many workers raced over it;
//! * each run owns its `SimConfig` (with its own forked-from-seed RNG
//!   inside `HostSim`), so no state is shared between concurrent runs.
//!
//! A worker panic propagates out of [`SweepRunner::map`] when the scope
//! joins — a sweep never silently drops a point.
//!
//! ```
//! use fns_harness::SweepRunner;
//!
//! let runner = SweepRunner::new(4);
//! let squares = runner.map((0..8u64).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fns_core::{Engine, HostSim, ProtectionMode, RunArena, RunMetrics, SimConfig};

pub mod mbt;
pub mod scenarios;
pub mod soak;

pub use mbt::{CorpusCase, MbtConfig, Op};
pub use scenarios::{scenario_config, scenario_names, Scenario, SCENARIOS};
pub use soak::{
    bisect_violation, run_soak, run_soak_sim, shrink_violation_window, soak_config, soak_names,
    Checkpoint, SoakOptions, SoakOutcome, SoakScenario, ViolationWindow, SOAK_SCENARIOS,
};

/// Executes independent simulation runs on a thread pool, returning
/// results in submission order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl SweepRunner {
    /// Creates a runner with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Creates a runner sized by `FNS_JOBS` if set (and parseable as a
    /// positive integer), otherwise by the machine's available parallelism.
    pub fn from_env() -> Self {
        let jobs = std::env::var("FNS_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self::new(jobs)
    }

    /// Number of worker threads this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every input, fanning the calls out across the worker
    /// pool; `results[i]` is always `f(inputs[i])` regardless of which
    /// worker ran it or when it finished.
    ///
    /// With one worker (or one input) the calls run inline on the calling
    /// thread — the sequential baseline path, with no pool overhead.
    pub fn map<T, R, F>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_with(inputs, || (), |(), t| f(t))
    }

    /// Like [`SweepRunner::map`], but each worker thread carries a mutable
    /// state built once by `init` and threaded through every call that
    /// worker makes. This is the arena hook: a worker's scratch allocations
    /// (event-queue slab, page tables, flow tables, pools) survive from one
    /// sweep point to the next instead of being rebuilt per run.
    ///
    /// The sequential path (one worker or one input) builds a single state
    /// and reuses it across every input — the maximum-recycling baseline.
    /// `f` must not let the state affect results: `results[i]` must equal
    /// `f(fresh_state, inputs[i])` regardless of which worker ran it.
    pub fn map_with<T, R, S, I, F>(&self, inputs: Vec<T>, init: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        let n = inputs.len();
        if self.jobs == 1 || n <= 1 {
            let mut state = init();
            return inputs.into_iter().map(|t| f(&mut state, t)).collect();
        }
        // Dynamic scheduling: workers race on an atomic cursor so a slow
        // point (e.g. a 40-flow run) does not leave a statically assigned
        // worker idle. Slots pin each result to its submission index.
        let cursor = AtomicUsize::new(0);
        let work: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let input = work[i]
                            .lock()
                            .expect("input slot poisoned")
                            .take()
                            .expect("each index claimed once");
                        let result = f(&mut state, input);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("scope joined, every slot filled")
            })
            .collect()
    }

    /// Runs every configuration to completion; `results[i]` corresponds to
    /// `configs[i]`. Each worker reuses a [`RunArena`] across its runs, so
    /// back-to-back sweep points recycle their big allocations. Configs
    /// with `shards >= 1` run on the sharded engine (its workers own
    /// their shards' arenas internally); everything else stays on the
    /// bit-identical monolithic path.
    pub fn run_sims(&self, configs: Vec<SimConfig>) -> Vec<RunMetrics> {
        self.map_with(configs, RunArena::new, |arena, cfg| {
            if cfg.shards >= 1 {
                Engine::new(cfg).run()
            } else {
                HostSim::run_in(cfg, arena)
            }
        })
    }

    /// Sweep helper for the common figure shape: the cartesian product of
    /// `points × modes`, built by `build`, run in parallel, returned as
    /// `(point, mode, metrics)` rows in sweep order (points outer, modes
    /// inner — the order every figure prints).
    pub fn run_grid<P: Copy + Send>(
        &self,
        points: &[P],
        modes: &[ProtectionMode],
        build: impl Fn(P, ProtectionMode) -> SimConfig,
    ) -> Vec<(P, ProtectionMode, RunMetrics)> {
        let mut keys = Vec::with_capacity(points.len() * modes.len());
        let mut configs = Vec::with_capacity(keys.capacity());
        for &p in points {
            for &mode in modes {
                keys.push((p, mode));
                configs.push(build(p, mode));
            }
        }
        let metrics = self.run_sims(configs);
        keys.into_iter()
            .zip(metrics)
            .map(|((p, mode), m)| (p, mode, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_submission_order() {
        let runner = SweepRunner::new(8);
        // Reverse-sorted workloads: the longest-running inputs are claimed
        // first, so completion order is roughly the reverse of submission
        // order — the slots must still come back in submission order.
        let inputs: Vec<u64> = (0..64).rev().collect();
        let out = runner.map(inputs.clone(), |x| {
            std::thread::sleep(std::time::Duration::from_micros(x * 10));
            x * 2
        });
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |x: u64| x.wrapping_mul(0x9E3779B9).rotate_left(13);
        let inputs: Vec<u64> = (0..100).collect();
        let seq = SweepRunner::new(1).map(inputs.clone(), f);
        let par = SweepRunner::new(6).map(inputs, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let runner = SweepRunner::new(4);
        let empty: Vec<u32> = runner.map(Vec::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(runner.map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let runner = SweepRunner::new(4);
        let _ = runner.map(vec![1, 2, 3, 4, 5, 6], |x| {
            if x == 5 {
                panic!("sweep point exploded");
            }
            x
        });
    }

    #[test]
    fn grid_rows_follow_sweep_order() {
        use fns_core::ProtectionMode;
        let runner = SweepRunner::new(2);
        // Abuse run_grid's ordering contract with a cheap build: tiny sims.
        let modes = [ProtectionMode::IommuOff, ProtectionMode::FastAndSafe];
        let rows = runner.run_grid(&[2u32, 3], &modes, |flows, mode| {
            let mut cfg = fns_apps::iperf_config(mode, flows, 64);
            cfg.warmup = 200_000;
            cfg.measure = 500_000;
            cfg.aging_factor = 0.0;
            cfg
        });
        let shape: Vec<(u32, ProtectionMode)> = rows.iter().map(|(p, m, _)| (*p, *m)).collect();
        assert_eq!(
            shape,
            vec![
                (2, ProtectionMode::IommuOff),
                (2, ProtectionMode::FastAndSafe),
                (3, ProtectionMode::IommuOff),
                (3, ProtectionMode::FastAndSafe),
            ]
        );
    }
}
