//! Model-based differential testing of the DMA protection state machine.
//!
//! The sweep tests audit whole simulations; this module audits the driver
//! *directly*, with the simulator cut away. A seeded generator produces a
//! random interleaving of the seven primitive operations the datapath is
//! built from (prepare/complete Rx, map/complete Tx, device DMA, stale-DMA
//! probes, invalidation-queue drains), [`replay`] drives them through a
//! fresh [`DmaDriver`] with the safety oracle attached, and [`shrink`]
//! reduces any violating sequence to a minimal reproducer with a greedy
//! ddmin pass.
//!
//! Two properties keep replays meaningful under shrinking:
//!
//! * **Index-modulo selectors.** Ops that pick a live descriptor carry a
//!   selector applied modulo the current live count, so removing an
//!   earlier op never turns a later one into a no-op reference to a
//!   vanished object — it just picks a different live object.
//! * **Datapath drain contract.** Every op that translates drains the
//!   pending PTcache-wipe queue first, exactly as `nic_pump`/`tx_pump`
//!   do, so the model never flags queue latency the real datapath hides.
//!
//! Minimal reproducers serialize to a line-oriented text format and are
//! checked into `tests/corpus/` together with the seeded driver bug
//! ([`Sabotage`]) that produced them and the invariant they must violate.

use std::collections::VecDeque;

use fns_core::{CpuCosts, DmaDriver, ProtectionMode, Sabotage};
use fns_iommu::IommuConfig;
use fns_nic::descriptor::DescriptorPage;
use fns_oracle::{AuditHandle, AuditReport, Invariant};
use fns_sim::rng::SimRng;

/// Cap on concurrently live Rx descriptors / Tx packets in a replay.
const LIVE_CAP: usize = 8;

/// Cap on remembered completed-descriptor IOVAs for stale probes.
const FREED_CAP: usize = 16;

/// One primitive datapath operation.
///
/// Selectors (`sel`) index the relevant live set modulo its length at the
/// moment the op runs; size fields are clamped into their valid range. An
/// op whose target set is empty is a no-op, so any subsequence of a valid
/// trace is itself valid — the property ddmin shrinking relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Allocate + map one Rx descriptor (no-op at [`LIVE_CAP`]).
    PrepareRx,
    /// Complete (unmap + invalidate + free) a live Rx descriptor.
    CompleteRx {
        /// Live-descriptor selector (modulo).
        sel: u8,
    },
    /// Device DMA into every page of a live Rx descriptor.
    DmaRx {
        /// Live-descriptor selector (modulo).
        sel: u8,
    },
    /// Map a Tx packet of `pages` pages (clamped to 1..=8).
    TxMap {
        /// Packet size in pages.
        pages: u8,
    },
    /// Complete (unmap + invalidate + free) a live Tx packet.
    TxComplete {
        /// Live-packet selector (modulo).
        sel: u8,
    },
    /// Device DMA to a *completed* descriptor's first page — the paper's
    /// use-after-unmap attack, expected to fault in strict modes.
    StaleProbe {
        /// Freed-IOVA selector (modulo).
        sel: u8,
    },
    /// Drain up to `max + 1` pending PTcache-wipe epochs.
    Drain {
        /// Epoch budget minus one.
        max: u8,
    },
    /// Switch the issuing device: subsequent ops run from protection
    /// domain `d` modulo the configured domain count. Ops that touch an
    /// object created earlier (complete, DMA, stale probe) always act in
    /// the object's own domain, so removing a `SetDomain` never turns a
    /// later op into a cross-domain access by accident.
    SetDomain {
        /// Domain selector (modulo [`MbtConfig::domains`]).
        d: u8,
    },
}

/// Driver shape for one replay: everything that changes which invariants
/// are reachable, kept small enough to serialize into a corpus header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbtConfig {
    /// Protection mode under audit.
    pub mode: ProtectionMode,
    /// Rx descriptor size in pages (512 forced for huge-Rx modes).
    pub desc_pages: u64,
    /// Deferred-mode flush threshold.
    pub deferred_threshold: u32,
    /// Protection domains sharing the IOMMU (1 = classic single device).
    pub domains: u16,
    /// Seeded driver bug, [`Sabotage::None`] for clean replays.
    pub sabotage: Sabotage,
}

impl MbtConfig {
    /// The default replay shape for `mode`: 64-page descriptors (512 when
    /// the mode maps huge Rx buffers), the paper's flush threshold, no
    /// seeded bug.
    pub fn for_mode(mode: ProtectionMode) -> Self {
        Self {
            mode,
            desc_pages: if mode.huge_rx() { 512 } else { 64 },
            deferred_threshold: 256,
            domains: 1,
            sabotage: Sabotage::None,
        }
    }

    /// The deferred-window bound this shape implies (flush threshold plus
    /// one completion batch of slack) — must match `HostSim`'s accounting.
    pub fn deferred_window(&self) -> u64 {
        self.deferred_threshold as u64 + self.desc_pages
    }
}

/// Replays `ops` through a fresh audited driver and returns the oracle's
/// report. Deterministic: same config + ops ⇒ identical report.
pub fn replay(cfg: MbtConfig, ops: &[Op]) -> AuditReport {
    let domains = cfg.domains.max(1);
    let mut drv = DmaDriver::with_descriptor_pages(
        cfg.mode,
        2,
        IommuConfig {
            domains,
            ..IommuConfig::default()
        },
        CpuCosts::default(),
        cfg.deferred_threshold,
        0,
        cfg.desc_pages,
    );
    drv.set_audit(AuditHandle::recording(
        cfg.mode.contract(cfg.deferred_window()),
        false,
    ));
    drv.set_sabotage(cfg.sabotage);

    // Live objects remember the domain that created them: completions,
    // device DMA, and stale probes always act as the owning device, so the
    // only cross-domain traffic in a replay is what a sabotage injects.
    let mut cur: u16 = 0;
    let mut live_rx: Vec<(u16, fns_nic::descriptor::Descriptor)> = Vec::new();
    let mut live_tx: Vec<(u16, Vec<DescriptorPage>)> = Vec::new();
    let mut freed: VecDeque<(u16, fns_iova::Iova)> = VecDeque::new();

    for &op in ops {
        match op {
            Op::PrepareRx => {
                if live_rx.len() < LIVE_CAP {
                    let (desc, _) = drv
                        .prepare_rx_descriptor_in(cur, 0)
                        .expect("fault-free replay: prepare_rx");
                    live_rx.push((cur, desc));
                }
            }
            Op::CompleteRx { sel } => {
                if !live_rx.is_empty() {
                    let (d, desc) = live_rx.remove(sel as usize % live_rx.len());
                    if freed.len() == FREED_CAP {
                        freed.pop_front();
                    }
                    freed.push_back((d, desc.pages()[0].iova));
                    drv.complete_rx_descriptor_in(d, 0, &desc)
                        .expect("fault-free replay: complete_rx");
                }
            }
            Op::DmaRx { sel } => {
                if !live_rx.is_empty() {
                    let idx = sel as usize % live_rx.len();
                    let d = live_rx[idx].0;
                    let pages: Vec<fns_iova::Iova> =
                        live_rx[idx].1.pages().iter().map(|p| p.iova).collect();
                    // The datapath contract: queued PTcache wipes are
                    // drained before the NIC touches memory.
                    drv.drain_ptcache_wipes(pages.len());
                    for iova in pages {
                        drv.translate_in(d, iova);
                    }
                }
            }
            Op::TxMap { pages } => {
                if live_tx.len() < LIVE_CAP {
                    let n = u32::from(pages.clamp(1, 8));
                    let (mapped, _) = drv.tx_map_in(cur, 1, n).expect("fault-free replay: tx_map");
                    drv.drain_ptcache_wipes(mapped.len());
                    for p in &mapped {
                        drv.translate_in(cur, p.iova);
                    }
                    live_tx.push((cur, mapped));
                }
            }
            Op::TxComplete { sel } => {
                if !live_tx.is_empty() {
                    let (d, pages) = live_tx.remove(sel as usize % live_tx.len());
                    if freed.len() == FREED_CAP {
                        freed.pop_front();
                    }
                    freed.push_back((d, pages[0].iova));
                    drv.tx_complete_in(d, 1, &pages)
                        .expect("fault-free replay: tx_complete");
                }
            }
            Op::StaleProbe { sel } => {
                if !freed.is_empty() {
                    let (d, iova) = freed[sel as usize % freed.len()];
                    drv.drain_ptcache_wipes(usize::MAX);
                    drv.probe_translate_in(d, iova);
                }
            }
            Op::Drain { max } => {
                drv.drain_ptcache_wipes(max as usize + 1);
            }
            Op::SetDomain { d } => {
                cur = u16::from(d) % domains;
            }
        }
    }
    drv.audit().report()
}

/// Generates a seeded random op sequence of length `len`.
pub fn generate(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SimRng::seed(seed);
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        // Weighted pick: prepare/complete/DMA dominate so descriptors
        // actually cycle; probes and drains season the interleaving.
        let roll = rng.range(0, 16);
        let sel = rng.range(0, 256) as u8;
        ops.push(match roll {
            0..=2 => Op::PrepareRx,
            3..=5 => Op::CompleteRx { sel },
            6..=9 => Op::DmaRx { sel },
            10..=11 => Op::TxMap { pages: sel % 8 + 1 },
            12..=13 => Op::TxComplete { sel },
            14 => Op::StaleProbe { sel },
            _ => Op::Drain { max: sel % 4 },
        });
    }
    ops
}

/// Generates a seeded random op sequence that also hops between `domains`
/// issuing devices. Identical to [`generate`] when `domains <= 1`; with
/// more domains, device switches season the interleaving so descriptors
/// from different tenants cycle through the shared IOMMU concurrently.
pub fn generate_multi(seed: u64, len: usize, domains: u16) -> Vec<Op> {
    if domains <= 1 {
        return generate(seed, len);
    }
    let mut rng = SimRng::seed(seed);
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.range(0, 18);
        let sel = rng.range(0, 256) as u8;
        ops.push(match roll {
            0..=2 => Op::PrepareRx,
            3..=5 => Op::CompleteRx { sel },
            6..=9 => Op::DmaRx { sel },
            10..=11 => Op::TxMap { pages: sel % 8 + 1 },
            12..=13 => Op::TxComplete { sel },
            14 => Op::StaleProbe { sel },
            15 => Op::Drain { max: sel % 4 },
            _ => Op::SetDomain {
                d: sel % domains as u8,
            },
        });
    }
    ops
}

/// Whether `report` counts a violation of `expect` (any invariant when
/// `None`).
pub fn violates(report: &AuditReport, expect: Option<Invariant>) -> bool {
    match expect {
        Some(inv) => report.of(inv) > 0,
        None => report.violations > 0,
    }
}

/// Greedy ddmin shrink: repeatedly removes chunks (halving the chunk size
/// down to single ops) while the replay still violates `expect`. Returns
/// the minimal trace found; the caller is expected to have checked that
/// the full trace violates first.
pub fn shrink(cfg: MbtConfig, ops: &[Op], expect: Option<Invariant>) -> Vec<Op> {
    let mut current: Vec<Op> = ops.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && violates(&replay(cfg, &candidate), expect) {
                current = candidate;
                progressed = true;
                // Re-test the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

/// Serializes ops into the line-oriented corpus format.
pub fn ops_to_text(ops: &[Op]) -> String {
    let mut s = String::new();
    for op in ops {
        match op {
            Op::PrepareRx => s.push_str("prepare-rx"),
            Op::CompleteRx { sel } => s.push_str(&format!("complete-rx {sel}")),
            Op::DmaRx { sel } => s.push_str(&format!("dma-rx {sel}")),
            Op::TxMap { pages } => s.push_str(&format!("tx-map {pages}")),
            Op::TxComplete { sel } => s.push_str(&format!("tx-complete {sel}")),
            Op::StaleProbe { sel } => s.push_str(&format!("stale-probe {sel}")),
            Op::Drain { max } => s.push_str(&format!("drain {max}")),
            Op::SetDomain { d } => s.push_str(&format!("set-domain {d}")),
        }
        s.push('\n');
    }
    s
}

fn parse_op(line: &str) -> Result<Op, String> {
    let mut parts = line.split_whitespace();
    let word = parts.next().ok_or("empty op line")?;
    let arg = |parts: &mut std::str::SplitWhitespace| -> Result<u8, String> {
        parts
            .next()
            .ok_or_else(|| format!("op '{word}' needs an argument"))?
            .parse::<u8>()
            .map_err(|e| format!("op '{word}': {e}"))
    };
    match word {
        "prepare-rx" => Ok(Op::PrepareRx),
        "complete-rx" => Ok(Op::CompleteRx {
            sel: arg(&mut parts)?,
        }),
        "dma-rx" => Ok(Op::DmaRx {
            sel: arg(&mut parts)?,
        }),
        "tx-map" => Ok(Op::TxMap {
            pages: arg(&mut parts)?,
        }),
        "tx-complete" => Ok(Op::TxComplete {
            sel: arg(&mut parts)?,
        }),
        "stale-probe" => Ok(Op::StaleProbe {
            sel: arg(&mut parts)?,
        }),
        "drain" => Ok(Op::Drain {
            max: arg(&mut parts)?,
        }),
        "set-domain" => Ok(Op::SetDomain {
            d: arg(&mut parts)?,
        }),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Parses the op lines of a corpus body (inverse of [`ops_to_text`]).
pub fn parse_ops(text: &str) -> Result<Vec<Op>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_op)
        .collect()
}

/// One corpus file: a replay shape, the invariant the trace must violate,
/// and the minimized op trace itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Replay shape (mode, descriptor size, threshold, seeded bug).
    pub cfg: MbtConfig,
    /// The invariant class this trace must trip.
    pub expect: Invariant,
    /// The minimized op trace.
    pub ops: Vec<Op>,
}

fn parse_mode(label: &str) -> Result<ProtectionMode, String> {
    ProtectionMode::ALL
        .into_iter()
        .find(|m| m.label() == label)
        .ok_or_else(|| format!("unknown mode label '{label}'"))
}

fn parse_sabotage(text: &str) -> Result<Sabotage, String> {
    let mut parts = text.split_whitespace();
    match parts.next() {
        None | Some("none") => Ok(Sabotage::None),
        Some("skip-range-invalidation") => {
            let nth = parts
                .next()
                .ok_or("skip-range-invalidation needs an ordinal")?
                .parse::<u64>()
                .map_err(|e| e.to_string())?;
            Ok(Sabotage::SkipRangeInvalidation { nth })
        }
        Some("skip-reclaim-fixup") => Ok(Sabotage::SkipReclaimFixup),
        Some("skip-deferred-flush") => Ok(Sabotage::SkipDeferredFlush),
        Some("cross-domain-leak") => {
            let nth = parts
                .next()
                .ok_or("cross-domain-leak needs an ordinal")?
                .parse::<u64>()
                .map_err(|e| e.to_string())?;
            Ok(Sabotage::CrossDomainLeak { nth })
        }
        Some("skip-domain-scoped-invalidation") => Ok(Sabotage::SkipDomainScopedInvalidation),
        Some(other) => Err(format!("unknown sabotage '{other}'")),
    }
}

fn sabotage_to_text(s: Sabotage) -> String {
    match s {
        Sabotage::None => "none".to_string(),
        Sabotage::SkipRangeInvalidation { nth } => {
            format!("skip-range-invalidation {nth}")
        }
        Sabotage::SkipReclaimFixup => "skip-reclaim-fixup".to_string(),
        Sabotage::SkipDeferredFlush => "skip-deferred-flush".to_string(),
        Sabotage::CrossDomainLeak { nth } => format!("cross-domain-leak {nth}"),
        Sabotage::SkipDomainScopedInvalidation => "skip-domain-scoped-invalidation".to_string(),
    }
}

impl CorpusCase {
    /// Serializes the case into the corpus file format.
    pub fn to_text(&self) -> String {
        format!(
            "mode: {}\ndesc-pages: {}\ndeferred-threshold: {}\ndomains: {}\nsabotage: {}\nexpect: {}\nops:\n{}",
            self.cfg.mode.label(),
            self.cfg.desc_pages,
            self.cfg.deferred_threshold,
            self.cfg.domains,
            sabotage_to_text(self.cfg.sabotage),
            self.expect.name(),
            ops_to_text(&self.ops),
        )
    }

    /// Parses a corpus file: `key: value` header lines, then `ops:`
    /// followed by one op per line. `#` lines are comments throughout.
    pub fn parse(text: &str) -> Result<CorpusCase, String> {
        let mut mode = None;
        let mut desc_pages = None;
        let mut threshold = None;
        let mut domains = None;
        let mut sabotage = Sabotage::None;
        let mut expect = None;
        let mut lines = text.lines();
        for raw in lines.by_ref() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "ops:" {
                break;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed header line '{line}'"))?;
            let value = value.trim();
            match key.trim() {
                "mode" => mode = Some(parse_mode(value)?),
                "desc-pages" => desc_pages = Some(value.parse::<u64>().map_err(|e| e.to_string())?),
                "deferred-threshold" => {
                    threshold = Some(value.parse::<u32>().map_err(|e| e.to_string())?)
                }
                "domains" => domains = Some(value.parse::<u16>().map_err(|e| e.to_string())?),
                "sabotage" => sabotage = parse_sabotage(value)?,
                "expect" => {
                    expect = Some(
                        Invariant::from_name(value)
                            .ok_or_else(|| format!("unknown invariant '{value}'"))?,
                    )
                }
                other => return Err(format!("unknown header key '{other}'")),
            }
        }
        let mode = mode.ok_or("missing 'mode:' header")?;
        let ops = parse_ops(&lines.collect::<Vec<_>>().join("\n"))?;
        if ops.is_empty() {
            return Err("corpus case has no ops".to_string());
        }
        Ok(CorpusCase {
            cfg: MbtConfig {
                mode,
                desc_pages: desc_pages.unwrap_or(64),
                deferred_threshold: threshold.unwrap_or(256),
                domains: domains.unwrap_or(1),
                sabotage,
            },
            expect: expect.ok_or("missing 'expect:' header")?,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_replay_has_no_violations_in_every_mode() {
        let ops = generate(0xC0FFEE, 200);
        for mode in ProtectionMode::ALL {
            let report = replay(MbtConfig::for_mode(mode), &ops);
            assert!(
                report.is_clean(),
                "{}: {:?}",
                mode.label(),
                report.samples.first()
            );
            if mode.iommu_enabled() {
                assert!(report.checks > 0, "{}: nothing audited", mode.label());
            }
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let ops = generate(42, 150);
        let cfg = MbtConfig::for_mode(ProtectionMode::FastAndSafe);
        assert_eq!(replay(cfg, &ops), replay(cfg, &ops));
    }

    #[test]
    fn sabotaged_invalidation_is_caught_and_shrinks_small() {
        let cfg = MbtConfig {
            sabotage: Sabotage::SkipRangeInvalidation { nth: 1 },
            ..MbtConfig::for_mode(ProtectionMode::FastAndSafe)
        };
        let ops = generate(7, 150);
        let report = replay(cfg, &ops);
        assert!(
            violates(&report, Some(Invariant::InvalidationCompleteness)),
            "sabotage went unnoticed: {report:?}"
        );
        let small = shrink(cfg, &ops, Some(Invariant::InvalidationCompleteness));
        assert!(
            violates(
                &replay(cfg, &small),
                Some(Invariant::InvalidationCompleteness)
            ),
            "shrunk trace no longer violates"
        );
        assert!(
            small.len() <= 20,
            "shrunk trace still has {} ops: {small:?}",
            small.len()
        );
    }

    #[test]
    fn clean_multi_domain_replay_has_no_violations_in_every_mode() {
        let ops = generate_multi(0xD0D0, 200, 3);
        assert!(
            ops.iter().any(|o| matches!(o, Op::SetDomain { .. })),
            "multi-domain generator never switched devices"
        );
        for mode in ProtectionMode::ALL {
            let cfg = MbtConfig {
                domains: 3,
                ..MbtConfig::for_mode(mode)
            };
            let report = replay(cfg, &ops);
            assert!(
                report.is_clean(),
                "{}: {:?}",
                mode.label(),
                report.samples.first()
            );
        }
    }

    #[test]
    fn cross_domain_leak_is_caught_and_shrinks_small() {
        let cfg = MbtConfig {
            domains: 2,
            sabotage: Sabotage::CrossDomainLeak { nth: 1 },
            ..MbtConfig::for_mode(ProtectionMode::FastAndSafe)
        };
        let ops = generate_multi(11, 150, 2);
        let report = replay(cfg, &ops);
        assert!(
            violates(&report, Some(Invariant::CrossDomainIsolation)),
            "leak went unnoticed: {report:?}"
        );
        let small = shrink(cfg, &ops, Some(Invariant::CrossDomainIsolation));
        assert!(
            violates(&replay(cfg, &small), Some(Invariant::CrossDomainIsolation)),
            "shrunk trace no longer violates"
        );
        assert!(
            small.len() <= 20,
            "shrunk trace still has {} ops: {small:?}",
            small.len()
        );
    }

    #[test]
    fn skipped_domain_scoped_invalidation_leaks_across_tenants() {
        // Even inside the deferred window — where stale IOTLB hits are
        // tolerated within a domain — a stale hit that resolves to a frame
        // another tenant now owns is an isolation violation.
        let cfg = MbtConfig {
            domains: 2,
            sabotage: Sabotage::SkipDomainScopedInvalidation,
            ..MbtConfig::for_mode(ProtectionMode::LinuxDeferred)
        };
        let ops = parse_ops(concat!(
            "set-domain 1\n",
            "prepare-rx\n",
            "dma-rx 0\n",
            "complete-rx 0\n",
            "set-domain 0\n",
            "prepare-rx\n",
            "stale-probe 0\n",
        ))
        .unwrap();
        let report = replay(cfg, &ops);
        assert!(
            violates(&report, Some(Invariant::CrossDomainIsolation)),
            "cross-tenant frame reuse went unnoticed: {report:?}"
        );
        // The same trace without the sabotage is clean: quarantined frames
        // never migrate between tenants.
        let clean = MbtConfig {
            sabotage: Sabotage::None,
            ..cfg
        };
        assert!(replay(clean, &ops).is_clean());
    }

    #[test]
    fn ops_roundtrip_through_text() {
        let ops = generate(3, 40);
        assert_eq!(parse_ops(&ops_to_text(&ops)).unwrap(), ops);
    }

    #[test]
    fn multi_domain_ops_roundtrip_through_text() {
        let ops = generate_multi(5, 60, 4);
        assert_eq!(parse_ops(&ops_to_text(&ops)).unwrap(), ops);
    }

    #[test]
    fn corpus_case_roundtrips_and_rejects_garbage() {
        let case = CorpusCase {
            cfg: MbtConfig {
                mode: ProtectionMode::LinuxStrict,
                desc_pages: 64,
                deferred_threshold: 128,
                domains: 2,
                sabotage: Sabotage::SkipRangeInvalidation { nth: 2 },
            },
            expect: Invariant::InvalidationCompleteness,
            ops: generate(9, 12),
        };
        assert_eq!(CorpusCase::parse(&case.to_text()).unwrap(), case);
        assert!(CorpusCase::parse("mode: nonsense\nops:\nprepare-rx\n").is_err());
        assert!(CorpusCase::parse("ops:\nprepare-rx\n").is_err());
        assert!(CorpusCase::parse("mode: fast-and-safe\nexpect: strict-safety\nops:\n").is_err());
    }
}
