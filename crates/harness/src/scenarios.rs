//! Named scenario registry.
//!
//! One place mapping human-readable scenario names to the `SimConfig`
//! builders in `fns-apps`, so the CLI (`fns-sim --list-scenarios`,
//! `--workload`) and the `perf_smoke` basket agree on what each name
//! means. Every entry is the canonical shape used by the corresponding
//! figure of the paper.

use fns_core::{ProtectionMode, SimConfig};

/// A named, describable simulation scenario.
pub struct Scenario {
    /// Stable CLI-facing name.
    pub name: &'static str,
    /// One-line description (shown by `--list-scenarios`).
    pub description: &'static str,
    /// Builds the canonical config for this scenario under `mode`.
    pub build: fn(ProtectionMode) -> SimConfig,
}

/// Every registered scenario, in display order.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "iperf",
        description: "iperf-style Rx-heavy streaming, 8 flows, 256-packet rings (figs 2/3/7/8)",
        build: |mode| fns_apps::iperf_config(mode, 8, 256),
    },
    Scenario {
        name: "iperf-small-ring",
        description: "iperf with 64-packet rings: high IOVA reuse locality (fig 3 contrast)",
        build: |mode| fns_apps::iperf_config(mode, 8, 64),
    },
    Scenario {
        name: "bidirectional",
        description: "symmetric Tx+Rx streaming, 8 flows each way (fig 10)",
        build: |mode| fns_apps::bidirectional_config(mode, 8),
    },
    Scenario {
        name: "redis",
        description: "redis-style request/response, 1 KB values (fig 11a)",
        build: |mode| fns_apps::redis_config(mode, 1024),
    },
    Scenario {
        name: "nginx",
        description: "nginx-style static pages, 16 KB responses (fig 11b)",
        build: |mode| fns_apps::nginx_config(mode, 16 * 1024),
    },
    Scenario {
        name: "spdk",
        description: "SPDK-style storage blocks, 64 KB IOs (fig 11c)",
        build: |mode| fns_apps::spdk_config(mode, 64 * 1024),
    },
    Scenario {
        name: "rpc",
        description: "RPC echo with latency histogram, 4 KB messages (fig 9)",
        build: |mode| fns_apps::rpc_config(mode, 4096),
    },
    Scenario {
        name: "mt-fanin",
        description: "multi-tenant LB fan-in: 64 flows over 2 NICs x 4 queues + storage domain",
        build: |mode| fns_apps::fanin_config(mode, 64),
    },
    Scenario {
        name: "mt-incast",
        description: "multi-tenant incast: 32 synchronized 64 KB bursts into 2 NICs + storage",
        build: |mode| fns_apps::incast_config(mode, 32, 64 * 1024),
    },
    Scenario {
        name: "mt-churn",
        description: "multi-tenant churn: 48 conns restarting every 256 KB across 3 domains",
        build: |mode| fns_apps::churn_config(mode, 48, 256 * 1024),
    },
    Scenario {
        name: "dc-scale",
        description: "datacenter scale: 20480 flows over 8 NICs x 4 queues + 2 storage, sharded",
        build: fns_apps::dc_scale_config,
    },
];

/// Names of all registered scenarios, in display order.
pub fn scenario_names() -> Vec<&'static str> {
    SCENARIOS.iter().map(|s| s.name).collect()
}

/// Builds the canonical config for `name` under `mode`, or `None` if no
/// scenario with that name is registered.
pub fn scenario_config(name: &str, mode: ProtectionMode) -> Option<SimConfig> {
    SCENARIOS
        .iter()
        .find(|s| s.name == name)
        .map(|s| (s.build)(mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_lookup_works() {
        let names = scenario_names();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate scenario name");
            }
        }
        for name in names {
            assert!(scenario_config(name, ProtectionMode::FastAndSafe).is_some());
        }
        assert!(scenario_config("no-such-scenario", ProtectionMode::FastAndSafe).is_none());
    }

    #[test]
    fn builders_match_fns_apps() {
        let cfg = scenario_config("iperf", ProtectionMode::LinuxDeferred).unwrap();
        let direct = fns_apps::iperf_config(ProtectionMode::LinuxDeferred, 8, 256);
        assert_eq!(cfg.flows, direct.flows);
        assert_eq!(cfg.ring_packets, direct.ring_packets);
    }
}
