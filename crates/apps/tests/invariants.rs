//! Structural invariants + deterministic replay per app workload.
//!
//! The oracle sweeps (`tests/audit_sweep.rs` at the workspace root) drive
//! every workload through the safety audit, so the workloads themselves
//! need a pinned baseline: each builder's descriptor-size and
//! arrival-pattern parameters are asserted here field by field, and every
//! workload is replayed twice under a fixed seed to prove bit-identical
//! metrics. A builder drifting (say, nginx silently growing its pipeline
//! depth) would otherwise change what the sweeps actually audit.

use fns_apps::{
    bidirectional_config, iperf_config, nginx_config, redis_config, rpc_config, spdk_config,
};
use fns_core::{HostSim, ProtectionMode, RunMetrics, SimConfig, Workload};

const MODE: ProtectionMode = ProtectionMode::FastAndSafe;

/// Runs a shrunk copy of `cfg` (short windows, no aging) twice with the
/// same seed; returns both results.
fn replay_pair(mut cfg: SimConfig, measure: u64) -> (RunMetrics, RunMetrics) {
    cfg.warmup = 300_000;
    cfg.measure = measure;
    cfg.aging_factor = 0.0;
    cfg.seed = 11;
    let a = HostSim::new(cfg).run();
    let b = HostSim::new(cfg).run();
    (a, b)
}

fn assert_deterministic(name: &str, cfg: SimConfig) -> RunMetrics {
    let (a, b) = replay_pair(cfg, 1_000_000);
    assert_eq!(a, b, "{name}: same seed must replay bit-identically");
    assert!(
        a.rx_packets + a.tx_packets > 0,
        "{name}: workload moved no packets"
    );
    a
}

#[test]
fn iperf_shape_and_replay() {
    let cfg = iperf_config(MODE, 8, 256);
    assert_eq!(cfg.flows, 8);
    assert_eq!(cfg.ring_packets, 256);
    assert!(matches!(cfg.workload, Workload::IperfRx));
    // Paper microbenchmark shape: 4 KB MTU ⇒ 1 page per packet, 64-page
    // descriptor chains.
    assert_eq!(cfg.mtu, 4096);
    assert_eq!(cfg.pages_for(cfg.mtu), 1);
    assert_eq!(cfg.pages_per_descriptor, 64);
    assert_deterministic("iperf", cfg);
}

#[test]
fn bidir_shape_and_replay() {
    let cfg = bidirectional_config(MODE, 4);
    // Symmetric shape: one Rx and one Tx core per flow pair.
    assert_eq!(cfg.cores, 8);
    assert_eq!(cfg.flows, 4);
    match cfg.workload {
        Workload::Bidirectional { tx_flows } => assert_eq!(tx_flows, 4),
        w => panic!("bidir built {w:?}"),
    }
    assert_deterministic("bidir", cfg);
}

#[test]
fn redis_shape_and_replay() {
    let cfg = redis_config(MODE, 1024);
    assert_eq!(cfg.cores, 8);
    assert_eq!(cfg.flows, 8);
    assert_eq!(cfg.mtu, 9000);
    match cfg.workload {
        Workload::RequestResponse {
            request_bytes,
            response_bytes,
            depth,
            dut_is_server,
            ..
        } => {
            // SET request carries the value (+32 B of protocol), the "+OK"
            // reply is fixed-size, 32 requests stay in flight, and the DUT
            // is the server.
            assert_eq!(request_bytes, 1024 + 32);
            assert_eq!(response_bytes, 64);
            assert_eq!(depth, 32);
            assert!(dut_is_server);
        }
        w => panic!("redis built {w:?}"),
    }
    assert_deterministic("redis", cfg);
}

#[test]
fn nginx_shape_and_replay() {
    let cfg = nginx_config(MODE, 16 * 1024);
    assert_eq!((cfg.cores, cfg.flows, cfg.mtu), (8, 8, 9000));
    match cfg.workload {
        Workload::RequestResponse {
            request_bytes,
            response_bytes,
            depth,
            dut_is_server,
            ..
        } => {
            // GET request is fixed-size, the page rides in the response,
            // HTTP/1.1-style shallow pipelining, DUT serves.
            assert_eq!(request_bytes, 256);
            assert_eq!(response_bytes, 16 * 1024);
            assert_eq!(depth, 4);
            assert!(dut_is_server);
        }
        w => panic!("nginx built {w:?}"),
    }
    assert_deterministic("nginx", cfg);
}

#[test]
fn spdk_shape_and_replay() {
    let cfg = spdk_config(MODE, 64 * 1024);
    assert_eq!((cfg.cores, cfg.flows, cfg.mtu), (8, 8, 9000));
    match cfg.workload {
        Workload::RequestResponse {
            request_bytes,
            response_bytes,
            depth,
            dut_is_server,
            ..
        } => {
            // NVMe-oF read: small request capsule out, the block back,
            // IO-depth 8, and the DUT is the *client* — its datapath load
            // is Rx-dominated by the block payloads.
            assert_eq!(request_bytes, 128);
            assert_eq!(response_bytes, 64 * 1024);
            assert_eq!(depth, 8);
            assert!(!dut_is_server);
        }
        w => panic!("spdk built {w:?}"),
    }
    assert_deterministic("spdk", cfg);
}

#[test]
fn rpc_shape_and_replay() {
    let cfg = rpc_config(MODE, 4096);
    // 5 iperf flows + 1 dedicated RPC core.
    assert_eq!(cfg.cores, 6);
    assert_eq!(cfg.flows, 5);
    match cfg.workload {
        Workload::RpcColocated {
            rpc_bytes,
            response_bytes,
        } => {
            assert_eq!(rpc_bytes, 4096);
            assert_eq!(response_bytes, 64);
        }
        w => panic!("rpc built {w:?}"),
    }
    // RPCs are sparse relative to the bulk flows, so the latency
    // histogram — the whole point of the workload — needs a longer
    // window before its first completion lands.
    let (a, b) = replay_pair(cfg, 10_000_000);
    assert_eq!(a, b, "rpc: same seed must replay bit-identically");
    assert!(a.latency.count() > 0, "rpc produced no latency samples");
}

/// Every workload shares the paper-default protection-plane shape: the
/// same descriptor geometry and flush threshold the oracle contracts are
/// derived from.
#[test]
fn all_builders_share_the_paper_protection_defaults() {
    let configs = [
        ("iperf", iperf_config(MODE, 8, 256)),
        ("bidir", bidirectional_config(MODE, 4)),
        ("redis", redis_config(MODE, 1024)),
        ("nginx", nginx_config(MODE, 16 * 1024)),
        ("spdk", spdk_config(MODE, 64 * 1024)),
        ("rpc", rpc_config(MODE, 4096)),
    ];
    for (name, cfg) in configs {
        assert_eq!(cfg.mode, MODE, "{name}");
        assert_eq!(cfg.pages_per_descriptor, 64, "{name}");
        assert_eq!(cfg.deferred_flush_threshold, 256, "{name}");
        assert!(!cfg.audit.enabled, "{name}: auditing must be opt-in");
        assert!(cfg.ring_descriptors() > 0, "{name}");
    }
}
