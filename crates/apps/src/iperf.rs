//! iperf-style throughput microbenchmark (the paper's §2.2 default setup).

use fns_core::{ProtectionMode, SimConfig, Workload};

/// Configuration for the paper's microbenchmark: `flows` unbounded DCTCP
/// flows into a 5-core receiver with `ring_packets`-deep rings.
///
/// # Examples
///
/// ```no_run
/// use fns_apps::iperf_config;
/// use fns_core::{HostSim, ProtectionMode};
///
/// let cfg = iperf_config(ProtectionMode::LinuxStrict, 5, 256);
/// let m = HostSim::new(cfg).run();
/// assert!(m.rx_gbps() < 95.0, "strict mode should cost throughput");
/// ```
pub fn iperf_config(mode: ProtectionMode, flows: u32, ring_packets: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.flows = flows;
    cfg.ring_packets = ring_packets;
    cfg.workload = Workload::IperfRx;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_defaults() {
        let c = iperf_config(ProtectionMode::IommuOff, 5, 256);
        assert_eq!(c.cores, 5);
        assert_eq!(c.flows, 5);
        assert!(matches!(c.workload, Workload::IperfRx));
    }
}
