//! Application workload models (paper §4.2, Figures 9–11).
//!
//! Each module configures the host simulation the way the paper runs the
//! corresponding real application:
//!
//! * [`iperf`] — the throughput microbenchmark (Figures 2/3/7/8),
//! * [`rpc`] — the netperf-style latency-sensitive RPC colocated with iperf
//!   (Figure 9),
//! * [`redis`] — in-memory KV store, 100% SET, pipelined clients
//!   (Figure 11a),
//! * [`nginx`] — web server with 128 KB–2 MB pages and app-layer CPU cost
//!   (Figure 11b),
//! * [`spdk`] — remote-storage client issuing block reads at IO-depth 8
//!   (Figure 11c),
//! * [`bidir`] — concurrent Rx+Tx data traffic on an Ice Lake-like host
//!   (Figure 10),
//! * [`topo`] — multi-device, multi-tenant topologies (fan-in, incast,
//!   connection churn) behind one shared IOMMU.

pub mod bidir;
pub mod iperf;
pub mod nginx;
pub mod redis;
pub mod rpc;
pub mod spdk;
pub mod topo;

pub use bidir::bidirectional_config;
pub use iperf::iperf_config;
pub use nginx::nginx_config;
pub use redis::redis_config;
pub use rpc::rpc_config;
pub use spdk::spdk_config;
pub use topo::{churn_config, dc_scale_config, fanin_config, incast_config};
