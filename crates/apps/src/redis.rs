//! Redis 100% SET workload (Figure 11a).
//!
//! The paper runs one Redis server instance per core on the measured host;
//! peer clients send SET requests with 4 B keys and 4–128 KB values, 32
//! requests pipelined per connection. The server replies (`+OK`) to every
//! request — the reply-per-request Tx stream is what inflates IOTLB misses
//! at small value sizes (§4.4).

use fns_core::{ProtectionMode, SimConfig, Workload};

/// Configuration for the Figure 11a experiment at one value size.
///
/// 8 cores and 9 KB MTU as in §4.2 (enough for the app to saturate
/// 100 Gbps), one connection per core, depth 32.
///
/// # Examples
///
/// ```no_run
/// use fns_apps::redis_config;
/// use fns_core::{HostSim, ProtectionMode};
///
/// let m = HostSim::new(redis_config(ProtectionMode::FastAndSafe, 64 * 1024)).run();
/// println!("SET throughput: {:.1} Gbps", m.rx_gbps());
/// ```
pub fn redis_config(mode: ProtectionMode, value_bytes: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.cores = 8;
    cfg.flows = 8; // one server instance / connection per core
    cfg.mtu = 9000;
    cfg.workload = Workload::RequestResponse {
        // SET request: 4 B key + value + protocol overhead.
        request_bytes: value_bytes + 32,
        // "+OK" reply.
        response_bytes: 64,
        depth: 32,
        dut_is_server: true,
        // Redis command processing: hash insert + allocator.
        app_cpu_per_request_ns: 1_500,
        app_cpu_per_kb_ns: 30,
    };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dut_is_the_server() {
        let c = redis_config(ProtectionMode::LinuxStrict, 4096);
        match c.workload {
            Workload::RequestResponse {
                request_bytes,
                dut_is_server,
                depth,
                ..
            } => {
                assert_eq!(request_bytes, 4096 + 32);
                assert!(dut_is_server);
                assert_eq!(depth, 32);
            }
            _ => panic!("wrong workload"),
        }
        assert_eq!(c.cores, 8);
        assert_eq!(c.mtu, 9000);
    }
}
