//! Latency-sensitive RPC colocated with throughput traffic (Figure 9).
//!
//! The paper runs a netperf request/response flow on its own core while
//! iperf saturates the other cores, and reports P50–P99.99 latency for RPC
//! sizes from 128 B to 32 KB. Tail inflation under stock protection comes
//! from NIC-buffer queueing (P99) and retransmission timeouts after drops
//! (P99.9+).

use fns_core::{ProtectionMode, SimConfig, Workload};

/// Configuration for the Figure 9 experiment: 5 iperf flows on 5 cores plus
/// one closed-loop RPC connection (request of `rpc_bytes`, 64 B response)
/// on a dedicated 6th core.
///
/// # Examples
///
/// ```no_run
/// use fns_apps::rpc_config;
/// use fns_core::{HostSim, ProtectionMode};
///
/// let m = HostSim::new(rpc_config(ProtectionMode::FastAndSafe, 4096)).run();
/// let p99 = m.latency.percentile(99.0);
/// assert!(p99 > 0);
/// ```
pub fn rpc_config(mode: ProtectionMode, rpc_bytes: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    // 5 iperf cores + 1 dedicated RPC core (the paper isolates the RPC
    // application from CPU interference).
    cfg.cores = 6;
    cfg.flows = 5;
    cfg.workload = Workload::RpcColocated {
        rpc_bytes,
        response_bytes: 64,
    };
    // Tail percentiles need samples: run longer than the microbenchmarks.
    cfg.measure = 120 * 1_000_000;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_gets_its_own_core() {
        let c = rpc_config(ProtectionMode::LinuxStrict, 128);
        assert_eq!(c.cores, 6);
        assert_eq!(c.flows, 5);
        assert!(matches!(
            c.workload,
            Workload::RpcColocated { rpc_bytes: 128, .. }
        ));
    }
}
