//! Multi-device, multi-tenant topology workloads.
//!
//! Three scenario generators exercising N devices behind one shared IOMMU,
//! each device in its own PASID-style protection domain (see
//! `fns_core::config::Topology`):
//!
//! * [`fanin_config`] — load-balancer fan-in: many upstream flows RSS-spread
//!   over two multi-queue NICs, with a storage-class DMA device running
//!   background IO in a third domain,
//! * [`incast_config`] — synchronized incast: every sender deposits one
//!   burst per period, so the fan-in collides at the switch while two NIC
//!   domains and a storage domain share the translation pipe,
//! * [`churn_config`] — sustained connection churn: bounded connections
//!   that restart from fresh congestion state on completion, modelling
//!   tens of thousands of short connections over the run (the builders
//!   accept arbitrary flow counts; the scenario registry uses CI-sized
//!   ones).
//!
//! All three default to 2 NICs x 4 queues + 1 storage device = 3 isolation
//! domains, the smallest shape where cross-domain leaks have somewhere to
//! leak *to* in both directions (NIC->NIC and NIC->storage).

use fns_core::{ProtectionMode, SimConfig, Topology, Workload};
use fns_sim::time::MICROS;

/// The canonical multi-tenant shape: 2 NICs x 4 queues, 1 storage device.
fn multi_tenant_topology() -> Topology {
    Topology {
        nics: 2,
        queues_per_nic: 4,
        storage_devices: 1,
        ..Topology::single_nic()
    }
}

/// Load-balancer fan-in: `flows` unbounded DCTCP flows spread by RSS over
/// 2 NICs x 4 queues, plus one storage device issuing background IO in its
/// own domain. Scale `flows` up to tens of thousands for soak-style runs.
pub fn fanin_config(mode: ProtectionMode, flows: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.flows = flows;
    cfg.cores = 6;
    cfg.workload = Workload::IperfRx;
    cfg.topology = multi_tenant_topology();
    cfg
}

/// Synchronized incast: `senders` flows each deposit a `burst_bytes` burst
/// every 500 us, colliding at the switch and fanning into the multi-queue
/// NICs while the storage domain keeps the IOMMU multi-tenant.
pub fn incast_config(mode: ProtectionMode, senders: u32, burst_bytes: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.flows = senders;
    cfg.cores = 6;
    cfg.workload = Workload::Incast {
        burst_bytes,
        period_ns: 500 * MICROS,
    };
    cfg.topology = multi_tenant_topology();
    cfg
}

/// Sustained connection churn: `conns` concurrent connections that each
/// deliver `conn_bytes` then restart from fresh congestion state, so the
/// run turns over many short connections per simulated second — the
/// allocator/invalidation aging pattern of a busy front-end.
pub fn churn_config(mode: ProtectionMode, conns: u32, conn_bytes: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.flows = conns;
    cfg.cores = 6;
    cfg.workload = Workload::Churn { conn_bytes };
    cfg.topology = multi_tenant_topology();
    cfg
}

/// Datacenter-scale fan-in: 20 480 unbounded flows RSS-spread over
/// 8 NICs × 4 queues plus 2 storage devices — 10 isolation domains, the
/// ROADMAP's tens-of-thousands-of-flows regime. Ships with `shards: 1`
/// so the sharded engine (one shard per NIC) carries it by default;
/// `--shards N` raises the worker-thread cap without changing a bit of
/// the result. Peer-only flows (`IperfRx`) keep every id below the
/// `TX_FLOW_BASE` segment split at this flow count.
pub fn dc_scale_config(mode: ProtectionMode) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.flows = 20_480;
    cfg.cores = 32;
    cfg.workload = Workload::IperfRx;
    cfg.topology = Topology {
        nics: 8,
        queues_per_nic: 4,
        storage_devices: 2,
        ..Topology::single_nic()
    };
    cfg.shards = 1;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_multi_domain() {
        for cfg in [
            fanin_config(ProtectionMode::FastAndSafe, 32),
            incast_config(ProtectionMode::FastAndSafe, 16, 64 * 1024),
            churn_config(ProtectionMode::FastAndSafe, 24, 256 * 1024),
        ] {
            assert_eq!(cfg.topology.domains(), 3);
            assert_eq!(cfg.topology.rings(), 8);
            assert!(!cfg.topology.is_single());
        }
    }

    #[test]
    fn dc_scale_is_datacenter_sized_and_sharded() {
        let cfg = dc_scale_config(ProtectionMode::FastAndSafe);
        assert!(cfg.flows >= 20_000);
        assert_eq!(cfg.topology.domains(), 10);
        assert_eq!(cfg.topology.rings(), 32);
        assert_eq!(cfg.shards, 1, "sharded engine on by default");
        // One shard per NIC, every flow and device accounted for.
        let specs = fns_core::plan_shards(&cfg);
        assert_eq!(specs.len(), 8);
        assert_eq!(specs.iter().map(|s| s.cfg.flows).sum::<u32>(), cfg.flows);
        assert_eq!(
            specs
                .iter()
                .map(|s| s.cfg.topology.storage_devices)
                .sum::<u16>(),
            2
        );
    }
}
