//! SPDK remote-storage client workload (Figure 11c).
//!
//! The measured host runs SPDK *clients* issuing block reads (32–256 KB) at
//! IO-depth 8 against a remote storage server; the interesting datapath is
//! the client's Rx side receiving block data, with small request packets on
//! Tx (whose translations contend with Rx at small block sizes, §4.4).

use fns_core::{ProtectionMode, SimConfig, Workload};

/// Configuration for the Figure 11c experiment at one block size.
///
/// # Examples
///
/// ```no_run
/// use fns_apps::spdk_config;
/// use fns_core::{HostSim, ProtectionMode};
///
/// let m = HostSim::new(spdk_config(ProtectionMode::LinuxStrict, 128 * 1024)).run();
/// println!("read throughput: {:.1} Gbps", m.rx_gbps());
/// ```
pub fn spdk_config(mode: ProtectionMode, block_bytes: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.cores = 8;
    cfg.flows = 8; // client threads distributed over the cores
    cfg.mtu = 9000;
    cfg.workload = Workload::RequestResponse {
        // NVMe-oF-style read request capsule.
        request_bytes: 128,
        response_bytes: block_bytes,
        depth: 8, // the paper's IO-depth
        dut_is_server: false,
        // Userspace polling stack: very low per-IO CPU.
        app_cpu_per_request_ns: 800,
        app_cpu_per_kb_ns: 10,
    };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dut_is_the_client() {
        let c = spdk_config(ProtectionMode::IommuOff, 32 * 1024);
        match c.workload {
            Workload::RequestResponse {
                dut_is_server,
                depth,
                response_bytes,
                ..
            } => {
                assert!(!dut_is_server);
                assert_eq!(depth, 8);
                assert_eq!(response_bytes, 32 * 1024);
            }
            _ => panic!("wrong workload"),
        }
    }
}
