//! Nginx web-serving workload (Figure 11b).
//!
//! The measured host serves 128 KB–2 MB pages to wrk-style clients. Without
//! memory protection the app tops out at ~90 Gbps due to its own CPU cost;
//! with stock protection the Tx datapath (every transmitted page mapped,
//! unmapped and invalidated) collapses throughput by 65–70%.

use fns_core::{ProtectionMode, SimConfig, Workload};

/// Configuration for the Figure 11b experiment at one web-page size.
///
/// # Examples
///
/// ```no_run
/// use fns_apps::nginx_config;
/// use fns_core::{HostSim, ProtectionMode};
///
/// let m = HostSim::new(nginx_config(ProtectionMode::IommuOff, 512 * 1024)).run();
/// println!("page throughput: {:.1} Gbps", m.tx_gbps());
/// ```
pub fn nginx_config(mode: ProtectionMode, page_bytes: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.cores = 8;
    cfg.flows = 8; // one server instance per core
    cfg.mtu = 9000;
    cfg.workload = Workload::RequestResponse {
        // HTTP GET request.
        request_bytes: 256,
        response_bytes: page_bytes,
        depth: 4,
        dut_is_server: true,
        // Request parsing + response header assembly.
        app_cpu_per_request_ns: 4_000,
        // Per-byte serving cost, calibrated with the per-packet stack costs
        // so the app caps at ~90 Gbps with the IOMMU off, as in the paper.
        app_cpu_per_kb_ns: 550,
    };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_pages_from_dut() {
        let c = nginx_config(ProtectionMode::FastAndSafe, 2 << 20);
        match c.workload {
            Workload::RequestResponse {
                response_bytes,
                dut_is_server,
                ..
            } => {
                assert_eq!(response_bytes, 2 << 20);
                assert!(dut_is_server);
            }
            _ => panic!("wrong workload"),
        }
    }
}
