//! Concurrent Rx + Tx data traffic (Figure 10).
//!
//! The paper's extreme-interference experiment runs on Ice Lake servers
//! with more cores: `n` Rx flows and `n` Tx flows on disjoint cores in each
//! direction. Rx throughput collapses by up to ~80% under stock protection
//! (IOTLB + PTcache contention from both directions), while Tx degrades
//! less because PCIe read transactions tolerate latency better \[44\].

use fns_core::{ProtectionMode, SimConfig, Workload};
use fns_mem::MemoryModel;

/// Configuration for the Figure 10 experiment with `n` flows per direction.
///
/// # Examples
///
/// ```no_run
/// use fns_apps::bidirectional_config;
/// use fns_core::{HostSim, ProtectionMode};
///
/// let m = HostSim::new(bidirectional_config(ProtectionMode::LinuxStrict, 4)).run();
/// println!("Rx {:.1} / Tx {:.1} Gbps", m.rx_gbps(), m.tx_gbps());
/// ```
pub fn bidirectional_config(mode: ProtectionMode, n: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    // Ice Lake: 32 cores per socket, 8 memory channels.
    cfg.memory = MemoryModel::ice_lake();
    cfg.cores = (2 * n) as usize;
    cfg.flows = n;
    cfg.workload = Workload::Bidirectional { tx_flows: n };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_cores_between_directions() {
        let c = bidirectional_config(ProtectionMode::FastAndSafe, 4);
        assert_eq!(c.cores, 8);
        assert_eq!(c.flows, 4);
        assert!(matches!(
            c.workload,
            Workload::Bidirectional { tx_flows: 4 }
        ));
        assert!(c.memory.bandwidth_bytes_per_sec > 100_000_000_000);
    }
}
