//! PCIe interconnect model: link serialization and root-complex buffering.
//!
//! The paper's throughput-collapse mechanism (§1, §2.2) is Little's law at
//! the root complex: PCIe devices can keep only ~100 cachelines of write
//! data buffered at the processor-side end of the link, and every DMA must
//! be address-translated before its data can drain. When translation
//! latency inflates, the buffer stays full, the link underutilizes, NIC
//! buffers back up, and packets drop.
//!
//! This crate models exactly that: a byte-credit pool for the root-complex
//! buffer ([`CreditPool`]), link serialization timing ([`PcieConfig`]), and
//! the asymmetry that read (Tx-direction) transactions tolerate more
//! latency than writes because the read tag space covers more outstanding
//! data \[44\].

use fns_sim::time::{Bandwidth, Nanos};

/// Cacheline size in bytes (credit granularity at the root complex).
pub const CACHELINE: u64 = 64;

/// Static PCIe parameters.
///
/// # Examples
///
/// ```
/// use fns_pcie::PcieConfig;
///
/// let pcie = PcieConfig::gen3_x16();
/// // 4 KB takes 256 ns of pure serialization at 128 Gbps.
/// assert_eq!(pcie.serialize_ns(4096), 256);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PcieConfig {
    /// Usable link bandwidth.
    pub link: Bandwidth,
    /// Root-complex write buffer, in cachelines (the paper's ~100).
    pub write_buffer_cachelines: u64,
    /// Outstanding read capacity, in cachelines. Reads are split
    /// transactions with a large tag space, so the effective window is
    /// several times the write buffer \[44\].
    pub read_window_cachelines: u64,
    /// Fixed per-DMA overhead (TLP headers, DLLP exchange), in ns.
    pub per_dma_overhead_ns: Nanos,
}

impl PcieConfig {
    /// PCIe 3.0 x16 as in the paper's testbed: 128 Gbps usable.
    pub fn gen3_x16() -> Self {
        Self {
            link: Bandwidth::gbps(128),
            write_buffer_cachelines: 100,
            read_window_cachelines: 400,
            per_dma_overhead_ns: 20,
        }
    }

    /// Pure serialization time of `bytes` on the link.
    pub fn serialize_ns(&self, bytes: u64) -> Nanos {
        self.link.transfer_time_ns(bytes)
    }

    /// Write-buffer capacity in bytes.
    pub fn write_buffer_bytes(&self) -> u64 {
        self.write_buffer_cachelines * CACHELINE
    }

    /// Read-window capacity in bytes.
    pub fn read_window_bytes(&self) -> u64 {
        self.read_window_cachelines * CACHELINE
    }
}

/// A byte-granularity credit pool (root-complex buffer occupancy).
///
/// # Examples
///
/// ```
/// use fns_pcie::CreditPool;
///
/// let mut pool = CreditPool::new(6400);
/// assert!(pool.try_acquire(4096));
/// assert!(!pool.try_acquire(4096)); // would overflow
/// pool.release(4096);
/// assert!(pool.try_acquire(4096));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CreditPool {
    capacity: u64,
    in_use: u64,
    /// Lifetime peak occupancy.
    peak: u64,
    /// Acquisitions rejected for lack of space.
    rejections: u64,
}

impl CreditPool {
    /// Creates a pool with `capacity` bytes of credit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "zero-capacity credit pool");
        Self {
            capacity,
            in_use: 0,
            peak: 0,
            rejections: 0,
        }
    }

    /// Attempts to reserve `bytes`; returns `false` (and changes nothing)
    /// if that would exceed capacity.
    ///
    /// A request larger than the whole capacity is admitted only when the
    /// pool is completely idle — real devices split such DMAs into
    /// back-to-back transactions, and refusing them entirely would deadlock.
    pub fn try_acquire(&mut self, bytes: u64) -> bool {
        if self.in_use + bytes > self.capacity && !(self.in_use == 0 && bytes > self.capacity) {
            self.rejections += 1;
            return false;
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        true
    }

    /// Returns `bytes` of credit.
    ///
    /// # Panics
    ///
    /// Panics if more credit is released than acquired.
    pub fn release(&mut self, bytes: u64) {
        assert!(self.in_use >= bytes, "credit underflow");
        self.in_use -= bytes;
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Free bytes.
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.in_use)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Peak occupancy seen.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of rejected acquisitions.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_matches_bandwidth() {
        let p = PcieConfig::gen3_x16();
        assert_eq!(p.serialize_ns(4096), 256);
        assert_eq!(p.serialize_ns(64), 4);
        assert_eq!(p.serialize_ns(0), 0);
    }

    #[test]
    fn buffer_sizes() {
        let p = PcieConfig::gen3_x16();
        assert_eq!(p.write_buffer_bytes(), 6400);
        assert!(p.read_window_bytes() > p.write_buffer_bytes());
    }

    #[test]
    fn little_law_headroom() {
        // Sanity-check the paper's §1 arithmetic: 100 cachelines drained at
        // one per 400 ns sustains only 128 Gbps — enabling strict IOMMU
        // pushes PCIe to its limit.
        let p = PcieConfig::gen3_x16();
        let bytes = p.write_buffer_bytes() as f64;
        let gbps = bytes * 8.0 / 400.0; // bits per ns = Gbps
        assert!((gbps - 128.0).abs() < 1.0, "got {gbps}");
    }

    #[test]
    fn credit_acquire_release_cycle() {
        let mut c = CreditPool::new(100);
        assert!(c.try_acquire(60));
        assert!(c.try_acquire(40));
        assert_eq!(c.available(), 0);
        assert!(!c.try_acquire(1));
        assert_eq!(c.rejections(), 1);
        c.release(50);
        assert!(c.try_acquire(50));
        assert_eq!(c.peak(), 100);
    }

    #[test]
    fn oversized_request_admitted_when_idle() {
        let mut c = CreditPool::new(100);
        assert!(c.try_acquire(500), "oversized DMA must not deadlock");
        assert!(!c.try_acquire(1));
        c.release(500);
        assert!(c.try_acquire(100));
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn over_release_panics() {
        let mut c = CreditPool::new(10);
        c.release(1);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        CreditPool::new(0);
    }
}
