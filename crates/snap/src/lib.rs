//! Versioned, checksummed binary snapshot substrate.
//!
//! Checkpoint/restore of a running `HostSim` needs a serialization format
//! with three properties that rule out text formats and ad-hoc struct
//! dumps:
//!
//! * **bit-exactness** — restoring a snapshot and running to the end must
//!   be indistinguishable from never having snapshotted, so every field
//!   round-trips exactly (floats travel as IEEE-754 bit patterns, never
//!   through decimal);
//! * **versioned refusal** — a snapshot from an older build, a different
//!   configuration, or a truncated file must fail *loudly* with a named
//!   reason, never deserialize into garbage state;
//! * **zero dependencies** — the offline build cannot pull serde, so the
//!   format is hand-rolled: little-endian fixed-width integers,
//!   length-prefixed sequences, an 8-byte magic + format version header,
//!   and a trailing FNV-1a checksum over everything before it.
//!
//! [`SnapWriter`] appends primitives to a byte buffer; [`SnapReader`]
//! consumes them in the same order. There is no schema — reader and writer
//! are the same code path in each owning crate (`snap`/`unsnap` method
//! pairs), and the format version in the header is bumped whenever any of
//! those pairs changes shape.

/// Magic bytes opening every snapshot file ("FNSSNAP" + format generation).
pub const MAGIC: &[u8; 8] = b"FNSSNAP1";

/// Format version written after the magic. Bump on ANY layout change to any
/// `snap`/`unsnap` pair — old snapshots must refuse to load, not misparse.
pub const FORMAT_VERSION: u32 = 2;

/// Why a snapshot failed to load. Every variant names the exact reason so a
/// refused resume is diagnosable from the error alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer is shorter than the fixed header.
    Truncated { need: usize, have: usize },
    /// The leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// Header format version differs from this build's [`FORMAT_VERSION`].
    VersionMismatch { found: u32, expected: u32 },
    /// Trailing FNV-1a checksum does not match the body.
    ChecksumMismatch { found: u64, computed: u64 },
    /// A read ran past the end of the body mid-structure.
    UnexpectedEof { at: usize, need: usize },
    /// A decoded discriminant/tag byte has no matching variant.
    BadTag { what: &'static str, tag: u64 },
    /// The snapshot's config fingerprint disagrees with the caller's
    /// config — resuming under a different config would silently diverge.
    ConfigMismatch { what: &'static str },
    /// Reader finished with bytes left over: writer/reader pairs are out
    /// of sync (almost always a missed [`FORMAT_VERSION`] bump).
    TrailingBytes { left: usize },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found}, this build reads {expected}"
            ),
            SnapError::ChecksumMismatch { found, computed } => write!(
                f,
                "snapshot checksum mismatch: file says {found:#018x}, body hashes to {computed:#018x}"
            ),
            SnapError::UnexpectedEof { at, need } => {
                write!(f, "snapshot body ended early at offset {at} (needed {need} more bytes)")
            }
            SnapError::BadTag { what, tag } => {
                write!(f, "snapshot contains invalid {what} tag {tag}")
            }
            SnapError::ConfigMismatch { what } => write!(
                f,
                "snapshot was taken under a different config ({what} differs); \
                 resume with the original config"
            ),
            SnapError::TrailingBytes { left } => write!(
                f,
                "snapshot has {left} unread trailing bytes: writer/reader out of sync"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a over a byte slice — the integrity check appended to every
/// snapshot. Not cryptographic; it catches truncation and bit rot.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only encoder for the snapshot body.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Starts a snapshot: magic + format version header already written.
    pub fn new() -> Self {
        let mut w = SnapWriter {
            buf: Vec::with_capacity(4096),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u32(FORMAT_VERSION);
        w
    }

    /// Finishes the snapshot: appends the FNV-1a checksum of everything
    /// written so far and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    /// Bytes encoded so far (header included, checksum not yet).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before anything beyond the header has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= MAGIC.len() + 4
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so snapshots are word-size independent.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` travels as its IEEE-754 bit pattern — exact round-trip.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// `u128` travels as two `u64` halves (lo, hi).
    pub fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Length prefix for a sequence whose elements the caller writes next.
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }

    /// `Option` as a presence byte; the caller writes the payload if `Some`.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Convenience: a whole `&[u64]` slice, length-prefixed.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.seq(v.len());
        for &x in v {
            self.u64(x);
        }
    }
}

/// Sequential decoder for a snapshot produced by [`SnapWriter`].
///
/// Construction validates magic, version, and checksum up front; reads then
/// only need to match the writer's order. [`SnapReader::done`] must be
/// called last to catch leftover bytes.
#[derive(Debug)]
pub struct SnapReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Validates header and trailing checksum, positioning the reader just
    /// past the format version.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapError> {
        let header = MAGIC.len() + 4;
        if bytes.len() < header + 8 {
            return Err(SnapError::Truncated {
                need: header + 8,
                have: bytes.len(),
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[MAGIC.len()..header].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let body_end = bytes.len() - 8;
        let found = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
        let computed = fnv1a(&bytes[..body_end]);
        if found != computed {
            return Err(SnapError::ChecksumMismatch { found, computed });
        }
        Ok(SnapReader {
            body: &bytes[..body_end],
            pos: header,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.pos + n > self.body.len() {
            return Err(SnapError::UnexpectedEof {
                at: self.pos,
                need: self.pos + n - self.body.len(),
            });
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag {
                what: "bool",
                tag: t as u64,
            }),
        }
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, SnapError> {
        Ok(self.u64()? as usize)
    }

    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn u128(&mut self) -> Result<u128, SnapError> {
        let lo = self.u64()? as u128;
        let hi = self.u64()? as u128;
        Ok(lo | (hi << 64))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| SnapError::BadTag {
            what: "utf-8 string",
            tag: 0,
        })
    }

    /// Sequence length written by [`SnapWriter::seq`]; elements follow.
    pub fn seq(&mut self) -> Result<usize, SnapError> {
        self.usize()
    }

    /// `Option` presence byte; the caller reads the payload if `Some`.
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(SnapError::BadTag {
                what: "option",
                tag: t as u64,
            }),
        }
    }

    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.seq()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Bytes remaining unread in the body.
    pub fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    /// Must be the final call: fails if the body was not fully consumed.
    pub fn done(&self) -> Result<(), SnapError> {
        if self.pos != self.body.len() {
            return Err(SnapError::TrailingBytes {
                left: self.body.len() - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.usize(123_456);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.u128(u128::MAX - 7);
        w.bytes(b"hello");
        w.str("snapshot");
        w.opt(&Some(9u64), |w, v| w.u64(*v));
        w.opt(&None::<u64>, |w, v| w.u64(*v));
        w.u64_slice(&[1, 2, 3]);
        let bytes = w.finish();

        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.u128().unwrap(), u128::MAX - 7);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "snapshot");
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        r.done().unwrap();
    }

    #[test]
    fn nan_bit_pattern_is_preserved() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        w.f64(weird);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn bad_magic_is_refused() {
        let mut bytes = SnapWriter::new().finish();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapReader::new(&bytes),
            Err(SnapError::BadMagic) | Err(SnapError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_mismatch_is_refused() {
        let mut w = SnapWriter::new();
        w.u64(7);
        let mut bytes = w.finish();
        // Patch the version field and re-seal the checksum so only the
        // version check can fire.
        bytes[8] = 0xFE;
        let body_end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_end]).to_le_bytes();
        bytes[body_end..].copy_from_slice(&sum);
        assert!(matches!(
            SnapReader::new(&bytes),
            Err(SnapError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn corruption_is_caught_by_checksum() {
        let mut w = SnapWriter::new();
        w.u64(0x1234_5678);
        let mut bytes = w.finish();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            SnapReader::new(&bytes),
            Err(SnapError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_caught() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.finish();
        assert!(SnapReader::new(&bytes[..bytes.len() - 9]).is_err());
    }

    #[test]
    fn overread_and_trailing_bytes_are_errors() {
        let mut w = SnapWriter::new();
        w.u32(5);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.u32().unwrap(), 5);
        assert!(matches!(r.u64(), Err(SnapError::UnexpectedEof { .. })));

        let mut w = SnapWriter::new();
        w.u32(5);
        w.u32(6);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.u32().unwrap(), 5);
        assert!(matches!(
            r.done(),
            Err(SnapError::TrailingBytes { left: 4 })
        ));
    }

    #[test]
    fn errors_display_named_reasons() {
        let e = SnapError::ConfigMismatch { what: "seed" };
        assert!(e.to_string().contains("seed"));
        let e = SnapError::VersionMismatch {
            found: 9,
            expected: FORMAT_VERSION,
        };
        assert!(e.to_string().contains('9'));
    }
}
