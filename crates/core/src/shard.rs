//! Sharded sim time: deterministic intra-run parallelism.
//!
//! Sweep parallelism (`fns-harness::SweepRunner`) scales across *runs*;
//! a single run was still one thread, which caps the multi-tenant
//! topology far below the tens-of-thousands-of-flows regime the paper's
//! line-rate claim is about. This module splits one run into independent
//! **shards** — per protection domain (NIC) when the topology has several,
//! falling back to per flow-group on single-NIC shapes — and advances
//! them in bounded sim-time **epochs** on worker threads, merging
//! deterministically at every epoch barrier.
//!
//! # Determinism contract
//!
//! `shards: 1`, `2`, and `4` produce **byte-identical** [`RunMetrics`]
//! (fault logs, traces, and audit reports included); the knob only caps
//! how many worker threads advance shards concurrently. Three design
//! rules make that hold:
//!
//! 1. **The partition is a pure function of the config.** [`plan_shards`]
//!    derives one sub-[`SimConfig`] per shard from the topology and core
//!    count alone — `shards` never appears in it. Each sub-sim is the
//!    ordinary single-threaded [`HostSim`], bit-deterministic on its own.
//! 2. **Shards advance in lockstep epochs on an absolute grid.** The
//!    coordinator broadcasts `Advance { to }` targets at multiples of
//!    `shard_epoch_ns`, so `step_until(a); step_until(b)` composes to
//!    exactly `step_until(b)` for any intermediate `a` — checkpoint
//!    grids and the epoch grid commute.
//! 3. **Cross-shard effects cross only at barriers, in canonical shard
//!    order.** Each shard drains an epoch digest (DMA bytes +
//!    invalidation-queue entries) at the barrier; the coordinator sums
//!    them and hands every shard its siblings' total as *ambient* memory
//!    traffic ([`HostSim::absorb_ambient`]) before the next epoch. The
//!    exchange reads and writes the same values no matter how many
//!    workers carried the shards there.
//!
//! The ambient coupling is deliberately latency-only: sibling traffic
//! inflates a shard's modelled memory utilization (and therefore its
//! page-walk latency) one epoch later, but never touches translation
//! state, so the safety oracle's per-shard view stays exact. See
//! DESIGN.md §16 for the full argument.

use std::sync::mpsc;
use std::thread::JoinHandle;

use fns_net::packet::{rss_queue, FlowId};
use fns_sim::time::Nanos;
use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::config::{SimConfig, Workload};
use crate::metrics::RunMetrics;
use crate::sim::{config_fingerprint, HostSim, RunArena};

/// One shard of a partitioned run: the sub-simulation's config plus the
/// local→global protection-domain mapping the metrics merge scatters
/// through.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard's own single-threaded simulation config (`shards: 0`).
    pub cfg: SimConfig,
    /// `domain_map[local_domain] == global_domain` for tenant
    /// attribution in the merged per-domain counters.
    pub domain_map: Vec<usize>,
}

/// SplitMix64-style seed fork so sibling shards draw from unrelated RNG
/// streams while staying a pure function of (outer seed, shard index).
fn fork_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `total` into `parts` contiguous chunks, front-loading the
/// remainder: chunk `i` gets `total/parts + (i < total%parts)`.
fn chunk(total: usize, parts: usize, i: usize) -> usize {
    total / parts + usize::from(i < total % parts)
}

/// Derives the shard partition for `cfg`: one shard per NIC when the
/// topology has two or more (storage device `s` rides with NIC
/// `s % nics`), otherwise one flow-group shard per core (storage all on
/// group 0). Pure in the config — `cfg.shards` is *not* consulted — so
/// every shard count sees the identical partition.
pub fn plan_shards(cfg: &SimConfig) -> Vec<ShardSpec> {
    let topo = cfg.topology;
    let nics = topo.nics.max(1) as usize;
    if nics >= 2 {
        plan_per_nic(cfg, nics)
    } else {
        plan_per_flow_group(cfg)
    }
}

/// Multi-NIC partition: shard `d` owns NIC `d`'s queues, the flows RSS
/// steers to them, a proportional core slice, and every storage device
/// `s` with `s % nics == d`.
fn plan_per_nic(cfg: &SimConfig, nics: usize) -> Vec<ShardSpec> {
    let topo = cfg.topology;
    let rings = topo.rings();
    let queues = topo.queues_per_nic.max(1) as usize;
    // Flows land on the NIC owning their RSS ring; the SplitMix64 spread
    // keeps the per-shard counts within a small factor of the mean
    // (pinned statistically by `rss_balance.rs`).
    let mut flows_of = vec![0u32; nics];
    for f in 0..cfg.flows {
        flows_of[rss_queue(FlowId(f), rings) / queues] += 1;
    }
    let tx_flows = match cfg.workload {
        Workload::Bidirectional { tx_flows } => tx_flows as usize,
        _ => 0,
    };
    (0..nics)
        .map(|d| {
            let storage: Vec<usize> = (0..topo.storage_devices as usize)
                .filter(|s| s % nics == d)
                .collect();
            let mut sub = *cfg;
            sub.shards = 0;
            sub.seed = fork_seed(cfg.seed, d as u64);
            sub.cores = chunk(cfg.cores, nics, d).max(1);
            sub.flows = flows_of[d];
            sub.topology.nics = 1;
            sub.topology.storage_devices = storage.len() as u16;
            // Sub-sims re-derive their domain count from their own
            // topology; an outer override is already folded into
            // `total_domains` by the merge.
            sub.iommu.domains = 0;
            if let Workload::Bidirectional {
                tx_flows: ref mut t,
            } = sub.workload
            {
                *t = chunk(tx_flows, nics, d) as u32;
            }
            let mut domain_map = vec![d];
            domain_map.extend(storage.iter().map(|s| nics + s));
            ShardSpec {
                cfg: sub,
                domain_map,
            }
        })
        .collect()
}

/// Single-NIC fallback: one flow-group shard per core. Flow `f` joins
/// group `f % cores` on the legacy shape (matching the monolithic
/// round-robin homing) and `rss_queue(f, rings) % cores` when the one
/// NIC has multiple queues; storage devices all ride with group 0.
fn plan_per_flow_group(cfg: &SimConfig) -> Vec<ShardSpec> {
    let topo = cfg.topology;
    let groups = cfg.cores.max(1);
    let rings = topo.rings();
    let single = topo.is_single();
    let mut flows_of = vec![0u32; groups];
    for f in 0..cfg.flows {
        let g = if single {
            f as usize % groups
        } else {
            rss_queue(FlowId(f), rings) % groups
        };
        flows_of[g] += 1;
    }
    let tx_flows = match cfg.workload {
        Workload::Bidirectional { tx_flows } => tx_flows as usize,
        _ => 0,
    };
    (0..groups)
        .map(|g| {
            let mut sub = *cfg;
            sub.shards = 0;
            sub.seed = fork_seed(cfg.seed, g as u64);
            sub.cores = 1;
            sub.flows = flows_of[g];
            sub.iommu.domains = 0;
            if g != 0 {
                sub.topology.storage_devices = 0;
            }
            if let Workload::Bidirectional {
                tx_flows: ref mut t,
            } = sub.workload
            {
                *t = chunk(tx_flows, groups, g) as u32;
            }
            let mut domain_map = vec![0];
            if g == 0 {
                domain_map.extend((0..topo.storage_devices as usize).map(|s| 1 + s));
            }
            ShardSpec {
                cfg: sub,
                domain_map,
            }
        })
        .collect()
}

/// Coordinator→worker commands. Each worker owns a contiguous slice of
/// the shard list; per-shard payloads are in that slice's order.
enum Cmd {
    /// Advance every owned shard to sim time `to`. `digest` is set only
    /// when `to` lies on the global epoch grid — the digest *drains*
    /// per-shard marks, so draining at an intermediate target would
    /// silently swallow traffic the siblings were owed.
    Advance { to: Nanos, digest: bool },
    /// Fold sibling ambient totals (per owned shard) into the memory
    /// model before the next epoch.
    Apply { ambient: Vec<(u64, u64)> },
    /// Serialize every owned shard.
    Snapshot,
    /// Report watchdog/violation status across owned shards.
    Status,
    /// Finalize every owned shard and exit the worker loop.
    Collect,
}

enum Reply {
    Built(Result<(), SnapError>),
    Digests(Vec<(u64, u64)>),
    Applied,
    Snapshots(Vec<Vec<u8>>),
    Status { aborted: bool, violations: u64 },
    Metrics(Vec<RunMetrics>),
}

/// Worker main loop. The sub-sims are constructed (or restored) *inside*
/// the thread — [`HostSim`] holds `Rc`-shared trace/observer/oracle
/// handles and is deliberately not `Send` — and live here for the whole
/// run; the coordinator only ever speaks to them over the channel.
fn worker_main(
    cfgs: Vec<SimConfig>,
    blobs: Option<Vec<Vec<u8>>>,
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<Reply>,
) {
    let mut sims: Vec<HostSim> = Vec::with_capacity(cfgs.len());
    let built = match blobs {
        Some(blobs) => cfgs
            .into_iter()
            .zip(blobs)
            .try_for_each(|(cfg, blob)| HostSim::restore(cfg, &blob).map(|s| sims.push(s))),
        None => {
            let mut arena = RunArena::new();
            for cfg in cfgs {
                sims.push(HostSim::new_in(cfg, &mut arena));
            }
            Ok(())
        }
    };
    let failed = built.is_err();
    if tx.send(Reply::Built(built)).is_err() || failed {
        return;
    }
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::Advance { to, digest } => {
                let mut digests = Vec::new();
                for sim in &mut sims {
                    sim.step_until(to);
                    if digest {
                        digests.push(sim.epoch_digest());
                    }
                }
                Reply::Digests(digests)
            }
            Cmd::Apply { ambient } => {
                for (sim, (dma, inv)) in sims.iter_mut().zip(ambient) {
                    sim.absorb_ambient(dma, inv);
                }
                Reply::Applied
            }
            Cmd::Snapshot => Reply::Snapshots(sims.iter_mut().map(HostSim::snapshot).collect()),
            Cmd::Status => Reply::Status {
                aborted: sims.iter().any(HostSim::watchdog_aborted),
                violations: sims.iter().map(HostSim::audit_violations).sum(),
            },
            Cmd::Collect => {
                let metrics = sims.drain(..).map(HostSim::finish).collect();
                let _ = tx.send(Reply::Metrics(metrics));
                return;
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// Handle to one worker thread plus the channel pair that drives it.
struct Worker {
    tx: Option<mpsc::Sender<Cmd>>,
    rx: mpsc::Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
    /// Shards this worker owns (its contiguous slice length).
    shards: usize,
}

impl Worker {
    fn send(&self, cmd: Cmd) {
        // A dead worker surfaces on the next `recv` as a joined panic;
        // the send itself is best-effort.
        let _ = self.tx.as_ref().expect("worker channel open").send(cmd);
    }

    fn recv(&mut self) -> Reply {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => {
                let handle = self.handle.take().expect("worker already joined");
                match handle.join() {
                    Err(payload) => std::panic::resume_unwind(payload),
                    Ok(()) => panic!("shard worker exited without replying"),
                }
            }
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Closing the command channel ends the worker loop; join so no
        // thread outlives the sim it belongs to.
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The sharded engine: drives [`plan_shards`]' sub-simulations in
/// lockstep epochs across worker threads and merges their results into
/// one [`RunMetrics`] via [`RunMetrics::merge_shards`].
pub struct ShardedSim {
    cfg: SimConfig,
    domain_maps: Vec<Vec<usize>>,
    total_domains: usize,
    workers: Vec<Worker>,
    now: Nanos,
    epoch: Nanos,
}

impl ShardedSim {
    /// Builds a fresh sharded run. Requires `cfg.shards >= 1` (0 selects
    /// the monolithic engine — see [`Engine`]).
    pub fn new(cfg: SimConfig) -> Self {
        Self::build(cfg, None, 0).expect("fresh shard construction cannot fail")
    }

    /// Restores a run checkpointed by [`ShardedSim::snapshot`]. The
    /// worker count may differ from the snapshotting run's — the
    /// fingerprint canonicalizes `shards`, which never affects state.
    pub fn restore(cfg: SimConfig, bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes)?;
        if r.u64()? != Self::fingerprint(&cfg) {
            return Err(SnapError::ConfigMismatch { what: "sim config" });
        }
        let now = r.u64()?;
        let n = r.seq()?;
        if n != plan_shards(&cfg).len() {
            return Err(SnapError::ConfigMismatch {
                what: "shard partition",
            });
        }
        let mut blobs = Vec::with_capacity(n);
        for _ in 0..n {
            blobs.push(r.bytes()?.to_vec());
        }
        r.done()?;
        Self::build(cfg, Some(blobs), now)
    }

    /// Fingerprint with `shards` canonicalized: the worker-thread cap is
    /// the one config field with no behavioral footprint, so checkpoints
    /// stay portable across `--shards` values.
    fn fingerprint(cfg: &SimConfig) -> u64 {
        let mut canon = *cfg;
        canon.shards = 1;
        config_fingerprint(&canon)
    }

    fn build(cfg: SimConfig, blobs: Option<Vec<Vec<u8>>>, now: Nanos) -> Result<Self, SnapError> {
        assert!(
            cfg.shards >= 1,
            "ShardedSim requires shards >= 1; 0 is the monolithic engine"
        );
        let specs = plan_shards(&cfg);
        let n = specs.len();
        let domain_maps: Vec<Vec<usize>> = specs.iter().map(|s| s.domain_map.clone()).collect();
        let total_domains = cfg.iommu.domains.max(cfg.topology.domains()) as usize;
        let worker_count = cfg.shards.min(n).max(1);
        let mut spec_iter = specs.into_iter();
        let mut blob_iter = blobs.map(Vec::into_iter);
        let mut workers = Vec::with_capacity(worker_count);
        for w in 0..worker_count {
            let count = chunk(n, worker_count, w);
            let cfgs: Vec<SimConfig> = spec_iter.by_ref().take(count).map(|s| s.cfg).collect();
            let wblobs = blob_iter
                .as_mut()
                .map(|it| it.by_ref().take(count).collect());
            let (cmd_tx, cmd_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            let handle = std::thread::Builder::new()
                .name(format!("fns-shard-{w}"))
                .spawn(move || worker_main(cfgs, wblobs, cmd_rx, reply_tx))
                .expect("spawn shard worker");
            workers.push(Worker {
                tx: Some(cmd_tx),
                rx: reply_rx,
                handle: Some(handle),
                shards: count,
            });
        }
        let mut sim = Self {
            epoch: cfg.shard_epoch_ns.max(1),
            cfg,
            domain_maps,
            total_domains,
            workers,
            now,
        };
        for i in 0..sim.workers.len() {
            match sim.workers[i].recv() {
                Reply::Built(result) => result?,
                _ => unreachable!("worker's first reply is Built"),
            }
        }
        Ok(sim)
    }

    /// Shards in the partition (fixed by the config, not the thread cap).
    pub fn shard_count(&self) -> usize {
        self.workers.iter().map(|w| w.shards).sum()
    }

    /// Current sim time (last barrier or step target).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The outer run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Advances all shards to time `t`, epoch barrier by epoch barrier.
    /// Targets snap to the absolute `shard_epoch_ns` grid, so any
    /// composition of intermediate targets replays the identical
    /// barrier/exchange sequence.
    pub fn step_until(&mut self, t: Nanos) {
        while self.now < t {
            let barrier = ((self.now / self.epoch + 1) * self.epoch).min(t);
            let on_grid = barrier.is_multiple_of(self.epoch);
            for w in &self.workers {
                w.send(Cmd::Advance {
                    to: barrier,
                    digest: on_grid,
                });
            }
            let mut digests: Vec<(u64, u64)> = Vec::with_capacity(self.shard_count());
            for i in 0..self.workers.len() {
                match self.workers[i].recv() {
                    Reply::Digests(d) => digests.extend(d),
                    _ => unreachable!("Advance replies Digests"),
                }
            }
            self.now = barrier;
            if on_grid {
                self.exchange(&digests);
            }
        }
    }

    /// The barrier exchange: every shard absorbs the *other* shards'
    /// epoch digest as ambient memory traffic for the next epoch.
    fn exchange(&mut self, digests: &[(u64, u64)]) {
        let total = digests
            .iter()
            .fold((0u64, 0u64), |acc, d| (acc.0 + d.0, acc.1 + d.1));
        if total == (0, 0) {
            return;
        }
        let mut offset = 0;
        for w in &self.workers {
            let ambient = digests[offset..offset + w.shards]
                .iter()
                .map(|d| (total.0 - d.0, total.1 - d.1))
                .collect();
            w.send(Cmd::Apply { ambient });
            offset += w.shards;
        }
        for i in 0..self.workers.len() {
            match self.workers[i].recv() {
                Reply::Applied => {}
                _ => unreachable!("Apply replies Applied"),
            }
        }
    }

    /// Serializes the full sharded state. Call at an epoch barrier (any
    /// `step_until` target is one) so no digest is mid-flight.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(Self::fingerprint(&self.cfg));
        w.u64(self.now);
        w.seq(self.shard_count());
        for w_idx in 0..self.workers.len() {
            self.workers[w_idx].send(Cmd::Snapshot);
            match self.workers[w_idx].recv() {
                Reply::Snapshots(blobs) => {
                    for blob in blobs {
                        w.bytes(&blob);
                    }
                }
                _ => unreachable!("Snapshot replies Snapshots"),
            }
        }
        w.finish()
    }

    fn status(&mut self) -> (bool, u64) {
        for w in &self.workers {
            w.send(Cmd::Status);
        }
        let mut aborted = false;
        let mut violations = 0;
        for i in 0..self.workers.len() {
            match self.workers[i].recv() {
                Reply::Status {
                    aborted: a,
                    violations: v,
                } => {
                    aborted |= a;
                    violations += v;
                }
                _ => unreachable!("Status replies Status"),
            }
        }
        (aborted, violations)
    }

    /// Whether any shard's degradation watchdog aborted its run.
    pub fn watchdog_aborted(&mut self) -> bool {
        self.status().0
    }

    /// Safety-oracle violations across all shards so far.
    pub fn audit_violations(&mut self) -> u64 {
        self.status().1
    }

    /// Finalizes every shard and merges the per-shard results. The
    /// workers exit afterwards; this is terminal.
    pub fn finish(&mut self) -> RunMetrics {
        for w in &self.workers {
            w.send(Cmd::Collect);
        }
        let mut parts = Vec::with_capacity(self.shard_count());
        for i in 0..self.workers.len() {
            match self.workers[i].recv() {
                Reply::Metrics(m) => parts.extend(m),
                _ => unreachable!("Collect replies Metrics"),
            }
        }
        RunMetrics::merge_shards(parts, &self.domain_maps, self.total_domains)
    }

    /// Runs to the configured end time and merges the results.
    pub fn run(mut self) -> RunMetrics {
        let end = self.cfg.end_time();
        self.step_until(end);
        self.finish()
    }
}

/// Engine dispatch: `cfg.shards == 0` (the default) runs the legacy
/// monolithic [`HostSim`] event loop, bit-identical to every prior
/// release; `cfg.shards >= 1` engages the sharded engine. The two are
/// different *semantics* (the partition forks per-shard seeds), so the
/// determinism contract is shards-N ≡ shards-M, never sharded ≡
/// monolithic.
pub enum Engine {
    /// The single-threaded legacy event loop.
    Host(Box<HostSim>),
    /// The epoch-barrier sharded engine.
    Sharded(Box<ShardedSim>),
}

impl From<HostSim> for Engine {
    fn from(sim: HostSim) -> Self {
        Engine::Host(Box::new(sim))
    }
}

impl Engine {
    /// Builds the engine `cfg.shards` selects.
    pub fn new(cfg: SimConfig) -> Self {
        if cfg.shards >= 1 {
            Engine::Sharded(Box::new(ShardedSim::new(cfg)))
        } else {
            Engine::Host(Box::new(HostSim::new(cfg)))
        }
    }

    /// Restores whichever engine `cfg.shards` selects from `bytes`.
    /// Snapshot formats are engine-specific: a checkpoint taken at
    /// `--shards N` restores at any `--shards M >= 1`, but not into the
    /// monolithic engine (and vice versa).
    pub fn restore(cfg: SimConfig, bytes: &[u8]) -> Result<Self, SnapError> {
        if cfg.shards >= 1 {
            Ok(Engine::Sharded(Box::new(ShardedSim::restore(cfg, bytes)?)))
        } else {
            Ok(Engine::Host(Box::new(HostSim::restore(cfg, bytes)?)))
        }
    }

    /// Current sim time.
    pub fn now(&self) -> Nanos {
        match self {
            Engine::Host(sim) => sim.now(),
            Engine::Sharded(sim) => sim.now(),
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        match self {
            Engine::Host(sim) => sim.config(),
            Engine::Sharded(sim) => sim.config(),
        }
    }

    /// Advances to sim time `t`.
    pub fn step_until(&mut self, t: Nanos) {
        match self {
            Engine::Host(sim) => sim.step_until(t),
            Engine::Sharded(sim) => sim.step_until(t),
        }
    }

    /// Serializes the full engine state.
    pub fn snapshot(&mut self) -> Vec<u8> {
        match self {
            Engine::Host(sim) => sim.snapshot(),
            Engine::Sharded(sim) => sim.snapshot(),
        }
    }

    /// Whether a degradation watchdog aborted the run.
    pub fn watchdog_aborted(&mut self) -> bool {
        match self {
            Engine::Host(sim) => sim.watchdog_aborted(),
            Engine::Sharded(sim) => sim.watchdog_aborted(),
        }
    }

    /// Safety-oracle violations so far.
    pub fn audit_violations(&mut self) -> u64 {
        match self {
            Engine::Host(sim) => sim.audit_violations(),
            Engine::Sharded(sim) => sim.audit_violations(),
        }
    }

    /// Finalizes the run at the configured end time.
    pub fn finish(self) -> RunMetrics {
        match self {
            Engine::Host(sim) => sim.finish(),
            Engine::Sharded(mut sim) => sim.finish(),
        }
    }

    /// Runs to completion.
    pub fn run(self) -> RunMetrics {
        match self {
            Engine::Host(sim) => sim.run(),
            Engine::Sharded(sim) => sim.run(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_pure_in_the_thread_cap() {
        let mut cfg = SimConfig::paper_default(crate::ProtectionMode::FastAndSafe);
        cfg.topology.nics = 4;
        cfg.topology.queues_per_nic = 2;
        cfg.topology.storage_devices = 3;
        cfg.cores = 8;
        cfg.flows = 128;
        cfg.shards = 1;
        let one = plan_shards(&cfg);
        cfg.shards = 4;
        let four = plan_shards(&cfg);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(format!("{:?}", a.cfg), format!("{:?}", b.cfg));
            assert_eq!(a.domain_map, b.domain_map);
        }
    }

    #[test]
    fn per_nic_partition_conserves_flows_cores_devices() {
        let mut cfg = SimConfig::paper_default(crate::ProtectionMode::FastAndSafe);
        cfg.topology.nics = 4;
        cfg.topology.queues_per_nic = 2;
        cfg.topology.storage_devices = 3;
        cfg.cores = 10;
        cfg.flows = 500;
        let specs = plan_shards(&cfg);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs.iter().map(|s| s.cfg.flows).sum::<u32>(), 500);
        assert_eq!(specs.iter().map(|s| s.cfg.cores).sum::<usize>(), 10);
        assert_eq!(
            specs
                .iter()
                .map(|s| s.cfg.topology.storage_devices)
                .sum::<u16>(),
            3
        );
        // Every global domain is claimed exactly once across the maps.
        let mut seen: Vec<usize> = specs.iter().flat_map(|s| s.domain_map.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
        // Forked seeds differ per shard.
        let seeds: std::collections::BTreeSet<u64> = specs.iter().map(|s| s.cfg.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn single_nic_fallback_groups_by_core() {
        let mut cfg = SimConfig::paper_default(crate::ProtectionMode::FastAndSafe);
        cfg.cores = 4;
        cfg.flows = 9;
        cfg.topology.storage_devices = 0;
        let specs = plan_shards(&cfg);
        assert_eq!(specs.len(), 4);
        // Legacy round-robin: flows 0,4,8 → group 0; 1,5 → 1; ...
        assert_eq!(
            specs.iter().map(|s| s.cfg.flows).collect::<Vec<_>>(),
            vec![3, 2, 2, 2]
        );
        for s in &specs {
            assert_eq!(s.cfg.cores, 1);
            assert_eq!(s.domain_map, vec![0]);
        }
    }

    #[test]
    fn sharded_run_is_identical_at_every_thread_cap() {
        let mut cfg = SimConfig::paper_default(crate::ProtectionMode::FastAndSafe);
        cfg.cores = 2;
        cfg.flows = 4;
        cfg.warmup = 200_000;
        cfg.measure = 500_000;
        cfg.shards = 1;
        let a = ShardedSim::new(cfg).run();
        cfg.shards = 2;
        let b = ShardedSim::new(cfg).run();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let mut cfg = SimConfig::paper_default(crate::ProtectionMode::FastAndSafe);
        cfg.cores = 2;
        cfg.flows = 4;
        cfg.warmup = 200_000;
        cfg.measure = 500_000;
        cfg.shards = 2;
        let golden = ShardedSim::new(cfg).run();
        let mut sim = ShardedSim::new(cfg);
        sim.step_until(300_000);
        let snap = sim.snapshot();
        drop(sim);
        // Resume under a different thread cap: state is cap-independent.
        let mut resumed_cfg = cfg;
        resumed_cfg.shards = 1;
        let mut resumed = ShardedSim::restore(resumed_cfg, &snap).expect("restore");
        assert_eq!(resumed.now(), 300_000);
        resumed.step_until(cfg.end_time());
        assert_eq!(resumed.finish(), golden);
    }
}
