//! Simulation configuration: testbed parameters and workload selection.

use fns_faults::FaultConfig;
use fns_iommu::IommuConfig;
use fns_mem::MemoryModel;
use fns_oracle::AuditConfig;
use fns_pcie::PcieConfig;
use fns_sim::queue::QueueKind;
use fns_sim::time::{Bandwidth, Nanos, MICROS, MILLIS};
use fns_trace::{ObserveConfig, ProbeConfig, TraceConfig};

use crate::driver::Sabotage;
use crate::mode::ProtectionMode;
use crate::watchdog::WatchdogConfig;

/// CPU cost constants for the driver/stack work the datapath performs.
///
/// Calibrated against the qualitative statements in the paper: the CPU is
/// "far from utilized" in the IOMMU-enabled microbenchmarks with 5 cores,
/// F&S's map/unmap overhead is visible only when something else (ring-size
/// driven cache misses, app-layer work) pushes a core near saturation.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// Per-packet network-stack processing (protocol, skb bookkeeping).
    pub per_packet_ns: Nanos,
    /// Per-NAPI-batch fixed cost (IRQ entry, poll loop, GRO flush).
    pub per_batch_ns: Nanos,
    /// IOVA allocation or free through the caching allocator fast path.
    pub alloc_cache_ns: Nanos,
    /// IOVA allocation or free through the red-black tree.
    pub alloc_tree_ns: Nanos,
    /// One page-table map operation.
    pub map_ns: Nanos,
    /// One unmap operation (per call, any size).
    pub unmap_ns: Nanos,
    /// Extra per-packet cost of reading packet data that missed the CPU
    /// cache, applied in proportion to the ring-size-driven miss factor.
    pub pkt_data_read_ns: Nanos,
}

impl Default for CpuCosts {
    fn default() -> Self {
        Self {
            per_packet_ns: 450,
            per_batch_ns: 1_500,
            alloc_cache_ns: 40,
            alloc_tree_ns: 400,
            map_ns: 90,
            unmap_ns: 120,
            pkt_data_read_ns: 2_000,
        }
    }
}

/// The device topology behind the shared IOMMU.
///
/// Every device — each NIC and each storage-style DMA engine — is attached
/// to its own PASID-style protection domain: domain `d` for NIC `d`
/// (`0..nics`), then `nics + s` for storage device `s`. A NIC exposes
/// `queues_per_nic` Rx/Tx queue pairs and flows are spread across them by
/// receive-side scaling on the flow id, so one tenant's traffic can fan
/// out over several rings while still translating in a single domain.
///
/// [`Topology::single_nic`] (1 NIC x 1 queue, no storage) is the legacy
/// single-device shape: domain-0 tags are the identity, and runs are
/// bit-identical to the pre-topology simulator.
#[derive(Debug, Clone, Copy)]
pub struct Topology {
    /// NICs sharing the IOMMU (>= 1). Each is one protection domain.
    pub nics: u16,
    /// Rx/Tx queue pairs per NIC (>= 1). Queue `q` of NIC `d` is serviced
    /// by core `(d * queues_per_nic + q) % cores`.
    pub queues_per_nic: u16,
    /// Storage-style DMA devices (NVMe-like), each its own domain after
    /// the NICs.
    pub storage_devices: u16,
    /// Outstanding DMA reads per storage device (queue depth).
    pub storage_queue_depth: u32,
    /// Pages per storage IO (map, DMA-read every page, unmap).
    pub storage_io_pages: u32,
    /// Idle think time between a storage IO completing and the next issue
    /// on that slot.
    pub storage_think_ns: Nanos,
}

impl Topology {
    /// The legacy shape: one NIC, one queue, no storage devices.
    pub fn single_nic() -> Self {
        Self {
            nics: 1,
            queues_per_nic: 1,
            storage_devices: 0,
            storage_queue_depth: 4,
            storage_io_pages: 8,
            storage_think_ns: 2 * MICROS,
        }
    }

    /// Protection domains the IOMMU must serve: one per device.
    pub fn domains(&self) -> u16 {
        self.nics.max(1) + self.storage_devices
    }

    /// Total Rx/Tx rings across all NICs.
    pub fn rings(&self) -> usize {
        self.nics.max(1) as usize * self.queues_per_nic.max(1) as usize
    }

    /// Whether this is the bit-identical legacy single-device shape.
    pub fn is_single(&self) -> bool {
        self.nics <= 1 && self.queues_per_nic <= 1 && self.storage_devices == 0
    }

    /// The protection domain of NIC `nic`.
    pub fn nic_domain(&self, nic: u16) -> u16 {
        nic
    }

    /// The protection domain of storage device `dev`.
    pub fn storage_domain(&self, dev: u16) -> u16 {
        self.nics.max(1) + dev
    }
}

/// The workload driving the simulation.
#[derive(Debug, Clone, Copy)]
pub enum Workload {
    /// iperf-style unbounded peer→DUT flows (the paper's microbenchmarks,
    /// Figures 2/3/7/8).
    IperfRx,
    /// Unbounded traffic in both directions on disjoint flows
    /// (Figure 10). `tx_flows` DUT→peer flows are added on distinct cores.
    Bidirectional {
        /// Number of DUT→peer data flows.
        tx_flows: u32,
    },
    /// Closed-loop request/response (Redis / Nginx / SPDK, Figure 11).
    RequestResponse {
        /// Bytes per request (client → server).
        request_bytes: u64,
        /// Bytes per response (server → client).
        response_bytes: u64,
        /// Outstanding requests per connection.
        depth: u32,
        /// If `true`, the DUT runs the server (Redis/Nginx); otherwise the
        /// DUT runs the client (SPDK).
        dut_is_server: bool,
        /// Application CPU per request on the DUT, ns.
        app_cpu_per_request_ns: Nanos,
        /// Application CPU per KB of payload on the DUT, ns.
        app_cpu_per_kb_ns: Nanos,
    },
    /// Latency-sensitive RPC flow colocated with iperf flows (Figure 9).
    /// The RPC runs closed-loop depth-1 on its own core.
    RpcColocated {
        /// Request size, bytes (128 B – 32 KB in the paper).
        rpc_bytes: u64,
        /// Response size, bytes.
        response_bytes: u64,
    },
    /// Sustained connection churn: every flow sends `conn_bytes` and then
    /// restarts as a fresh connection (congestion state reset, slow-start
    /// again), so tens of thousands of short connections cycle through the
    /// rings over a run. Stresses RSS spreading and the allocator's churn
    /// path.
    Churn {
        /// Bytes per connection before it restarts.
        conn_bytes: u64,
    },
    /// Incast bursts: all flows idle, then every `period_ns` each sender
    /// releases a `burst_bytes` window at once — the load-balancer fan-in
    /// pattern that overruns NIC buffers and spikes invalidation backlog.
    Incast {
        /// Bytes each sender releases per burst.
        burst_bytes: u64,
        /// Quiet interval between burst fronts.
        period_ns: Nanos,
    },
}

/// Full experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Protection mode under test.
    pub mode: ProtectionMode,
    /// DUT cores processing network traffic.
    pub cores: usize,
    /// Data flows from the peer to the DUT (iperf-style workloads) or
    /// connections (request/response workloads).
    pub flows: u32,
    /// MTU in bytes (paper default 4 KB; applications use 9 KB).
    pub mtu: u32,
    /// Ring buffer size per core, in MTU-sized packets (paper default 256).
    pub ring_packets: u32,
    /// Pages per Rx descriptor. Mellanox CX-5 uses 64 (the paper's
    /// default); 1 models single-page-descriptor devices like Intel ICE
    /// (§3's generality discussion).
    pub pages_per_descriptor: u32,
    /// NIC input buffer, bytes.
    pub nic_buffer_bytes: u64,
    /// Access link bandwidth.
    pub link: Bandwidth,
    /// One-way propagation + switching delay.
    pub propagation_ns: Nanos,
    /// DCTCP marking threshold at the switch, bytes. In the paper's
    /// topology the switch queue only builds when the access link itself
    /// saturates (IOMMU-off runs); host-bottlenecked runs are loss-driven
    /// at the NIC buffer. The default threshold is above a single flow's
    /// maximum window so ACK-compression bursts do not trigger spurious
    /// marks.
    pub ecn_k_bytes: u64,
    /// GRO/coalescing factor: in-order packets per ACK.
    pub ack_coalesce: u32,
    /// Interrupt-moderation delay before a NAPI poll runs.
    pub irq_delay_ns: Nanos,
    /// Cross-core shift for Tx completion processing (0 = same core; 1 =
    /// next core, Linux IRQ-steering-style). Drives allocator-cache mixing.
    pub tx_completion_core_shift: usize,
    /// Device topology behind the shared IOMMU. [`Topology::single_nic`]
    /// is the legacy single-device shape; anything wider attaches each
    /// device to its own protection domain and spreads flows across
    /// per-queue rings by RSS. The IOMMU's domain count is derived from
    /// this at init ([`Topology::domains`]), overriding `iommu.domains`.
    pub topology: Topology,
    /// Seeded driver bug, armed *before* driver init so sabotages that
    /// only bite during buffer-pool setup (pinned/huge modes) still
    /// trigger. [`Sabotage::None`] (the default) changes no run by a
    /// single bit.
    pub sabotage: Sabotage,
    /// Hardware models.
    pub iommu: IommuConfig,
    pub pcie: PcieConfig,
    pub memory: MemoryModel,
    pub cpu: CpuCosts,
    /// Base (non-translation) root-complex residency per Rx page — the
    /// paper's fitted `l0 = 65 ns`.
    pub l0_rx_ns: Nanos,
    /// Same for Tx page translations (reads pipeline deeper).
    pub l0_tx_ns: Nanos,
    /// Deferred-mode invalidation threshold, in pending unmapped IOVAs.
    pub deferred_flush_threshold: u32,
    /// Workload.
    pub workload: Workload,
    /// Warmup before measurement starts.
    pub warmup: Nanos,
    /// Measurement window.
    pub measure: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Cap on locality-trace samples (Figures 2e/3e/7e/8e).
    pub locality_samples: usize,
    /// Allocator aging, as a multiple of the IOVA working-set size (see
    /// [`crate::driver::DmaDriver::age_allocator`]). 0 disables aging.
    pub aging_factor: f64,
    /// Fault-injection mix. Disabled by default; when any site is enabled
    /// the simulation installs seeded [`fns_faults::FaultPlane`]s (forked
    /// from [`SimConfig::seed`]) on the driver and the wire, so runs stay
    /// bit-identical for a fixed seed.
    pub faults: FaultConfig,
    /// Event-trace selection (category mask + ring capacity). Off by
    /// default; output destinations live on the CLI side, never here.
    pub trace: TraceConfig,
    /// Time-series gauge probes (sampling interval). Off by default.
    pub probes: ProbeConfig,
    /// Safety-oracle auditing (see `fns-oracle`). Off by default; when
    /// enabled the driver installs a reference-model auditor *before*
    /// init so every mapping is observed. Consumes no RNG — a run's
    /// metrics are bit-identical with auditing on or off.
    pub audit: AuditConfig,
    /// Event-queue implementation. Defaults to the hierarchical timing
    /// wheel; the binary-heap reference exists for differential testing
    /// (results are bit-identical either way — `tests/golden_determinism.rs`
    /// pins that).
    pub queue: QueueKind,
    /// Coalesced invalidation batch-drain: per-page invalidation
    /// submissions from the completion paths run as one pass over the
    /// driver's flat pending ring instead of one bookkeeping-heavy call
    /// per page. On by default; `false` restores the per-call reference
    /// loop. Results are bit-identical either way — metrics, traces, and
    /// oracle audit order (`tests/golden_determinism.rs` pins it).
    pub coalesce_inv_drain: bool,
    /// Analytic fast-forward in the timing wheel: when the occupancy
    /// bitmasks prove nothing is schedulable before time T, the wheel
    /// jumps its level bases to T in one pass instead of cascading one
    /// level per settle. On by default; `false` restores the reference
    /// cascade. A fast-forward is unobservable in any metric, trace, or
    /// audit (`queue_equivalence.rs` + `tests/golden_determinism.rs`).
    pub queue_fast_forward: bool,
    /// Degradation watchdog for long-horizon soak runs (see
    /// [`crate::watchdog`]). Off by default; a disabled watchdog changes
    /// no run by a single bit.
    pub watchdog: WatchdogConfig,
    /// Causal observability plane: page provenance timelines, DMA
    /// transaction spans, the percentile registry, and the flight
    /// recorder (see [`fns_trace::recorder`]). Off by default; disabled
    /// it changes no run by a single bit, armed it consumes no RNG.
    pub observe: ObserveConfig,
    /// Intra-run parallelism: worker threads for the sharded sim-time
    /// engine (see [`crate::shard`]). `0` — the default — runs the legacy
    /// monolithic [`crate::HostSim`] event loop, bit-identical to every
    /// prior release. Any value `>= 1` engages the sharded engine: the
    /// shard *partition* is a pure function of the topology/core count,
    /// so `shards: 1`, `2`, and `4` all produce byte-identical
    /// `RunMetrics` — the knob only caps how many worker threads advance
    /// shards concurrently (`tests/golden_determinism.rs` pins it).
    pub shards: usize,
    /// Bounded sim-time epoch between shard barriers (sharded engine
    /// only). Shards advance independently inside an epoch; shared-IOMMU
    /// effects cross at the barrier in canonical (epoch, domain, seq)
    /// order. Ignored when `shards == 0`.
    pub shard_epoch_ns: Nanos,
}

impl SimConfig {
    /// The paper's default microbenchmark setup (§2.2): 5 cores, one flow
    /// per core, 4 KB MTU, 256-packet rings, 100 Gbps link, Cascade Lake
    /// memory.
    pub fn paper_default(mode: ProtectionMode) -> Self {
        Self {
            mode,
            cores: 5,
            flows: 5,
            mtu: 4096,
            ring_packets: 256,
            pages_per_descriptor: 64,
            nic_buffer_bytes: 1 << 20,
            link: Bandwidth::gbps(100),
            propagation_ns: MICROS,
            ecn_k_bytes: 512 * 1024,
            ack_coalesce: 16,
            irq_delay_ns: 25 * MICROS,
            tx_completion_core_shift: 1,
            topology: Topology::single_nic(),
            sabotage: Sabotage::None,
            iommu: IommuConfig::default(),
            pcie: PcieConfig::gen3_x16(),
            memory: MemoryModel::cascade_lake(),
            cpu: CpuCosts::default(),
            l0_rx_ns: 65,
            l0_tx_ns: 30,
            deferred_flush_threshold: 256,
            workload: Workload::IperfRx,
            warmup: 20 * MILLIS,
            measure: 60 * MILLIS,
            seed: 1,
            locality_samples: 400_000,
            aging_factor: 1.5,
            faults: FaultConfig::disabled(),
            trace: TraceConfig::off(),
            probes: ProbeConfig::off(),
            audit: AuditConfig::off(),
            queue: QueueKind::Wheel,
            coalesce_inv_drain: true,
            queue_fast_forward: true,
            watchdog: WatchdogConfig::off(),
            observe: ObserveConfig::off(),
            shards: 0,
            shard_epoch_ns: 100 * MICROS,
        }
    }

    /// IOVA working-set size in pages (the paper's §2.2 formula:
    /// `2 x cores x MTU x ring size`).
    pub fn working_set_pages(&self) -> u64 {
        2 * self.cores as u64 * self.ring_packets as u64 * self.pages_for(self.mtu) as u64
    }

    /// Pages a packet of `bytes` occupies.
    pub fn pages_for(&self, bytes: u32) -> u32 {
        bytes.div_ceil(4096).max(1)
    }

    /// Ring size in descriptors, at least 1.
    pub fn ring_descriptors(&self) -> usize {
        // The paper's working-set formula allocates 2x the ring size in
        // MTU-sized packets' worth of pages.
        let pages = 2 * self.ring_packets as u64 * self.pages_for(self.mtu) as u64;
        // At least two descriptors so one can be recycled while the NIC
        // fills the other.
        (pages / self.pages_per_descriptor as u64).max(2) as usize
    }

    /// Simulation end time.
    pub fn end_time(&self) -> Nanos {
        self.warmup + self.measure
    }

    /// Why this configuration cannot be checkpointed, if it can't — `None`
    /// means `HostSim::snapshot`/`restore` round-trips it bit-identically.
    ///
    /// Checkpointing callers (the CLI's `--snapshot-every`/`--resume`, the
    /// soak runner, the perf-smoke snapshot gate) must surface this reason
    /// as a hard error instead of silently dropping state.
    pub fn snapshot_ineligibility(&self) -> Option<&'static str> {
        if self.audit.enabled && self.audit.fatal {
            // The fatal oracle panics at the first violation, so a resumed
            // run can never carry a violation forward into its report —
            // checkpoint flows need the recording oracle.
            return Some(
                "audit.fatal: the fatal safety oracle panics mid-run; \
                 checkpoint/resume requires the recording oracle (audit without fatal)",
            );
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_setup() {
        let c = SimConfig::paper_default(ProtectionMode::LinuxStrict);
        assert_eq!(c.cores, 5);
        assert_eq!(c.flows, 5);
        assert_eq!(c.mtu, 4096);
        assert_eq!(c.ring_packets, 256);
        assert_eq!(c.link.as_gbps(), 100.0);
    }

    #[test]
    fn ring_descriptor_count() {
        let c = SimConfig::paper_default(ProtectionMode::LinuxStrict);
        // 2 * 256 packets * 1 page = 512 pages = 8 descriptors per core.
        assert_eq!(c.ring_descriptors(), 8);
        let mut c9k = c;
        c9k.mtu = 9000;
        // 2 * 256 * 3 pages = 1536 pages = 24 descriptors.
        assert_eq!(c9k.ring_descriptors(), 24);
    }

    #[test]
    fn pages_for_rounding() {
        let c = SimConfig::paper_default(ProtectionMode::IommuOff);
        assert_eq!(c.pages_for(64), 1);
        assert_eq!(c.pages_for(4096), 1);
        assert_eq!(c.pages_for(4097), 2);
        assert_eq!(c.pages_for(9000), 3);
    }
}
