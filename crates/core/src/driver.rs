//! The memory-protection driver: mode-dependent map/unmap/invalidate
//! datapaths.
//!
//! This module is the reproduction of the paper's actual ~630-LoC kernel
//! patch. Everything else in the workspace is substrate; the behavioural
//! difference between [`ProtectionMode`]s lives here:
//!
//! * how Rx descriptors get their IOVAs (64 per-page allocations vs one
//!   contiguous 256 KB chunk, Figure 4),
//! * how Tx packets get IOVAs (per-page vs carving from cross-descriptor
//!   chunks, §3),
//! * what an unmap invalidates (IOTLB + PTcaches vs IOTLB-only with the
//!   reclamation fixup),
//! * how many invalidation-queue entries a descriptor costs (64 vs 1,
//!   Figure 6).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use fns_faults::{FaultKind, FaultPlane};
use fns_iommu::{InvalidationQueue, InvalidationRequest, InvalidationScope, Iommu, IommuConfig};
use fns_iova::carver::ChunkCarver;
use fns_iova::types::{Iova, IovaRange};
use fns_iova::{AllocError, AllocStats, CachingAllocator, IovaAllocator};
use fns_mem::{FrameAllocator, PhysAddr};
use fns_nic::descriptor::{Descriptor, DescriptorPage};
use fns_oracle::AuditHandle;
use fns_sim::stats::ReuseDistance;
use fns_sim::time::Nanos;
use fns_trace::{ObsHandle, Span, SpanSet, TraceCategory, TraceData, TraceHandle};

use crate::config::CpuCosts;
use crate::errors::DmaError;
use crate::mode::ProtectionMode;

/// Pages per F&S Tx chunk (same 256 KB granularity as Rx descriptors, §3).
pub const TX_CHUNK_PAGES: u64 = 64;

/// 4 KB pages per 2 MB hugepage.
pub const HUGE_PAGES: u64 = 512;

/// Multiply-rotate hasher for pfn-keyed maps. The chunk map is keyed by
/// 64-aligned base pfns and hit on every carve/release, where SipHash's
/// per-lookup cost is measurable; a Fibonacci multiply mixes those keys
/// well and is deterministic across runs (no per-process seed), which the
/// bit-identical-replay guarantee requires anyway.
#[derive(Default, Clone, Copy)]
struct PfnHasher(u64);

impl Hasher for PfnHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(23);
    }
}

type PfnMap<V> = HashMap<u64, V, BuildHasherDefault<PfnHasher>>;

/// Upper bound on pooled scratch vectors kept for reuse; anything beyond
/// this is dropped rather than hoarded.
const POOL_CAP: usize = 256;

/// Test-only seeded driver bugs, used by the oracle corpus to prove each
/// invariant class is still caught. `None` in every production path; the
/// other variants suppress exactly one safety-relevant action *and* its
/// audit bookkeeping, modelling a driver that silently forgot the step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Sabotage {
    /// No seeded bug.
    #[default]
    None,
    /// Drop the `nth` (1-based, whole-run ordinal) submitted invalidation
    /// request: its IOTLB entries survive the unmap.
    SkipRangeInvalidation {
        /// Ordinal of the request to drop.
        nth: u64,
    },
    /// Skip the preserve-mode PTcache fixup for reclaimed PT pages.
    SkipReclaimFixup,
    /// Never run the deferred-mode threshold flush: the invalidation
    /// backlog grows without bound.
    SkipDeferredFlush,
    /// On the `nth` (1-based, whole-run ordinal) successful map operation
    /// (Rx descriptor preparation or Tx map), additionally map the
    /// operation's first page into the *next* protection domain, touch it
    /// once from that domain, and tear the stray PTE down again without
    /// invalidating — a driver bug that installs a mapping in the wrong
    /// PASID and leaves the victim domain a stale IOTLB entry onto another
    /// tenant's frame. No-op in single-domain topologies.
    CrossDomainLeak {
        /// Ordinal of the map operation to corrupt.
        nth: u64,
    },
    /// Drop every domain-scoped invalidation submitted for a non-zero
    /// domain (its IOTLB entries survive the unmap), and leak frames freed
    /// by non-zero domains straight to the global pool instead of their
    /// per-domain quarantine — together modelling a driver that forgot
    /// domain scoping entirely, so one tenant's stale entries end up
    /// resolving to frames another tenant now owns.
    SkipDomainScopedInvalidation,
}

/// Storage harvested from a finished [`DmaDriver`] — the driver's share of
/// a run arena. Opaque: produced by [`DmaDriver::salvage`], consumed by
/// [`DmaDriver::with_descriptor_pages_in`], which rewinds every component
/// to its freshly-constructed state while keeping the big allocations
/// (page-table slab, cache tables, frame bitmap, pooled vectors) alive.
pub struct DriverSalvage {
    iommu: Iommu,
    frames: FrameAllocator,
    chunks: PfnMap<ChunkCarver>,
    pinned_free: Vec<std::collections::VecDeque<DescriptorPage>>,
    huge_frames: Vec<Vec<u64>>,
    quarantine: Vec<Vec<u64>>,
    pending_wipe_reqs: std::collections::VecDeque<InvalidationRequest>,
    pending_wipe_epochs: std::collections::VecDeque<u32>,
    page_pool: Vec<Vec<DescriptorPage>>,
    req_scratch: Vec<InvalidationRequest>,
    reclaim_scratch: Vec<fns_iommu::ReclaimedPage>,
    locality: ReuseDistance,
}

/// The protection-layer driver state for one host.
pub struct DmaDriver {
    mode: ProtectionMode,
    /// The IOMMU hardware (public for counter access).
    pub iommu: Iommu,
    alloc: CachingAllocator,
    frames: FrameAllocator,
    invq: InvalidationQueue,
    costs: CpuCosts,
    /// Pages per Rx descriptor (64 for CX-5-style multi-page descriptors,
    /// 1 for single-page-descriptor devices).
    rx_desc_pages: u64,
    /// Simulated cores (the carving-slot stride).
    cores: usize,
    /// Protection domains sharing the IOMMU (1 = legacy single device).
    domains: u16,
    /// Per-(core, domain) current Tx chunk (base pfn), for contiguous
    /// modes; indexed `core * domains + domain`.
    tx_chunk: Vec<Option<u64>>,
    /// Per-(core, domain) current Rx carving chunk, used by contiguous
    /// modes when descriptors are smaller than a chunk (cross-descriptor
    /// carving, §3); same indexing as `tx_chunk`.
    rx_chunk: Vec<Option<u64>>,
    /// Live Tx chunks by base pfn.
    chunks: PfnMap<ChunkCarver>,
    /// Deferred mode: unmapped-but-not-yet-invalidated page count.
    deferred_pending: u32,
    deferred_threshold: u32,
    /// Pinned-pool modes (HugepagePinned / DamnRecycle): permanently mapped
    /// buffer slots recycled without unmap or invalidation, one pool per
    /// protection domain (a pinned buffer must never migrate tenants).
    pinned_free: Vec<std::collections::VecDeque<DescriptorPage>>,
    /// Physical backing for pinned hugepages, carved from a reserved region
    /// above the frame allocator's range (contiguous 2 MB-aligned frames).
    next_pinned_pfn: u64,
    /// Recycled 2 MB physical regions for the strict huge-Rx mode
    /// (FnsHugeStrict): base pfns of free 2 MB-aligned frame runs, one
    /// recycle list per protection domain.
    huge_frames: Vec<Vec<u64>>,
    /// Multi-domain frame quarantine: frames freed by a domain are parked
    /// on that domain's list and preferentially re-allocated to the same
    /// domain, so a frame never migrates tenants while a (legitimately)
    /// deferred stale IOTLB entry could still reach it. Empty (bypassed)
    /// in single-domain topologies — the global [`FrameAllocator`] then
    /// behaves exactly as before.
    quarantine: Vec<Vec<u64>>,
    /// PTcache wipes queued by full-scope invalidations, drained interleaved
    /// with translations. On real hardware the invalidation descriptors
    /// retire concurrently with the NIC's ongoing DMA walks, so each wipe
    /// lands *between* walks; executing them as one atomic batch per
    /// descriptor (as a naive model would) understates the collision rate
    /// between wipes and walks that drives the paper's PTcache-L3 misses.
    /// The IOTLB-entry invalidation itself is always synchronous, so the
    /// strict safety property is unaffected.
    ///
    /// Stored as a flat pending ring — requests in submission order plus a
    /// parallel ring of per-epoch lengths — so queueing an epoch is a few
    /// `Copy` pushes and retiring one is a run of front pops, with no
    /// per-epoch vector to pool or chase.
    pending_wipe_reqs: std::collections::VecDeque<InvalidationRequest>,
    /// Epoch boundaries in [`DmaDriver::pending_wipe_reqs`]: entry `i` is
    /// the length of the `i`-th oldest un-retired epoch.
    pending_wipe_epochs: std::collections::VecDeque<u32>,
    /// Scratch buffer handing a retired epoch to the audit hook as a slice.
    epoch_scratch: Vec<InvalidationRequest>,
    /// Coalesce per-page invalidation submissions into one ring pass (see
    /// [`DmaDriver::submit_per_page_invalidations`]). Default on; the
    /// per-call loop survives behind the switch as the reference for the
    /// golden-determinism coalesced-vs-per-event pin.
    coalesce_inv_drain: bool,
    /// Recycled descriptor-page vectors (from completed Rx descriptors and
    /// Tx packets), reused by `prepare_rx_descriptor`/`tx_map`.
    page_pool: Vec<Vec<DescriptorPage>>,
    /// Scratch invalidation-request buffer for the completion paths.
    req_scratch: Vec<InvalidationRequest>,
    /// Scratch reclaimed-PT-page buffer for the completion paths.
    reclaim_scratch: Vec<fns_iommu::ReclaimedPage>,
    /// Locality trace of allocated/mapped IOVAs (PT-L4 page keys), the
    /// measurement behind Figures 2e/3e/7e/8e.
    pub locality: ReuseDistance,
    locality_cap: usize,
    locality_recording: bool,
    /// Total CPU ns spent waiting on the invalidation queue (a subset of
    /// `map_cpu_ns`, whole-run). Equals `spans.invalidation_ns()`.
    pub invalidation_cpu_ns: Nanos,
    /// Total driver datapath CPU ns — allocation, map/unmap, *and*
    /// invalidation waits (whole-run). Equals `spans.total_ns()`.
    pub map_cpu_ns: Nanos,
    /// Disjoint CPU attribution of the same charges (alloc / map / unmap /
    /// invalidation-wait / completion / recovery).
    pub spans: SpanSet,
    /// Deferred-mode flushes executed.
    pub deferred_flushes: u64,
    /// Fault-injection plane for the driver-side sites (descriptor
    /// preparation, frame/IOVA allocation, invalidation submission).
    /// Disabled by default; the simulation installs a seeded plane.
    faults: FaultPlane,
    /// Telemetry recorder handle (off by default; ~0 cost when off).
    trace: TraceHandle,
    /// Safety-oracle handle (off by default; ~0 cost when off).
    audit: AuditHandle,
    /// Causal observability plane (provenance/txn/registry); off by
    /// default, shared with the simulation when armed.
    obs: ObsHandle,
    /// Seeded test-only bug (always `None` outside the oracle corpus).
    sabotage: Sabotage,
    /// Whole-run ordinal of submitted invalidation requests, the
    /// coordinate system for [`Sabotage::SkipRangeInvalidation`].
    inv_submit_seq: u64,
    /// Whole-run ordinal of successful map operations, the coordinate
    /// system for [`Sabotage::CrossDomainLeak`]. Only advanced while that
    /// sabotage is armed, so unsabotaged runs stay bit-identical.
    map_ops: u64,
    next_desc_id: u64,
}

impl DmaDriver {
    /// Creates a driver for `cores` cores in the given mode.
    pub fn new(
        mode: ProtectionMode,
        cores: usize,
        iommu_cfg: IommuConfig,
        costs: CpuCosts,
        deferred_threshold: u32,
        locality_cap: usize,
    ) -> Self {
        Self::with_descriptor_pages(
            mode,
            cores,
            iommu_cfg,
            costs,
            deferred_threshold,
            locality_cap,
            64,
        )
    }

    /// Like [`DmaDriver::new`] with an explicit Rx descriptor size in pages.
    #[allow(clippy::too_many_arguments)]
    pub fn with_descriptor_pages(
        mode: ProtectionMode,
        cores: usize,
        iommu_cfg: IommuConfig,
        costs: CpuCosts,
        deferred_threshold: u32,
        locality_cap: usize,
        rx_desc_pages: u64,
    ) -> Self {
        Self::with_descriptor_pages_in(
            mode,
            cores,
            iommu_cfg,
            costs,
            deferred_threshold,
            locality_cap,
            rx_desc_pages,
            None,
        )
    }

    /// Like [`DmaDriver::with_descriptor_pages`], optionally rebuilding on
    /// top of storage salvaged from a previous run. The resulting driver is
    /// behaviorally identical to a freshly constructed one — salvaged
    /// components are rewound to their as-new state, only their heap
    /// storage survives.
    #[allow(clippy::too_many_arguments)]
    pub fn with_descriptor_pages_in(
        mode: ProtectionMode,
        cores: usize,
        iommu_cfg: IommuConfig,
        costs: CpuCosts,
        deferred_threshold: u32,
        locality_cap: usize,
        rx_desc_pages: u64,
        salvage: Option<DriverSalvage>,
    ) -> Self {
        let domains = iommu_cfg.domains.max(1);
        // The quarantine only exists in multi-domain topologies; with one
        // domain the global frame allocator's exact legacy behaviour (and
        // bit-identical RNG/metric trajectory) is preserved.
        let quarantine_domains = if domains > 1 { domains as usize } else { 0 };
        let parts = match salvage {
            Some(mut s) => {
                s.iommu.reset(iommu_cfg);
                // 16 GB of DMA-able memory: far more than any workload needs.
                s.frames.reset(4 << 20);
                s.chunks.clear();
                for q in &mut s.pinned_free {
                    q.clear();
                }
                s.pinned_free
                    .resize_with(domains as usize, Default::default);
                for v in &mut s.huge_frames {
                    v.clear();
                }
                s.huge_frames.resize_with(domains as usize, Vec::new);
                for v in &mut s.quarantine {
                    v.clear();
                }
                s.quarantine.resize_with(quarantine_domains, Vec::new);
                s.locality.reset();
                s.req_scratch.clear();
                s.reclaim_scratch.clear();
                s.pending_wipe_reqs.clear();
                s.pending_wipe_epochs.clear();
                s
            }
            None => DriverSalvage {
                iommu: Iommu::new(iommu_cfg),
                frames: FrameAllocator::new(4 << 20),
                chunks: PfnMap::default(),
                pinned_free: vec![std::collections::VecDeque::new(); domains as usize],
                huge_frames: vec![Vec::new(); domains as usize],
                quarantine: vec![Vec::new(); quarantine_domains],
                pending_wipe_reqs: std::collections::VecDeque::new(),
                pending_wipe_epochs: std::collections::VecDeque::new(),
                page_pool: Vec::new(),
                req_scratch: Vec::new(),
                reclaim_scratch: Vec::new(),
                locality: ReuseDistance::new(),
            },
        };
        Self {
            mode,
            iommu: parts.iommu,
            alloc: CachingAllocator::with_defaults(cores),
            frames: parts.frames,
            invq: InvalidationQueue::default(),
            costs,
            rx_desc_pages,
            cores,
            domains,
            tx_chunk: vec![None; cores * domains as usize],
            rx_chunk: vec![None; cores * domains as usize],
            chunks: parts.chunks,
            deferred_pending: 0,
            deferred_threshold,
            pinned_free: parts.pinned_free,
            // Above the 16 GB frame-allocator range, 2 MB aligned.
            next_pinned_pfn: 8 << 20,
            huge_frames: parts.huge_frames,
            quarantine: parts.quarantine,
            pending_wipe_reqs: parts.pending_wipe_reqs,
            pending_wipe_epochs: parts.pending_wipe_epochs,
            epoch_scratch: Vec::new(),
            coalesce_inv_drain: true,
            page_pool: parts.page_pool,
            req_scratch: parts.req_scratch,
            reclaim_scratch: parts.reclaim_scratch,
            locality: parts.locality,
            locality_cap,
            locality_recording: true,
            invalidation_cpu_ns: 0,
            map_cpu_ns: 0,
            spans: SpanSet::default(),
            deferred_flushes: 0,
            faults: FaultPlane::disabled(),
            trace: TraceHandle::default(),
            audit: AuditHandle::default(),
            obs: ObsHandle::default(),
            sabotage: Sabotage::None,
            inv_submit_seq: 0,
            map_ops: 0,
            next_desc_id: 0,
        }
    }

    /// Tears the driver down into its reusable storage (see
    /// [`DriverSalvage`]). Outstanding wipe epochs are discarded with the
    /// run; the ring storage itself survives.
    pub fn salvage(self) -> DriverSalvage {
        DriverSalvage {
            iommu: self.iommu,
            frames: self.frames,
            chunks: self.chunks,
            pinned_free: self.pinned_free,
            huge_frames: self.huge_frames,
            quarantine: self.quarantine,
            pending_wipe_reqs: self.pending_wipe_reqs,
            pending_wipe_epochs: self.pending_wipe_epochs,
            page_pool: self.page_pool,
            req_scratch: self.req_scratch,
            reclaim_scratch: self.reclaim_scratch,
            locality: self.locality,
        }
    }

    /// The active protection mode.
    pub fn mode(&self) -> ProtectionMode {
        self.mode
    }

    /// Protection domains sharing the IOMMU (1 = legacy single device).
    pub fn domains(&self) -> u16 {
        self.domains
    }

    /// Installs a fault-injection plane for the driver-side sites. The
    /// plane must own its own RNG stream (fork one from the experiment
    /// seed) so enabling faults never perturbs the workload trajectory.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.faults = plane;
        self.faults.set_trace(self.trace.clone());
    }

    /// Attaches the telemetry recorder. Events emitted before this call
    /// (init-time churn) are not recorded, matching the fault-plane
    /// install ordering.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
        self.faults.set_trace(self.trace.clone());
    }

    /// Installs the safety-oracle handle. Unlike the fault and trace
    /// planes, the oracle is installed *before* `init()` so it observes
    /// init-time mappings; otherwise steady-state accesses to init-mapped
    /// pages would read as never-mapped violations.
    pub fn set_audit(&mut self, audit: AuditHandle) {
        self.audit = audit;
    }

    /// The driver's safety-oracle handle (report access; off by default).
    pub fn audit(&self) -> &AuditHandle {
        &self.audit
    }

    /// Attaches the causal observability plane. Like the trace plane it
    /// is installed after `init()`: provenance timelines start at
    /// steady-state, not with init-time churn.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Arms a seeded test-only driver bug for the oracle corpus. Never
    /// called outside tests; see [`Sabotage`].
    #[doc(hidden)]
    pub fn set_sabotage(&mut self, sabotage: Sabotage) {
        self.sabotage = sabotage;
    }

    /// The driver's fault plane (stats/log access).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Mutable access to the driver's fault plane (probe accounting).
    pub fn faults_mut(&mut self) -> &mut FaultPlane {
        &mut self.faults
    }

    /// Ages the IOVA allocator to the shuffled steady state of a
    /// long-running system.
    ///
    /// The paper measures hosts whose per-core IOVA caches have been churned
    /// by hours of traffic: magazine contents no longer correspond to
    /// address order, so a descriptor's 64 page-at-a-time allocations land
    /// on many distinct PT-L4 pages (Figures 2e/3e). A fresh simulation
    /// would start with a pristine, perfectly compact allocator and
    /// understate those misses, so experiments fast-forward by allocating
    /// `pages` single-page IOVAs round-robin across cores and freeing them
    /// in seeded-random order to random cores. Contiguous (F&S) modes are
    /// structurally immune — their 64-page chunk allocations bypass the
    /// per-core caches — but the aging is applied in every mode for
    /// fairness.
    pub fn age_allocator(&mut self, rng: &mut fns_sim::rng::SimRng, pages: u64) {
        if self.mode == ProtectionMode::IommuOff {
            return;
        }
        let cores = self.cores;
        let mut live: Vec<IovaRange> = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let r = self
                .alloc
                .alloc(1, (i as usize) % cores)
                .expect("IOVA space exhausted during aging");
            self.audit.on_alloc(r);
            live.push(r);
        }
        // Fisher-Yates shuffle of the free order.
        for i in (1..live.len()).rev() {
            let j = rng.index(i + 1);
            live.swap(i, j);
        }
        for r in live {
            self.audit.on_free(r);
            self.alloc.free(r, rng.index(cores));
        }
    }

    /// Read access to the IOVA allocator (tests/metrics).
    pub fn allocator(&self) -> &CachingAllocator {
        &self.alloc
    }

    /// Read access to the frame allocator.
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// Pops a recycled (cleared) page vector, or allocates one sized `cap`.
    fn take_page_vec(&mut self, cap: usize) -> Vec<DescriptorPage> {
        self.page_pool
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(cap))
    }

    /// Returns a completed packet's page vector to the pool so the next
    /// `prepare_rx_descriptor`/`tx_map` call reuses its storage.
    pub fn recycle_pages(&mut self, mut pages: Vec<DescriptorPage>) {
        if self.page_pool.len() < POOL_CAP {
            pages.clear();
            self.page_pool.push(pages);
        }
    }

    /// Recycles a completed Rx descriptor's page storage.
    pub fn recycle_descriptor(&mut self, desc: Descriptor) {
        self.recycle_pages(desc.into_pages());
    }

    /// Enables or disables the coalesced per-page invalidation drain
    /// (default on). Off routes completions through the legacy
    /// one-`submit_invalidations`-call-per-page loop; results are
    /// bit-identical either way (`tests/golden_determinism.rs` pins it).
    pub fn set_coalesce_inv_drain(&mut self, on: bool) {
        self.coalesce_inv_drain = on;
    }

    /// Submits one invalidation *epoch*: IOTLB entries are removed
    /// synchronously (the unmap path waits for them — the strict safety
    /// property), while the requests' PTcache wipes queue as a single unit
    /// that retires between two later walks. Requests submitted back to
    /// back in one tight loop (a descriptor's 64 per-page invalidations)
    /// retire together, because the hardware drains the queue far faster
    /// than one walk interval; requests from separate driver calls retire
    /// separately.
    ///
    /// `per_call_sync` charges one queue synchronization per request — what
    /// stock Linux pays when every `dma_unmap` waits individually — versus
    /// one synchronization for the whole batch (F&S's batched invalidation).
    /// Returns the CPU wait.
    fn submit_invalidations(&mut self, reqs: &[InvalidationRequest], per_call_sync: bool) -> Nanos {
        if reqs.is_empty() {
            return 0;
        }
        let epoch_mark = self.pending_wipe_reqs.len();
        for r in reqs {
            self.inv_submit_seq += 1;
            if let Sabotage::SkipRangeInvalidation { nth } = self.sabotage {
                if nth == self.inv_submit_seq {
                    self.obs
                        .on_inv_skipped(r.range.pfn_lo(), r.range.pages(), self.inv_submit_seq);
                    continue;
                }
            }
            if self.sabotage == Sabotage::SkipDomainScopedInvalidation && r.domain != 0 {
                self.obs
                    .on_inv_skipped(r.range.pfn_lo(), r.range.pages(), self.inv_submit_seq);
                continue;
            }
            self.iommu
                .invalidate_range_in(r.domain, r.range, InvalidationScope::IotlbOnly);
            self.audit.on_invalidate(r.domain, r.range);
            self.obs
                .on_inv_submit(r.range.pfn_lo(), r.range.pages(), self.inv_submit_seq);
            if r.scope != InvalidationScope::IotlbOnly {
                self.pending_wipe_reqs.push_back(*r);
            }
        }
        let queued = self.pending_wipe_reqs.len() - epoch_mark;
        if queued > 0 {
            self.audit.on_wipe_queued();
            self.pending_wipe_epochs.push_back(queued as u32);
        }
        self.iommu.note_queue_entries(reqs.len() as u64);
        // Backstop: if translations stall, retire wipes in bulk rather than
        // letting the queue grow without bound.
        while self.pending_wipe_epochs.len() > 1024 {
            self.retire_front_epoch();
        }
        // Differential cross-check: no request submitted above may leave a
        // live IOTLB entry (the sabotaged one deliberately does).
        if self.audit.is_on() {
            for r in reqs {
                self.audit
                    .crosscheck_invalidated(r.domain, &self.iommu, r.range);
            }
        }
        // The IOTLB entries are gone at this point in *every* outcome below
        // (the strict safety property never rides on the happy path); what
        // remains is how long the submitting core waits on the queue.
        let mut fallback_retries = None;
        let cost = if per_call_sync {
            self.invq.cost_ns(1) * reqs.len() as Nanos
        } else if self.faults.is_enabled() {
            // Fault-aware path: the queue sync may stall (injected
            // InvalidationTimeout). The recovery ladder retries with
            // exponential backoff and degrades the batch to per-page
            // replay if the stall persists; the replay re-applies the
            // (idempotent) IOTLB invalidations page by page.
            let iotlb_only: Vec<InvalidationRequest> = reqs
                .iter()
                .map(|r| InvalidationRequest {
                    range: r.range,
                    scope: InvalidationScope::IotlbOnly,
                    domain: r.domain,
                })
                .collect();
            let report = self
                .invq
                .execute_with(&mut self.iommu, &iotlb_only, &mut self.faults);
            if report.per_page_fallback {
                fallback_retries = Some(report.retries);
            }
            report.cost_ns
        } else {
            self.invq.cost_ns(reqs.len())
        };
        // Span split: the fault-free wait is InvalidationWait; anything
        // beyond it (retry backoff, per-page replay) is Recovery.
        let base = if per_call_sync {
            cost
        } else {
            self.invq.cost_ns(reqs.len())
        };
        self.spans.charge(Span::InvalidationWait, base.min(cost));
        self.spans.charge(Span::Recovery, cost.saturating_sub(base));
        self.invalidation_cpu_ns += cost;
        if self.trace.wants(TraceCategory::Invalidation) {
            self.trace.emit(TraceData::InvEnqueue {
                entries: reqs.len() as u32,
                cost_ns: cost,
            });
            if let Some(retries) = fallback_retries {
                self.trace.emit(TraceData::InvBatchFallback { retries });
            }
        }
        cost
    }

    /// Coalesced drain of one completion's per-page invalidations:
    /// observationally bit-identical to calling
    /// [`DmaDriver::submit_invalidations`] once per request with
    /// `per_call_sync` — each page still pays its own queue
    /// synchronization, still audits/traces in the same order, and still
    /// retires as its own epoch — but executed as one pass over the flat
    /// pending ring with no per-call bookkeeping. Returns the CPU wait.
    fn submit_per_page_invalidations(&mut self, reqs: &[InvalidationRequest]) -> Nanos {
        if reqs.is_empty() {
            return 0;
        }
        if !self.coalesce_inv_drain {
            // Reference path for the golden-determinism pin.
            let mut cpu = 0;
            for r in reqs {
                cpu += self.submit_invalidations(std::slice::from_ref(r), true);
            }
            return cpu;
        }
        let per_cost = self.invq.cost_ns(1);
        let tracing = self.trace.wants(TraceCategory::Invalidation);
        let audit_on = self.audit.is_on();
        for r in reqs {
            self.inv_submit_seq += 1;
            let sabotaged = matches!(
                self.sabotage,
                Sabotage::SkipRangeInvalidation { nth } if nth == self.inv_submit_seq
            ) || (self.sabotage == Sabotage::SkipDomainScopedInvalidation
                && r.domain != 0);
            if !sabotaged {
                self.iommu
                    .invalidate_range_in(r.domain, r.range, InvalidationScope::IotlbOnly);
                self.audit.on_invalidate(r.domain, r.range);
                self.obs
                    .on_inv_submit(r.range.pfn_lo(), r.range.pages(), self.inv_submit_seq);
                if r.scope != InvalidationScope::IotlbOnly {
                    self.pending_wipe_reqs.push_back(*r);
                    self.audit.on_wipe_queued();
                    self.pending_wipe_epochs.push_back(1);
                }
            } else {
                self.obs
                    .on_inv_skipped(r.range.pfn_lo(), r.range.pages(), self.inv_submit_seq);
            }
            self.iommu.note_queue_entries(1);
            while self.pending_wipe_epochs.len() > 1024 {
                self.retire_front_epoch();
            }
            if audit_on {
                self.audit
                    .crosscheck_invalidated(r.domain, &self.iommu, r.range);
            }
            if tracing {
                self.trace.emit(TraceData::InvEnqueue {
                    entries: 1,
                    cost_ns: per_cost,
                });
            }
        }
        let cost = per_cost * reqs.len() as Nanos;
        self.spans.charge(Span::InvalidationWait, cost);
        self.invalidation_cpu_ns += cost;
        cost
    }

    fn apply_request(iommu: &mut Iommu, r: &InvalidationRequest) {
        match r.scope {
            InvalidationScope::IotlbOnly => {}
            InvalidationScope::IotlbAndLeafPtcache => {
                iommu.invalidate_ptcache_leaf_in(r.domain, r.range);
            }
            InvalidationScope::IotlbAndFullPtcache => {
                iommu.invalidate_ptcache_leaf_in(r.domain, r.range);
                iommu.invalidate_ptcache_upper_in(r.domain, r.range);
            }
        }
    }

    /// Pops the oldest pending epoch off the ring and applies its wipes.
    /// The audit hook needs the epoch as a slice; the scratch copy is only
    /// built when auditing is on.
    fn retire_front_epoch(&mut self) {
        let n = self
            .pending_wipe_epochs
            .pop_front()
            .expect("non-empty epoch ring") as usize;
        if self.audit.is_on() {
            self.epoch_scratch.clear();
            for _ in 0..n {
                let r = self
                    .pending_wipe_reqs
                    .pop_front()
                    .expect("request ring holds every queued epoch");
                Self::apply_request(&mut self.iommu, &r);
                self.obs
                    .on_inv_complete(r.range.pfn_lo(), r.range.pages(), n as u64);
                self.epoch_scratch.push(r);
            }
            self.audit.on_wipe_applied(&self.epoch_scratch);
        } else {
            for _ in 0..n {
                let r = self
                    .pending_wipe_reqs
                    .pop_front()
                    .expect("request ring holds every queued epoch");
                Self::apply_request(&mut self.iommu, &r);
                self.obs
                    .on_inv_complete(r.range.pfn_lo(), r.range.pages(), n as u64);
            }
        }
    }

    /// Retires up to `max` queued PTcache wipe epochs (called by the
    /// datapath between translations).
    pub fn drain_ptcache_wipes(&mut self, max: usize) {
        let drained = max.min(self.pending_wipe_epochs.len()) as u32;
        for _ in 0..drained {
            self.retire_front_epoch();
        }
        if drained > 0 {
            self.trace.emit(TraceData::InvDrain { epochs: drained });
        }
    }

    /// Queued-but-unretired PTcache wipe epochs (test helper).
    pub fn pending_wipes(&self) -> usize {
        self.pending_wipe_epochs.len()
    }

    /// Watchdog degradation hook (rung 2): collapses deferred-mode
    /// invalidation batching to per-page by dropping the flush threshold
    /// to 1 — every subsequent unmap flushes immediately, trading the
    /// batching throughput win for a minimal stale window. Returns whether
    /// anything changed (strict modes, already at threshold 1 or never
    /// deferring, report `false`). Irreversible for the rest of the run.
    pub fn force_per_page_invalidation(&mut self) -> bool {
        if self.deferred_threshold <= 1 {
            return false;
        }
        self.deferred_threshold = 1;
        true
    }

    fn snap_request(w: &mut fns_snap::SnapWriter, r: &InvalidationRequest) {
        w.u64(r.range.base().as_u64());
        w.u64(r.range.pages());
        w.u8(match r.scope {
            InvalidationScope::IotlbOnly => 0,
            InvalidationScope::IotlbAndLeafPtcache => 1,
            InvalidationScope::IotlbAndFullPtcache => 2,
        });
        w.u64(r.domain as u64);
    }

    fn unsnap_request(
        r: &mut fns_snap::SnapReader,
    ) -> Result<InvalidationRequest, fns_snap::SnapError> {
        let base = Iova::new(r.u64()?);
        let pages = r.u64()?;
        let scope = match r.u8()? {
            0 => InvalidationScope::IotlbOnly,
            1 => InvalidationScope::IotlbAndLeafPtcache,
            2 => InvalidationScope::IotlbAndFullPtcache,
            t => {
                return Err(fns_snap::SnapError::BadTag {
                    what: "invalidation scope",
                    tag: t as u64,
                })
            }
        };
        let domain = r.u64()? as u16;
        Ok(InvalidationRequest {
            range: IovaRange::new(base, pages),
            scope,
            domain,
        })
    }

    /// Serializes the full driver state for checkpointing. Scratch pools
    /// (`page_pool`, `req_scratch`, `reclaim_scratch`, `epoch_scratch`) are
    /// not serialized — they are behaviorally invisible storage caches and
    /// come back empty. The trace/audit/fault planes' *handles* are also
    /// excluded: the simulation owns those and reattaches them on restore.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        self.iommu.snap(w);
        self.alloc.snap(w);
        self.frames.snap(w);
        w.u64(self.rx_desc_pages);
        w.seq(self.tx_chunk.len());
        for slot in &self.tx_chunk {
            w.opt(slot, |w, &b| w.u64(b));
        }
        w.seq(self.rx_chunk.len());
        for slot in &self.rx_chunk {
            w.opt(slot, |w, &b| w.u64(b));
        }
        let mut bases: Vec<u64> = self.chunks.keys().copied().collect();
        bases.sort_unstable();
        w.seq(bases.len());
        for base in bases {
            w.u64(base);
            self.chunks[&base].snap(w);
        }
        w.u32(self.deferred_pending);
        w.u32(self.deferred_threshold);
        w.seq(self.pinned_free.len());
        for pool in &self.pinned_free {
            w.seq(pool.len());
            for p in pool {
                w.u64(p.iova.as_u64());
                w.u64(p.pa.as_u64());
            }
        }
        w.u64(self.next_pinned_pfn);
        w.seq(self.huge_frames.len());
        for v in &self.huge_frames {
            w.u64_slice(v);
        }
        w.seq(self.quarantine.len());
        for v in &self.quarantine {
            w.u64_slice(v);
        }
        // The flat pending ring serializes as (epoch lengths, then the
        // requests in submission order); both rings restore exactly.
        w.seq(self.pending_wipe_epochs.len());
        for &len in &self.pending_wipe_epochs {
            w.u32(len);
        }
        w.seq(self.pending_wipe_reqs.len());
        for req in &self.pending_wipe_reqs {
            Self::snap_request(w, req);
        }
        self.locality.snap(w);
        w.usize(self.locality_cap);
        w.bool(self.locality_recording);
        w.u64(self.invalidation_cpu_ns);
        w.u64(self.map_cpu_ns);
        self.spans.snap(w);
        w.u64(self.deferred_flushes);
        self.faults.snap(w);
        match self.sabotage {
            Sabotage::None => w.u8(0),
            Sabotage::SkipRangeInvalidation { nth } => {
                w.u8(1);
                w.u64(nth);
            }
            Sabotage::SkipReclaimFixup => w.u8(2),
            Sabotage::SkipDeferredFlush => w.u8(3),
            Sabotage::CrossDomainLeak { nth } => {
                w.u8(4);
                w.u64(nth);
            }
            Sabotage::SkipDomainScopedInvalidation => w.u8(5),
        }
        w.u64(self.inv_submit_seq);
        w.u64(self.map_ops);
        w.u64(self.next_desc_id);
    }

    /// Rebuilds a driver captured by [`DmaDriver::snap`]. `mode`, `costs`,
    /// and `fault_cfg` come from the (caller-validated) run configuration;
    /// everything stateful comes from the snapshot. The trace and audit
    /// handles come back `Off` — reattach with [`DmaDriver::set_trace`] /
    /// [`DmaDriver::set_audit`].
    pub fn unsnap(
        r: &mut fns_snap::SnapReader,
        mode: ProtectionMode,
        costs: CpuCosts,
        fault_cfg: fns_faults::FaultConfig,
    ) -> Result<Self, fns_snap::SnapError> {
        let iommu = Iommu::unsnap(r)?;
        let alloc = CachingAllocator::unsnap(r)?;
        let frames = FrameAllocator::unsnap(r)?;
        let rx_desc_pages = r.u64()?;
        let n = r.seq()?;
        let mut tx_chunk = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            tx_chunk.push(r.opt(|r| r.u64())?);
        }
        let n = r.seq()?;
        let mut rx_chunk = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            rx_chunk.push(r.opt(|r| r.u64())?);
        }
        let n = r.seq()?;
        let mut chunks = PfnMap::default();
        for _ in 0..n {
            let base = r.u64()?;
            chunks.insert(base, ChunkCarver::unsnap(r)?);
        }
        let deferred_pending = r.u32()?;
        let deferred_threshold = r.u32()?;
        let n = r.seq()?;
        let mut pinned_free = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            let len = r.seq()?;
            let mut pool = std::collections::VecDeque::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                let iova = Iova::new(r.u64()?);
                let pa = PhysAddr::new(r.u64()?);
                pool.push_back(DescriptorPage { iova, pa });
            }
            pinned_free.push(pool);
        }
        let next_pinned_pfn = r.u64()?;
        let n = r.seq()?;
        let mut huge_frames = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            huge_frames.push(r.u64_vec()?);
        }
        let n = r.seq()?;
        let mut quarantine = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            quarantine.push(r.u64_vec()?);
        }
        let n = r.seq()?;
        let mut pending_wipe_epochs = std::collections::VecDeque::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            pending_wipe_epochs.push_back(r.u32()?);
        }
        let n = r.seq()?;
        let mut pending_wipe_reqs = std::collections::VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            pending_wipe_reqs.push_back(Self::unsnap_request(r)?);
        }
        let locality = ReuseDistance::unsnap(r)?;
        let locality_cap = r.usize()?;
        let locality_recording = r.bool()?;
        let invalidation_cpu_ns = r.u64()?;
        let map_cpu_ns = r.u64()?;
        let spans = SpanSet::unsnap(r)?;
        let deferred_flushes = r.u64()?;
        let faults = FaultPlane::unsnap(fault_cfg, r)?;
        let sabotage = match r.u8()? {
            0 => Sabotage::None,
            1 => Sabotage::SkipRangeInvalidation { nth: r.u64()? },
            2 => Sabotage::SkipReclaimFixup,
            3 => Sabotage::SkipDeferredFlush,
            4 => Sabotage::CrossDomainLeak { nth: r.u64()? },
            5 => Sabotage::SkipDomainScopedInvalidation,
            t => {
                return Err(fns_snap::SnapError::BadTag {
                    what: "sabotage",
                    tag: t as u64,
                })
            }
        };
        let inv_submit_seq = r.u64()?;
        let map_ops = r.u64()?;
        let next_desc_id = r.u64()?;
        let domains = iommu.domains().max(1);
        let cores = tx_chunk.len() / domains as usize;
        Ok(Self {
            mode,
            iommu,
            alloc,
            frames,
            invq: InvalidationQueue::default(),
            costs,
            rx_desc_pages,
            cores,
            domains,
            tx_chunk,
            rx_chunk,
            chunks,
            deferred_pending,
            deferred_threshold,
            pinned_free,
            next_pinned_pfn,
            huge_frames,
            quarantine,
            pending_wipe_reqs,
            pending_wipe_epochs,
            epoch_scratch: Vec::new(),
            coalesce_inv_drain: true,
            page_pool: Vec::new(),
            req_scratch: Vec::new(),
            reclaim_scratch: Vec::new(),
            locality,
            locality_cap,
            locality_recording,
            invalidation_cpu_ns,
            map_cpu_ns,
            spans,
            deferred_flushes,
            faults,
            trace: TraceHandle::default(),
            audit: AuditHandle::default(),
            obs: ObsHandle::default(),
            sabotage,
            inv_submit_seq,
            map_ops,
            next_desc_id,
        })
    }

    /// Enables/disables locality-trace recording (off during init-time
    /// aging churn so the trace reflects steady state only).
    pub fn set_locality_recording(&mut self, on: bool) {
        self.locality_recording = on;
    }

    fn record_locality(&mut self, iova: Iova) {
        if self.locality_recording && self.locality.len() < self.locality_cap {
            self.locality.access(iova.l4_page_key());
        }
    }

    /// CPU cost of allocator activity since `before` (tree ops are an order
    /// of magnitude pricier than magazine hits).
    fn alloc_cost_since(&self, before: AllocStats) -> Nanos {
        let after = self.alloc.stats();
        let total = (after.allocs - before.allocs) + (after.frees - before.frees);
        let tree =
            (after.tree_allocs - before.tree_allocs) + (after.tree_frees - before.tree_frees);
        let cached = total - tree.min(total);
        tree * self.costs.alloc_tree_ns + cached * self.costs.alloc_cache_ns
    }

    /// Allocates an IOVA range, surfacing exhaustion (real or injected) as
    /// a typed error instead of panicking.
    fn alloc_iova(&mut self, pages: u64, core: usize) -> Result<IovaRange, DmaError> {
        if self.faults.roll(FaultKind::IovaExhaustion) {
            return Err(AllocError::Injected.into());
        }
        let r = self
            .alloc
            .alloc(pages, core)
            .ok_or(AllocError::Exhausted { pages })?;
        self.audit.on_alloc(r);
        Ok(r)
    }

    /// Allocates a physical frame for `d` under fault injection. In
    /// multi-domain topologies the domain's quarantine list is drained
    /// first, so recycled frames stay within the tenant that freed them;
    /// the global allocator only hands out frames no other domain has
    /// touched (or has fully relinquished through the single-domain path).
    fn alloc_frame_in(&mut self, d: u16) -> Result<PhysAddr, DmaError> {
        if let Some(q) = self.quarantine.get_mut(d as usize) {
            if let Some(pfn) = q.pop() {
                return Ok(PhysAddr::from_pfn(pfn));
            }
        }
        Ok(self.frames.alloc_with(&mut self.faults)?)
    }

    /// Returns a frame freed by `d`. Single-domain: straight back to the
    /// global allocator (exact legacy behaviour). Multi-domain: parked on
    /// the domain's quarantine list — unless
    /// [`Sabotage::SkipDomainScopedInvalidation`] is armed and `d` is a
    /// non-zero domain, which leaks the frame to the global pool where
    /// another tenant can pick it up while `d`'s stale IOTLB entries still
    /// point at it.
    fn free_frame_in(&mut self, d: u16, pa: PhysAddr) -> Result<(), DmaError> {
        if self.quarantine.is_empty()
            || (self.sabotage == Sabotage::SkipDomainScopedInvalidation && d != 0)
        {
            self.frames.free(pa)?;
            return Ok(());
        }
        self.quarantine[d as usize].push(pa.pfn());
        Ok(())
    }

    /// Takes `n` buffer slots from `d`'s pinned pool, growing it as needed
    /// (pinned-pool modes only). On failure the pool keeps whatever growth
    /// already landed — slots are never leaked, only deferred.
    fn take_pinned(
        &mut self,
        d: u16,
        core: usize,
        n: usize,
    ) -> Result<Vec<DescriptorPage>, DmaError> {
        while self.pinned_free[d as usize].len() < n {
            self.grow_pinned(d, core)?;
        }
        let mut slots = self.take_page_vec(n);
        slots.extend(self.pinned_free[d as usize].drain(..n));
        Ok(slots)
    }

    fn grow_pinned(&mut self, d: u16, core: usize) -> Result<(), DmaError> {
        match self.mode {
            ProtectionMode::HugepagePinned => {
                // One 2 MB hugepage: a 512-page aligned IOVA chunk mapped to
                // 2 MB of contiguous reserved physical memory.
                let chunk = self.alloc_iova(HUGE_PAGES, core)?;
                let pa_base = PhysAddr::from_pfn(self.next_pinned_pfn);
                self.next_pinned_pfn += HUGE_PAGES;
                self.iommu.map_huge_in(d, chunk.base(), pa_base)?;
                self.audit.on_map_huge(d, chunk.base(), pa_base);
                for i in 0..HUGE_PAGES {
                    self.pinned_free[d as usize].push_back(DescriptorPage {
                        iova: chunk.page(i),
                        pa: pa_base.add(i << 12),
                    });
                }
            }
            ProtectionMode::DamnRecycle => {
                // DAMN grows its pre-mapped pool 64 pages at a time through
                // the ordinary allocator + 4 KB mappings.
                for _ in 0..64 {
                    let pa = self.alloc_frame_in(d)?;
                    let r = match self.alloc_iova(1, core) {
                        Ok(r) => r,
                        Err(e) => {
                            // Return the orphaned frame before bailing.
                            self.free_frame_in(d, pa).expect("fresh frame refused");
                            return Err(e);
                        }
                    };
                    self.iommu.map_in(d, r.base(), pa)?;
                    self.audit.on_map(d, r.base(), pa);
                    self.pinned_free[d as usize].push_back(DescriptorPage { iova: r.base(), pa });
                }
            }
            _ => unreachable!("pinned pool used by pool modes only"),
        }
        Ok(())
    }

    /// Releases one page-sized IOVA back to the allocator, honouring the
    /// chunk-retirement bookkeeping of contiguous modes. The error path
    /// reports structural double-free/unknown-chunk conditions.
    fn release_iova_page(&mut self, iova: Iova, core: usize) -> Result<(), DmaError> {
        if self.mode.contiguous_iova() {
            let base = iova.pfn() & !(TX_CHUNK_PAGES - 1);
            let range = IovaRange::new(iova, 1);
            let done = self
                .chunks
                .get_mut(&base)
                .ok_or(DmaError::Iova(AllocError::UnbalancedFree { range }))?
                .note_unmapped();
            if done {
                let chunk = self.chunks.remove(&base).expect("chunk vanished");
                // A core may still point at this chunk as its carving
                // target (retirement can race ahead on the completion
                // core); clear the pointer so it is not dereferenced.
                for slot in self.tx_chunk.iter_mut().chain(self.rx_chunk.iter_mut()) {
                    if *slot == Some(base) {
                        *slot = None;
                    }
                }
                self.alloc.try_free(chunk.range(), core)?;
                self.audit.on_free(chunk.range());
            }
        } else {
            let range = IovaRange::new(iova, 1);
            self.alloc.try_free(range, core)?;
            self.audit.on_free(range);
        }
        Ok(())
    }

    /// Rolls back pages already mapped by a multi-page operation that failed
    /// part-way: unmap, release the IOVA (with chunk bookkeeping), free the
    /// frame. The pages were never handed to the device, so nothing can have
    /// cached their translations; only reclaimed page-table pages need the
    /// preserve-mode fixup.
    fn unwind_pages(&mut self, d: u16, core: usize, pages: &[DescriptorPage]) {
        let mut reclaimed = Vec::new();
        for p in pages {
            let range = IovaRange::new(p.iova, 1);
            let out = self
                .iommu
                .unmap_range_in(d, range)
                .expect("unwinding a just-mapped page");
            self.audit.on_pt_reclaimed(d, &out.reclaimed);
            self.audit.on_unwound(d, range);
            reclaimed.extend(out.reclaimed);
            self.release_iova_page(p.iova, core)
                .expect("unwinding a just-allocated IOVA");
            self.free_frame_in(d, p.pa)
                .expect("unwinding a fresh frame");
        }
        self.iommu.invalidate_for_reclaimed_in(d, &reclaimed);
        self.audit.on_reclaim_fixup(d, &reclaimed);
    }

    /// Prepares one Rx descriptor for `core`: allocates frames, assigns
    /// IOVAs per the active mode, and installs the page-table mappings.
    /// Returns the descriptor and the CPU time spent.
    ///
    /// # Errors
    ///
    /// Fails on frame/IOVA exhaustion (real or injected) or injected
    /// descriptor-pool exhaustion. Failure is all-or-nothing: any pages
    /// mapped before the failing one are unwound, so the caller may simply
    /// retry on the next poll.
    pub fn prepare_rx_descriptor(&mut self, core: usize) -> Result<(Descriptor, Nanos), DmaError> {
        self.prepare_rx_descriptor_in(0, core)
    }

    /// [`DmaDriver::prepare_rx_descriptor`] for the device attached to
    /// protection domain `d`.
    pub fn prepare_rx_descriptor_in(
        &mut self,
        d: u16,
        core: usize,
    ) -> Result<(Descriptor, Nanos), DmaError> {
        let (desc, cpu) = self.prepare_rx_descriptor_inner(d, core)?;
        if !matches!(self.sabotage, Sabotage::None) {
            if let Some(&first) = desc.pages().first() {
                self.maybe_cross_domain_leak(d, first);
            }
        }
        if self.obs.is_on() {
            // Open the transaction span and stamp per-page Map provenance
            // (modes without live IOMMU mappings have no page lifecycle to
            // record).
            self.obs
                .txn_start(desc.id(), core as u32, desc.len() as u32, cpu);
            if !self.mode.is_pinned_pool() && self.mode != ProtectionMode::IommuOff {
                for p in desc.pages() {
                    self.obs
                        .on_map(p.iova.pfn(), 1, core as u32, self.inv_submit_seq);
                }
            }
        }
        Ok((desc, cpu))
    }

    fn prepare_rx_descriptor_inner(
        &mut self,
        d: u16,
        core: usize,
    ) -> Result<(Descriptor, Nanos), DmaError> {
        if self.faults.roll(FaultKind::DescriptorExhaustion) {
            return Err(DmaError::DescriptorExhausted);
        }
        let id = self.next_desc_id;
        self.next_desc_id += 1;
        let n = self.rx_desc_pages;
        let mut pages = self.take_page_vec(n as usize);
        if self.mode.huge_rx() {
            assert_eq!(
                n, HUGE_PAGES,
                "FnsHugeStrict needs 512-page (2 MB) descriptors"
            );
            let before = self.alloc.stats();
            let chunk = self.alloc_iova(HUGE_PAGES, core)?;
            let base_pfn = self.huge_frames[d as usize].pop().unwrap_or_else(|| {
                let b = self.next_pinned_pfn;
                self.next_pinned_pfn += HUGE_PAGES;
                b
            });
            let pa_base = PhysAddr::from_pfn(base_pfn);
            if let Err(e) = self.iommu.map_huge_in(d, chunk.base(), pa_base) {
                self.huge_frames[d as usize].push(base_pfn);
                self.audit.on_free(chunk);
                self.alloc.free(chunk, core);
                return Err(e.into());
            }
            self.audit.on_map_huge(d, chunk.base(), pa_base);
            for i in 0..HUGE_PAGES {
                let iova = chunk.page(i);
                self.record_locality(iova);
                pages.push(DescriptorPage {
                    iova,
                    pa: pa_base.add(i << 12),
                });
            }
            // One huge map per 512 pages: far cheaper than 512 4 KB maps.
            let alloc_cost = self.alloc_cost_since(before);
            let cpu = self.costs.map_ns + alloc_cost;
            self.spans.charge(Span::Map, self.costs.map_ns);
            self.spans.charge(Span::Alloc, alloc_cost);
            self.map_cpu_ns += cpu;
            self.trace.emit(TraceData::Map { pages: n as u32 });
            return Ok((Descriptor::new(id, pages), cpu));
        }
        if self.mode.is_pinned_pool() {
            self.recycle_pages(pages);
            let slots = self.take_pinned(d, core, n as usize)?;
            for s in &slots {
                self.record_locality(s.iova);
            }
            // Recycling bookkeeping only: no map, no allocation fast path.
            let cpu = n * self.costs.alloc_cache_ns / 2;
            self.spans.charge(Span::Alloc, cpu);
            self.map_cpu_ns += cpu;
            return Ok((Descriptor::new(id, slots), cpu));
        }
        if self.mode == ProtectionMode::IommuOff {
            for _ in 0..n {
                let pa = match self.alloc_frame_in(d) {
                    Ok(pa) => pa,
                    Err(e) => {
                        for p in std::mem::take(&mut pages) {
                            self.free_frame_in(d, p.pa)
                                .expect("unwinding a fresh frame");
                        }
                        return Err(e);
                    }
                };
                // Device uses physical addresses directly; the IOVA field is
                // an identity placeholder that is never translated.
                pages.push(DescriptorPage {
                    iova: Iova::from_pfn(pa.pfn()),
                    pa,
                });
            }
            return Ok((Descriptor::new(id, pages), 0));
        }
        let before = self.alloc.stats();
        let mut cpu = 0;
        if self.mode.contiguous_iova() {
            if n >= TX_CHUNK_PAGES {
                let chunk = self.alloc_iova(n, core)?;
                for i in 0..n {
                    let pa = match self.alloc_frame_in(d) {
                        Ok(pa) => pa,
                        Err(e) => {
                            // The chunk was allocated whole (not carved), so
                            // undo the page mappings and return it whole.
                            let mut reclaimed = Vec::new();
                            for p in std::mem::take(&mut pages) {
                                let r1 = IovaRange::new(p.iova, 1);
                                let out = self
                                    .iommu
                                    .unmap_range_in(d, r1)
                                    .expect("unwinding a just-mapped page");
                                self.audit.on_pt_reclaimed(d, &out.reclaimed);
                                self.audit.on_unwound(d, r1);
                                reclaimed.extend(out.reclaimed);
                                self.free_frame_in(d, p.pa)
                                    .expect("unwinding a fresh frame");
                            }
                            self.iommu.invalidate_for_reclaimed_in(d, &reclaimed);
                            self.audit.on_reclaim_fixup(d, &reclaimed);
                            self.audit.on_free(chunk);
                            self.alloc.free(chunk, core);
                            return Err(e);
                        }
                    };
                    let iova = chunk.page(i);
                    self.iommu.map_in(d, iova, pa)?;
                    self.audit.on_map(d, iova, pa);
                    self.record_locality(iova);
                    pages.push(DescriptorPage { iova, pa });
                }
            } else {
                // Small descriptors: carve contiguous pages from a chunk
                // spanning descriptors, exactly like the Tx datapath (§3).
                for _ in 0..n {
                    let pa = match self.alloc_frame_in(d) {
                        Ok(pa) => pa,
                        Err(e) => {
                            self.unwind_pages(d, core, &pages);
                            return Err(e);
                        }
                    };
                    let iova = match self.carve_page(d, core, false) {
                        Ok(iova) => iova,
                        Err(e) => {
                            self.free_frame_in(d, pa).expect("unwinding a fresh frame");
                            self.unwind_pages(d, core, &pages);
                            return Err(e);
                        }
                    };
                    self.iommu.map_in(d, iova, pa)?;
                    self.audit.on_map(d, iova, pa);
                    self.record_locality(iova);
                    pages.push(DescriptorPage { iova, pa });
                }
            }
        } else {
            for _ in 0..n {
                let pa = match self.alloc_frame_in(d) {
                    Ok(pa) => pa,
                    Err(e) => {
                        self.unwind_pages(d, core, &pages);
                        return Err(e);
                    }
                };
                let r = match self.alloc_iova(1, core) {
                    Ok(r) => r,
                    Err(e) => {
                        self.free_frame_in(d, pa).expect("unwinding a fresh frame");
                        self.unwind_pages(d, core, &pages);
                        return Err(e);
                    }
                };
                let iova = r.base();
                self.iommu.map_in(d, iova, pa)?;
                self.audit.on_map(d, iova, pa);
                self.record_locality(iova);
                pages.push(DescriptorPage { iova, pa });
            }
        }
        let alloc_cost = self.alloc_cost_since(before);
        cpu += n * self.costs.map_ns + alloc_cost;
        self.spans.charge(Span::Map, n * self.costs.map_ns);
        self.spans.charge(Span::Alloc, alloc_cost);
        self.map_cpu_ns += cpu;
        self.trace.emit(TraceData::Map { pages: n as u32 });
        Ok((Descriptor::new(id, pages), cpu))
    }

    /// Completes a fully consumed Rx descriptor: unmap, invalidate, release
    /// frames and IOVAs. Returns the CPU time spent. `core` is the core
    /// running the completion (NAPI) processing.
    ///
    /// # Errors
    ///
    /// Fails only on structural invariant violations (double free, unmap of
    /// an unmapped page) — injected faults on the completion path (queue
    /// stalls) are recovered internally and never propagate.
    pub fn complete_rx_descriptor(
        &mut self,
        core: usize,
        desc: &Descriptor,
    ) -> Result<Nanos, DmaError> {
        self.complete_rx_descriptor_in(0, core, desc)
    }

    /// [`DmaDriver::complete_rx_descriptor`] for the device attached to
    /// protection domain `d` (the domain that prepared the descriptor).
    pub fn complete_rx_descriptor_in(
        &mut self,
        d: u16,
        core: usize,
        desc: &Descriptor,
    ) -> Result<Nanos, DmaError> {
        if !self.obs.is_on() {
            return self.complete_rx_descriptor_inner(d, core, desc);
        }
        // Close the transaction span, charging it the invalidation-queue
        // wait this completion actually paid, and stamp Unmap provenance.
        let inv_before = self.invalidation_cpu_ns;
        let cpu = self.complete_rx_descriptor_inner(d, core, desc)?;
        if !self.mode.is_pinned_pool() && self.mode != ProtectionMode::IommuOff {
            for p in desc.pages() {
                self.obs
                    .on_unmap(p.iova.pfn(), 1, core as u32, self.inv_submit_seq);
            }
        }
        self.obs.txn_complete(
            desc.id(),
            core as u32,
            d,
            self.invalidation_cpu_ns - inv_before,
        );
        Ok(cpu)
    }

    fn complete_rx_descriptor_inner(
        &mut self,
        d: u16,
        core: usize,
        desc: &Descriptor,
    ) -> Result<Nanos, DmaError> {
        if self.mode.huge_rx() {
            // Strict teardown as one unit: clear the huge leaf, invalidate
            // the (single) huge IOTLB entry, release IOVA + frames.
            let before = self.alloc.stats();
            let base = desc.pages()[0].iova;
            self.iommu.unmap_huge_in(d, base)?;
            let range = IovaRange::new(base, desc.len() as u64);
            self.audit.on_unmap(d, range);
            let mut cpu = self.costs.unmap_ns;
            self.spans.charge(Span::Unmap, self.costs.unmap_ns);
            cpu += self.submit_invalidations(
                &[InvalidationRequest {
                    range,
                    scope: InvalidationScope::IotlbOnly,
                    domain: d,
                }],
                false,
            );
            self.huge_frames[d as usize].push(desc.pages()[0].pa.pfn());
            self.alloc.try_free(range, core)?;
            self.audit.on_free(range);
            let alloc_cost = self.alloc_cost_since(before);
            cpu += alloc_cost;
            self.spans.charge(Span::Completion, alloc_cost);
            self.map_cpu_ns += cpu;
            self.trace.emit(TraceData::Unmap {
                pages: desc.len() as u32,
            });
            return Ok(cpu);
        }
        if self.mode.is_pinned_pool() {
            // No unmap, no invalidation: the device keeps access (this is
            // exactly the weaker safety property of these schemes).
            self.pinned_free[d as usize].extend(desc.pages().iter().copied());
            let cpu = desc.len() as Nanos * self.costs.alloc_cache_ns / 2;
            self.spans.charge(Span::Completion, cpu);
            self.map_cpu_ns += cpu;
            let _ = core;
            return Ok(cpu);
        }
        if self.mode == ProtectionMode::IommuOff {
            for p in desc.pages() {
                self.free_frame_in(d, p.pa)?;
            }
            return Ok(0);
        }
        let scope = if self.mode.preserves_ptcache() {
            InvalidationScope::IotlbOnly
        } else {
            InvalidationScope::IotlbAndLeafPtcache
        };
        if self.mode.contiguous_iova() && (desc.len() as u64) < TX_CHUNK_PAGES {
            // Small (e.g. single-page) descriptors carved from shared
            // chunks: unmap at descriptor granularity through the common
            // carved-buffer path (§3's generality case). Rx invalidations
            // wipe leaf-level PTcache entries only.
            return self.complete_pages(d, core, desc.pages(), scope);
        }
        let before = self.alloc.stats();
        let mut cpu = 0;
        if self.mode.contiguous_iova() {
            // One unmap op covering the whole 256 KB chunk + one ranged
            // invalidation-queue entry (Figure 6b).
            let range = IovaRange::new(desc.pages()[0].iova, desc.len() as u64);
            let out = self.iommu.unmap_range_in(d, range)?;
            self.audit.on_unmap(d, range);
            self.audit.on_pt_reclaimed(d, &out.reclaimed);
            cpu += self.costs.unmap_ns;
            self.spans.charge(Span::Unmap, self.costs.unmap_ns);
            cpu += self.submit_invalidations(
                &[InvalidationRequest {
                    range,
                    scope,
                    domain: d,
                }],
                false,
            );
            if self.mode.preserves_ptcache() {
                self.reclaim_fixup(d, &out.reclaimed);
            }
            self.alloc.try_free(range, core)?;
            self.audit.on_free(range);
        } else {
            // Stock Linux: page-at-a-time unmap, one queue entry each
            // (Figure 6a).
            let mut reqs = std::mem::take(&mut self.req_scratch);
            let mut reclaimed = std::mem::take(&mut self.reclaim_scratch);
            for p in desc.pages() {
                let range = IovaRange::new(p.iova, 1);
                let out = self.iommu.unmap_range_in(d, range)?;
                self.audit.on_unmap(d, range);
                self.audit.on_pt_reclaimed(d, &out.reclaimed);
                reclaimed.extend(out.reclaimed);
                cpu += self.costs.unmap_ns;
                reqs.push(InvalidationRequest {
                    range,
                    scope,
                    domain: d,
                });
                self.alloc.try_free(range, core)?;
                self.audit.on_free(range);
            }
            self.spans
                .charge(Span::Unmap, desc.len() as Nanos * self.costs.unmap_ns);
            if self.mode == ProtectionMode::LinuxDeferred {
                self.deferred_pending += desc.len() as u32;
                cpu += self.maybe_deferred_flush();
            } else {
                // Stock Linux: each page is its own dma_unmap call — one
                // synchronization *and* one retirement epoch per page (the
                // unmaps spread across the NAPI poll, interleaved with the
                // NIC's ongoing walks). Submitted through the coalesced
                // single-pass drain.
                cpu += self.submit_per_page_invalidations(&reqs);
                if self.mode.preserves_ptcache() {
                    self.reclaim_fixup(d, &reclaimed);
                }
            }
            reqs.clear();
            reclaimed.clear();
            self.req_scratch = reqs;
            self.reclaim_scratch = reclaimed;
        }
        for p in desc.pages() {
            self.free_frame_in(d, p.pa)?;
        }
        let alloc_cost = self.alloc_cost_since(before);
        cpu += alloc_cost;
        self.spans.charge(Span::Completion, alloc_cost);
        self.map_cpu_ns += cpu;
        self.trace.emit(TraceData::Unmap {
            pages: desc.len() as u32,
        });
        Ok(cpu)
    }

    fn maybe_deferred_flush(&mut self) -> Nanos {
        if self.deferred_pending < self.deferred_threshold {
            return 0;
        }
        if self.sabotage == Sabotage::SkipDeferredFlush {
            return 0;
        }
        self.deferred_pending = 0;
        self.deferred_flushes += 1;
        // One global flush descriptor.
        self.iommu.invalidate_all();
        self.audit.on_invalidate_all();
        self.iommu.note_queue_entries(1);
        let cost = self.invq.cost_ns(1);
        self.spans.charge(Span::InvalidationWait, cost);
        self.invalidation_cpu_ns += cost;
        self.trace.emit(TraceData::InvFlush { cost_ns: cost });
        cost
    }

    /// Maps `pages` Tx pages for a packet sent from `core`. Returns the
    /// mapped pages and CPU time.
    ///
    /// # Errors
    ///
    /// Fails on frame/IOVA exhaustion (real or injected). Failure is
    /// all-or-nothing: pages mapped before the failing one are unwound, so
    /// the caller can drop the packet and lean on transport-level recovery.
    pub fn tx_map(
        &mut self,
        core: usize,
        pages: u32,
    ) -> Result<(Vec<DescriptorPage>, Nanos), DmaError> {
        self.tx_map_in(0, core, pages)
    }

    /// [`DmaDriver::tx_map`] for the device attached to protection domain
    /// `d`.
    pub fn tx_map_in(
        &mut self,
        d: u16,
        core: usize,
        pages: u32,
    ) -> Result<(Vec<DescriptorPage>, Nanos), DmaError> {
        let (out, cpu) = self.tx_map_inner(d, core, pages)?;
        if !matches!(self.sabotage, Sabotage::None) {
            if let Some(&first) = out.first() {
                self.maybe_cross_domain_leak(d, first);
            }
        }
        Ok((out, cpu))
    }

    fn tx_map_inner(
        &mut self,
        d: u16,
        core: usize,
        pages: u32,
    ) -> Result<(Vec<DescriptorPage>, Nanos), DmaError> {
        let mut out: Vec<DescriptorPage> = self.take_page_vec(pages as usize);
        if self.mode.is_pinned_pool() {
            self.recycle_pages(out);
            let slots = self.take_pinned(d, core, pages as usize)?;
            for s in &slots {
                self.record_locality(s.iova);
            }
            let cpu = pages as Nanos * self.costs.alloc_cache_ns / 2;
            self.spans.charge(Span::Alloc, cpu);
            self.map_cpu_ns += cpu;
            return Ok((slots, cpu));
        }
        if self.mode == ProtectionMode::IommuOff {
            for _ in 0..pages {
                let pa = match self.alloc_frame_in(d) {
                    Ok(pa) => pa,
                    Err(e) => {
                        for p in std::mem::take(&mut out) {
                            self.free_frame_in(d, p.pa)
                                .expect("unwinding a fresh frame");
                        }
                        return Err(e);
                    }
                };
                out.push(DescriptorPage {
                    iova: Iova::from_pfn(pa.pfn()),
                    pa,
                });
            }
            return Ok((out, 0));
        }
        let before = self.alloc.stats();
        let mut cpu = 0;
        for _ in 0..pages {
            let pa = match self.alloc_frame_in(d) {
                Ok(pa) => pa,
                Err(e) => {
                    self.unwind_pages(d, core, &out);
                    return Err(e);
                }
            };
            let iova = if self.mode.contiguous_iova() {
                self.carve_page(d, core, true)
            } else {
                self.alloc_iova(1, core).map(|r| r.base())
            };
            let iova = match iova {
                Ok(iova) => iova,
                Err(e) => {
                    self.free_frame_in(d, pa).expect("unwinding a fresh frame");
                    self.unwind_pages(d, core, &out);
                    return Err(e);
                }
            };
            self.iommu.map_in(d, iova, pa)?;
            self.audit.on_map(d, iova, pa);
            self.record_locality(iova);
            out.push(DescriptorPage { iova, pa });
        }
        let alloc_cost = self.alloc_cost_since(before);
        cpu += pages as u64 * self.costs.map_ns + alloc_cost;
        self.spans
            .charge(Span::Map, pages as u64 * self.costs.map_ns);
        self.spans.charge(Span::Alloc, alloc_cost);
        self.map_cpu_ns += cpu;
        self.trace.emit(TraceData::Map { pages });
        Ok((out, cpu))
    }

    fn carve_page(&mut self, d: u16, core: usize, is_tx: bool) -> Result<Iova, DmaError> {
        let slot_idx = core * self.domains as usize + d as usize;
        loop {
            let slot = if is_tx {
                &mut self.tx_chunk[slot_idx]
            } else {
                &mut self.rx_chunk[slot_idx]
            };
            if let Some(base) = *slot {
                let carver = self.chunks.get_mut(&base).expect("chunk vanished");
                if let Some(iova) = carver.take_page() {
                    return Ok(iova);
                }
                *slot = None;
            }
            let chunk = self.alloc_iova(TX_CHUNK_PAGES, core)?;
            let base = chunk.pfn_lo();
            if is_tx {
                self.tx_chunk[slot_idx] = Some(base);
            } else {
                self.rx_chunk[slot_idx] = Some(base);
            }
            self.chunks.insert(base, ChunkCarver::new(chunk));
        }
    }

    /// Completes transmitted pages (wire done): unmap + invalidate per the
    /// mode, on `core` (the completion-IRQ core, possibly different from
    /// the mapping core). Returns CPU time.
    ///
    /// # Errors
    ///
    /// Fails only on structural invariant violations; injected queue stalls
    /// are recovered internally.
    pub fn tx_complete(
        &mut self,
        core: usize,
        pages: &[DescriptorPage],
    ) -> Result<Nanos, DmaError> {
        self.tx_complete_in(0, core, pages)
    }

    /// [`DmaDriver::tx_complete`] for the device attached to protection
    /// domain `d` (the domain that mapped the pages).
    pub fn tx_complete_in(
        &mut self,
        d: u16,
        core: usize,
        pages: &[DescriptorPage],
    ) -> Result<Nanos, DmaError> {
        if self.mode.is_pinned_pool() {
            self.pinned_free[d as usize].extend(pages.iter().copied());
            let cpu = pages.len() as Nanos * self.costs.alloc_cache_ns / 2;
            self.spans.charge(Span::Completion, cpu);
            self.map_cpu_ns += cpu;
            let _ = core;
            return Ok(cpu);
        }
        if self.mode == ProtectionMode::IommuOff {
            for p in pages {
                self.free_frame_in(d, p.pa)?;
            }
            return Ok(0);
        }
        // Tx-path invalidations are the ones the paper blames for wiping
        // the shared PTcache-L1/L2 entries.
        let scope = if self.mode.preserves_ptcache() {
            InvalidationScope::IotlbOnly
        } else {
            InvalidationScope::IotlbAndFullPtcache
        };
        self.complete_pages(d, core, pages, scope)
    }

    /// Common completion path for page-at-a-time-mapped buffers (Tx packets
    /// and carved small Rx descriptors): unmap each page, coalesce
    /// contiguous invalidation requests in batched modes, retire carving
    /// chunks, release frames and IOVAs.
    fn complete_pages(
        &mut self,
        d: u16,
        core: usize,
        pages: &[DescriptorPage],
        scope: InvalidationScope,
    ) -> Result<Nanos, DmaError> {
        let before = self.alloc.stats();
        let mut cpu = 0;
        let mut reqs = std::mem::take(&mut self.req_scratch);
        let mut reclaimed = std::mem::take(&mut self.reclaim_scratch);
        for p in pages {
            let range = IovaRange::new(p.iova, 1);
            let out = self.iommu.unmap_range_in(d, range)?;
            self.audit.on_unmap(d, range);
            self.audit.on_pt_reclaimed(d, &out.reclaimed);
            reclaimed.extend(out.reclaimed);
            cpu += self.costs.unmap_ns;
            self.spans.charge(Span::Unmap, self.costs.unmap_ns);
            if self.mode.batched_invalidation() {
                // Merge with the previous request when contiguous.
                match reqs.last_mut() {
                    Some(last)
                        if last.range.pfn_hi() + 1 == range.pfn_lo() && last.scope == scope =>
                    {
                        last.range = IovaRange::new(last.range.base(), last.range.pages() + 1);
                    }
                    _ => reqs.push(InvalidationRequest {
                        range,
                        scope,
                        domain: d,
                    }),
                }
            } else {
                reqs.push(InvalidationRequest {
                    range,
                    scope,
                    domain: d,
                });
            }
            // IOVA release: chunk modes retire whole chunks; page modes free
            // each page to this core's magazine.
            self.release_iova_page(p.iova, core)?;
            self.free_frame_in(d, p.pa)?;
        }
        if self.mode == ProtectionMode::LinuxDeferred {
            self.deferred_pending += pages.len() as u32;
            cpu += self.maybe_deferred_flush();
        } else if self.mode.batched_invalidation() {
            cpu += self.submit_invalidations(&reqs, false);
            if self.mode.preserves_ptcache() {
                self.reclaim_fixup(d, &reclaimed);
            }
        } else {
            // Stock Linux: each transmitted packet's unmap is its own
            // invalidation + synchronization (its own retirement epoch),
            // submitted through the coalesced single-pass drain.
            cpu += self.submit_per_page_invalidations(&reqs);
            if self.mode.preserves_ptcache() {
                self.reclaim_fixup(d, &reclaimed);
            }
        }
        reqs.clear();
        reclaimed.clear();
        self.req_scratch = reqs;
        self.reclaim_scratch = reclaimed;
        let alloc_cost = self.alloc_cost_since(before);
        cpu += alloc_cost;
        self.spans.charge(Span::Completion, alloc_cost);
        self.map_cpu_ns += cpu;
        self.trace.emit(TraceData::Unmap {
            pages: pages.len() as u32,
        });
        Ok(cpu)
    }

    /// Records a PTcache-fixup reclaim (preserve-mode invalidation of
    /// reclaimed page-table pages) in the trace.
    fn note_reclaim(&mut self, reclaimed: &[fns_iommu::ReclaimedPage]) {
        if !reclaimed.is_empty() && self.trace.wants(TraceCategory::Translate) {
            self.trace.emit(TraceData::PtcacheReclaim {
                entries: reclaimed.len() as u32,
            });
        }
    }

    /// The preserve-mode synchronous PTcache fixup for reclaimed PT pages
    /// (the paper's Figure 5 rule), with its trace and audit bookkeeping.
    fn reclaim_fixup(&mut self, d: u16, reclaimed: &[fns_iommu::ReclaimedPage]) {
        self.note_reclaim(reclaimed);
        if self.sabotage == Sabotage::SkipReclaimFixup {
            return;
        }
        self.iommu.invalidate_for_reclaimed_in(d, reclaimed);
        self.audit.on_reclaim_fixup(d, reclaimed);
        if self.obs.is_on() {
            for r in reclaimed {
                // Anchor the event at the base IOVA pfn of the span the
                // reclaimed PT page mapped (level N covers 9(N-1) pfn bits).
                let base_pfn = match r.level {
                    4 => r.region_key << 9,
                    3 => r.region_key << 18,
                    _ => r.region_key << 27,
                };
                self.obs.on_reclaim(base_pfn, r.level);
            }
        }
    }

    /// Seeded cross-domain corruption (see [`Sabotage::CrossDomainLeak`]):
    /// on the `nth` map op, briefly alias the op's first page into the next
    /// domain's address space, touch it from there, and tear the stray PTE
    /// down without invalidating. Audited and unaudited runs perform the
    /// same IOMMU cache work, so arming the oracle never changes the
    /// trajectory.
    fn maybe_cross_domain_leak(&mut self, d: u16, page: DescriptorPage) {
        let Sabotage::CrossDomainLeak { nth } = self.sabotage else {
            return;
        };
        self.map_ops += 1;
        if self.map_ops != nth || self.domains < 2 || self.mode == ProtectionMode::IommuOff {
            return;
        }
        let victim = (d + 1) % self.domains;
        // Raw map, no audit bookkeeping: a buggy driver installing a PTE in
        // the wrong PASID's page table.
        self.iommu
            .map_in(victim, page.iova, page.pa)
            .expect("leaked IOVA collides in the victim domain");
        // The victim device touches the alias once — audited like any other
        // device access, which is where CrossDomainIsolation must fire.
        self.probe_translate_in(victim, page.iova);
        // Raw teardown with NO invalidation: the victim's IOTLB keeps the
        // stale cross-tenant entry, and the IOVA stays reusable.
        self.iommu
            .unmap_range_in(victim, IovaRange::new(page.iova, 1))
            .expect("tearing down the leaked PTE");
    }

    /// Translates a device access; returns the number of page-walk memory
    /// reads (0 for IOMMU-off or IOTLB hits).
    pub fn translate(&mut self, iova: Iova) -> u32 {
        self.translate_in(0, iova)
    }

    /// [`DmaDriver::translate`] for the device attached to protection
    /// domain `d`.
    pub fn translate_in(&mut self, d: u16, iova: Iova) -> u32 {
        if self.mode == ProtectionMode::IommuOff {
            return 0;
        }
        if self.audit.is_on() {
            return self.translate_audited(d, iova).reads();
        }
        if self.trace.wants(TraceCategory::Translate) {
            return self.translate_traced(d, iova).reads();
        }
        if self.obs.wants_translate() {
            return self.translate_observed(d, iova).reads();
        }
        let t = self.iommu.translate_in(d, iova);
        debug_assert!(
            t.pa().is_some() || self.mode == ProtectionMode::LinuxDeferred,
            "device fault on a supposedly mapped IOVA ({iova})"
        );
        t.reads()
    }

    /// Audited translation: wraps the (possibly traced) translation with
    /// the oracle's per-access check, feeding it the stale-walk counter
    /// delta as ground truth for PT use-after-free.
    fn translate_audited(&mut self, d: u16, iova: Iova) -> fns_iommu::Translation {
        let stale_before = self.iommu.stats().stale_ptcache_walks;
        let t = if self.trace.wants(TraceCategory::Translate) {
            self.translate_traced(d, iova)
        } else if self.obs.wants_translate() {
            self.translate_observed(d, iova)
        } else {
            let t = self.iommu.translate_in(d, iova);
            debug_assert!(
                t.pa().is_some() || self.mode == ProtectionMode::LinuxDeferred,
                "device fault on a supposedly mapped IOVA ({iova})"
            );
            t
        };
        let stale = self.iommu.stats().stale_ptcache_walks - stale_before;
        self.audit.on_translate(d, iova, t.pa(), stale);
        t
    }

    /// Translates a *possibly-unmapped* IOVA (the chaos plane's stale-DMA
    /// probe): a checked translation, audited like any device access but
    /// never debug-asserted — faulting is the expected strict-mode
    /// outcome. Returns whether the access leaked through.
    pub fn probe_translate(&mut self, iova: Iova) -> bool {
        self.probe_translate_in(0, iova)
    }

    /// [`DmaDriver::probe_translate`] issued from protection domain `d`.
    pub fn probe_translate_in(&mut self, d: u16, iova: Iova) -> bool {
        if self.mode == ProtectionMode::IommuOff {
            return false;
        }
        if self.audit.is_on() {
            let stale_before = self.iommu.stats().stale_ptcache_walks;
            let pa = self
                .iommu
                .translate_checked_in(d, iova)
                .ok()
                .map(|(pa, _)| pa);
            let stale = self.iommu.stats().stale_ptcache_walks - stale_before;
            self.audit.on_translate(d, iova, pa, stale);
            pa.is_some()
        } else {
            self.iommu.translate_checked_in(d, iova).is_ok()
        }
    }

    /// Observed-only translation: feeds the provenance/metrics plane from
    /// the [`Translation`](fns_iommu::Translation) result itself, skipping
    /// the stats/PTcache-length snapshots the full traced path pays for.
    fn translate_observed(&mut self, d: u16, iova: Iova) -> fns_iommu::Translation {
        let t = self.iommu.translate_in(d, iova);
        debug_assert!(
            t.pa().is_some() || self.mode == ProtectionMode::LinuxDeferred,
            "device fault on a supposedly mapped IOVA ({iova})"
        );
        self.obs
            .on_translate(iova.pfn(), t.iotlb_hit(), t.reads() as u64);
        t
    }

    /// Traced translation: identical behaviour to [`DmaDriver::translate`]
    /// plus IOTLB/PTcache events derived from the counter deltas. Kept out
    /// of line so the untraced hot path stays branch-plus-call free.
    fn translate_traced(&mut self, d: u16, iova: Iova) -> fns_iommu::Translation {
        let before = self.iommu.stats();
        let lens_before = self.iommu.ptcache_lens();
        let t = self.iommu.translate_in(d, iova);
        debug_assert!(
            t.pa().is_some() || self.mode == ProtectionMode::LinuxDeferred,
            "device fault on a supposedly mapped IOVA ({iova})"
        );
        let after = self.iommu.stats();
        if after.iotlb_hits > before.iotlb_hits {
            self.trace.emit(TraceData::IotlbHit);
            self.obs.on_translate(iova.pfn(), true, 0);
        }
        if after.iotlb_misses > before.iotlb_misses {
            self.trace.emit(TraceData::IotlbMiss { reads: t.reads() });
            self.obs.on_translate(iova.pfn(), false, t.reads() as u64);
            // A PTcache miss at level N means the walk filled that level;
            // the fill evicted an entry when the cache did not grow.
            let lens_after = self.iommu.ptcache_lens();
            let fills = [
                (1u8, after.ptcache_l1_misses > before.ptcache_l1_misses),
                (2u8, after.ptcache_l2_misses > before.ptcache_l2_misses),
                (3u8, after.ptcache_l3_misses > before.ptcache_l3_misses),
            ];
            let grew = [
                lens_after.0 > lens_before.0,
                lens_after.1 > lens_before.1,
                lens_after.2 > lens_before.2,
            ];
            for (level, missed) in fills {
                if missed {
                    self.trace.emit(TraceData::PtcacheFill {
                        level,
                        evicted: !grew[level as usize - 1],
                    });
                }
            }
        }
        if after.faults > before.faults {
            self.trace.emit(TraceData::TranslationFault);
        }
        t
    }
}

/// A physical-frame placeholder used by tests.
pub fn test_frame(pfn: u64) -> PhysAddr {
    PhysAddr::from_pfn(pfn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(mode: ProtectionMode) -> DmaDriver {
        DmaDriver::new(
            mode,
            2,
            IommuConfig::default(),
            CpuCosts::default(),
            256,
            10_000,
        )
    }

    fn consume_all(d: &mut Descriptor) {
        while d.consume_page().is_some() {}
    }

    #[test]
    fn rx_cycle_all_strict_modes_fault_after_unmap() {
        for mode in [
            ProtectionMode::LinuxStrict,
            ProtectionMode::LinuxPreserve,
            ProtectionMode::LinuxContig,
            ProtectionMode::FastAndSafe,
        ] {
            let mut drv = driver(mode);
            let (mut desc, _) = drv.prepare_rx_descriptor(0).unwrap();
            // Device DMAs every page.
            for p in desc.pages().to_vec() {
                drv.translate(p.iova);
            }
            consume_all(&mut desc);
            drv.complete_rx_descriptor(0, &desc).unwrap();
            // After completion, no page is reachable by the device.
            for p in desc.pages() {
                let t = drv.iommu.translate(p.iova);
                assert!(t.pa().is_none(), "{mode}: page reachable after unmap");
            }
            assert_eq!(drv.iommu.stats().stale_iotlb_hits, 0, "{mode}");
            assert_eq!(drv.iommu.stats().stale_ptcache_walks, 0, "{mode}");
        }
    }

    #[test]
    fn contiguous_modes_use_one_chunk_per_descriptor() {
        let mut drv = driver(ProtectionMode::FastAndSafe);
        let (desc, _) = drv.prepare_rx_descriptor(0).unwrap();
        let keys: std::collections::HashSet<u64> =
            desc.pages().iter().map(|p| p.iova.l4_page_key()).collect();
        assert!(
            keys.len() <= 2,
            "F&S bound: <=2 PTcache-L3 entries, got {}",
            keys.len()
        );
        // Pages are consecutive.
        for w in desc.pages().windows(2) {
            assert_eq!(w[0].iova.pfn() + 1, w[1].iova.pfn());
        }
    }

    #[test]
    fn linux_mode_pages_need_not_be_contiguous() {
        let mut drv = driver(ProtectionMode::LinuxStrict);
        // Warm the allocator with churn so magazines shuffle.
        for _ in 0..4 {
            let (mut d, _) = drv.prepare_rx_descriptor(0).unwrap();
            consume_all(&mut d);
            drv.complete_rx_descriptor(1, &d).unwrap(); // cross-core completion
        }
        let (desc, _) = drv.prepare_rx_descriptor(0).unwrap();
        let contiguous = desc
            .pages()
            .windows(2)
            .filter(|w| w[0].iova.pfn() + 1 == w[1].iova.pfn())
            .count();
        assert!(contiguous < desc.len() - 1, "expected some scrambling");
    }

    #[test]
    fn invalidation_entry_counts_differ_64x() {
        let mut linux = driver(ProtectionMode::LinuxStrict);
        let (mut d, _) = linux.prepare_rx_descriptor(0).unwrap();
        consume_all(&mut d);
        linux.complete_rx_descriptor(0, &d).unwrap();
        assert_eq!(linux.iommu.stats().invalidation_queue_entries, 64);

        let mut fns = driver(ProtectionMode::FastAndSafe);
        let (mut d, _) = fns.prepare_rx_descriptor(0).unwrap();
        consume_all(&mut d);
        fns.complete_rx_descriptor(0, &d).unwrap();
        assert_eq!(fns.iommu.stats().invalidation_queue_entries, 1);
    }

    #[test]
    fn fns_descriptor_cpu_is_much_cheaper() {
        let mut linux = driver(ProtectionMode::LinuxStrict);
        let (mut d, _) = linux.prepare_rx_descriptor(0).unwrap();
        consume_all(&mut d);
        let linux_cpu = linux.complete_rx_descriptor(0, &d).unwrap();

        let mut fns = driver(ProtectionMode::FastAndSafe);
        let (mut d, _) = fns.prepare_rx_descriptor(0).unwrap();
        consume_all(&mut d);
        let fns_cpu = fns.complete_rx_descriptor(0, &d).unwrap();
        assert!(
            linux_cpu > 3 * fns_cpu,
            "linux {linux_cpu} ns vs F&S {fns_cpu} ns"
        );
    }

    #[test]
    fn tx_chunks_span_packets_and_retire() {
        let mut drv = driver(ProtectionMode::FastAndSafe);
        let mut all = Vec::new();
        // 32 packets x 2 pages: fills exactly one 64-page chunk.
        for _ in 0..32 {
            let (pages, _) = drv.tx_map(0, 2).unwrap();
            all.extend(pages);
        }
        let bases: std::collections::HashSet<u64> =
            all.iter().map(|p| p.iova.pfn() & !63).collect();
        assert_eq!(bases.len(), 1, "one chunk spans all 32 packets");
        // Complete them all: the chunk must retire (be freeable again).
        let live_before = drv.allocator().live_ranges();
        drv.tx_complete(0, &all).unwrap();
        assert_eq!(drv.allocator().live_ranges(), live_before - 1);
        assert_eq!(drv.iommu.stats().stale_ptcache_walks, 0);
    }

    #[test]
    fn tx_batched_invalidation_merges_contiguous_ranges() {
        let mut drv = driver(ProtectionMode::FastAndSafe);
        let (pages, _) = drv.tx_map(0, 8).unwrap();
        drv.tx_complete(0, &pages).unwrap();
        // All 8 pages were contiguous within the chunk: one queue entry.
        assert_eq!(drv.iommu.stats().invalidation_queue_entries, 1);

        let mut linux = driver(ProtectionMode::LinuxStrict);
        let (pages, _) = linux.tx_map(0, 8).unwrap();
        linux.tx_complete(0, &pages).unwrap();
        assert_eq!(linux.iommu.stats().invalidation_queue_entries, 8);
    }

    #[test]
    fn deferred_mode_flushes_at_threshold_and_leaks_window() {
        let mut drv = DmaDriver::new(
            ProtectionMode::LinuxDeferred,
            1,
            IommuConfig::default(),
            CpuCosts::default(),
            128,
            1000,
        );
        let (mut d, _) = drv.prepare_rx_descriptor(0).unwrap();
        let pages = d.pages().to_vec();
        for p in &pages {
            drv.translate(p.iova);
        }
        consume_all(&mut d);
        drv.complete_rx_descriptor(0, &d).unwrap();
        assert_eq!(drv.deferred_flushes, 0, "64 < 128 threshold: no flush yet");
        // The device can still hit the stale IOTLB entries: safety hole.
        let t = drv.iommu.translate(pages[0].iova);
        assert!(t.pa().is_some(), "deferred mode leaks stale translations");
        assert!(drv.iommu.stats().stale_iotlb_hits > 0);
        // Second descriptor crosses the threshold: flush happens.
        let (mut d2, _) = drv.prepare_rx_descriptor(0).unwrap();
        consume_all(&mut d2);
        drv.complete_rx_descriptor(0, &d2).unwrap();
        assert_eq!(drv.deferred_flushes, 1);
        assert!(
            drv.iommu.translate(pages[0].iova).pa().is_none(),
            "flush closes the window"
        );
    }

    #[test]
    fn iommu_off_costs_nothing_and_never_translates() {
        let mut drv = driver(ProtectionMode::IommuOff);
        let (mut d, cpu) = drv.prepare_rx_descriptor(0).unwrap();
        assert_eq!(cpu, 0);
        assert_eq!(drv.translate(d.pages()[0].iova), 0);
        consume_all(&mut d);
        assert_eq!(drv.complete_rx_descriptor(0, &d).unwrap(), 0);
        assert_eq!(drv.iommu.stats().translations, 0);
    }

    #[test]
    fn locality_trace_caps() {
        let mut drv = DmaDriver::new(
            ProtectionMode::LinuxStrict,
            1,
            IommuConfig::default(),
            CpuCosts::default(),
            256,
            10,
        );
        for _ in 0..3 {
            let (mut d, _) = drv.prepare_rx_descriptor(0).unwrap();
            consume_all(&mut d);
            drv.complete_rx_descriptor(0, &d).unwrap();
        }
        assert_eq!(drv.locality.len(), 10);
    }

    #[test]
    fn frames_balance_over_many_cycles() {
        let mut drv = driver(ProtectionMode::FastAndSafe);
        let base = drv.frames().in_use();
        for _ in 0..20 {
            let (mut d, _) = drv.prepare_rx_descriptor(0).unwrap();
            consume_all(&mut d);
            drv.complete_rx_descriptor(0, &d).unwrap();
            let (tx, _) = drv.tx_map(0, 1).unwrap();
            drv.tx_complete(1, &tx).unwrap();
        }
        // Tx chunks may keep partially carved IOVA space alive, but frames
        // must balance exactly.
        assert_eq!(drv.frames().in_use(), base);
    }
}

#[cfg(test)]
mod pinned_tests {
    use super::*;

    fn driver(mode: ProtectionMode) -> DmaDriver {
        DmaDriver::new(
            mode,
            2,
            IommuConfig::default(),
            CpuCosts::default(),
            256,
            10_000,
        )
    }

    #[test]
    fn hugepage_pool_translates_with_reach() {
        let mut drv = driver(ProtectionMode::HugepagePinned);
        let (desc, cpu) = drv.prepare_rx_descriptor(0).unwrap();
        assert!(cpu < 64 * 100, "recycling must be cheap");
        // All 64 pages of the descriptor live in one 2 MB hugepage.
        for p in desc.pages() {
            assert!(drv.translate(p.iova) <= 3);
        }
        // After the first walk, everything hits the huge IOTLB entry.
        let s = drv.iommu.stats();
        assert_eq!(s.iotlb_misses, 1, "one miss covers 2 MB of reach");
        assert_eq!(s.memory_reads, 3);
    }

    #[test]
    fn pinned_pool_recycles_without_unmap() {
        for mode in [ProtectionMode::HugepagePinned, ProtectionMode::DamnRecycle] {
            let mut drv = driver(mode);
            let (mut d, _) = drv.prepare_rx_descriptor(0).unwrap();
            let first = d.pages().to_vec();
            while d.consume_page().is_some() {}
            drv.complete_rx_descriptor(0, &d).unwrap();
            assert_eq!(
                drv.iommu.stats().iotlb_invalidations,
                0,
                "{mode}: pool modes never invalidate"
            );
            assert_eq!(drv.iommu.page_table().stats().unmaps, 0, "{mode}");
            // The device still reaches the recycled buffers: the weaker
            // safety property, observable.
            let t = drv.iommu.translate(first[0].iova);
            assert!(t.pa().is_some(), "{mode}: buffers stay mapped");
            // And the slots come back around once the pool wraps (the pool
            // grew by at least one descriptor's worth, FIFO order).
            let mut seen_again = false;
            for _ in 0..16 {
                let (d2, _) = drv.prepare_rx_descriptor(0).unwrap();
                if d2.pages()[0] == first[0] {
                    seen_again = true;
                    break;
                }
            }
            assert!(seen_again, "{mode}: recycled slot must reappear");
        }
    }

    #[test]
    fn damn_pool_grows_on_demand() {
        let mut drv = driver(ProtectionMode::DamnRecycle);
        // Take three descriptors without returning any: the pool must grow.
        let a = drv.prepare_rx_descriptor(0).unwrap().0;
        let b = drv.prepare_rx_descriptor(0).unwrap().0;
        let c = drv.prepare_rx_descriptor(0).unwrap().0;
        let all: std::collections::HashSet<_> = a
            .pages()
            .iter()
            .chain(b.pages())
            .chain(c.pages())
            .map(|p| p.iova)
            .collect();
        assert_eq!(all.len(), 192, "no slot handed out twice while in use");
        assert_eq!(drv.iommu.page_table().stats().maps, 192);
    }

    #[test]
    fn hugepage_tx_and_rx_share_the_pool() {
        let mut drv = driver(ProtectionMode::HugepagePinned);
        let (tx, _) = drv.tx_map(0, 4).unwrap();
        assert_eq!(tx.len(), 4);
        drv.tx_complete(1, &tx).unwrap();
        let (desc, _) = drv.prepare_rx_descriptor(0).unwrap();
        assert_eq!(desc.len(), 64);
        // One hugepage (512 slots) covers all of this: a single map ever.
        assert_eq!(drv.iommu.page_table().stats().maps, 1);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use fns_faults::FaultConfig;

    fn driver(mode: ProtectionMode) -> DmaDriver {
        DmaDriver::new(
            mode,
            2,
            IommuConfig::default(),
            CpuCosts::default(),
            256,
            10_000,
        )
    }

    fn consume_all(d: &mut Descriptor) {
        while d.consume_page().is_some() {}
    }

    #[test]
    fn injected_descriptor_exhaustion_is_side_effect_free() {
        let mut drv = driver(ProtectionMode::LinuxStrict);
        let cfg = FaultConfig::disabled().with_every(FaultKind::DescriptorExhaustion, 1);
        drv.set_fault_plane(FaultPlane::from_seed(cfg, 7, 0));
        let frames_before = drv.frames.in_use();
        let maps_before = drv.iommu.page_table().stats().maps;
        let err = drv.prepare_rx_descriptor(0).unwrap_err();
        assert!(matches!(err, DmaError::DescriptorExhausted), "{err}");
        // Nothing was allocated or mapped before the roll.
        assert_eq!(drv.frames.in_use(), frames_before);
        assert_eq!(drv.iommu.page_table().stats().maps, maps_before);
        assert_eq!(
            drv.faults()
                .stats()
                .injected_of(FaultKind::DescriptorExhaustion),
            1
        );
        drv.set_fault_plane(FaultPlane::disabled());
        let (d, _) = drv.prepare_rx_descriptor(0).unwrap();
        assert_eq!(d.len(), 64);
    }

    #[test]
    fn injected_frame_exhaustion_unwinds_mid_descriptor() {
        for mode in [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe] {
            let mut drv = driver(mode);
            // Fire on the 10th frame allocation: nine pages are already
            // allocated + mapped when the descriptor fails.
            let cfg = FaultConfig::disabled().with_every(FaultKind::FrameExhaustion, 10);
            drv.set_fault_plane(FaultPlane::from_seed(cfg, 7, 0));
            let frames_before = drv.frames.in_use();
            let err = drv.prepare_rx_descriptor(0).unwrap_err();
            assert!(matches!(err, DmaError::Frame(_)), "{mode}: {err}");
            // All-or-nothing: partially built state is fully unwound.
            assert_eq!(drv.frames.in_use(), frames_before, "{mode}: leaked frames");
            let pt = drv.iommu.page_table().stats();
            assert_eq!(pt.maps, pt.unmaps, "{mode}: leaked mappings");
            // The datapath stays usable after recovery.
            drv.set_fault_plane(FaultPlane::disabled());
            let (mut d, _) = drv.prepare_rx_descriptor(0).unwrap();
            assert_eq!(d.len(), 64);
            consume_all(&mut d);
            drv.complete_rx_descriptor(0, &d).unwrap();
        }
    }

    #[test]
    fn injected_iova_exhaustion_unwinds_tx_map() {
        let mut drv = driver(ProtectionMode::LinuxStrict);
        let cfg = FaultConfig::disabled().with_every(FaultKind::IovaExhaustion, 3);
        drv.set_fault_plane(FaultPlane::from_seed(cfg, 7, 0));
        let frames_before = drv.frames.in_use();
        let err = drv.tx_map(0, 4).unwrap_err();
        assert!(matches!(err, DmaError::Iova(AllocError::Injected)), "{err}");
        assert_eq!(drv.frames.in_use(), frames_before, "leaked frames");
        let pt = drv.iommu.page_table().stats();
        assert_eq!(pt.maps, pt.unmaps, "leaked mappings");
        drv.set_fault_plane(FaultPlane::disabled());
        let (pages, _) = drv.tx_map(0, 4).unwrap();
        assert_eq!(pages.len(), 4);
        drv.tx_complete(0, &pages).unwrap();
    }

    #[test]
    fn invalidation_timeout_degrades_but_stays_safe() {
        use fns_iommu::MAX_INVALIDATION_RETRIES;
        let mut drv = driver(ProtectionMode::FastAndSafe);
        let (mut d, _) = drv.prepare_rx_descriptor(0).unwrap();
        consume_all(&mut d);
        // Every queue submission stalls: the batched range invalidation
        // must exhaust its retry budget and degrade to per-page replay.
        let cfg = FaultConfig::disabled().with_every(FaultKind::InvalidationTimeout, 1);
        drv.set_fault_plane(FaultPlane::from_seed(cfg, 7, 0));
        let cpu = drv.complete_rx_descriptor(0, &d).unwrap();
        assert!(cpu > 0);
        let stats = drv.faults().stats();
        assert!(stats.batch_fallbacks >= 1, "batch must degrade");
        assert!(stats.invalidation_retries >= MAX_INVALIDATION_RETRIES as u64);
        // The F&S safety invariant survives the degraded path: every page
        // of the completed descriptor is unreachable.
        for p in d.pages() {
            assert!(
                drv.iommu.translate(p.iova).pa().is_none(),
                "page reachable after degraded invalidation"
            );
        }
        assert_eq!(drv.iommu.stats().stale_iotlb_hits, 0);
    }
}
