//! The discrete-event host simulation.
//!
//! Reproduces the paper's two-server testbed with the measured host (the
//! "DUT") modelled in full detail and the peer host abstracted:
//!
//! ```text
//!  peer senders ──► switch queue (ECN) ──► 100G link ──► NIC buffer
//!                                                          │ (tail drop)
//!       ▲                                                  ▼
//!  peer receivers ◄── 100G link ◄── Tx pipeline    translation pipe
//!   (ACKs back)                        ▲           (IOTLB walk + PCIe)
//!                                      │                   │
//!                                 NAPI/driver ◄── completions per core
//!                               (unmap+invalidate, ACKs, replenish)
//! ```
//!
//! The translation pipe is the serial root-complex/IOMMU resource whose
//! per-page service time — `walk reads × lm + l0` — is exactly the paper's
//! §2.2 model; every throughput collapse in the reproduction emerges from
//! this resource backing up into the NIC buffer.

use std::collections::VecDeque;

use fns_faults::{FaultKind, FaultPlane};
use fns_iova::types::Iova;
use fns_mem::addr::PhysAddr;
use fns_net::packet::{rss_queue, FlowId, Packet, PacketKind};
use fns_net::receiver::FlowReceiver;
use fns_net::sender::{DctcpConfig, DctcpSender};
use fns_net::switchq::SwitchQueue;
use fns_nic::buffer::NicBuffer;
use fns_nic::descriptor::{Descriptor, DescriptorPage};
use fns_nic::ring::RxRing;
use fns_oracle::AuditHandle;
use fns_sim::queue::EventQueue;
use fns_sim::rng::SimRng;
use fns_sim::stats::Histogram;
use fns_sim::time::Nanos;
use fns_snap::{fnv1a, SnapError, SnapReader, SnapWriter};
use fns_trace::{ObsHandle, Sample, Sampler, Trace, TraceCategory, TraceData, TraceHandle};

use crate::config::{SimConfig, Workload};
use crate::driver::{DmaDriver, DriverSalvage};
use crate::flow_table::{FlowSet, FlowTable};
use crate::metrics::RunMetrics;
use crate::resources::SerialResource;
use crate::watchdog::WatchdogState;

/// Packets the NIC keeps in the translation pipe concurrently (the ~100
/// cacheline write buffer is about 1.5 pages; 2 keeps the pipe busy).
const RX_WINDOW_PKTS: u32 = 2;
/// Concurrent Tx DMAs (read tag window covers several pages).
const TX_WINDOW_PKTS: u32 = 6;
/// NAPI poll budget, packets.
const NAPI_BUDGET: usize = 64;
/// Stride granularity for packing small packets into Rx pages.
const STRIDE: u64 = 256;
/// Flow-id offset for DUT→peer flows.
const TX_FLOW_BASE: u32 = crate::flow_table::TX_FLOW_BASE;
/// RNG-fork salt for the driver-side fault plane. Each plane owns its own
/// stream forked from the experiment seed, so enabling faults (or changing
/// one plane's mix) never perturbs the baseline workload trajectory.
const DRIVER_FAULT_SALT: u64 = 0xFA17;
/// RNG-fork salt for the wire-side (switch-queue) fault plane.
const NET_FAULT_SALT: u64 = 0xFA18;

/// Fingerprint of a (normalized) configuration, stored in checkpoints so
/// [`HostSim::restore`] can refuse to resume under a different experiment.
/// `SimConfig` is plain data with a total `Debug` rendering, so hashing the
/// debug string covers every field — including ones added later — without a
/// hand-maintained field list.
pub(crate) fn config_fingerprint(cfg: &SimConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

#[derive(Debug)]
enum Ev {
    /// A peer sender may have window to emit.
    PeerPump(FlowId),
    /// Drain the peer→DUT link.
    ToDutDrain,
    /// Packet lands at the DUT NIC (after propagation).
    NicArrive(Packet),
    /// The NIC tries to start DMAs.
    NicPump,
    /// An Rx DMA finished writing to host memory.
    RxDmaDone { core: usize, pkt: Packet },
    /// NAPI poll on a core.
    NapiPoll(usize),
    /// A DUT sender may have window to emit (data or responses).
    DutPump(FlowId),
    /// The DUT Tx pipeline may start more DMAs.
    TxPump,
    /// A Tx DMA (translation + PCIe read) finished; packet enters the
    /// DUT→peer link.
    TxDmaDone {
        pkt: Packet,
        pages: Vec<DescriptorPage>,
        core: usize,
    },
    /// Drain the DUT→peer link.
    ToPeerDrain,
    /// Packet lands at the peer.
    PeerDeliver(Packet),
    /// Retransmission-timer check for a peer (`true`) or DUT sender.
    RtoCheck { peer: bool, flow: FlowId },
    /// Take the measurement-start snapshot.
    WarmupDone,
    /// Telemetry gauge probe (only scheduled when probes are enabled).
    Sample,
    /// Degradation-watchdog check (only scheduled when the watchdog is
    /// enabled).
    WatchdogCheck,
    /// A storage-class DMA device issues one queued IO: map pages in its
    /// own protection domain, translate them, DMA-read through the Tx
    /// pipe. Only scheduled when the topology has storage devices.
    StorageIssue {
        /// Storage device index (domain `topology.storage_domain(dev)`).
        dev: u16,
    },
    /// A storage IO's DMA finished: complete (unmap + invalidate) its
    /// pages and schedule the next issue after the device's think time.
    StorageDone {
        dev: u16,
        /// Core the completion is charged to.
        core: usize,
        pages: Vec<DescriptorPage>,
    },
    /// Synchronized incast front: every peer flow deposits one burst at
    /// once. Only scheduled under [`Workload::Incast`].
    IncastKick,
}

impl Ev {
    /// Serializes one event for checkpointing (tag in declaration order,
    /// then payload fields).
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Ev::PeerPump(flow) => {
                w.u8(0);
                w.u32(flow.0);
            }
            Ev::ToDutDrain => w.u8(1),
            Ev::NicArrive(pkt) => {
                w.u8(2);
                pkt.snap(w);
            }
            Ev::NicPump => w.u8(3),
            Ev::RxDmaDone { core, pkt } => {
                w.u8(4);
                w.usize(*core);
                pkt.snap(w);
            }
            Ev::NapiPoll(core) => {
                w.u8(5);
                w.usize(*core);
            }
            Ev::DutPump(flow) => {
                w.u8(6);
                w.u32(flow.0);
            }
            Ev::TxPump => w.u8(7),
            Ev::TxDmaDone { pkt, pages, core } => {
                w.u8(8);
                pkt.snap(w);
                w.seq(pages.len());
                for p in pages {
                    w.u64(p.iova.as_u64());
                    w.u64(p.pa.as_u64());
                }
                w.usize(*core);
            }
            Ev::ToPeerDrain => w.u8(9),
            Ev::PeerDeliver(pkt) => {
                w.u8(10);
                pkt.snap(w);
            }
            Ev::RtoCheck { peer, flow } => {
                w.u8(11);
                w.bool(*peer);
                w.u32(flow.0);
            }
            Ev::WarmupDone => w.u8(12),
            Ev::Sample => w.u8(13),
            Ev::WatchdogCheck => w.u8(14),
            Ev::StorageIssue { dev } => {
                w.u8(15);
                w.u64(u64::from(*dev));
            }
            Ev::StorageDone { dev, core, pages } => {
                w.u8(16);
                w.u64(u64::from(*dev));
                w.usize(*core);
                w.seq(pages.len());
                for p in pages {
                    w.u64(p.iova.as_u64());
                    w.u64(p.pa.as_u64());
                }
            }
            Ev::IncastKick => w.u8(17),
        }
    }

    /// Rebuilds an event captured by [`Ev::snap`].
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Ev::PeerPump(FlowId(r.u32()?)),
            1 => Ev::ToDutDrain,
            2 => Ev::NicArrive(Packet::unsnap(r)?),
            3 => Ev::NicPump,
            4 => Ev::RxDmaDone {
                core: r.usize()?,
                pkt: Packet::unsnap(r)?,
            },
            5 => Ev::NapiPoll(r.usize()?),
            6 => Ev::DutPump(FlowId(r.u32()?)),
            7 => Ev::TxPump,
            8 => {
                let pkt = Packet::unsnap(r)?;
                let n = r.seq()?;
                let mut pages = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    pages.push(DescriptorPage {
                        iova: Iova::new(r.u64()?),
                        pa: PhysAddr::new(r.u64()?),
                    });
                }
                let core = r.usize()?;
                Ev::TxDmaDone { pkt, pages, core }
            }
            9 => Ev::ToPeerDrain,
            10 => Ev::PeerDeliver(Packet::unsnap(r)?),
            11 => Ev::RtoCheck {
                peer: r.bool()?,
                flow: FlowId(r.u32()?),
            },
            12 => Ev::WarmupDone,
            13 => Ev::Sample,
            14 => Ev::WatchdogCheck,
            15 => Ev::StorageIssue {
                dev: r.u64()? as u16,
            },
            16 => {
                let dev = r.u64()? as u16;
                let core = r.usize()?;
                let n = r.seq()?;
                let mut pages = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    pages.push(DescriptorPage {
                        iova: Iova::new(r.u64()?),
                        pa: PhysAddr::new(r.u64()?),
                    });
                }
                Ev::StorageDone { dev, core, pages }
            }
            17 => Ev::IncastKick,
            t => {
                return Err(SnapError::BadTag {
                    what: "sim event",
                    tag: t as u64,
                })
            }
        })
    }
}

/// Per-queue Rx ring state with stride packing. In the single-NIC
/// topology ring index == core index (the legacy shape); in multi-device
/// topologies ring `r` belongs to NIC `r / queues_per_nic` and is
/// serviced by core `r % cores`.
struct RingState {
    ring: RxRing,
    /// Currently open (partially filled) page of the front descriptor.
    open: Option<(Iova, u64)>,
    /// Pages of the front descriptor already closed.
    closed_in_front: usize,
}

impl RingState {
    fn snap(&self, w: &mut SnapWriter) {
        self.ring.snap(w);
        w.opt(&self.open, |w, &(iova, filled)| {
            w.u64(iova.as_u64());
            w.u64(filled);
        });
        w.usize(self.closed_in_front);
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Self {
            ring: RxRing::unsnap(r)?,
            open: r.opt(|r| Ok((Iova::new(r.u64()?), r.u64()?)))?,
            closed_in_front: r.usize()?,
        })
    }
}

/// Per-core NAPI state.
#[derive(Default)]
struct NapiState {
    scheduled: bool,
    /// The next poll is a budget-continuation of a running poll chain (no
    /// IRQ entry cost).
    chained: bool,
    rx: VecDeque<Packet>,
    /// Fully consumed Rx descriptors awaiting driver completion, tagged
    /// with the protection domain that prepared them (a core can service
    /// queues of several NICs). Queued at DMA-start (page-consume) time;
    /// NAPI processes them one interrupt period later, by which point the
    /// last page's DMA write has long finished, so the strict
    /// unmap-after-DMA ordering holds.
    desc_done: VecDeque<(u16, Descriptor)>,
    /// Transmitted page lists awaiting completion, tagged with the owning
    /// flow's domain.
    tx_done: VecDeque<(u16, Vec<DescriptorPage>)>,
}

impl NapiState {
    fn snap(&self, w: &mut SnapWriter) {
        w.bool(self.scheduled);
        w.bool(self.chained);
        w.seq(self.rx.len());
        for pkt in &self.rx {
            pkt.snap(w);
        }
        w.seq(self.desc_done.len());
        for (dom, d) in &self.desc_done {
            w.u64(u64::from(*dom));
            d.snap(w);
        }
        w.seq(self.tx_done.len());
        for (dom, pages) in &self.tx_done {
            w.u64(u64::from(*dom));
            w.seq(pages.len());
            for p in pages {
                w.u64(p.iova.as_u64());
                w.u64(p.pa.as_u64());
            }
        }
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let scheduled = r.bool()?;
        let chained = r.bool()?;
        let n = r.seq()?;
        let mut rx = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            rx.push_back(Packet::unsnap(r)?);
        }
        let n = r.seq()?;
        let mut desc_done = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let dom = r.u64()? as u16;
            desc_done.push_back((dom, Descriptor::unsnap(r)?));
        }
        let n = r.seq()?;
        let mut tx_done = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let dom = r.u64()? as u16;
            let m = r.seq()?;
            let mut pages = Vec::with_capacity(m.min(1 << 16));
            for _ in 0..m {
                pages.push(DescriptorPage {
                    iova: Iova::new(r.u64()?),
                    pa: PhysAddr::new(r.u64()?),
                });
            }
            tx_done.push_back((dom, pages));
        }
        Ok(Self {
            scheduled,
            chained,
            rx,
            desc_done,
            tx_done,
        })
    }
}

/// Request/response connection bookkeeping.
struct RrConn {
    /// Flow carrying requests (or responses toward the DUT when the DUT is
    /// the client).
    inbound_flow: FlowId,
    outbound_flow: FlowId,
    /// Next in-order byte boundary completing an inbound message.
    next_in_boundary: u64,
    next_out_boundary: u64,
    /// Issue timestamps of outstanding requests (latency accounting).
    issue_times: VecDeque<Nanos>,
    core: usize,
}

impl RrConn {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.inbound_flow.0);
        w.u32(self.outbound_flow.0);
        w.u64(self.next_in_boundary);
        w.u64(self.next_out_boundary);
        w.seq(self.issue_times.len());
        for &t in &self.issue_times {
            w.u64(t);
        }
        w.usize(self.core);
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let inbound_flow = FlowId(r.u32()?);
        let outbound_flow = FlowId(r.u32()?);
        let next_in_boundary = r.u64()?;
        let next_out_boundary = r.u64()?;
        let n = r.seq()?;
        let mut issue_times = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            issue_times.push_back(r.u64()?);
        }
        Ok(Self {
            inbound_flow,
            outbound_flow,
            next_in_boundary,
            next_out_boundary,
            issue_times,
            core: r.usize()?,
        })
    }
}

/// Measurement snapshot taken at warmup end.
#[derive(Default, Clone)]
struct Snapshot {
    iommu: fns_iommu::IommuStats,
    /// Per-domain counter marks (same moment as `iommu`), so the reported
    /// window attributes translations tenant by tenant.
    domains: Vec<fns_iommu::DomainStats>,
    rx_delivered: u64,
    tx_delivered: u64,
    nic_enq: u64,
    nic_drops: u64,
    ring_drops: u64,
    switch_drops: u64,
    tx_pkts: u64,
    churned_conns: u64,
    storage_ios: u64,
    storage_bytes: u64,
    core_busy: Vec<Nanos>,
    locality_mark: usize,
}

impl Snapshot {
    fn snap(&self, w: &mut SnapWriter) {
        self.iommu.snap(w);
        w.seq(self.domains.len());
        for d in &self.domains {
            d.snap(w);
        }
        w.u64(self.rx_delivered);
        w.u64(self.tx_delivered);
        w.u64(self.nic_enq);
        w.u64(self.nic_drops);
        w.u64(self.ring_drops);
        w.u64(self.switch_drops);
        w.u64(self.tx_pkts);
        w.u64(self.churned_conns);
        w.u64(self.storage_ios);
        w.u64(self.storage_bytes);
        w.u64_slice(&self.core_busy);
        w.usize(self.locality_mark);
    }

    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let iommu = fns_iommu::IommuStats::unsnap(r)?;
        let n = r.seq()?;
        let mut domains = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            domains.push(fns_iommu::DomainStats::unsnap(r)?);
        }
        Ok(Self {
            iommu,
            domains,
            rx_delivered: r.u64()?,
            tx_delivered: r.u64()?,
            nic_enq: r.u64()?,
            nic_drops: r.u64()?,
            ring_drops: r.u64()?,
            switch_drops: r.u64()?,
            tx_pkts: r.u64()?,
            churned_conns: r.u64()?,
            storage_ios: r.u64()?,
            storage_bytes: r.u64()?,
            core_busy: r.u64_vec()?,
            locality_mark: r.usize()?,
        })
    }
}

/// Reusable cross-run storage for back-to-back simulations — the *run
/// arena*. A sweep worker owns one arena and threads it through
/// [`HostSim::run_in`]; each finished run hands its big allocations back
/// (event-queue node slab, IO page-table slab, IOTLB/PTcache tables, frame
/// bitmap, flow tables, pooled descriptor-page and invalidation vectors)
/// and the next run rewinds them instead of reallocating. Every salvaged
/// component resets to its exact as-new state, so a run executed in a
/// recycled arena is bit-identical to one executed fresh —
/// `tests/golden_determinism.rs` pins that.
///
/// # Examples
///
/// ```no_run
/// use fns_core::{HostSim, ProtectionMode, RunArena, SimConfig};
///
/// let mut arena = RunArena::new();
/// for flows in [5, 10, 20] {
///     let mut cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
///     cfg.flows = flows;
///     let m = HostSim::run_in(cfg, &mut arena);
///     println!("{flows} flows: {:.1} Gbps", m.rx_gbps());
/// }
/// ```
#[derive(Default)]
pub struct RunArena {
    queue: Option<EventQueue<Ev>>,
    driver: Option<DriverSalvage>,
    peer_senders: FlowTable<DctcpSender>,
    dut_receivers: FlowTable<FlowReceiver>,
    dut_senders: FlowTable<DctcpSender>,
    peer_receivers: FlowTable<FlowReceiver>,
    core_of: FlowTable<usize>,
    last_queue_reallocs: u64,
}

impl RunArena {
    /// Creates an empty arena. The first run through it allocates
    /// everything fresh; subsequent runs recycle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times the event queue grew its storage during the most
    /// recently harvested run. A warm arena on a steady workload reports
    /// zero — the smoke benchmark asserts exactly that.
    pub fn last_queue_reallocs(&self) -> u64 {
        self.last_queue_reallocs
    }
}

/// The full host simulation.
///
/// # Examples
///
/// ```no_run
/// use fns_core::{HostSim, ProtectionMode, SimConfig};
///
/// let cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
/// let metrics = HostSim::new(cfg).run();
/// println!("Rx goodput: {:.1} Gbps", metrics.rx_gbps());
/// ```
pub struct HostSim {
    cfg: SimConfig,
    q: EventQueue<Ev>,
    rng: SimRng,
    drv: DmaDriver,
    rings: Vec<RingState>,
    /// One input buffer per NIC (index = NIC = protection domain). The
    /// single-NIC topology has exactly one, preserving the legacy shape.
    nic_bufs: Vec<NicBuffer<Packet>>,
    /// Round-robin cursor over the NIC buffers for DMA-start arbitration.
    nic_rr: usize,
    /// The Rx-direction translation pipeline (walker + write-buffer drain):
    /// per-page service is exactly the paper's §2.2 model,
    /// `reads x lm + l0`. ACK transmissions translate here too — the
    /// paper's unidirectional model only fits its measurements if ACK walk
    /// reads land on the same bottleneck as Rx walks.
    pipe: SerialResource,
    /// Separate translation engine for bulk Tx *data* (PCIe reads): the
    /// paper's Figure 10 shows F&S sustaining line rate in both directions
    /// simultaneously, which requires per-direction walk capacity; the
    /// directions interfere through the shared IOTLB/PTcaches and memory
    /// latency instead.
    tx_pipe: SerialResource,
    cores: Vec<SerialResource>,
    napi: Vec<NapiState>,
    rx_inflight: u32,
    tx_inflight: u32,
    /// Per-core Tx queues of mapped packets waiting for a pipe slot; the
    /// NIC arbitrates round-robin so one core's bulk backlog cannot starve
    /// another core's ACKs.
    tx_queues: Vec<VecDeque<(Packet, Vec<DescriptorPage>)>>,
    tx_rr: usize,
    peer_senders: FlowTable<DctcpSender>,
    dut_receivers: FlowTable<FlowReceiver>,
    dut_senders: FlowTable<DctcpSender>,
    peer_receivers: FlowTable<FlowReceiver>,
    core_of: FlowTable<usize>,
    to_dut: SwitchQueue,
    to_dut_link: SerialResource,
    to_dut_draining: bool,
    to_peer: SwitchQueue,
    to_peer_link: SerialResource,
    to_peer_draining: bool,
    rr_conns: Vec<RrConn>,
    /// Flows with an outstanding RtoCheck event (peer-side and DUT-side
    /// senders tracked separately), so at most one timer event exists per
    /// sender at a time.
    rto_armed_peer: FlowSet,
    rto_armed_dut: FlowSet,
    latency: Histogram,
    /// Drops due to descriptor exhaustion (ring empty) — distinct from NIC
    /// buffer overflow but reported together.
    ring_drops: u64,
    tx_pkts_sent: u64,
    /// Next in-order byte boundary completing a connection, per churn flow
    /// (only populated under [`Workload::Churn`]).
    churn_next: FlowTable<u64>,
    /// Connections completed and restarted (churn workload).
    churned_conns: u64,
    /// Storage-device IOs completed / bytes DMA-read.
    storage_ios: u64,
    storage_bytes: u64,
    /// Memory-traffic accounting for walk-latency inflation.
    mem_epoch_start: Nanos,
    mem_epoch_bytes: u64,
    mem_util: f64,
    /// Cumulative DMA bytes this sim has pushed through `note_mem_traffic`
    /// — the monotone counter behind [`HostSim::epoch_digest`], which
    /// exports per-epoch deltas to sibling shards of the sharded engine.
    dma_bytes_total: u64,
    /// `dma_bytes_total` as of the last drained epoch digest.
    epoch_dma_mark: u64,
    /// `invalidation_queue_entries` as of the last drained epoch digest.
    epoch_inv_mark: u64,
    snapshot: Snapshot,
    warmed_up: bool,
    /// Fault plane for the wire (switch-queue) sites. The driver-side plane
    /// lives inside [`DmaDriver`].
    net_faults: FaultPlane,
    /// Event-trace recorder handle. `Off` unless tracing is requested or a
    /// fault plane is enabled (fault records flow through the trace); the
    /// driver and both fault planes hold clones of the same recorder.
    trace: TraceHandle,
    /// Causal observability plane (provenance/txn/registry); `Off` unless
    /// `cfg.observe` arms a layer. The driver holds a clone.
    obs: ObsHandle,
    /// Time-series gauge sampler (disabled unless `cfg.probes` enables it).
    sampler: Sampler,
    /// Degradation-watchdog state (inert unless `cfg.watchdog` enables it).
    wd: WatchdogState,
    /// Reused hot-path buffers (see [`Scratch`]); never serialized.
    scratch: Scratch,
}

/// Reusable buffers for the per-event hot paths. Every buffer is filled and
/// fully drained within a single event handler — each is empty again before
/// the handler returns — so none of this is observable state: snapshots skip
/// it, and reuse saves only the per-event heap allocations.
#[derive(Default)]
struct Scratch {
    /// Pages touched by the packet currently DMAing (`take_rx_pages`); the
    /// caller translates from it and clears it.
    rx_pages: Vec<Iova>,
    /// Descriptors completed while taking Rx pages, drained to NAPI.
    rx_completed: Vec<Descriptor>,
    /// Packets pulled from a sender before entering a switch/Tx queue.
    pkts: Vec<Packet>,
    /// ACKs generated during a NAPI poll, mapped at poll end.
    acks: Vec<(FlowId, fns_net::receiver::AckToSend)>,
    /// DUT flows with newly acked bytes needing a Tx pump.
    pump_flows: Vec<FlowId>,
    /// DUT flows owing a fast retransmission.
    fast_rtx: Vec<FlowId>,
    /// Receivers touched this poll (GRO ACK flush set).
    touched_rx: Vec<FlowId>,
    /// Mapped transmissions (packet + pages) bound for the Tx queues.
    mapped: Vec<(Packet, Vec<DescriptorPage>)>,
    /// Peer flows to pump after peer-side app-boundary processing.
    peer_pumps: Vec<FlowId>,
}

impl HostSim {
    /// Builds a simulation from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self::new_in(cfg, &mut RunArena::new())
    }

    /// Builds a simulation on top of an arena's recycled storage. The
    /// result is behaviorally identical to [`HostSim::new`] — only heap
    /// allocations are saved, never state.
    pub fn new_in(mut cfg: SimConfig, arena: &mut RunArena) -> Self {
        if cfg.mode.huge_rx() {
            // Strict huge-Rx requires 2 MB (512-page) descriptors so one
            // huge mapping is exactly one descriptor.
            cfg.pages_per_descriptor = 512;
        }
        // The IOMMU serves one protection domain per device: derive the
        // domain count from the topology (a directly configured larger
        // count is honored, e.g. for harness replays).
        cfg.iommu.domains = cfg.iommu.domains.max(cfg.topology.domains());
        let rng = SimRng::seed(cfg.seed);
        let mut drv = DmaDriver::with_descriptor_pages_in(
            cfg.mode,
            cfg.cores,
            cfg.iommu,
            cfg.cpu,
            cfg.deferred_flush_threshold,
            cfg.locality_samples,
            cfg.pages_per_descriptor as u64,
            arena.driver.take(),
        );
        drv.set_coalesce_inv_drain(cfg.coalesce_inv_drain);
        // Recycle the event queue only when the configured implementation
        // matches; a sweep mixing wheel and heap runs rebuilds on the
        // transition.
        let mut q = match arena.queue.take() {
            Some(mut q) if q.kind() == cfg.queue => {
                q.reset();
                q
            }
            // Pre-sized so steady-state event churn never reallocates the
            // backlog (the deepest observed backlogs stay well below this).
            _ => EventQueue::with_kind(cfg.queue, 4096),
        };
        q.set_fast_forward(cfg.queue_fast_forward);
        let mut sim = Self {
            q,
            rng,
            drv,
            rings: Vec::new(),
            nic_bufs: (0..cfg.topology.nics.max(1))
                .map(|_| NicBuffer::new(cfg.nic_buffer_bytes))
                .collect(),
            nic_rr: 0,
            pipe: SerialResource::new(),
            tx_pipe: SerialResource::new(),
            cores: (0..cfg.cores).map(|_| SerialResource::new()).collect(),
            napi: (0..cfg.cores).map(|_| NapiState::default()).collect(),
            rx_inflight: 0,
            tx_inflight: 0,
            tx_queues: (0..cfg.cores).map(|_| VecDeque::new()).collect(),
            tx_rr: 0,
            peer_senders: std::mem::take(&mut arena.peer_senders),
            dut_receivers: std::mem::take(&mut arena.dut_receivers),
            dut_senders: std::mem::take(&mut arena.dut_senders),
            peer_receivers: std::mem::take(&mut arena.peer_receivers),
            core_of: std::mem::take(&mut arena.core_of),
            to_dut: SwitchQueue::new(4 << 20, cfg.ecn_k_bytes),
            to_dut_link: SerialResource::new(),
            to_dut_draining: false,
            to_peer: SwitchQueue::new(4 << 20, cfg.ecn_k_bytes),
            to_peer_link: SerialResource::new(),
            to_peer_draining: false,
            rr_conns: Vec::new(),
            rto_armed_peer: FlowSet::new(),
            rto_armed_dut: FlowSet::new(),
            latency: Histogram::new(),
            ring_drops: 0,
            tx_pkts_sent: 0,
            churn_next: FlowTable::new(),
            churned_conns: 0,
            storage_ios: 0,
            storage_bytes: 0,
            mem_epoch_start: 0,
            mem_epoch_bytes: 0,
            mem_util: 0.0,
            dma_bytes_total: 0,
            epoch_dma_mark: 0,
            epoch_inv_mark: 0,
            snapshot: Snapshot::default(),
            warmed_up: false,
            net_faults: FaultPlane::disabled(),
            trace: TraceHandle::default(),
            obs: ObsHandle::default(),
            sampler: Sampler::new(cfg.probes),
            wd: WatchdogState::default(),
            scratch: Scratch::default(),
            cfg,
        };
        sim.wd.report.enabled = sim.cfg.watchdog.enabled;
        // The safety oracle must observe *every* mapping, including the
        // init-time ring fill and churn — unlike the trace/fault planes it
        // installs before init, otherwise steady-state accesses to
        // init-mapped pages would read as never-mapped violations. It
        // consumes no RNG, so the workload trajectory is unaffected.
        if sim.cfg.audit.enabled {
            let window =
                sim.cfg.deferred_flush_threshold as u64 + sim.cfg.pages_per_descriptor as u64;
            let contract = sim.cfg.mode.contract(window);
            sim.drv
                .set_audit(AuditHandle::recording(contract, sim.cfg.audit.fatal));
        }
        // Seeded driver bugs arm before init so sabotages in pinned/huge
        // modes (whose mappings happen at init) can trigger. `None` — the
        // default — changes no run by a single bit.
        if !matches!(sim.cfg.sabotage, crate::driver::Sabotage::None) {
            sim.drv.set_sabotage(sim.cfg.sabotage);
        }
        sim.init();
        // Create the trace recorder only after init: ring-fill and aging
        // churn stay untraced so the recorder starts at the same point the
        // fault planes do. Fault records always flow through the trace
        // (RunMetrics::fault_log is a filtered view of it), so an enabled
        // fault plane forces the Fault category on with enough capacity to
        // hold every record the chaos suites expect.
        let mut mask = sim.cfg.trace.mask & TraceCategory::ALL_MASK;
        let mut capacity = sim.cfg.trace.capacity as usize;
        if sim.cfg.faults.any_enabled() {
            mask |= TraceCategory::Fault.bit();
            capacity = capacity.max(fns_faults::LOG_CAP);
        }
        if sim.cfg.audit.enabled && mask != 0 {
            mask |= TraceCategory::Audit.bit();
        }
        // The flight recorder rides inside the trace handle: arming it
        // creates a recording handle even with an empty category mask (an
        // empty mask records nothing to the main ring, so drained traces
        // stay identical to an untraced run).
        let flight_cap = if sim.cfg.observe.flight {
            sim.cfg.observe.flight_capacity.max(1) as usize
        } else {
            0
        };
        if mask != 0 || flight_cap > 0 {
            sim.trace = TraceHandle::recording_with_flight(mask, capacity, flight_cap);
            sim.drv.set_trace(sim.trace.clone());
            // No-op unless auditing is on: violations then land in the
            // trace as audit_violation events alongside the datapath's.
            sim.drv.audit().set_trace(sim.trace.clone());
        }
        // The observer installs after init, like the trace plane:
        // provenance timelines and transaction spans describe steady
        // state, not ring-fill churn. It only reads the simulation, so
        // armed runs stay bit-identical to bare runs.
        if sim.cfg.observe.any() {
            sim.obs = ObsHandle::recording(sim.cfg.observe);
            sim.drv.set_obs(sim.obs.clone());
        }
        // Install the fault planes only after init: ring fill and aging
        // churn run fault-free so every configuration starts from the same
        // state, and the planes' forked RNG streams leave the workload
        // trajectory untouched.
        if sim.cfg.faults.any_enabled() {
            sim.drv.set_fault_plane(FaultPlane::from_seed(
                sim.cfg.faults,
                sim.cfg.seed,
                DRIVER_FAULT_SALT,
            ));
            sim.net_faults = FaultPlane::from_seed(sim.cfg.faults, sim.cfg.seed, NET_FAULT_SALT);
            sim.net_faults.set_trace(sim.trace.clone());
        }
        if sim.sampler.enabled() {
            sim.q.push(sim.sampler.interval_ns(), Ev::Sample);
        }
        if sim.cfg.watchdog.enabled {
            sim.q
                .push(sim.cfg.watchdog.check_interval_ns.max(1), Ev::WatchdogCheck);
        }
        sim
    }

    // ----- topology geometry ------------------------------------------------
    //
    // Every helper collapses to the legacy identity in the single-NIC
    // topology (ring == core, domain 0, one NIC buffer), so a
    // `Topology::single_nic()` run is bit-identical to the pre-topology
    // simulation.

    fn ring_count(&self) -> usize {
        if self.cfg.topology.is_single() {
            self.cfg.cores
        } else {
            self.cfg.topology.rings()
        }
    }

    fn ring_core(&self, ring: usize) -> usize {
        if self.cfg.topology.is_single() {
            ring
        } else {
            ring % self.cfg.cores
        }
    }

    fn ring_domain(&self, ring: usize) -> u16 {
        if self.cfg.topology.is_single() {
            0
        } else {
            (ring / self.cfg.topology.queues_per_nic.max(1) as usize) as u16
        }
    }

    fn ring_nic(&self, ring: usize) -> usize {
        if self.cfg.topology.is_single() {
            0
        } else {
            ring / self.cfg.topology.queues_per_nic.max(1) as usize
        }
    }

    /// The Rx queue a packet's flow hashes to: the legacy per-core ring in
    /// the single-NIC shape, an RSS-spread (NIC, queue) ring otherwise.
    fn ring_for_packet(&self, pkt: &Packet) -> usize {
        if self.cfg.topology.is_single() {
            self.core_of
                .get(pkt.flow)
                .copied()
                .unwrap_or((pkt.flow.0 as usize) % self.cfg.cores)
        } else {
            rss_queue(pkt.flow, self.cfg.topology.rings())
        }
    }

    /// The protection domain a flow's traffic maps/translates in (the NIC
    /// its RSS hash lands on). Domain 0 always in the single-NIC shape.
    fn flow_domain(&self, flow: FlowId) -> u16 {
        if self.cfg.topology.is_single() {
            0
        } else {
            self.ring_domain(rss_queue(flow, self.cfg.topology.rings()))
        }
    }

    /// The core servicing a flow's RSS ring (multi-device topologies home
    /// flows by queue, not round-robin).
    fn home_core(&self, flow: FlowId) -> usize {
        self.ring_core(rss_queue(flow, self.cfg.topology.rings()))
    }

    fn init(&mut self) {
        // Age the allocator to long-running steady state before anything
        // else touches it.
        let aged_pages = (self.cfg.working_set_pages() as f64 * self.cfg.aging_factor) as u64;
        if aged_pages > 0 {
            let mut aging_rng = self.rng.fork(0xA6E);
            self.drv.age_allocator(&mut aging_rng, aged_pages);
        }
        // Fill the Rx rings, each in its owning device's domain.
        let descs = self.cfg.ring_descriptors();
        for r in 0..self.ring_count() {
            let core = self.ring_core(r);
            let dom = self.ring_domain(r);
            // Replenish whenever a slot is free (mlx5 keeps its RQ full);
            // anything lazier can strand a few pages below what a jumbo
            // packet needs when descriptors are large and few.
            let mut ring = RxRing::new(descs, descs);
            for _ in 0..descs {
                // The fault plane is installed after init: failure here is a
                // real resource bug, not an injected one.
                let (d, _) = self
                    .drv
                    .prepare_rx_descriptor_in(dom, core)
                    .expect("fault-free init fill");
                ring.push(d);
            }
            self.rings.push(RingState {
                ring,
                open: None,
                closed_in_front: 0,
            });
        }
        if self.cfg.aging_factor > 0.0 {
            self.churn_rings();
        }
        self.init_workload();
        // Storage devices start with their queues full of outstanding IOs,
        // issue times staggered so device queues do not phase-lock.
        let topo = self.cfg.topology;
        for dev in 0..topo.storage_devices {
            for slot in 0..topo.storage_queue_depth {
                let at = 1 + (u64::from(dev) * 131 + u64::from(slot) * 211) % 100_000;
                self.q.push(at, Ev::StorageIssue { dev });
            }
        }
        self.q.push(self.cfg.warmup, Ev::WarmupDone);
    }

    /// Init-time aging, part 2: cycles every ring several times with
    /// interposed cross-core Tx alloc/free traffic, so each descriptor's 64
    /// page-at-a-time IOVAs end up a shuffled sample of the whole working
    /// set — the state a long-running host is measured in (Figures 2e/3e).
    /// Only the allocator state matters here; the IOMMU caches are churned
    /// too but re-warm during the simulation's warmup phase.
    fn churn_rings(&mut self) {
        self.drv.set_locality_recording(false);
        let mut rng = self.rng.fork(0xC0_95);
        const ROUNDS: usize = 24;
        let descs = self.cfg.ring_descriptors();
        for _ in 0..ROUNDS {
            for _ in 0..descs {
                for r in 0..self.ring_count() {
                    let core = self.ring_core(r);
                    let dom = self.ring_domain(r);
                    // Consume + complete the head descriptor.
                    let rs = &mut self.rings[r];
                    let head = rs.ring.head_mut().expect("ring filled at init");
                    while head.consume_page().is_some() {}
                    let d = rs.ring.pop_consumed().expect("fully consumed");
                    self.drv
                        .complete_rx_descriptor_in(dom, core, &d)
                        .expect("fault-free init churn");
                    self.drv.recycle_descriptor(d);
                    // Interposed ACK-style Tx churn, freed on another core.
                    for _ in 0..rng.range(0, 24) {
                        let (pages, _) = self
                            .drv
                            .tx_map_in(dom, core, 1)
                            .expect("fault-free init churn");
                        let comp =
                            (core + 1 + rng.index(self.cfg.cores.max(2) - 1)) % self.cfg.cores;
                        self.drv
                            .tx_complete_in(dom, comp, &pages)
                            .expect("fault-free init churn");
                        self.drv.recycle_pages(pages);
                    }
                    let (fresh, _) = self
                        .drv
                        .prepare_rx_descriptor_in(dom, core)
                        .expect("fault-free init churn");
                    self.rings[r].ring.push(fresh);
                }
            }
        }
        self.drv.set_locality_recording(true);
    }

    fn dctcp(&self) -> DctcpConfig {
        DctcpConfig {
            mss: self.cfg.mtu,
            ..DctcpConfig::default()
        }
    }

    fn add_peer_flow(&mut self, flow: FlowId, core: usize, unbounded: bool) {
        let mut s = DctcpSender::new(flow, self.dctcp(), 0);
        if unbounded {
            s.set_unbounded();
        }
        self.peer_senders.insert(flow, s);
        self.dut_receivers
            .insert(flow, FlowReceiver::new(flow, self.cfg.ack_coalesce));
        self.core_of.insert(flow, core);
        // Jittered start (spread over 2 ms) so slow starts do not
        // synchronize into one giant loss burst.
        let start = self.rng.range(1, 2_000_000);
        self.q.push(start, Ev::PeerPump(flow));
    }

    fn add_dut_flow(&mut self, flow: FlowId, core: usize, unbounded: bool) {
        let mut s = DctcpSender::new(flow, self.dctcp(), 0);
        if unbounded {
            s.set_unbounded();
        }
        self.dut_senders.insert(flow, s);
        self.peer_receivers
            .insert(flow, FlowReceiver::new(flow, self.cfg.ack_coalesce));
        self.core_of.insert(flow, core);
        if unbounded {
            let start = self.rng.range(1, 50_000);
            self.q.push(start, Ev::DutPump(flow));
        }
    }

    fn init_workload(&mut self) {
        let cores = self.cfg.cores;
        let single = self.cfg.topology.is_single();
        // Pre-size the dense flow tables: dc-scale scenarios insert tens
        // of thousands of flows, and growing segment-by-segment through
        // `insert`'s incremental resize would pay repeated doubling
        // reallocations during construction.
        let low = self.cfg.flows as usize + 1;
        let high = match self.cfg.workload {
            Workload::Bidirectional { tx_flows } => tx_flows as usize,
            Workload::RequestResponse { .. } => self.cfg.flows as usize,
            Workload::RpcColocated { .. } => self.cfg.flows as usize + 1,
            _ => 0,
        };
        self.peer_senders.reserve(low, high);
        self.dut_receivers.reserve(low, high);
        self.dut_senders.reserve(low, high);
        self.peer_receivers.reserve(low, high);
        self.core_of.reserve(low, high);
        self.rto_armed_peer.reserve(low, high);
        self.rto_armed_dut.reserve(low, high);
        match self.cfg.workload {
            Workload::IperfRx => {
                for i in 0..self.cfg.flows {
                    let flow = FlowId(i);
                    let core = if single {
                        i as usize % cores
                    } else {
                        self.home_core(flow)
                    };
                    self.add_peer_flow(flow, core, true);
                }
            }
            Workload::Bidirectional { tx_flows } => {
                // Rx flows on the first half of the cores, Tx flows on the
                // second half (the paper runs them on distinct cores). In
                // multi-device topologies RSS decides the homing instead.
                let rx_cores = (cores - tx_flows as usize).max(1);
                for i in 0..self.cfg.flows {
                    let flow = FlowId(i);
                    let core = if single {
                        i as usize % rx_cores
                    } else {
                        self.home_core(flow)
                    };
                    self.add_peer_flow(flow, core, true);
                }
                for j in 0..tx_flows {
                    let flow = FlowId(TX_FLOW_BASE + j);
                    let core = if single {
                        (rx_cores + (j as usize % (cores - rx_cores).max(1))).min(cores - 1)
                    } else {
                        self.home_core(flow)
                    };
                    self.add_dut_flow(flow, core, true);
                }
            }
            Workload::RequestResponse {
                request_bytes,
                response_bytes,
                depth,
                dut_is_server,
                ..
            } => {
                for i in 0..self.cfg.flows {
                    // The conn's core must be where its inbound data lands:
                    // round-robin in the legacy shape, the RSS ring's core
                    // otherwise.
                    let core = if single {
                        i as usize % cores
                    } else {
                        self.home_core(FlowId(i))
                    };
                    let client_flow = FlowId(i);
                    let server_flow = FlowId(TX_FLOW_BASE + i);
                    if dut_is_server {
                        // Peer clients send requests; DUT replies.
                        self.add_peer_flow(client_flow, core, false);
                        self.add_dut_flow(server_flow, core, false);
                        let s = self.peer_senders.get_mut(client_flow).unwrap();
                        s.enqueue_app_bytes(request_bytes * depth as u64);
                        self.rr_conns.push(RrConn {
                            inbound_flow: client_flow,
                            outbound_flow: server_flow,
                            next_in_boundary: request_bytes,
                            next_out_boundary: response_bytes,
                            issue_times: (0..depth).map(|_| 0).collect(),
                            core,
                        });
                    } else {
                        // DUT clients send requests; peer replies arrive as
                        // inbound data.
                        self.add_dut_flow(server_flow, core, false);
                        self.add_peer_flow(client_flow, core, false);
                        let s = self.dut_senders.get_mut(server_flow).unwrap();
                        s.enqueue_app_bytes(request_bytes * depth as u64);
                        self.q.push(1 + i as u64 * 97, Ev::DutPump(server_flow));
                        self.rr_conns.push(RrConn {
                            inbound_flow: client_flow,
                            outbound_flow: server_flow,
                            next_in_boundary: response_bytes,
                            next_out_boundary: request_bytes,
                            issue_times: (0..depth).map(|_| 0).collect(),
                            core,
                        });
                    }
                }
            }
            Workload::RpcColocated {
                rpc_bytes,
                response_bytes,
            } => {
                // iperf flows on all but the last core.
                let iperf_cores = (cores - 1).max(1);
                for i in 0..self.cfg.flows {
                    let flow = FlowId(i);
                    let core = if single {
                        i as usize % iperf_cores
                    } else {
                        self.home_core(flow)
                    };
                    self.add_peer_flow(flow, core, true);
                }
                // RPC connection on the last core, closed loop, depth 1
                // (RSS-homed like everything else in multi-device shapes).
                let req_flow = FlowId(self.cfg.flows);
                let resp_flow = FlowId(TX_FLOW_BASE + self.cfg.flows);
                let rpc_core = if single {
                    cores - 1
                } else {
                    self.home_core(req_flow)
                };
                self.add_peer_flow(req_flow, rpc_core, false);
                self.add_dut_flow(resp_flow, rpc_core, false);
                self.peer_senders
                    .get_mut(req_flow)
                    .unwrap()
                    .enqueue_app_bytes(rpc_bytes);
                self.rr_conns.push(RrConn {
                    inbound_flow: req_flow,
                    outbound_flow: resp_flow,
                    next_in_boundary: rpc_bytes,
                    next_out_boundary: response_bytes,
                    issue_times: VecDeque::from([0]),
                    core: rpc_core,
                });
            }
            Workload::Churn { conn_bytes } => {
                // Bounded connections: each flow deposits one connection's
                // worth of bytes; NAPI detects the completed boundary and
                // restarts the connection (see process_churn_boundaries).
                let conn_bytes = conn_bytes.max(1);
                for i in 0..self.cfg.flows {
                    let flow = FlowId(i);
                    let core = if single {
                        i as usize % cores
                    } else {
                        self.home_core(flow)
                    };
                    self.add_peer_flow(flow, core, false);
                    self.peer_senders
                        .get_mut(flow)
                        .expect("just inserted")
                        .enqueue_app_bytes(conn_bytes);
                    self.churn_next.insert(flow, conn_bytes);
                }
            }
            Workload::Incast { .. } => {
                // Flows start idle; the first kick releases the first burst
                // on every sender at once.
                for i in 0..self.cfg.flows {
                    let flow = FlowId(i);
                    let core = if single {
                        i as usize % cores
                    } else {
                        self.home_core(flow)
                    };
                    self.add_peer_flow(flow, core, false);
                }
                self.q.push(1, Ev::IncastKick);
            }
        }
    }

    /// Runs the simulation to completion and returns the measured metrics.
    pub fn run(mut self) -> RunMetrics {
        let end = self.cfg.end_time();
        self.step_until(end);
        self.collect(end)
    }

    /// Runs `cfg` to completion inside `arena`: construction recycles the
    /// arena's storage, and the finished run's allocations are harvested
    /// back for the next call. Metrics are bit-identical to
    /// `HostSim::new(cfg).run()`.
    pub fn run_in(cfg: SimConfig, arena: &mut RunArena) -> RunMetrics {
        Self::new_in(cfg, arena).run_salvaging(arena)
    }

    /// Finishes a sim built with [`HostSim::new_in`]: runs to the configured
    /// end time, collects metrics, and harvests the run's allocations back
    /// into `arena` for the next construction. `run_in` is exactly
    /// `new_in` + `run_salvaging`; the split exists so callers (e.g. the
    /// profiling harness) can time construction and the event loop apart.
    pub fn run_salvaging(mut self, arena: &mut RunArena) -> RunMetrics {
        let end = self.cfg.end_time();
        self.step_until(end);
        self.collect_into(end, Some(arena))
    }

    /// Processes events up to (and including) time `t`.
    pub fn step_until(&mut self, t: Nanos) {
        while let Some(next) = self.q.peek_time() {
            if next > t {
                break;
            }
            let (now, ev) = self.q.pop().expect("peeked event vanished");
            self.handle(now, ev);
        }
    }

    /// Queued-but-unretired PTcache wipe epochs in the driver's pending
    /// ring. Debug/inspection helper: lets tests aim a snapshot at a
    /// moment when the coalesced invalidation drain is mid-flight.
    pub fn pending_wipe_epochs(&self) -> usize {
        self.drv.pending_wipes()
    }

    /// Snapshot of the peer senders' transport state:
    /// `(flow, snd_una, cwnd, timeouts, retransmits, rto_deadline)`.
    /// Debug/inspection helper for tests and examples.
    pub fn peer_flow_states(&self) -> Vec<(FlowId, u64, u64, u64, u64, Option<Nanos>)> {
        self.peer_senders
            .iter()
            .map(|(f, s)| {
                (
                    f,
                    s.bytes_in_flight(),
                    s.cwnd(),
                    s.timeouts,
                    s.retransmits,
                    s.rto_deadline(),
                )
            })
            .collect()
    }

    /// Finalizes the run at the configured end time (use after
    /// [`HostSim::step_until`]).
    pub fn finish(self) -> RunMetrics {
        let end = self.cfg.end_time();
        self.collect(end)
    }

    // ----- checkpoint / restore --------------------------------------------

    /// Serializes the complete simulation state into a versioned `fns-snap`
    /// checkpoint. Restoring it with [`HostSim::restore`] under the same
    /// configuration and running to the end produces **bit-identical**
    /// [`RunMetrics`] (fault log and trace included) versus the
    /// uninterrupted run — `tests/golden_determinism.rs` pins that.
    ///
    /// Takes `&mut self` because the event backlog must be drained to
    /// serialize it in deterministic pop order. The backlog is then rebuilt
    /// in a *fresh* queue rather than re-pushed in place: the timing
    /// wheel's spill invariant (every heap spill lies beyond the top
    /// level's current block) does not survive re-pushing into a drained
    /// wheel whose cursors have advanced. Rebuilding also leaves the
    /// continuing simulation with exactly the queue a restore would build,
    /// so both futures are the same by construction.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(config_fingerprint(&self.cfg));
        for word in self.rng.state() {
            w.u64(word);
        }
        // Event backlog, in deterministic (time, seq) pop order.
        let (qnow, popped, seq) = self.q.counters();
        let mut events = Vec::with_capacity(self.q.len());
        while let Some(e) = self.q.pop() {
            events.push(e);
        }
        w.u64(qnow);
        w.u64(popped);
        w.u64(seq);
        w.seq(events.len());
        for (at, ev) in &events {
            w.u64(*at);
            ev.snap(&mut w);
        }
        let mut q = EventQueue::with_kind(self.q.kind(), 4096);
        q.set_fast_forward(self.cfg.queue_fast_forward);
        for (at, ev) in events {
            q.push(at, ev);
        }
        q.set_counters(qnow, popped, seq);
        self.q = q;
        self.drv.snap(&mut w);
        self.drv.audit().snap(&mut w);
        self.trace.snap(&mut w);
        w.seq(self.rings.len());
        for rs in &self.rings {
            rs.snap(&mut w);
        }
        w.seq(self.nic_bufs.len());
        for b in &self.nic_bufs {
            b.snap_with(&mut w, |w, p| p.snap(w));
        }
        w.usize(self.nic_rr);
        self.pipe.snap(&mut w);
        self.tx_pipe.snap(&mut w);
        w.seq(self.cores.len());
        for c in &self.cores {
            c.snap(&mut w);
        }
        w.seq(self.napi.len());
        for n in &self.napi {
            n.snap(&mut w);
        }
        w.u32(self.rx_inflight);
        w.u32(self.tx_inflight);
        w.seq(self.tx_queues.len());
        for queue in &self.tx_queues {
            w.seq(queue.len());
            for (pkt, pages) in queue {
                pkt.snap(&mut w);
                w.seq(pages.len());
                for p in pages {
                    w.u64(p.iova.as_u64());
                    w.u64(p.pa.as_u64());
                }
            }
        }
        w.usize(self.tx_rr);
        self.peer_senders.snap_with(&mut w, |w, s| s.snap(w));
        self.dut_receivers.snap_with(&mut w, |w, r| r.snap(w));
        self.dut_senders.snap_with(&mut w, |w, s| s.snap(w));
        self.peer_receivers.snap_with(&mut w, |w, r| r.snap(w));
        self.core_of.snap_with(&mut w, |w, &c| w.usize(c));
        self.churn_next.snap_with(&mut w, |w, &b| w.u64(b));
        self.to_dut.snap(&mut w);
        self.to_dut_link.snap(&mut w);
        w.bool(self.to_dut_draining);
        self.to_peer.snap(&mut w);
        self.to_peer_link.snap(&mut w);
        w.bool(self.to_peer_draining);
        w.seq(self.rr_conns.len());
        for conn in &self.rr_conns {
            conn.snap(&mut w);
        }
        self.rto_armed_peer.snap(&mut w);
        self.rto_armed_dut.snap(&mut w);
        self.latency.snap(&mut w);
        w.u64(self.ring_drops);
        w.u64(self.tx_pkts_sent);
        w.u64(self.churned_conns);
        w.u64(self.storage_ios);
        w.u64(self.storage_bytes);
        w.u64(self.mem_epoch_start);
        w.u64(self.mem_epoch_bytes);
        w.f64(self.mem_util);
        w.u64(self.dma_bytes_total);
        w.u64(self.epoch_dma_mark);
        w.u64(self.epoch_inv_mark);
        self.snapshot.snap(&mut w);
        w.bool(self.warmed_up);
        self.net_faults.snap(&mut w);
        self.sampler.snap(&mut w);
        self.wd.snap(&mut w);
        self.obs.snap(&mut w);
        w.finish()
    }

    /// Rebuilds a simulation from a [`HostSim::snapshot`] checkpoint.
    ///
    /// `cfg` must be the configuration the checkpoint was taken under: the
    /// snapshot stores a fingerprint of the (normalized) config and restore
    /// refuses a mismatch with [`SnapError::ConfigMismatch`] rather than
    /// silently resuming a different experiment. Corrupt or truncated bytes
    /// fail the checksum/length checks inside `fns-snap`.
    pub fn restore(mut cfg: SimConfig, bytes: &[u8]) -> Result<Self, SnapError> {
        // Apply the same normalization `new_in` does before fingerprinting.
        if cfg.mode.huge_rx() {
            cfg.pages_per_descriptor = 512;
        }
        cfg.iommu.domains = cfg.iommu.domains.max(cfg.topology.domains());
        let mut r = SnapReader::new(bytes)?;
        if r.u64()? != config_fingerprint(&cfg) {
            return Err(SnapError::ConfigMismatch { what: "SimConfig" });
        }
        let rng = SimRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        let qnow = r.u64()?;
        let popped = r.u64()?;
        let seq = r.u64()?;
        let n = r.seq()?;
        let mut q = EventQueue::with_kind(cfg.queue, 4096);
        q.set_fast_forward(cfg.queue_fast_forward);
        for _ in 0..n {
            let at = r.u64()?;
            q.push(at, Ev::unsnap(&mut r)?);
        }
        q.set_counters(qnow, popped, seq);
        let mut drv = DmaDriver::unsnap(&mut r, cfg.mode, cfg.cpu, cfg.faults)?;
        drv.set_coalesce_inv_drain(cfg.coalesce_inv_drain);
        drv.set_audit(AuditHandle::unsnap(&mut r)?);
        let trace = TraceHandle::unsnap(&mut r)?;
        let n = r.seq()?;
        let mut rings = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            rings.push(RingState::unsnap(&mut r)?);
        }
        let n = r.seq()?;
        let mut nic_bufs = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            nic_bufs.push(NicBuffer::unsnap_with(&mut r, Packet::unsnap)?);
        }
        let nic_rr = r.usize()?;
        let pipe = SerialResource::unsnap(&mut r)?;
        let tx_pipe = SerialResource::unsnap(&mut r)?;
        let n = r.seq()?;
        let mut cores = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            cores.push(SerialResource::unsnap(&mut r)?);
        }
        let n = r.seq()?;
        let mut napi = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            napi.push(NapiState::unsnap(&mut r)?);
        }
        let rx_inflight = r.u32()?;
        let tx_inflight = r.u32()?;
        let n = r.seq()?;
        let mut tx_queues = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            let m = r.seq()?;
            let mut queue = VecDeque::with_capacity(m.min(1 << 16));
            for _ in 0..m {
                let pkt = Packet::unsnap(&mut r)?;
                let k = r.seq()?;
                let mut pages = Vec::with_capacity(k.min(1 << 16));
                for _ in 0..k {
                    pages.push(DescriptorPage {
                        iova: Iova::new(r.u64()?),
                        pa: PhysAddr::new(r.u64()?),
                    });
                }
                queue.push_back((pkt, pages));
            }
            tx_queues.push(queue);
        }
        let tx_rr = r.usize()?;
        let peer_senders = FlowTable::unsnap_with(&mut r, DctcpSender::unsnap)?;
        let dut_receivers = FlowTable::unsnap_with(&mut r, FlowReceiver::unsnap)?;
        let dut_senders = FlowTable::unsnap_with(&mut r, DctcpSender::unsnap)?;
        let peer_receivers = FlowTable::unsnap_with(&mut r, FlowReceiver::unsnap)?;
        let core_of = FlowTable::unsnap_with(&mut r, |r| r.usize())?;
        let churn_next = FlowTable::unsnap_with(&mut r, |r| r.u64())?;
        let to_dut = SwitchQueue::unsnap(&mut r)?;
        let to_dut_link = SerialResource::unsnap(&mut r)?;
        let to_dut_draining = r.bool()?;
        let to_peer = SwitchQueue::unsnap(&mut r)?;
        let to_peer_link = SerialResource::unsnap(&mut r)?;
        let to_peer_draining = r.bool()?;
        let n = r.seq()?;
        let mut rr_conns = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            rr_conns.push(RrConn::unsnap(&mut r)?);
        }
        let rto_armed_peer = FlowSet::unsnap(&mut r)?;
        let rto_armed_dut = FlowSet::unsnap(&mut r)?;
        let latency = Histogram::unsnap(&mut r)?;
        let ring_drops = r.u64()?;
        let tx_pkts_sent = r.u64()?;
        let churned_conns = r.u64()?;
        let storage_ios = r.u64()?;
        let storage_bytes = r.u64()?;
        let mem_epoch_start = r.u64()?;
        let mem_epoch_bytes = r.u64()?;
        let mem_util = r.f64()?;
        let dma_bytes_total = r.u64()?;
        let epoch_dma_mark = r.u64()?;
        let epoch_inv_mark = r.u64()?;
        let snapshot = Snapshot::unsnap(&mut r)?;
        let warmed_up = r.bool()?;
        let mut net_faults = FaultPlane::unsnap(cfg.faults, &mut r)?;
        let sampler = Sampler::unsnap(&mut r)?;
        let wd = WatchdogState::unsnap(&mut r)?;
        let obs = ObsHandle::unsnap(&mut r)?;
        r.done()?;
        // Reattach the shared trace recorder everywhere the original held a
        // clone (the driver hands its own clone on to its fault plane).
        drv.set_trace(trace.clone());
        drv.audit().set_trace(trace.clone());
        net_faults.set_trace(trace.clone());
        drv.set_obs(obs.clone());
        Ok(Self {
            cfg,
            q,
            rng,
            drv,
            rings,
            nic_bufs,
            nic_rr,
            pipe,
            tx_pipe,
            cores,
            napi,
            rx_inflight,
            tx_inflight,
            tx_queues,
            tx_rr,
            peer_senders,
            dut_receivers,
            dut_senders,
            peer_receivers,
            core_of,
            to_dut,
            to_dut_link,
            to_dut_draining,
            to_peer,
            to_peer_link,
            to_peer_draining,
            rr_conns,
            rto_armed_peer,
            rto_armed_dut,
            latency,
            ring_drops,
            tx_pkts_sent,
            churn_next,
            churned_conns,
            storage_ios,
            storage_bytes,
            mem_epoch_start,
            mem_epoch_bytes,
            mem_util,
            dma_bytes_total,
            epoch_dma_mark,
            epoch_inv_mark,
            snapshot,
            warmed_up,
            net_faults,
            trace,
            obs,
            sampler,
            wd,
            scratch: Scratch::default(),
        })
    }

    // ----- memory-utilization tracking ------------------------------------

    fn note_mem_traffic(&mut self, now: Nanos, bytes: u64) {
        const EPOCH: Nanos = 100_000; // 100 us
        if now >= self.mem_epoch_start + EPOCH {
            let elapsed = (now - self.mem_epoch_start).max(1);
            let bps = self.mem_epoch_bytes as f64 * 1e9 / elapsed as f64;
            self.mem_util = self.cfg.memory.utilization(bps);
            self.mem_epoch_start = now;
            self.mem_epoch_bytes = 0;
        }
        self.mem_epoch_bytes += bytes;
        self.dma_bytes_total += bytes;
    }

    fn walk_read_ns(&self) -> Nanos {
        self.cfg.memory.walk_read_ns(self.mem_util)
    }

    /// Drains the shard-coupling digest: (DMA bytes, invalidation-queue
    /// entries) this sim generated since the previous drain. The sharded
    /// engine calls this **only at global epoch barriers** — the drain
    /// advances the marks, so calling it at an arbitrary intermediate time
    /// would silently swallow traffic that siblings were owed.
    pub fn epoch_digest(&mut self) -> (u64, u64) {
        let inv_total = self.drv.iommu.stats().invalidation_queue_entries;
        let dma = self.dma_bytes_total - self.epoch_dma_mark;
        let inv = inv_total - self.epoch_inv_mark;
        self.epoch_dma_mark = self.dma_bytes_total;
        self.epoch_inv_mark = inv_total;
        (dma, inv)
    }

    /// Folds sibling shards' previous-epoch digest into this shard's
    /// memory-utilization accounting: their DMA traffic plus one 64-byte
    /// invalidation-queue descriptor per entry contend for the same
    /// physical memory fabric, inflating this shard's walk latency via
    /// `mem_util`. Deliberately latency-only — no translation state is
    /// touched, so the safety oracle's view is unaffected — and it does
    /// **not** feed `dma_bytes_total` (ambient bytes must not echo back
    /// to siblings as if this shard had generated them).
    pub fn absorb_ambient(&mut self, dma_bytes: u64, inv_entries: u64) {
        self.mem_epoch_bytes += dma_bytes + 64 * inv_entries;
    }

    // ----- event dispatch --------------------------------------------------

    fn handle(&mut self, now: Nanos, ev: Ev) {
        self.trace.set_now(now);
        self.obs.set_now(now);
        match ev {
            Ev::PeerPump(flow) => self.peer_pump(now, flow),
            Ev::ToDutDrain => self.drain_to_dut(now),
            Ev::NicArrive(pkt) => self.nic_arrive(now, pkt),
            Ev::NicPump => self.nic_pump(now),
            Ev::RxDmaDone { core, pkt } => self.rx_dma_done(now, core, pkt),
            Ev::NapiPoll(core) => self.napi_poll(now, core),
            Ev::DutPump(flow) => self.dut_pump(now, flow),
            Ev::TxPump => self.tx_pump(now),
            Ev::TxDmaDone { pkt, pages, core } => self.tx_dma_done(now, pkt, pages, core),
            Ev::ToPeerDrain => self.drain_to_peer(now),
            Ev::PeerDeliver(pkt) => self.peer_deliver(now, pkt),
            Ev::RtoCheck { peer, flow } => self.rto_check(now, peer, flow),
            Ev::WarmupDone => self.take_snapshot(),
            Ev::Sample => self.take_sample(now),
            Ev::WatchdogCheck => self.watchdog_check(now),
            Ev::StorageIssue { dev } => self.storage_issue(now, dev),
            Ev::StorageDone { dev, core, pages } => self.storage_done(now, dev, core, pages),
            Ev::IncastKick => self.incast_kick(now),
        }
    }

    /// One degradation-watchdog check: walks the relief-drain → per-page
    /// fallback → abort ladder (see [`crate::watchdog`]) and reschedules
    /// itself unless the run aborted.
    fn watchdog_check(&mut self, now: Nanos) {
        let cfg = self.cfg.watchdog;
        self.wd.report.checks += 1;
        let mut degraded = false;
        // Rung 1: bound the pending PTcache-wipe backlog. The wipes were
        // already owed; a relief drain only moves their schedule forward.
        let backlog = self.drv.pending_wipes() as u64;
        self.wd.report.max_backlog_seen = self.wd.report.max_backlog_seen.max(backlog);
        if backlog > cfg.max_wipe_backlog as u64 {
            self.drv.drain_ptcache_wipes(backlog as usize);
            self.wd.report.relief_drains += 1;
            degraded = true;
        }
        // Rung 2: invalidation-storm detection over one check window.
        let inv = self.drv.iommu.stats().iotlb_invalidations;
        let delta = inv - self.wd.prev_invalidations;
        self.wd.prev_invalidations = inv;
        if cfg.storm_invalidations > 0 && delta > cfg.storm_invalidations {
            self.wd.report.storms += 1;
            if self.drv.force_per_page_invalidation() {
                self.wd.report.degraded = true;
            }
            degraded = true;
        }
        // Rung 3: persistent degradation aborts the run (the soak runner
        // checkpoints and stops when it sees the flag).
        if degraded {
            self.wd.consecutive_degraded += 1;
            if cfg.abort_after_degraded > 0
                && self.wd.consecutive_degraded >= cfg.abort_after_degraded
            {
                self.wd.report.aborted = true;
                return;
            }
        } else {
            self.wd.consecutive_degraded = 0;
        }
        let next = now + cfg.check_interval_ns.max(1);
        if next <= self.cfg.end_time() {
            self.q.push(next, Ev::WatchdogCheck);
        }
    }

    /// Whether the watchdog demanded an abort (rung 3). The soak runner
    /// polls this between checkpoint intervals.
    pub fn watchdog_aborted(&self) -> bool {
        self.wd.report.aborted
    }

    /// Current simulated time (timestamp of the last processed event).
    pub fn now(&self) -> Nanos {
        self.q.now()
    }

    /// The run configuration (normalized — e.g. huge-Rx modes force
    /// 512-page descriptors).
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Safety-oracle violations observed so far (0 when auditing is off).
    /// The soak bisector reads this between checkpoint boundaries to
    /// localize a mid-soak violation without waiting for [`RunMetrics`].
    pub fn audit_violations(&self) -> u64 {
        self.drv.audit().violations()
    }

    /// Deterministic provenance explanation for one IOVA pfn, rendered
    /// from the live book (`None` unless `cfg.observe.provenance` armed
    /// it). This is the `--explain-page` backend and is also called on
    /// the failure-artifact path while the simulation still exists.
    pub fn explain_page(&self, pfn: u64) -> Option<String> {
        self.obs.explain_page(pfn)
    }

    /// Distinct pfns anchoring sampled oracle violations so far (empty
    /// when auditing is off or clean).
    pub fn violating_pfns(&self) -> Vec<u64> {
        self.drv.audit().report().violating_pfns()
    }

    /// Non-consuming view of the flight-recorder crash ring (empty when
    /// `cfg.observe.flight` never armed it). Used by abort/crash paths to
    /// flush evidence while the run is still live.
    pub fn flight_view(&self) -> Trace {
        self.trace.flight_view()
    }

    /// Arms a seeded driver bug (test/soak-bisect corpus only; see
    /// [`crate::driver::Sabotage`]). Serialized with the driver, so a
    /// checkpointed sabotage replays identically after restore.
    #[doc(hidden)]
    pub fn set_sabotage(&mut self, sabotage: crate::driver::Sabotage) {
        self.drv.set_sabotage(sabotage);
    }

    /// Snapshots the gauge probes into the sampler's series and reschedules
    /// the next probe while the series has room and the run has time left.
    fn take_sample(&mut self, now: Nanos) {
        let stats = self.drv.iommu.stats();
        let (l1, l2, l3) = self.drv.iommu.ptcache_lens();
        let hit_rate = self
            .sampler
            .rolling_hit_rate_bp(stats.translations, stats.iotlb_hits);
        let (iova_free_spans, iova_largest_free_run) = self.drv.allocator().fragmentation();
        let sample = Sample {
            at: now,
            iotlb_occupancy: self.drv.iommu.iotlb_len() as u32,
            iotlb_hit_rate_bp: hit_rate,
            ptcache_l1: l1 as u32,
            ptcache_l2: l2 as u32,
            ptcache_l3: l3 as u32,
            inv_queue_depth: self.drv.pending_wipes() as u32,
            ring_occupancy: self.rings.iter().map(|r| r.ring.len() as u32).sum(),
            nic_buffer_bytes: self.nic_bufs.iter().map(|b| b.used_bytes()).sum(),
            switch_queue_bytes: self.to_dut.used_bytes(),
            iova_live_bytes: self.drv.allocator().live_pages() * 4096,
            iova_free_spans,
            iova_largest_free_run,
        };
        // The registry's occupancy gauges ride the sampler cadence: same
        // probes, percentile-bucketed instead of time-series-boxed.
        let domains = self.drv.iommu.domain_stats().len();
        if domains <= 1 {
            self.obs.gauge_sample(
                now,
                self.drv.iommu.domain_id(),
                sample.ring_occupancy as u64,
                sample.inv_queue_depth as u64,
            );
        } else {
            // Per-tenant gauges: each domain's own queue occupancy against
            // the shared invalidation backlog.
            for d in 0..domains as u16 {
                let occ: u64 = (0..self.ring_count())
                    .filter(|&r| self.ring_domain(r) == d)
                    .map(|r| self.rings[r].ring.len() as u64)
                    .sum();
                self.obs
                    .gauge_sample(now, d, occ, sample.inv_queue_depth as u64);
            }
        }
        let pushed = self.sampler.push(sample);
        let next = now + self.sampler.interval_ns();
        if pushed && next <= self.cfg.end_time() {
            self.q.push(next, Ev::Sample);
        }
    }

    /// Schedules an RtoCheck for a sender unless one is already pending.
    fn arm_rto_check(&mut self, now: Nanos, peer: bool, flow: FlowId, deadline: Nanos) {
        let armed = if peer {
            &mut self.rto_armed_peer
        } else {
            &mut self.rto_armed_dut
        };
        if armed.insert(flow) {
            self.q.push(deadline.max(now), Ev::RtoCheck { peer, flow });
        }
    }

    // ----- peer (abstract) side ---------------------------------------------

    /// Enqueues a packet on the peer→DUT wire through the fault plane.
    /// Injected drops (and switch-queue overflow) vanish here; corruption,
    /// duplication, and reordering alter what arrives. Recovery is the
    /// transport's job, so errors are accounted and swallowed.
    fn enqueue_to_dut(&mut self, pkt: Packet) {
        let _ = self.to_dut.enqueue_with(pkt, &mut self.net_faults);
    }

    /// Same as [`HostSim::enqueue_to_dut`] for the DUT→peer wire.
    fn enqueue_to_peer(&mut self, pkt: Packet) {
        let _ = self.to_peer.enqueue_with(pkt, &mut self.net_faults);
    }

    fn peer_pump(&mut self, now: Nanos, flow: FlowId) {
        let Some(s) = self.peer_senders.get_mut(flow) else {
            return;
        };
        let mut emitted = false;
        let mut to_send = std::mem::take(&mut self.scratch.pkts);
        while let Some(pkt) = s.next_packet(now) {
            to_send.push(pkt);
            emitted = true;
        }
        for pkt in to_send.drain(..) {
            self.enqueue_to_dut(pkt);
        }
        self.scratch.pkts = to_send;
        if emitted {
            self.schedule_to_dut_drain(now);
        }
        if let Some(d) = self.peer_senders.get(flow).and_then(|s| s.rto_deadline()) {
            self.arm_rto_check(now, true, flow, d);
        }
    }

    fn schedule_to_dut_drain(&mut self, now: Nanos) {
        if !self.to_dut_draining && !self.to_dut.is_empty() {
            self.to_dut_draining = true;
            self.q
                .push(now.max(self.to_dut_link.busy_until()), Ev::ToDutDrain);
        }
    }

    fn drain_to_dut(&mut self, now: Nanos) {
        self.to_dut_draining = false;
        let Some(pkt) = self.to_dut.dequeue() else {
            return;
        };
        let done = self.to_dut_link.run(now, self.link_serialize_ns(pkt.bytes));
        self.q
            .push(done + self.cfg.propagation_ns, Ev::NicArrive(pkt));
        if !self.to_dut.is_empty() {
            self.to_dut_draining = true;
            self.q.push(done, Ev::ToDutDrain);
        }
    }

    fn link_serialize_ns(&self, bytes: u32) -> Nanos {
        self.cfg.link.transfer_time_ns(bytes as u64)
    }

    // ----- DUT NIC + DMA ----------------------------------------------------

    fn nic_arrive(&mut self, now: Nanos, pkt: Packet) {
        let bytes = pkt.bytes as u64;
        let nic = self.ring_nic(self.ring_for_packet(&pkt));
        self.nic_bufs[nic].enqueue(pkt, bytes);
        self.nic_pump(now);
    }

    /// Takes Rx pages for a packet of `bytes`, leaving the touched pages in
    /// `self.scratch.rx_pages` (the caller translates from there and clears
    /// it) and feeding any completed descriptors to NAPI. Returns `false` —
    /// with the scratch untouched — if the ring is out of descriptors (the
    /// packet cannot DMA yet).
    fn take_rx_pages(&mut self, ring: usize, bytes: u64) -> bool {
        debug_assert!(self.scratch.rx_pages.is_empty());
        let mut touched = std::mem::take(&mut self.scratch.rx_pages);
        let mut completed = std::mem::take(&mut self.scratch.rx_completed);
        let rs = &mut self.rings[ring];
        // If the head descriptor is fully consumed but its last page is
        // still open and cannot hold this packet, post (close) that page so
        // the descriptor can complete and be replenished — otherwise a
        // shallow ring deadlocks waiting for a page it can never get.
        let space_in_open = rs.open.map(|(_, filled)| 4096 - filled).unwrap_or(0);
        if rs.ring.head_remaining() == 0
            && !rs.ring.is_empty()
            && rs.open.is_some()
            && bytes > space_in_open
        {
            rs.open = None;
            Self::close_front_page(rs, &mut completed);
        }
        // MPWQE-style continuous packing: the packet starts in the open
        // (partially filled) page if there is stride space, then spans as
        // many fresh pages as needed. Check availability before consuming
        // anything so a failed take is side-effect free.
        let space_in_open = rs.open.map(|(_, filled)| 4096 - filled).unwrap_or(0);
        let overflow = bytes.saturating_sub(space_in_open);
        let needed = if bytes <= space_in_open && space_in_open > 0 {
            0
        } else {
            overflow.div_ceil(4096).max(1)
        };
        let available = rs.ring.head_remaining() as u64
            + rs.ring.queued_behind_head() as u64 * self.cfg.pages_per_descriptor as u64;
        let mut ok = false;
        if available >= needed {
            let rs = &mut self.rings[ring];
            let mut remaining = bytes;
            loop {
                if rs.open.is_none() {
                    let page = rs
                        .ring
                        .head_mut()
                        .expect("availability checked")
                        .consume_page()
                        .expect("availability checked");
                    rs.open = Some((page.iova, 0));
                }
                let (iova, filled) = rs.open.expect("just ensured");
                let take = remaining.min(4096 - filled);
                // Occupancy rounds up to the 256 B stride within the page.
                let new_filled = (filled + take.div_ceil(STRIDE) * STRIDE).min(4096);
                touched.push(iova);
                remaining -= take;
                if new_filled >= 4096 {
                    rs.open = None;
                    Self::close_front_page(rs, &mut completed);
                } else {
                    rs.open = Some((iova, new_filled));
                }
                if remaining == 0 {
                    break;
                }
            }
            ok = true;
        }
        if !completed.is_empty() {
            let core = self.ring_core(ring);
            let dom = self.ring_domain(ring);
            self.napi[core]
                .desc_done
                .extend(completed.drain(..).map(|d| (dom, d)));
        }
        self.scratch.rx_pages = touched;
        self.scratch.rx_completed = completed;
        ok
    }

    /// Records one closed page in the front descriptor; pops the descriptor
    /// when all its pages are closed.
    fn close_front_page(rs: &mut RingState, completed: &mut Vec<Descriptor>) {
        rs.closed_in_front += 1;
        let front_len = rs.ring.head_mut().expect("front exists").len();
        let consumed = rs.ring.head_mut().expect("front exists").is_consumed();
        if consumed && rs.closed_in_front == front_len {
            let d = rs.ring.pop_consumed().expect("front fully consumed");
            rs.closed_in_front = 0;
            completed.push(d);
        }
    }

    fn nic_pump(&mut self, now: Nanos) {
        // Round-robin across NIC ingress buffers: each iteration of the
        // outer loop admits at most one packet, scanning the NICs starting
        // at `nic_rr` so no single device can monopolise the DMA window.
        // With a single NIC this degenerates to the legacy head-of-line
        // peek/dequeue loop (identical order, identical stall behaviour).
        let nnics = self.nic_bufs.len();
        'outer: while self.rx_inflight < RX_WINDOW_PKTS {
            for i in 0..nnics {
                let nic = (self.nic_rr + i) % nnics;
                let Some(&pkt) = self.nic_bufs[nic].peek_packet() else {
                    continue;
                };
                let ring = self.ring_for_packet(&pkt);
                let core = self.ring_core(ring);
                let had_desc_done = !self.napi[core].desc_done.is_empty();
                let taken = self.take_rx_pages(ring, pkt.bytes as u64);
                if !self.napi[core].desc_done.is_empty() && !had_desc_done {
                    // A forced page-post completed a descriptor; make sure
                    // the driver gets to recycle it.
                    self.ensure_napi(now, core);
                }
                if !taken {
                    // Out of descriptors: leave the packet queued; the buffer
                    // will tail-drop behind it if the stall persists. Other
                    // NICs still get their turn this round.
                    self.ring_drops += self.drain_if_hopeless(core);
                    continue;
                }
                let (pkt, bytes) = self.nic_bufs[nic].dequeue().expect("peeked packet");
                debug_assert_eq!(bytes, pkt.bytes as u64);
                self.nic_rr = (nic + 1) % nnics;
                let dom = self.ring_domain(ring);
                // Retire pending PTcache wipes at page granularity — wipes
                // and walks interleave on real hardware (see DmaDriver docs).
                self.drv.drain_ptcache_wipes(self.scratch.rx_pages.len());
                // Translate every touched page (one translation per
                // PCIe-level page access; repeat touches hit the IOTLB),
                // within the issuing device's protection domain.
                let mut reads = 0u32;
                for &iova in &self.scratch.rx_pages {
                    reads += self.drv.translate_in(dom, iova);
                }
                self.scratch.rx_pages.clear();
                let lm = self.walk_read_ns();
                let l0 = (self.cfg.l0_rx_ns * pkt.bytes as u64)
                    .div_ceil(4096)
                    .max(10);
                self.note_mem_traffic(now, pkt.bytes as u64 + reads as u64 * 64);
                let done = self.pipe.run(now, reads as u64 * lm + l0);
                self.rx_inflight += 1;
                self.q.push(done, Ev::RxDmaDone { core, pkt });
                continue 'outer;
            }
            // Every NIC is either empty or stalled on descriptors.
            break;
        }
    }

    /// Returns how many head-of-line packets to drop when the ring has been
    /// starved (none: we rely on buffer tail-drop; hook kept for clarity).
    fn drain_if_hopeless(&mut self, _core: usize) -> u64 {
        0
    }

    fn rx_dma_done(&mut self, now: Nanos, core: usize, pkt: Packet) {
        self.rx_inflight -= 1;
        self.napi[core].rx.push_back(pkt);
        self.ensure_napi(now, core);
        self.nic_pump(now);
    }

    fn ensure_napi(&mut self, now: Nanos, core: usize) {
        if !self.napi[core].scheduled {
            self.napi[core].scheduled = true;
            // The poll cannot start before the core finishes its queued
            // work — otherwise an oversubscribed core would keep processing
            // at event rate and CPU saturation would never throttle the
            // datapath.
            let at = (now + self.cfg.irq_delay_ns).max(self.cores[core].busy_until());
            self.q.push(at, Ev::NapiPoll(core));
        }
    }

    // ----- NAPI: the driver's completion processing -------------------------

    fn napi_poll(&mut self, now: Nanos, core: usize) {
        self.napi[core].scheduled = false;
        // IRQ entry/exit cost only on the first poll of a chain; continued
        // polls (budget exceeded / arrivals during the poll) stay in softirq.
        let mut cpu: Nanos = if self.napi[core].chained {
            0
        } else {
            self.cfg.cpu.per_batch_ns
        };
        self.napi[core].chained = false;
        let mut acks = std::mem::take(&mut self.scratch.acks);
        let mut pump_dut_flows = std::mem::take(&mut self.scratch.pump_flows);
        let mut dut_fast_rtx = std::mem::take(&mut self.scratch.fast_rtx);
        // 1. Replenish every ring homed on this core first (mlx5 posts new
        // WQEs at poll start), so refills draw on IOVAs freed by *previous*
        // polls rather than immediately recycling this poll's frees. In the
        // single-NIC shape the stride visits exactly ring == core; in
        // multi-device shapes the core services ring core, core+cores, ...
        // each refilled in its owning device's domain.
        let nrings = self.ring_count();
        let mut r = core;
        let mut exhausted = false;
        while r < nrings && !exhausted {
            let dom = self.ring_domain(r);
            while self.rings[r].ring.needs_replenish() && self.rings[r].ring.free_slots() > 0 {
                let (d, c) = match self.drv.prepare_rx_descriptor_in(dom, core) {
                    Ok(dc) => dc,
                    Err(_) => {
                        // Descriptor/frame/IOVA exhaustion (real or
                        // injected): the ring runs shallow this poll and the
                        // NIC tail-drops behind it. Account it as a ring
                        // drop and retry on the next poll — graceful
                        // degradation, not a crash.
                        self.ring_drops += 1;
                        exhausted = true;
                        break;
                    }
                };
                cpu += c;
                if let Err((d, _overrun)) = self.rings[r].ring.push_with(d, &mut self.net_faults) {
                    // Injected ring overrun: the producer index raced past
                    // the consumer and the descriptor never landed. Recycle
                    // it (unmap + invalidate + free) so no resources leak,
                    // charge the recycle to this poll, and count the lost
                    // slot.
                    if self.trace.wants(TraceCategory::Ring) {
                        self.trace.emit(TraceData::RingOverrun { core: core as u8 });
                    }
                    cpu += self
                        .drv
                        .complete_rx_descriptor_in(dom, core, &d)
                        .expect("recycling a refused descriptor");
                    self.drv.recycle_descriptor(d);
                    self.drv.faults_mut().note_descriptor_recycle();
                    self.drv.faults_mut().note_recovery(FaultKind::RingOverrun);
                    self.ring_drops += 1;
                    exhausted = true;
                    break;
                }
                if self.trace.wants(TraceCategory::Ring) {
                    self.trace.emit(TraceData::RingPost { core: core as u8 });
                }
            }
            r += self.cfg.cores;
        }
        // 2. Tx completions (unmap + invalidate transmitted pages), each in
        // the domain they were mapped in.
        while let Some((dom, pages)) = self.napi[core].tx_done.pop_front() {
            cpu += self
                .drv
                .tx_complete_in(dom, core, &pages)
                .expect("Tx completion");
            self.drv.recycle_pages(pages);
        }
        // 2b. Rx descriptor completions: unmap, invalidate, recycle.
        while let Some((dom, d)) = self.napi[core].desc_done.pop_front() {
            let probe = d.pages()[0].iova;
            if self.trace.wants(TraceCategory::Ring) {
                self.trace
                    .emit(TraceData::RingComplete { core: core as u8 });
            }
            cpu += self
                .drv
                .complete_rx_descriptor_in(dom, core, &d)
                .expect("Rx completion");
            self.drv.recycle_descriptor(d);
            // Injected stale-DMA probe: the device races one last access
            // against the unmap that just completed — the exact window the
            // strict safety property closes. Probing here, before any later
            // allocation can legitimately recycle the IOVA, means a
            // successful translation is always a real leak: strict modes
            // must block it, pool/deferred modes honestly report it.
            if self.drv.faults().is_enabled()
                && self.drv.faults_mut().roll(FaultKind::TranslationFault)
            {
                let leaked = self.drv.probe_translate_in(dom, probe);
                self.drv.faults_mut().note_stale_probe(leaked);
                if !leaked {
                    self.drv
                        .faults_mut()
                        .note_recovery(FaultKind::TranslationFault);
                }
            }
        }
        // 3. Rx packet completions.
        let mut processed = 0;
        let miss_factor = self.ring_miss_factor();
        let mut touched_receivers = std::mem::take(&mut self.scratch.touched_rx);
        while processed < NAPI_BUDGET {
            let Some(pkt) = self.napi[core].rx.pop_front() else {
                break;
            };
            processed += 1;
            cpu += self.cfg.cpu.per_packet_ns
                + (self.cfg.cpu.pkt_data_read_ns as f64 * miss_factor) as Nanos;
            if pkt.corrupted {
                // Checksum failure: the stack discards the packet and the
                // sender's retransmission recovers the data.
                self.net_faults.note_recovery(FaultKind::PacketCorrupt);
                continue;
            }
            match pkt.kind {
                PacketKind::Data => {
                    if let Some(r) = self.dut_receivers.get_mut(pkt.flow) {
                        if let Some(a) = r.on_data(&pkt, now) {
                            acks.push((pkt.flow, a));
                        }
                        if !touched_receivers.contains(&pkt.flow) {
                            touched_receivers.push(pkt.flow);
                        }
                    }
                }
                PacketKind::Ack {
                    ack_seq,
                    ecn_echo,
                    acked_pkts,
                } => {
                    if let Some(s) = self.dut_senders.get_mut(pkt.flow) {
                        let out = s.on_ack(ack_seq, ecn_echo, acked_pkts, now);
                        if out.fast_retransmit {
                            dut_fast_rtx.push(pkt.flow);
                        }
                        if out.newly_acked > 0 {
                            pump_dut_flows.push(pkt.flow);
                        }
                    }
                }
            }
        }
        // 4. Flush coalesced ACKs (GRO flush at poll end).
        for flow in touched_receivers.drain(..) {
            if let Some(r) = self.dut_receivers.get_mut(flow) {
                if let Some(a) = r.flush_ack() {
                    acks.push((flow, a));
                }
            }
        }
        // 5. Application-level message boundaries (request/response) for
        // connections homed on this core.
        let app_work = self.process_app_boundaries(now, core, &mut pump_dut_flows);
        cpu += app_work;
        // 5b. Connection-churn boundaries: tear down and restart finished
        // connections homed on this core.
        cpu += self.process_churn_boundaries(now, core);
        // 6. Map ACK transmissions (driver work happens in this context).
        let mut mapped_acks = std::mem::take(&mut self.scratch.mapped);
        for (flow, a) in acks.drain(..) {
            // A failed ACK mapping (injected exhaustion) skips the ACK; the
            // peer's retransmission machinery re-elicits it.
            let dom = self.flow_domain(flow);
            let Ok((pages, c)) = self.drv.tx_map_in(dom, core, 1) else {
                continue;
            };
            cpu += c;
            let pkt = Packet::ack(flow, a.ack_seq, a.ecn_echo, a.acked_pkts, now);
            mapped_acks.push((pkt, pages));
        }
        // 7. Fast retransmissions for DUT flows.
        for flow in dut_fast_rtx.drain(..) {
            if let Some(s) = self.dut_senders.get_mut(flow) {
                let pkt = s.fast_retransmit_packet(now);
                let n_pages = self.cfg.pages_for(pkt.bytes);
                // A failed mapping drops the retransmission; RTO recovers.
                let dom = self.flow_domain(flow);
                let Ok((pages, c)) = self.drv.tx_map_in(dom, core, n_pages) else {
                    continue;
                };
                cpu += c;
                mapped_acks.push((pkt, pages));
            }
        }
        // Charge the CPU and apply deferred effects at the finish time.
        let finish = self.cores[core].run(now, cpu);
        let any_tx = !mapped_acks.is_empty();
        for (pkt, pages) in mapped_acks.drain(..) {
            self.tx_queues[core].push_back((pkt, pages));
        }
        if any_tx {
            self.q.push(finish, Ev::TxPump);
        }
        for flow in pump_dut_flows.drain(..) {
            self.q.push(finish, Ev::DutPump(flow));
        }
        self.scratch.acks = acks;
        self.scratch.pump_flows = pump_dut_flows;
        self.scratch.fast_rtx = dut_fast_rtx;
        self.scratch.touched_rx = touched_receivers;
        self.scratch.mapped = mapped_acks;
        // More work pending? Re-poll right after (chained: no IRQ cost).
        if !self.napi[core].rx.is_empty()
            || !self.napi[core].tx_done.is_empty()
            || !self.napi[core].desc_done.is_empty()
        {
            self.napi[core].scheduled = true;
            self.napi[core].chained = true;
            self.q.push(finish, Ev::NapiPoll(core));
        }
        // The ring may have been starved; retry DMA now that it is refilled.
        self.q.push(finish, Ev::NicPump);
    }

    /// Per-packet CPU cache-miss factor driven by the Rx working-set size
    /// (larger rings defeat the hardware prefetcher and LLC, §4.4).
    fn ring_miss_factor(&self) -> f64 {
        let ring_bytes =
            self.cfg.ring_packets as f64 * self.cfg.mtu as f64 * 2.0 * self.cfg.cores as f64;
        let llc = 25.0e6; // ~25 MB LLC slice budget for packet data
        ((ring_bytes - llc) / (4.0 * llc)).clamp(0.0, 1.0)
    }

    /// Detects completed inbound messages on request/response connections,
    /// performs app work, and enqueues outbound messages. Returns CPU ns.
    fn process_app_boundaries(&mut self, now: Nanos, core: usize, pump: &mut Vec<FlowId>) -> Nanos {
        let mut cpu = 0;
        let (app_req_ns, app_kb_ns, out_bytes, in_bytes, closed_loop_inbound) =
            match self.cfg.workload {
                Workload::RequestResponse {
                    request_bytes,
                    response_bytes,
                    dut_is_server,
                    app_cpu_per_request_ns,
                    app_cpu_per_kb_ns,
                    ..
                } => {
                    if dut_is_server {
                        (
                            app_cpu_per_request_ns,
                            app_cpu_per_kb_ns,
                            response_bytes,
                            request_bytes,
                            false,
                        )
                    } else {
                        (
                            app_cpu_per_request_ns,
                            app_cpu_per_kb_ns,
                            request_bytes,
                            response_bytes,
                            true,
                        )
                    }
                }
                Workload::RpcColocated {
                    rpc_bytes,
                    response_bytes,
                } => (500, 0, response_bytes, rpc_bytes, false),
                _ => return 0,
            };
        for conn in &mut self.rr_conns {
            if conn.core != core {
                continue;
            }
            let Some(r) = self.dut_receivers.get(conn.inbound_flow) else {
                continue;
            };
            while r.delivered_bytes >= conn.next_in_boundary {
                conn.next_in_boundary += in_bytes;
                // App work covers both consuming the inbound message and
                // producing the outbound one (e.g. nginx's cost is on the
                // page it serves, Redis's on the value it stores).
                cpu += app_req_ns + app_kb_ns * (in_bytes + out_bytes).div_ceil(1024);
                if let Some(s) = self.dut_senders.get_mut(conn.outbound_flow) {
                    s.enqueue_app_bytes(out_bytes);
                    pump.push(conn.outbound_flow);
                }
                if closed_loop_inbound {
                    // DUT-as-client: a full response completes one RPC.
                    if let Some(t) = conn.issue_times.pop_front() {
                        if self.warmed_up {
                            self.latency.record(now.saturating_sub(t));
                        }
                    }
                    conn.issue_times.push_back(now);
                }
            }
        }
        let _ = now;
        cpu
    }

    /// Detects connections that delivered their configured byte budget under
    /// [`Workload::Churn`], "closes" them, and restarts the sender from a
    /// fresh congestion state — modelling sustained connection churn without
    /// re-keying the flow tables (sequence numbers stay continuous; only the
    /// transport state resets). Returns CPU ns charged to the poll.
    fn process_churn_boundaries(&mut self, now: Nanos, core: usize) -> Nanos {
        let Workload::Churn { conn_bytes } = self.cfg.workload else {
            return 0;
        };
        let conn_bytes = conn_bytes.max(1);
        let mut cpu = 0;
        let mut pumps = std::mem::take(&mut self.scratch.peer_pumps);
        for i in 0..self.cfg.flows {
            let flow = FlowId(i);
            if self.core_of.get(flow).copied() != Some(core) {
                continue;
            }
            let Some(delivered) = self.dut_receivers.get(flow).map(|r| r.delivered_bytes) else {
                continue;
            };
            let Some(&boundary) = self.churn_next.get(flow) else {
                continue;
            };
            let mut next = boundary;
            while delivered >= next {
                next += conn_bytes;
                self.churned_conns += 1;
                // Accept/teardown cost of one connection turnover.
                cpu += self.cfg.cpu.per_batch_ns;
                if let Some(s) = self.peer_senders.get_mut(flow) {
                    s.restart_connection();
                    s.enqueue_app_bytes(conn_bytes);
                }
                pumps.push(flow);
            }
            if next != boundary {
                self.churn_next.insert(flow, next);
            }
        }
        for f in pumps.drain(..) {
            // The restarted connection's first burst leaves after a short
            // client-side connect/think delay.
            self.q.push(now + 2_000, Ev::PeerPump(f));
        }
        self.scratch.peer_pumps = pumps;
        cpu
    }

    // ----- DUT transmit path -------------------------------------------------

    fn dut_pump(&mut self, now: Nanos, flow: FlowId) {
        let core = self.core_of.get(flow).copied().unwrap_or(0);
        let mut cpu = 0;
        let mut to_map = std::mem::take(&mut self.scratch.pkts);
        if let Some(s) = self.dut_senders.get_mut(flow) {
            while let Some(pkt) = s.next_packet(now) {
                to_map.push(pkt);
            }
            if let Some(d) = s.rto_deadline() {
                self.arm_rto_check(now, false, flow, d);
            }
        }
        if to_map.is_empty() {
            self.scratch.pkts = to_map;
            return;
        }
        cpu += to_map.len() as Nanos * self.cfg.cpu.per_packet_ns;
        let dom = self.flow_domain(flow);
        let mut mapped = std::mem::take(&mut self.scratch.mapped);
        for pkt in to_map.drain(..) {
            let pages = self.cfg.pages_for(pkt.bytes);
            // Injected mapping exhaustion drops the packet pre-wire; the
            // sender's RTO treats it like any other loss.
            let Ok((pg, c)) = self.drv.tx_map_in(dom, core, pages) else {
                continue;
            };
            cpu += c;
            mapped.push((pkt, pg));
        }
        let finish = self.cores[core].run(now, cpu);
        for (pkt, pages) in mapped.drain(..) {
            self.tx_queues[core].push_back((pkt, pages));
        }
        self.q.push(finish, Ev::TxPump);
        self.scratch.pkts = to_map;
        self.scratch.mapped = mapped;
    }

    fn tx_pump(&mut self, now: Nanos) {
        while self.tx_inflight < TX_WINDOW_PKTS {
            // Round-robin over the per-core Tx queues.
            let cores = self.tx_queues.len();
            let mut picked = None;
            for i in 0..cores {
                let c = (self.tx_rr + i) % cores;
                if let Some((pkt, pages)) = self.tx_queues[c].pop_front() {
                    self.tx_rr = (c + 1) % cores;
                    picked = Some((pkt, pages, c));
                    break;
                }
            }
            let Some((pkt, pages, core)) = picked else {
                break;
            };
            self.drv.drain_ptcache_wipes(pages.len());
            let dom = self.flow_domain(pkt.flow);
            let mut reads = 0u32;
            for p in &pages {
                reads += self.drv.translate_in(dom, p.iova);
            }
            let lm = self.walk_read_ns();
            self.note_mem_traffic(now, pkt.bytes as u64 + reads as u64 * 64);
            let service = reads as u64 * lm + self.cfg.l0_tx_ns;
            // ACKs (and other small control transmissions) translate on
            // the Rx-direction engine; bulk Tx data has its own.
            let done = if pkt.is_data() {
                self.tx_pipe.run(now, service)
            } else {
                self.pipe.run(now, service)
            };
            self.tx_inflight += 1;
            self.q.push(done, Ev::TxDmaDone { pkt, pages, core });
        }
    }

    fn tx_dma_done(&mut self, now: Nanos, pkt: Packet, pages: Vec<DescriptorPage>, core: usize) {
        self.tx_inflight -= 1;
        self.tx_pkts_sent += 1;
        // The packet enters the DUT→peer link.
        self.enqueue_to_peer(pkt);
        self.schedule_to_peer_drain(now);
        // Tx completion lands on the (possibly shifted) completion core,
        // tagged with the domain the pages were mapped in so the completing
        // core unmaps in the right address space.
        let comp_core = (core + self.cfg.tx_completion_core_shift) % self.cfg.cores;
        let dom = self.flow_domain(pkt.flow);
        self.napi[comp_core].tx_done.push_back((dom, pages));
        self.ensure_napi(now, comp_core);
        self.tx_pump(now);
    }

    // ----- storage-class DMA devices ----------------------------------------

    /// One storage IO issue: map `storage_io_pages` in the device's own
    /// protection domain, translate every page, and DMA through the bulk Tx
    /// pipe. Mapping failure (injected exhaustion) retries after the think
    /// time, like a driver re-queueing a starved request.
    fn storage_issue(&mut self, now: Nanos, dev: u16) {
        let topo = self.cfg.topology;
        let dom = topo.storage_domain(dev);
        let core = dev as usize % self.cfg.cores;
        let Ok((pg, c)) = self.drv.tx_map_in(dom, core, topo.storage_io_pages) else {
            self.q
                .push(now + topo.storage_think_ns.max(1), Ev::StorageIssue { dev });
            return;
        };
        let finish = self.cores[core].run(now, c);
        self.drv.drain_ptcache_wipes(pg.len());
        let mut reads = 0u32;
        for p in &pg {
            reads += self.drv.translate_in(dom, p.iova);
        }
        let lm = self.walk_read_ns();
        let pages = pg.len() as u64;
        self.note_mem_traffic(now, pages * 4096 + reads as u64 * 64);
        let service = reads as u64 * lm + self.cfg.l0_tx_ns * pages;
        let done = self.tx_pipe.run(finish.max(now), service);
        self.q.push(
            done,
            Ev::StorageDone {
                dev,
                core,
                pages: pg,
            },
        );
    }

    /// Storage IO completion: unmap + invalidate in the device's domain,
    /// recycle the pages, and schedule the next issue after the think time.
    fn storage_done(&mut self, now: Nanos, dev: u16, core: usize, pages: Vec<DescriptorPage>) {
        let topo = self.cfg.topology;
        let dom = topo.storage_domain(dev);
        let io_pages = pages.len() as u64;
        let c = self
            .drv
            .tx_complete_in(dom, core, &pages)
            .expect("storage completion");
        self.drv.recycle_pages(pages);
        let finish = self.cores[core].run(now, c);
        self.storage_ios += 1;
        self.storage_bytes += io_pages * 4096;
        let next = finish.max(now) + topo.storage_think_ns.max(1);
        if next <= self.cfg.end_time() {
            self.q.push(next, Ev::StorageIssue { dev });
        }
    }

    /// Incast front: every peer sender deposits one burst (with per-flow
    /// jitter so the fan-in collides at the switch, not in the event queue),
    /// then the kick re-arms for the next period.
    fn incast_kick(&mut self, now: Nanos) {
        let Workload::Incast {
            burst_bytes,
            period_ns,
        } = self.cfg.workload
        else {
            return;
        };
        for i in 0..self.cfg.flows {
            let flow = FlowId(i);
            if let Some(s) = self.peer_senders.get_mut(flow) {
                s.enqueue_app_bytes(burst_bytes);
            }
            self.q.push(now + 1 + u64::from(i) * 53, Ev::PeerPump(flow));
        }
        let next = now + period_ns.max(1);
        if next <= self.cfg.end_time() {
            self.q.push(next, Ev::IncastKick);
        }
    }

    fn schedule_to_peer_drain(&mut self, now: Nanos) {
        if !self.to_peer_draining && !self.to_peer.is_empty() {
            self.to_peer_draining = true;
            self.q
                .push(now.max(self.to_peer_link.busy_until()), Ev::ToPeerDrain);
        }
    }

    fn drain_to_peer(&mut self, now: Nanos) {
        self.to_peer_draining = false;
        let Some(pkt) = self.to_peer.dequeue() else {
            return;
        };
        let done = self
            .to_peer_link
            .run(now, self.link_serialize_ns(pkt.bytes));
        self.q
            .push(done + self.cfg.propagation_ns, Ev::PeerDeliver(pkt));
        if !self.to_peer.is_empty() {
            self.to_peer_draining = true;
            self.q.push(done, Ev::ToPeerDrain);
        }
    }

    // ----- peer receive/ack side ----------------------------------------------

    fn peer_deliver(&mut self, now: Nanos, pkt: Packet) {
        const PEER_PROC_NS: Nanos = 2_000;
        if pkt.corrupted {
            // The peer's checksum rejects the packet; the DUT transport's
            // retransmission recovers the data.
            self.net_faults.note_recovery(FaultKind::PacketCorrupt);
            return;
        }
        match pkt.kind {
            PacketKind::Ack {
                ack_seq,
                ecn_echo,
                acked_pkts,
            } => {
                // DUT's ACK for a peer→DUT flow.
                if let Some(s) = self.peer_senders.get_mut(pkt.flow) {
                    let out = s.on_ack(ack_seq, ecn_echo, acked_pkts, now);
                    if out.fast_retransmit {
                        let rtx = s.fast_retransmit_packet(now);
                        self.enqueue_to_dut(rtx);
                        self.schedule_to_dut_drain(now + PEER_PROC_NS);
                    }
                    if out.newly_acked > 0 {
                        self.q.push(now + PEER_PROC_NS, Ev::PeerPump(pkt.flow));
                    }
                }
            }
            PacketKind::Data => {
                // DUT→peer data: peer receiver generates ACKs that travel
                // back to the DUT as inbound packets.
                let ack = self
                    .peer_receivers
                    .get_mut(pkt.flow)
                    .and_then(|r| r.on_data(&pkt, now));
                // Peer-side app boundaries (closed-loop clients when the DUT
                // is the server; response completion ends an RPC).
                self.peer_app_boundaries(now);
                if let Some(a) = ack {
                    let ack = Packet::ack(pkt.flow, a.ack_seq, a.ecn_echo, a.acked_pkts, now);
                    self.enqueue_to_dut(ack);
                }
                self.schedule_to_dut_drain(now + PEER_PROC_NS);
            }
        }
    }

    fn peer_app_boundaries(&mut self, now: Nanos) {
        let (req_bytes, resp_bytes, dut_is_server) = match self.cfg.workload {
            Workload::RequestResponse {
                request_bytes,
                response_bytes,
                dut_is_server,
                ..
            } => (request_bytes, response_bytes, dut_is_server),
            Workload::RpcColocated {
                rpc_bytes,
                response_bytes,
            } => (rpc_bytes, response_bytes, true),
            _ => return,
        };
        if !dut_is_server {
            // The peer runs the server: on each fully received request, it
            // queues a response back toward the DUT.
            let mut pumps = std::mem::take(&mut self.scratch.peer_pumps);
            for conn in &mut self.rr_conns {
                let Some(r) = self.peer_receivers.get(conn.outbound_flow) else {
                    continue;
                };
                while r.delivered_bytes >= conn.next_out_boundary {
                    conn.next_out_boundary += req_bytes;
                    if let Some(s) = self.peer_senders.get_mut(conn.inbound_flow) {
                        s.enqueue_app_bytes(resp_bytes);
                        pumps.push(conn.inbound_flow);
                    }
                }
            }
            for f in pumps.drain(..) {
                self.q.push(now + 2_000, Ev::PeerPump(f));
            }
            self.scratch.peer_pumps = pumps;
            return;
        }
        let mut pumps = std::mem::take(&mut self.scratch.peer_pumps);
        for conn in &mut self.rr_conns {
            let Some(r) = self.peer_receivers.get(conn.outbound_flow) else {
                continue;
            };
            while r.delivered_bytes >= conn.next_out_boundary {
                conn.next_out_boundary += resp_bytes;
                // Response completed: record latency, issue the next request.
                if let Some(t) = conn.issue_times.pop_front() {
                    if self.warmed_up {
                        self.latency.record(now.saturating_sub(t));
                    }
                }
                conn.issue_times.push_back(now);
                if let Some(s) = self.peer_senders.get_mut(conn.inbound_flow) {
                    s.enqueue_app_bytes(req_bytes);
                    pumps.push(conn.inbound_flow);
                }
            }
        }
        for f in pumps.drain(..) {
            self.q.push(now + 2_000, Ev::PeerPump(f));
        }
        self.scratch.peer_pumps = pumps;
    }

    // ----- timers ---------------------------------------------------------------

    fn rto_check(&mut self, now: Nanos, peer: bool, flow: FlowId) {
        if peer {
            self.rto_armed_peer.remove(flow);
        } else {
            self.rto_armed_dut.remove(flow);
        }
        let sender = if peer {
            self.peer_senders.get_mut(flow)
        } else {
            self.dut_senders.get_mut(flow)
        };
        let Some(s) = sender else { return };
        match s.rto_deadline() {
            Some(d) if d <= now => {
                s.on_rto(now);
                if peer {
                    self.peer_pump(now, flow);
                } else {
                    self.q.push(now, Ev::DutPump(flow));
                    if let Some(s) = self.dut_senders.get(flow) {
                        if let Some(d2) = s.rto_deadline() {
                            self.arm_rto_check(now, peer, flow, d2);
                        }
                    }
                }
            }
            Some(d) => {
                self.arm_rto_check(now, peer, flow, d);
            }
            None => {}
        }
    }

    // ----- measurement ------------------------------------------------------------

    fn take_snapshot(&mut self) {
        self.warmed_up = true;
        self.snapshot = Snapshot {
            iommu: self.drv.iommu.stats(),
            domains: self.drv.iommu.domain_stats().to_vec(),
            rx_delivered: self.dut_receivers.values().map(|r| r.delivered_bytes).sum(),
            tx_delivered: self
                .peer_receivers
                .values()
                .map(|r| r.delivered_bytes)
                .sum(),
            nic_enq: self.nic_bufs.iter().map(|b| b.enqueued_packets()).sum(),
            nic_drops: self.nic_bufs.iter().map(|b| b.dropped_packets()).sum(),
            ring_drops: self.ring_drops,
            switch_drops: self.to_dut.drops,
            tx_pkts: self.tx_pkts_sent,
            churned_conns: self.churned_conns,
            storage_ios: self.storage_ios,
            storage_bytes: self.storage_bytes,
            core_busy: self.cores.iter().map(|c| c.busy_time()).collect(),
            locality_mark: self.drv.locality.len(),
        };
    }

    fn collect(self, end: Nanos) -> RunMetrics {
        self.collect_into(end, None)
    }

    fn collect_into(mut self, end: Nanos, arena: Option<&mut RunArena>) -> RunMetrics {
        let window = end - self.cfg.warmup;
        let snap = &self.snapshot;
        let iommu_now = self.drv.iommu.stats();
        let rx_delivered: u64 = self.dut_receivers.values().map(|r| r.delivered_bytes).sum();
        let tx_delivered: u64 = self
            .peer_receivers
            .values()
            .map(|r| r.delivered_bytes)
            .sum();
        let cpu_utilization = self
            .cores
            .iter()
            .zip(snap.core_busy.iter().chain(std::iter::repeat(&0)))
            .map(|(c, &b)| c.utilization(b, window))
            .collect();
        let iommu = iommu_now.delta(&snap.iommu);
        let faults = self.drv.faults().stats().merge(&self.net_faults.stats());
        // Drain the shared recorder once; the fault log is its filtered
        // view (chronological across the driver and wire planes).
        let trace = self.trace.drain();
        let fault_log = fns_faults::fault_log_from(&trace);
        let (provenance, txns, registry) = self.obs.dump();
        let flight = self.trace.drain_flight();
        let zero = fns_iommu::DomainStats::default();
        let domains: Vec<fns_iommu::DomainStats> = self
            .drv
            .iommu
            .domain_stats()
            .iter()
            .enumerate()
            .map(|(i, d)| d.delta(snap.domains.get(i).unwrap_or(&zero)))
            .collect();
        let nic_enq_now: u64 = self.nic_bufs.iter().map(|b| b.enqueued_packets()).sum();
        let nic_drops_now: u64 = self.nic_bufs.iter().map(|b| b.dropped_packets()).sum();
        let metrics = RunMetrics {
            window_ns: window,
            rx_goodput_bytes: rx_delivered - snap.rx_delivered,
            tx_goodput_bytes: tx_delivered - snap.tx_delivered,
            rx_packets: nic_enq_now - snap.nic_enq,
            nic_drops: (nic_drops_now - snap.nic_drops)
                + (self.ring_drops - snap.ring_drops)
                + (self.to_dut.drops - snap.switch_drops),
            tx_packets: self.tx_pkts_sent - snap.tx_pkts,
            stale_iotlb_hits: iommu.stale_iotlb_hits,
            stale_ptcache_walks: iommu.stale_ptcache_walks,
            iommu,
            domains,
            storage_ios: self.storage_ios - snap.storage_ios,
            storage_bytes: self.storage_bytes - snap.storage_bytes,
            churned_conns: self.churned_conns - snap.churned_conns,
            cpu_utilization,
            latency: self.latency,
            locality_distances: self.drv.locality.distances()[snap.locality_mark..].to_vec(),
            map_cpu_ns: self.drv.map_cpu_ns,
            invalidation_cpu_ns: self.drv.invalidation_cpu_ns,
            spans: self.drv.spans,
            events_processed: self.q.total_popped(),
            faults,
            fault_log,
            samples: self.sampler.take(),
            trace,
            audit: self.drv.audit().report(),
            watchdog: self.wd.report,
            provenance,
            txns,
            registry,
            flight,
        };
        // Harvest the run's storage back into the arena. Still-posted ring
        // descriptors feed the driver's page pool first, so the next run's
        // ring fill starts from recycled vectors.
        if let Some(arena) = arena {
            for rs in &mut self.rings {
                while let Some(d) = rs.ring.pop_any() {
                    self.drv.recycle_descriptor(d);
                }
            }
            let mut q = self.q;
            arena.last_queue_reallocs = q.reallocs();
            q.reset();
            arena.queue = Some(q);
            arena.driver = Some(self.drv.salvage());
            self.peer_senders.clear();
            self.dut_receivers.clear();
            self.dut_senders.clear();
            self.peer_receivers.clear();
            self.core_of.clear();
            arena.peer_senders = self.peer_senders;
            arena.dut_receivers = self.dut_receivers;
            arena.dut_senders = self.dut_senders;
            arena.peer_receivers = self.peer_receivers;
            arena.core_of = self.core_of;
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use crate::mode::ProtectionMode;

    fn tiny_sim(mode: ProtectionMode) -> HostSim {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        cfg.aging_factor = 0.0; // skip init churn: these tests probe mechanics
        HostSim::new(cfg)
    }

    /// Test shim over the scratch-based [`HostSim::take_rx_pages`]:
    /// returns the touched pages as an owned list (`None` when the ring
    /// is out of descriptors), clearing the scratch the way the DMA path
    /// does.
    fn take_pages(sim: &mut HostSim, core: usize, bytes: u64) -> Option<Vec<Iova>> {
        if !sim.take_rx_pages(core, bytes) {
            return None;
        }
        let pages = sim.scratch.rx_pages.clone();
        sim.scratch.rx_pages.clear();
        Some(pages)
    }

    #[test]
    fn full_page_packets_take_one_fresh_page_each() {
        let mut sim = tiny_sim(ProtectionMode::LinuxStrict);
        let pages = take_pages(&mut sim, 0, 4096).expect("ring filled");
        assert_eq!(pages.len(), 1);
        assert!(sim.napi[0].desc_done.is_empty());
        let pages2 = take_pages(&mut sim, 0, 4096).expect("ring filled");
        assert_ne!(pages[0], pages2[0]);
    }

    #[test]
    fn small_packets_share_a_page_by_stride() {
        let mut sim = tiny_sim(ProtectionMode::LinuxStrict);
        // 64 B ACK-sized packets round to one 256 B stride each: 16 fit in
        // a page, and all 16 translate the same IOVA.
        let first = take_pages(&mut sim, 0, 64).expect("ring filled");
        for _ in 0..15 {
            let pages = take_pages(&mut sim, 0, 64).expect("ring filled");
            assert_eq!(pages, first, "strides pack into the open page");
        }
        let next = take_pages(&mut sim, 0, 64).expect("ring filled");
        assert_ne!(next, first, "17th stride opens a fresh page");
    }

    #[test]
    fn oversized_packet_spans_pages() {
        let mut sim = tiny_sim(ProtectionMode::LinuxStrict);
        let pages = take_pages(&mut sim, 0, 9000).expect("ring filled");
        assert_eq!(pages.len(), 3, "9 KB = 3 pages");
        // Pages come from one descriptor in order, so they are consecutive
        // ring slots (not necessarily consecutive IOVAs under Linux mode).
        assert_eq!(
            pages.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn big_packet_spans_from_the_open_page() {
        // MPWQE-style continuous packing: a 4 KB packet arriving after a
        // small one starts in the open page's remaining strides and spills
        // into a fresh page.
        let mut sim = tiny_sim(ProtectionMode::LinuxStrict);
        let small = take_pages(&mut sim, 0, 64).expect("ring filled");
        let big = take_pages(&mut sim, 0, 4096).expect("ring filled");
        assert_eq!(big.len(), 2, "spans the open page plus one fresh page");
        assert_eq!(big[0], small[0], "starts in the open page");
        assert_ne!(big[1], small[0]);
        // 64 B occupied one stride; 4096 B fills the rest (15 strides) plus
        // 256 B in the next page, leaving it open for the next packet.
        let next = take_pages(&mut sim, 0, 64).expect("ring filled");
        assert_eq!(next[0], big[1], "next packet continues in the spill page");
    }

    #[test]
    fn descriptor_completes_after_64_closed_pages() {
        let mut sim = tiny_sim(ProtectionMode::FastAndSafe);
        for i in 0..128 {
            take_pages(&mut sim, 0, 4096).expect("ring filled");
            if i < 63 {
                assert_eq!(
                    sim.napi[0].desc_done.len(),
                    0,
                    "descriptor must not complete early"
                );
            }
        }
        assert_eq!(
            sim.napi[0].desc_done.len(),
            2,
            "128 full pages = exactly 2 descriptors"
        );
    }

    #[test]
    fn ring_exhaustion_returns_none_without_partial_consumption() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::LinuxStrict);
        cfg.aging_factor = 0.0;
        let mut sim = HostSim::new(cfg);
        let total_pages = sim.rings[0].ring.head_remaining() as u64
            + sim.rings[0].ring.queued_behind_head() as u64 * 64;
        for _ in 0..total_pages {
            take_pages(&mut sim, 0, 4096).expect("pages available");
        }
        assert!(take_pages(&mut sim, 0, 4096).is_none(), "ring exhausted");
        // A small packet cannot squeeze in either.
        assert!(take_pages(&mut sim, 0, 64).is_none());
    }

    #[test]
    fn all_modes_run_a_tiny_simulation() {
        for mode in ProtectionMode::ALL {
            let m = tiny_sim(mode).run();
            assert!(m.rx_goodput_bytes > 0, "{mode}: no traffic flowed");
            assert_eq!(m.stale_ptcache_walks, 0, "{mode}");
        }
    }

    #[test]
    fn all_workloads_run_a_tiny_simulation() {
        let workloads = [
            Workload::IperfRx,
            Workload::Bidirectional { tx_flows: 2 },
            Workload::RequestResponse {
                request_bytes: 8192,
                response_bytes: 64,
                depth: 8,
                dut_is_server: true,
                app_cpu_per_request_ns: 500,
                app_cpu_per_kb_ns: 10,
            },
            Workload::RequestResponse {
                request_bytes: 128,
                response_bytes: 65536,
                depth: 8,
                dut_is_server: false,
                app_cpu_per_request_ns: 500,
                app_cpu_per_kb_ns: 10,
            },
            Workload::RpcColocated {
                rpc_bytes: 1024,
                response_bytes: 64,
            },
            Workload::Churn {
                conn_bytes: 64 * 1024,
            },
            Workload::Incast {
                burst_bytes: 128 * 1024,
                period_ns: 500_000,
            },
        ];
        for w in workloads {
            let mut cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
            cfg.workload = w;
            cfg.cores = 6;
            cfg.warmup = 2_000_000;
            cfg.measure = 5_000_000;
            let m = HostSim::new(cfg).run();
            assert!(
                m.rx_goodput_bytes + m.tx_goodput_bytes > 0,
                "{w:?}: nothing moved"
            );
            if let Workload::Churn { .. } = w {
                assert!(m.churned_conns > 0, "churn workload never churned");
            }
        }
    }

    #[test]
    fn multi_device_topology_runs_and_attributes_domains() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
        cfg.topology = Topology {
            nics: 2,
            queues_per_nic: 2,
            storage_devices: 1,
            ..Topology::single_nic()
        };
        cfg.cores = 6;
        cfg.warmup = 2_000_000;
        cfg.measure = 5_000_000;
        let m = HostSim::new(cfg).run();
        assert!(m.rx_goodput_bytes > 0, "multi-NIC topology moved no data");
        // One domain per NIC plus one per storage device.
        assert_eq!(m.domains.len(), 3, "expected 3 protection domains");
        let per_domain: u64 = m.domains.iter().map(|d| d.translations).sum();
        assert_eq!(
            per_domain, m.iommu.translations,
            "per-domain translation attribution must partition the total"
        );
        assert!(
            m.domains[0].translations > 0 && m.domains[1].translations > 0,
            "both NIC domains should translate (RSS spreads flows)"
        );
        assert!(m.storage_ios > 0, "storage device issued no IOs");
        assert!(
            m.domains[2].translations > 0,
            "storage domain should translate its own IOs"
        );
    }

    #[test]
    fn step_until_is_equivalent_to_run() {
        let mut a = tiny_sim(ProtectionMode::LinuxStrict);
        a.step_until(1_000_000);
        a.step_until(2_500_000);
        let ma = a.finish();
        let mb = tiny_sim(ProtectionMode::LinuxStrict).run();
        assert_eq!(ma.rx_goodput_bytes, mb.rx_goodput_bytes);
        assert_eq!(ma.iommu, mb.iommu);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically_in_every_mode() {
        for mode in ProtectionMode::ALL {
            let mut cfg = SimConfig::paper_default(mode);
            cfg.warmup = 500_000;
            cfg.measure = 2_000_000;
            cfg.aging_factor = 0.0;
            let golden = HostSim::new(cfg).run();
            let mut sim = HostSim::new(cfg);
            sim.step_until(1_200_000); // mid-measurement, past warmup
            let bytes = sim.snapshot();
            let resumed = HostSim::restore(cfg, &bytes).expect("restore").run();
            assert_eq!(golden, resumed, "{mode}: restored run diverged");
            // The snapshotted sim itself must also continue unperturbed.
            let continued = sim.run();
            assert_eq!(golden, continued, "{mode}: snapshot perturbed the run");
        }
    }

    #[test]
    fn snapshot_before_warmup_round_trips() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        let golden = HostSim::new(cfg).run();
        let mut sim = HostSim::new(cfg);
        sim.step_until(200_000); // warmup snapshot not yet taken
        let bytes = sim.snapshot();
        let resumed = HostSim::restore(cfg, &bytes).expect("restore").run();
        assert_eq!(golden, resumed);
    }

    #[test]
    fn restore_rejects_a_mismatched_config() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        let mut sim = HostSim::new(cfg);
        sim.step_until(1_000_000);
        let bytes = sim.snapshot();
        let mut other = cfg;
        other.flows += 1;
        match HostSim::restore(other, &bytes) {
            Err(SnapError::ConfigMismatch { .. }) => {}
            Err(e) => panic!("expected ConfigMismatch, got {e:?}"),
            Ok(_) => panic!("restore accepted a mismatched config"),
        }
        // Corruption fails the checksum rather than restoring garbage.
        let mut corrupt = sim.snapshot();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(HostSim::restore(cfg, &corrupt).is_err());
    }

    #[test]
    fn watchdog_relief_drain_bounds_the_wipe_backlog() {
        // The datapath drains PTcache wipes before every translation, so a
        // healthy run never shows the watchdog a backlog. Stall the
        // datapath by hand — complete descriptors with no intervening
        // translations — and the relief rung must retire the queue. Linux
        // strict queues a leaf-PTcache wipe per completed descriptor (F&S
        // preserves the PTcache, so it has no wipes to back up).
        let mut cfg = SimConfig::paper_default(ProtectionMode::LinuxStrict);
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        cfg.aging_factor = 0.0;
        cfg.watchdog = crate::watchdog::WatchdogConfig {
            enabled: true,
            check_interval_ns: 50_000,
            max_wipe_backlog: 2,
            storm_invalidations: 0,
            abort_after_degraded: 0,
        };
        let mut sim = HostSim::new(cfg);
        for _ in 0..8 {
            let (d, _) = sim.drv.prepare_rx_descriptor(0).expect("fault-free");
            sim.drv.complete_rx_descriptor(0, &d).expect("fault-free");
            sim.drv.recycle_descriptor(d);
        }
        let backlog = sim.drv.pending_wipes();
        assert!(backlog > 2, "no wipe backlog to test against: {backlog}");
        sim.watchdog_check(0);
        assert_eq!(sim.drv.pending_wipes(), 0, "relief drain left a backlog");
        assert_eq!(sim.wd.report.relief_drains, 1);
        assert_eq!(sim.wd.report.max_backlog_seen, backlog as u64);
        assert!(!sim.wd.report.aborted);
    }

    #[test]
    fn watchdog_storm_detection_degrades_to_per_page() {
        // An absurdly low storm threshold on a strict mode (which
        // invalidates every page) must fire and collapse deferred batching.
        let mut cfg = SimConfig::paper_default(ProtectionMode::LinuxDeferred);
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        cfg.aging_factor = 0.0;
        cfg.watchdog = crate::watchdog::WatchdogConfig {
            enabled: true,
            check_interval_ns: 100_000,
            max_wipe_backlog: u32::MAX,
            storm_invalidations: 1,
            abort_after_degraded: 0,
        };
        let m = HostSim::new(cfg).run();
        assert!(m.watchdog.storms > 0, "storm never detected");
        assert!(m.watchdog.degraded, "storm did not degrade batching");
        assert!(!m.watchdog.aborted);
    }

    #[test]
    fn watchdog_abort_stops_the_run_early() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::LinuxDeferred);
        cfg.warmup = 500_000;
        cfg.measure = 20_000_000;
        cfg.aging_factor = 0.0;
        cfg.watchdog = crate::watchdog::WatchdogConfig {
            enabled: true,
            check_interval_ns: 100_000,
            max_wipe_backlog: u32::MAX,
            storm_invalidations: 1,
            abort_after_degraded: 3,
        };
        let mut sim = HostSim::new(cfg);
        sim.step_until(cfg.end_time());
        assert!(sim.watchdog_aborted(), "persistent storms never aborted");
        assert!(
            sim.now() < cfg.end_time(),
            "aborted run still drained every event"
        );
        let m = sim.finish();
        assert!(m.watchdog.aborted);
    }

    #[test]
    fn disabled_watchdog_changes_nothing() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::FastAndSafe);
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        let base = HostSim::new(cfg).run();
        let mut on = cfg;
        on.watchdog = crate::watchdog::WatchdogConfig {
            enabled: true,
            check_interval_ns: 100_000,
            max_wipe_backlog: u32::MAX,
            storm_invalidations: u64::MAX,
            abort_after_degraded: 0,
        };
        let m = HostSim::new(on).run();
        // Watchdog events ride the queue but consume no RNG and touch no
        // state below their thresholds: all workload metrics match.
        assert_eq!(base.rx_goodput_bytes, m.rx_goodput_bytes);
        assert_eq!(base.iommu, m.iommu);
        assert_eq!(base.latency, m.latency);
        assert!(m.watchdog.checks > 0);
        assert_eq!(m.watchdog.relief_drains, 0);
        assert_eq!(m.watchdog.storms, 0);
    }

    #[test]
    fn frames_conserved_across_a_run() {
        let mut sim = tiny_sim(ProtectionMode::FastAndSafe);
        sim.step_until(2_500_000);
        // Every frame is either free or accounted for by a live ring page,
        // an open Tx mapping, or a packet in flight; at minimum, no frame
        // was double-freed (the FrameAllocator would have panicked) and the
        // leak bound is the prepared rings + in-flight traffic.
        let in_use = sim.drv.frames().in_use() as u64;
        let ring_pages: u64 = sim
            .rings
            .iter()
            .map(|r| (r.ring.head_remaining() + r.ring.queued_behind_head() * 64) as u64)
            .sum();
        assert!(in_use >= ring_pages, "rings alone pin {ring_pages} frames");
        // Generous upper bound: rings + full NIC buffer + tx windows.
        assert!(
            in_use < ring_pages + 3000,
            "frame leak suspected: {in_use} in use vs {ring_pages} ring pages"
        );
    }
}

#[cfg(test)]
mod huge_debug {
    use super::*;
    use crate::mode::ProtectionMode;

    #[test]
    fn huge_mode_sustains_request_response_traffic() {
        // Regression for two historical deadlocks: shallow-ring open-page
        // starvation and RtoCheck event leaks under high pump rates.
        let mut cfg = SimConfig::paper_default(ProtectionMode::FnsHugeStrict);
        cfg.cores = 8;
        cfg.flows = 8;
        cfg.mtu = 9000;
        cfg.workload = Workload::RequestResponse {
            request_bytes: 4128,
            response_bytes: 64,
            depth: 32,
            dut_is_server: true,
            app_cpu_per_request_ns: 1_500,
            app_cpu_per_kb_ns: 30,
        };
        cfg.warmup = 2_000_000;
        cfg.measure = 6_000_000;
        let mut sim = HostSim::new(cfg);
        sim.step_until(5_000_000);
        assert!(
            sim.q.len() < 2_000,
            "event-queue leak: {} pending events",
            sim.q.len()
        );
        let m = sim.finish();
        assert!(
            m.rx_gbps() > 20.0,
            "traffic stalled: {:.1} Gbps",
            m.rx_gbps()
        );
        assert_eq!(m.stale_iotlb_hits, 0, "strict safety");
    }

    #[test]
    fn huge_take_pages_works() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::FnsHugeStrict);
        cfg.aging_factor = 0.0;
        let mut sim = HostSim::new(cfg);
        println!(
            "descs={} head_rem={}",
            sim.rings[0].ring.len(),
            sim.rings[0].ring.head_remaining()
        );
        let got = sim.take_rx_pages(0, 4096);
        assert!(got, "ring out of descriptors");
        sim.scratch.rx_pages.clear();
        // Drive arrival path manually.
        let pkt = Packet::data(FlowId(0), 0, 4096, 0);
        sim.nic_arrive(100, pkt);
        println!(
            "nic enq={} drop={} rx_inflight={}",
            sim.nic_bufs[0].enqueued_packets(),
            sim.nic_bufs[0].dropped_packets(),
            sim.rx_inflight
        );
        assert_eq!(sim.rx_inflight, 1);
    }
}

#[cfg(test)]
mod replenish_regression {
    use super::*;
    use crate::mode::ProtectionMode;

    /// Regression: with large (512-page) descriptors and jumbo packets, a
    /// lazy replenish threshold can strand a ring at 2 remaining pages —
    /// below what one 9 KB packet needs — deadlocking the datapath. Rings
    /// must therefore be kept topped up.
    #[test]
    fn jumbo_packets_never_deadlock_large_descriptors() {
        let mut cfg = SimConfig::paper_default(ProtectionMode::FnsHugeStrict);
        cfg.cores = 8;
        cfg.flows = 8;
        cfg.mtu = 9000;
        cfg.workload = Workload::RequestResponse {
            request_bytes: 4128,
            response_bytes: 64,
            depth: 32,
            dut_is_server: true,
            app_cpu_per_request_ns: 1_500,
            app_cpu_per_kb_ns: 30,
        };
        cfg.warmup = 10_000_000;
        cfg.measure = 20_000_000;
        let m = HostSim::new(cfg).run();
        assert!(
            m.rx_gbps() > 60.0,
            "datapath stalled: {:.1} Gbps",
            m.rx_gbps()
        );
        assert_eq!(m.stale_iotlb_hits, 0);
    }
}
