//! Typed errors for the driver datapaths.
//!
//! The map/unmap/invalidate hot paths can fail for four substrate reasons —
//! physical-frame exhaustion, IOVA-space exhaustion, an IOMMU fault, or a
//! descriptor-ring error — plus injected descriptor-pool exhaustion.
//! [`DmaError`] unifies them so `prepare_rx_descriptor` /
//! `complete_rx_descriptor` / `tx_map` / `tx_complete` propagate one error
//! type and callers pick a recovery policy (recycle, retry, drop-account)
//! instead of unwinding the whole simulation.

use fns_iommu::IommuFault;
use fns_iova::AllocError;
use fns_mem::FrameError;
use fns_nic::RingError;

/// A failure on one of the driver's DMA datapaths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// Physical frame allocation or release failed.
    Frame(FrameError),
    /// IOVA allocation or release failed.
    Iova(AllocError),
    /// The IOMMU raised a fault (translation, invalidation timeout, or a
    /// page-table structural error).
    Iommu(IommuFault),
    /// The Rx descriptor ring refused the operation.
    Ring(RingError),
    /// Injected descriptor-pool exhaustion: no Rx descriptor can be
    /// prepared right now.
    DescriptorExhausted,
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::Frame(e) => write!(f, "frame allocator: {e}"),
            DmaError::Iova(e) => write!(f, "IOVA allocator: {e}"),
            DmaError::Iommu(e) => write!(f, "IOMMU: {e}"),
            DmaError::Ring(e) => write!(f, "Rx ring: {e}"),
            DmaError::DescriptorExhausted => write!(f, "Rx descriptor pool exhausted"),
        }
    }
}

impl std::error::Error for DmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmaError::Frame(e) => Some(e),
            DmaError::Iova(e) => Some(e),
            DmaError::Iommu(e) => Some(e),
            DmaError::Ring(e) => Some(e),
            DmaError::DescriptorExhausted => None,
        }
    }
}

impl From<FrameError> for DmaError {
    fn from(e: FrameError) -> Self {
        DmaError::Frame(e)
    }
}

impl From<AllocError> for DmaError {
    fn from(e: AllocError) -> Self {
        DmaError::Iova(e)
    }
}

impl From<IommuFault> for DmaError {
    fn from(e: IommuFault) -> Self {
        DmaError::Iommu(e)
    }
}

impl From<fns_iommu::PtError> for DmaError {
    fn from(e: fns_iommu::PtError) -> Self {
        DmaError::Iommu(IommuFault::Pt(e))
    }
}

impl From<RingError> for DmaError {
    fn from(e: RingError) -> Self {
        DmaError::Ring(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e: DmaError = FrameError::OutOfMemory.into();
        assert!(e.to_string().contains("frame allocator"));
        assert!(std::error::Error::source(&e).is_some());

        let e: DmaError = AllocError::Exhausted { pages: 64 }.into();
        assert!(e.to_string().contains("IOVA"));

        let e: DmaError = RingError::Overflow { capacity: 8 }.into();
        assert!(e.to_string().contains("ring"));

        assert!(std::error::Error::source(&DmaError::DescriptorExhausted).is_none());
    }

    #[test]
    fn pt_error_wraps_as_iommu_fault() {
        let e: DmaError = fns_iommu::PtError::NotMapped(7).into();
        assert!(matches!(e, DmaError::Iommu(IommuFault::Pt(_))));
    }
}
