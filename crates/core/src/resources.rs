//! Serial simulation resources: CPU cores, the translation pipe, links.
//!
//! All three share one shape: a serially occupied resource where submitting
//! work at time `t` finishes at `max(t, busy_until) + service`. This is the
//! discrete-event analogue of an M/G/1-ish server and is what turns
//! per-page translation latency into the Little's-law throughput ceilings
//! the paper measures.

use fns_sim::time::Nanos;

/// A serially occupied resource (CPU core, IOMMU/root-complex pipeline, or
/// link serializer).
///
/// # Examples
///
/// ```
/// use fns_core::resources::SerialResource;
///
/// let mut r = SerialResource::new();
/// assert_eq!(r.run(100, 50), 150);
/// // Submitted while busy: queues behind the first job.
/// assert_eq!(r.run(120, 50), 200);
/// // Submitted after idle: starts immediately.
/// assert_eq!(r.run(500, 50), 550);
/// assert_eq!(r.busy_time(), 150);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialResource {
    busy_until: Nanos,
    busy_accum: Nanos,
    jobs: u64,
}

impl SerialResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits `service` ns of work at time `now`; returns the completion
    /// time.
    pub fn run(&mut self, now: Nanos, service: Nanos) -> Nanos {
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        self.busy_accum += service;
        self.jobs += 1;
        self.busy_until
    }

    /// Time the resource becomes free.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Returns `true` if the resource is idle at `now`.
    pub fn is_idle(&self, now: Nanos) -> bool {
        self.busy_until <= now
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> Nanos {
        self.busy_accum
    }

    /// Jobs executed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over a window of `window` ns given the busy time at the
    /// window start.
    pub fn utilization(&self, busy_at_start: Nanos, window: Nanos) -> f64 {
        if window == 0 {
            0.0
        } else {
            (self.busy_accum - busy_at_start) as f64 / window as f64
        }
    }

    /// Current queueing delay for new work submitted at `now`.
    pub fn backlog(&self, now: Nanos) -> Nanos {
        self.busy_until.saturating_sub(now)
    }

    /// Serializes the occupancy state for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.busy_until);
        w.u64(self.busy_accum);
        w.u64(self.jobs);
    }

    /// Rebuilds a resource captured by [`SerialResource::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        Ok(Self {
            busy_until: r.u64()?,
            busy_accum: r.u64()?,
            jobs: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_overlapping_work() {
        let mut r = SerialResource::new();
        assert_eq!(r.run(0, 10), 10);
        assert_eq!(r.run(0, 10), 20);
        assert_eq!(r.run(5, 10), 30);
        assert_eq!(r.jobs(), 3);
        assert_eq!(r.busy_time(), 30);
    }

    #[test]
    fn idles_between_jobs() {
        let mut r = SerialResource::new();
        r.run(0, 10);
        assert!(r.is_idle(10));
        assert!(!r.is_idle(9));
        assert_eq!(r.run(100, 10), 110);
        // Busy time excludes idle gaps.
        assert_eq!(r.busy_time(), 20);
    }

    #[test]
    fn utilization_windows() {
        let mut r = SerialResource::new();
        r.run(0, 400);
        let snapshot = r.busy_time();
        r.run(1000, 300);
        assert!((r.utilization(snapshot, 1000) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn backlog_measures_queue() {
        let mut r = SerialResource::new();
        r.run(0, 100);
        assert_eq!(r.backlog(20), 80);
        assert_eq!(r.backlog(200), 0);
    }
}
