//! Per-run results in the units the paper reports.

use fns_iommu::IommuStats;
use fns_sim::stats::Histogram;
use fns_sim::time::{throughput_gbps, Nanos};

/// Everything one simulation run measures (over the measurement window,
/// after warmup).
/// `PartialEq` exists for the golden-determinism tests: two runs of the
/// same config must be bit-identical, every field included.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Measurement window length.
    pub window_ns: Nanos,
    /// Application-level bytes delivered in order at the DUT (Rx direction).
    pub rx_goodput_bytes: u64,
    /// Application bytes the DUT transmitted that the peer delivered.
    pub tx_goodput_bytes: u64,
    /// Data packets arriving at the DUT NIC.
    pub rx_packets: u64,
    /// Packets dropped at the DUT NIC buffer.
    pub nic_drops: u64,
    /// Tx packets (ACKs + data) the DUT sent.
    pub tx_packets: u64,
    /// IOMMU counter delta over the window.
    pub iommu: IommuStats,
    /// Per-core CPU busy fractions.
    pub cpu_utilization: Vec<f64>,
    /// RPC / request latency histogram (ns), when the workload measures one.
    pub latency: Histogram,
    /// Deferred-mode safety violations observed (stale IOTLB hits).
    pub stale_iotlb_hits: u64,
    /// Use-after-free PTcache walks observed (must be 0 in all modes).
    pub stale_ptcache_walks: u64,
    /// Locality trace: reuse distances of allocated IOVAs' PT-L4 keys
    /// (`None` = first access), the Figures 2e/3e/7e/8e panel.
    pub locality_distances: Vec<Option<u64>>,
    /// CPU ns spent in IOVA allocation + map/unmap over the whole run
    /// (includes warmup; for coarse attribution only).
    pub map_cpu_ns: u64,
    /// CPU ns spent waiting on the invalidation queue over the whole run.
    pub invalidation_cpu_ns: u64,
    /// Total simulator events processed over the whole run (warmup
    /// included; the numerator of the harness's events/sec rate). Purely a
    /// simulator-performance observable — no simulated behaviour reads it.
    pub events_processed: u64,
    /// Merged fault-injection/recovery counters from the driver and wire
    /// planes, over the whole run (like `map_cpu_ns`, not windowed).
    pub faults: fns_faults::FaultStats,
    /// Chronological injection log (driver sites first, then wire sites),
    /// for reconciling counters against observed behaviour.
    pub fault_log: Vec<fns_faults::FaultRecord>,
}

impl RunMetrics {
    /// Rx goodput in Gbps.
    pub fn rx_gbps(&self) -> f64 {
        throughput_gbps(self.rx_goodput_bytes, self.window_ns)
    }

    /// Tx goodput in Gbps.
    pub fn tx_gbps(&self) -> f64 {
        throughput_gbps(self.tx_goodput_bytes, self.window_ns)
    }

    /// Fraction of arriving packets dropped at the NIC.
    pub fn drop_rate(&self) -> f64 {
        let total = self.rx_packets + self.nic_drops;
        if total == 0 {
            0.0
        } else {
            self.nic_drops as f64 / total as f64
        }
    }

    /// 4 KB pages of Rx data delivered (the paper's normalization unit).
    pub fn data_pages(&self) -> f64 {
        self.rx_goodput_bytes as f64 / 4096.0
    }

    /// IOTLB misses per page of data.
    pub fn iotlb_misses_per_page(&self) -> f64 {
        self.iommu.iotlb_misses as f64 / self.data_pages().max(1.0)
    }

    /// PTcache-L1 misses per page (conditional, as the paper counts).
    pub fn l1_misses_per_page(&self) -> f64 {
        self.iommu.ptcache_l1_misses as f64 / self.data_pages().max(1.0)
    }

    /// PTcache-L2 misses per page.
    pub fn l2_misses_per_page(&self) -> f64 {
        self.iommu.ptcache_l2_misses as f64 / self.data_pages().max(1.0)
    }

    /// PTcache-L3 misses per page.
    pub fn l3_misses_per_page(&self) -> f64 {
        self.iommu.ptcache_l3_misses as f64 / self.data_pages().max(1.0)
    }

    /// Memory reads per page of data: the paper's `M`.
    pub fn memory_reads_per_page(&self) -> f64 {
        self.iommu.memory_reads as f64 / self.data_pages().max(1.0)
    }

    /// Tx packets per page of Rx data (the crosses in Figure 2c).
    pub fn tx_packets_per_page(&self) -> f64 {
        self.tx_packets as f64 / self.data_pages().max(1.0)
    }

    /// Maximum per-core CPU utilization.
    pub fn max_cpu(&self) -> f64 {
        self.cpu_utilization.iter().cloned().fold(0.0, f64::max)
    }

    /// Fraction of locality-trace re-accesses at reuse distance >=
    /// `threshold` (likely misses in a PTcache-L3 of that size).
    pub fn locality_fraction_at_least(&self, threshold: u64) -> f64 {
        let vals: Vec<u64> = self.locality_distances.iter().filter_map(|d| *d).collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().filter(|&&v| v >= threshold).count() as f64 / vals.len() as f64
    }

    /// Mean reuse distance of the locality trace.
    pub fn locality_mean(&self) -> f64 {
        let vals: Vec<u64> = self.locality_distances.iter().filter_map(|d| *d).collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<u64>() as f64 / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            window_ns: 1_000_000_000,
            rx_goodput_bytes: 12_500_000_000 / 8, // 12.5 Gb worth
            tx_goodput_bytes: 0,
            rx_packets: 900,
            nic_drops: 100,
            tx_packets: 50,
            iommu: IommuStats {
                iotlb_misses: 500_000,
                ptcache_l3_misses: 100_000,
                memory_reads: 700_000,
                ..Default::default()
            },
            cpu_utilization: vec![0.2, 0.6, 0.4],
            latency: Histogram::new(),
            stale_iotlb_hits: 0,
            stale_ptcache_walks: 0,
            locality_distances: vec![None, Some(10), Some(100), Some(1)],
            map_cpu_ns: 0,
            invalidation_cpu_ns: 0,
            events_processed: 0,
            faults: Default::default(),
            fault_log: Vec::new(),
        }
    }

    #[test]
    fn gbps_and_drop_rate() {
        let m = metrics();
        assert!((m.rx_gbps() - 12.5).abs() < 1e-9);
        assert!((m.drop_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn per_page_normalization() {
        let m = metrics();
        let pages = m.data_pages();
        assert!((m.iotlb_misses_per_page() - 500_000.0 / pages).abs() < 1e-9);
        assert!((m.memory_reads_per_page() - 700_000.0 / pages).abs() < 1e-9);
    }

    #[test]
    fn locality_summaries() {
        let m = metrics();
        assert!((m.locality_fraction_at_least(64) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.locality_mean() - 37.0).abs() < 1e-12);
        assert_eq!(m.max_cpu(), 0.6);
    }
}
