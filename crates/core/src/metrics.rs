//! Per-run results in the units the paper reports.

use fns_iommu::{DomainStats, IommuStats};
use fns_sim::stats::Histogram;
use fns_sim::time::{throughput_gbps, Nanos};
use fns_trace::{
    JsonWriter, ProvenanceDump, RegMetric, RegistryReport, SampleSet, Span, SpanSet, Trace, TxnDump,
};

/// Everything one simulation run measures (over the measurement window,
/// after warmup).
/// `PartialEq` exists for the golden-determinism tests: two runs of the
/// same config must be bit-identical, every field included.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Measurement window length.
    pub window_ns: Nanos,
    /// Application-level bytes delivered in order at the DUT (Rx direction).
    pub rx_goodput_bytes: u64,
    /// Application bytes the DUT transmitted that the peer delivered.
    pub tx_goodput_bytes: u64,
    /// Data packets arriving at the DUT NIC.
    pub rx_packets: u64,
    /// Packets dropped at the DUT NIC buffer.
    pub nic_drops: u64,
    /// Tx packets (ACKs + data) the DUT sent.
    pub tx_packets: u64,
    /// IOMMU counter delta over the window.
    pub iommu: IommuStats,
    /// Per-protection-domain translation counter deltas over the window,
    /// indexed by domain id (one entry per device in the topology; a
    /// single entry for legacy single-device runs). Tenant-attributable
    /// pressure and staleness — the sum over domains of `translations`
    /// equals `iommu.translations`.
    pub domains: Vec<DomainStats>,
    /// Storage-device DMA reads completed over the window (0 without
    /// storage devices in the topology).
    pub storage_ios: u64,
    /// Bytes those storage IOs moved.
    pub storage_bytes: u64,
    /// Connections that completed and restarted under the churn workload.
    pub churned_conns: u64,
    /// Per-core CPU busy fractions.
    pub cpu_utilization: Vec<f64>,
    /// RPC / request latency histogram (ns), when the workload measures one.
    pub latency: Histogram,
    /// Deferred-mode safety violations observed (stale IOTLB hits).
    pub stale_iotlb_hits: u64,
    /// Use-after-free PTcache walks observed (must be 0 in all modes).
    pub stale_ptcache_walks: u64,
    /// Locality trace: reuse distances of allocated IOVAs' PT-L4 keys
    /// (`None` = first access), the Figures 2e/3e/7e/8e panel.
    pub locality_distances: Vec<Option<u64>>,
    /// Total driver datapath CPU ns — IOVA allocation, map/unmap, *and*
    /// invalidation-queue waits — over the **whole run** (warmup included,
    /// unlike the windowed counters above). Kept for continuity; equals
    /// `spans.total_ns()`, which breaks the same charges into disjoint
    /// buckets. The windowing rule is documented once in DESIGN.md §9.
    pub map_cpu_ns: u64,
    /// The invalidation-attributed subset of `map_cpu_ns` (queue waits +
    /// fault-recovery retries), also whole-run. Not additive with
    /// `map_cpu_ns`; equals `spans.invalidation_ns()`.
    pub invalidation_cpu_ns: u64,
    /// Disjoint CPU-span attribution of the driver datapath (whole-run,
    /// same windowing as `map_cpu_ns`): alloc / map / unmap /
    /// invalidation-wait / completion / recovery.
    pub spans: SpanSet,
    /// Total simulator events processed over the whole run (warmup
    /// included; the numerator of the harness's events/sec rate). Purely a
    /// simulator-performance observable — no simulated behaviour reads it.
    pub events_processed: u64,
    /// Merged fault-injection/recovery counters from the driver and wire
    /// planes, over the whole run (like `map_cpu_ns`, not windowed).
    pub faults: fns_faults::FaultStats,
    /// Chronological injection log, interleaved across the driver and wire
    /// planes in injection order. A filtered view of `trace` (fault
    /// events only), derived via [`fns_faults::fault_log_from`].
    pub fault_log: Vec<fns_faults::FaultRecord>,
    /// Gauge time series collected when `SimConfig::probes` is enabled
    /// (empty otherwise).
    pub samples: SampleSet,
    /// Drained event trace. Populated by the categories selected in
    /// `SimConfig::trace`; fault events are always recorded when fault
    /// injection is enabled (they back `fault_log`). Empty when neither
    /// applies.
    pub trace: Trace,
    /// Safety-oracle summary (default/empty when auditing was off).
    pub audit: fns_oracle::AuditReport,
    /// Degradation-watchdog summary (default/empty when the watchdog was
    /// off). Relief drains, storm detections, and the per-page fallback
    /// flag land here so soak runs surface degradation in the metrics.
    pub watchdog: crate::watchdog::WatchdogReport,
    /// Page-provenance timelines (default/empty unless
    /// `SimConfig::observe.provenance` armed the book).
    pub provenance: ProvenanceDump,
    /// Completed DMA-transaction causal spans (default/empty unless
    /// `SimConfig::observe.txn` armed the trace).
    pub txns: TxnDump,
    /// HDR registry report: per-(metric, domain, flow) percentiles plus
    /// the streamed series (default/empty unless
    /// `SimConfig::observe.registry` armed it).
    pub registry: RegistryReport,
    /// Flight-recorder crash ring, drained at end of run (empty unless
    /// `SimConfig::observe.flight` armed it). On aborts the CLI flushes
    /// the live ring instead; this copy is what a *completed* run kept.
    pub flight: Trace,
}

impl RunMetrics {
    /// Rx goodput in Gbps.
    pub fn rx_gbps(&self) -> f64 {
        throughput_gbps(self.rx_goodput_bytes, self.window_ns)
    }

    /// Tx goodput in Gbps.
    pub fn tx_gbps(&self) -> f64 {
        throughput_gbps(self.tx_goodput_bytes, self.window_ns)
    }

    /// Fraction of arriving packets dropped at the NIC.
    pub fn drop_rate(&self) -> f64 {
        let total = self.rx_packets + self.nic_drops;
        if total == 0 {
            0.0
        } else {
            self.nic_drops as f64 / total as f64
        }
    }

    /// 4 KB pages of Rx data delivered (the paper's normalization unit).
    pub fn data_pages(&self) -> f64 {
        self.rx_goodput_bytes as f64 / 4096.0
    }

    /// IOTLB misses per page of data.
    pub fn iotlb_misses_per_page(&self) -> f64 {
        self.iommu.iotlb_misses as f64 / self.data_pages().max(1.0)
    }

    /// PTcache-L1 misses per page (conditional, as the paper counts).
    pub fn l1_misses_per_page(&self) -> f64 {
        self.iommu.ptcache_l1_misses as f64 / self.data_pages().max(1.0)
    }

    /// PTcache-L2 misses per page.
    pub fn l2_misses_per_page(&self) -> f64 {
        self.iommu.ptcache_l2_misses as f64 / self.data_pages().max(1.0)
    }

    /// PTcache-L3 misses per page.
    pub fn l3_misses_per_page(&self) -> f64 {
        self.iommu.ptcache_l3_misses as f64 / self.data_pages().max(1.0)
    }

    /// Memory reads per page of data: the paper's `M`.
    pub fn memory_reads_per_page(&self) -> f64 {
        self.iommu.memory_reads as f64 / self.data_pages().max(1.0)
    }

    /// Tx packets per page of Rx data (the crosses in Figure 2c).
    pub fn tx_packets_per_page(&self) -> f64 {
        self.tx_packets as f64 / self.data_pages().max(1.0)
    }

    /// Maximum per-core CPU utilization.
    pub fn max_cpu(&self) -> f64 {
        self.cpu_utilization.iter().cloned().fold(0.0, f64::max)
    }

    /// Fraction of locality-trace re-accesses at reuse distance >=
    /// `threshold` (likely misses in a PTcache-L3 of that size).
    pub fn locality_fraction_at_least(&self, threshold: u64) -> f64 {
        let vals: Vec<u64> = self.locality_distances.iter().filter_map(|d| *d).collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().filter(|&&v| v >= threshold).count() as f64 / vals.len() as f64
    }

    /// Mean reuse distance of the locality trace.
    pub fn locality_mean(&self) -> f64 {
        let vals: Vec<u64> = self.locality_distances.iter().filter_map(|d| *d).collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<u64>() as f64 / vals.len() as f64
    }

    /// Serializes the run for post-processing (`fns-sim --metrics-json`).
    ///
    /// Hand-rolled through [`JsonWriter`] (the workspace has no serde).
    /// The raw locality vector is summarized rather than dumped (it can
    /// hold hundreds of thousands of entries); the event trace is reported
    /// by size only — use `--trace` for the full Chrome export.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(4096);
        w.begin_object();
        w.field_u64("window_ns", self.window_ns);
        w.field_u64("rx_goodput_bytes", self.rx_goodput_bytes);
        w.field_u64("tx_goodput_bytes", self.tx_goodput_bytes);
        w.field_f64("rx_gbps", self.rx_gbps());
        w.field_f64("tx_gbps", self.tx_gbps());
        w.field_u64("rx_packets", self.rx_packets);
        w.field_u64("nic_drops", self.nic_drops);
        w.field_u64("tx_packets", self.tx_packets);
        w.key("iommu");
        w.begin_object();
        w.field_u64("translations", self.iommu.translations);
        w.field_u64("iotlb_hits", self.iommu.iotlb_hits);
        w.field_u64("iotlb_misses", self.iommu.iotlb_misses);
        w.field_u64("ptcache_l3_misses", self.iommu.ptcache_l3_misses);
        w.field_u64("ptcache_l2_misses", self.iommu.ptcache_l2_misses);
        w.field_u64("ptcache_l1_misses", self.iommu.ptcache_l1_misses);
        w.field_u64("memory_reads", self.iommu.memory_reads);
        w.field_u64("faults", self.iommu.faults);
        w.field_u64("iotlb_invalidations", self.iommu.iotlb_invalidations);
        w.field_u64("ptcache_invalidations", self.iommu.ptcache_invalidations);
        w.field_u64(
            "invalidation_queue_entries",
            self.iommu.invalidation_queue_entries,
        );
        w.end_object();
        // Per-tenant registry: one object per protection domain, keyed by
        // position. Always present (a single domain-0 entry on legacy
        // runs) so dashboards need no topology-aware existence checks.
        w.key("domains");
        w.begin_array();
        for d in &self.domains {
            w.begin_object();
            w.field_u64("translations", d.translations);
            w.field_u64("iotlb_hits", d.iotlb_hits);
            w.field_u64("stale_iotlb_hits", d.stale_iotlb_hits);
            w.field_u64("faults", d.faults);
            w.end_object();
        }
        w.end_array();
        w.field_u64("storage_ios", self.storage_ios);
        w.field_u64("storage_bytes", self.storage_bytes);
        w.field_u64("churned_conns", self.churned_conns);
        w.key("cpu_utilization");
        w.begin_array();
        for &u in &self.cpu_utilization {
            w.f64(u);
        }
        w.end_array();
        w.key("latency");
        w.begin_object();
        w.field_u64("count", self.latency.count());
        if self.latency.count() > 0 {
            w.field_u64("p50_ns", self.latency.percentile(50.0));
            w.field_u64("p99_ns", self.latency.percentile(99.0));
            w.field_u64("p999_ns", self.latency.percentile(99.9));
        }
        w.end_object();
        w.field_u64("stale_iotlb_hits", self.stale_iotlb_hits);
        w.field_u64("stale_ptcache_walks", self.stale_ptcache_walks);
        w.key("locality");
        w.begin_object();
        w.field_u64("samples", self.locality_distances.len() as u64);
        w.field_f64("mean_distance", self.locality_mean());
        w.end_object();
        w.field_u64("map_cpu_ns", self.map_cpu_ns);
        w.field_u64("invalidation_cpu_ns", self.invalidation_cpu_ns);
        w.key("spans");
        w.begin_object();
        for span in Span::ALL {
            w.field_u64(span.name(), self.spans.get(span));
        }
        w.end_object();
        w.field_u64("events_processed", self.events_processed);
        w.key("faults");
        w.begin_object();
        w.field_u64("total_injected", self.faults.total_injected());
        w.field_u64("total_recovered", self.faults.total_recovered());
        w.key("injected");
        w.begin_object();
        for kind in fns_faults::FaultKind::ALL {
            let n = self.faults.injected_of(kind);
            if n > 0 {
                w.field_u64(kind.name(), n);
            }
        }
        w.end_object();
        w.field_u64("invalidation_retries", self.faults.invalidation_retries);
        w.field_u64("batch_fallbacks", self.faults.batch_fallbacks);
        w.field_u64("descriptor_recycles", self.faults.descriptor_recycles);
        w.field_u64("stale_dma_blocked", self.faults.stale_dma_blocked);
        w.field_u64("stale_dma_leaked", self.faults.stale_dma_leaked);
        w.end_object();
        w.field_u64("fault_log_len", self.fault_log.len() as u64);
        w.key("samples");
        w.begin_object();
        w.field_u64("interval_ns", self.samples.interval_ns);
        w.key("series");
        w.begin_array();
        for s in &self.samples.samples {
            w.begin_object();
            w.field_u64("at", s.at);
            w.field_u64("iotlb_occupancy", s.iotlb_occupancy as u64);
            w.field_u64("iotlb_hit_rate_bp", s.iotlb_hit_rate_bp as u64);
            w.field_u64("ptcache_l1", s.ptcache_l1 as u64);
            w.field_u64("ptcache_l2", s.ptcache_l2 as u64);
            w.field_u64("ptcache_l3", s.ptcache_l3 as u64);
            w.field_u64("inv_queue_depth", s.inv_queue_depth as u64);
            w.field_u64("ring_occupancy", s.ring_occupancy as u64);
            w.field_u64("nic_buffer_bytes", s.nic_buffer_bytes);
            w.field_u64("switch_queue_bytes", s.switch_queue_bytes);
            w.field_u64("iova_live_bytes", s.iova_live_bytes);
            w.field_u64("iova_free_spans", s.iova_free_spans);
            w.field_u64("iova_largest_free_run", s.iova_largest_free_run);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.key("trace");
        w.begin_object();
        w.field_u64("events", self.trace.len() as u64);
        w.field_u64("dropped", self.trace.dropped);
        w.end_object();
        w.key("audit");
        w.begin_object();
        w.field_bool("enabled", self.audit.enabled);
        w.field_u64("checks", self.audit.checks);
        w.field_u64("ops", self.audit.ops);
        w.field_u64("violations", self.audit.violations);
        w.key("by_invariant");
        w.begin_object();
        for inv in fns_oracle::Invariant::ALL {
            w.field_u64(inv.name(), self.audit.of(inv));
        }
        w.end_object();
        w.end_object();
        w.key("watchdog");
        w.begin_object();
        w.field_bool("enabled", self.watchdog.enabled);
        w.field_u64("checks", self.watchdog.checks);
        w.field_u64("relief_drains", self.watchdog.relief_drains);
        w.field_u64("storms", self.watchdog.storms);
        w.field_u64("max_backlog_seen", self.watchdog.max_backlog_seen);
        w.field_bool("degraded", self.watchdog.degraded);
        w.field_bool("aborted", self.watchdog.aborted);
        w.end_object();
        w.key("provenance");
        w.begin_object();
        w.field_bool("enabled", self.provenance.enabled);
        w.field_u64("pages_tracked", self.provenance.pages.len() as u64);
        w.field_u64("dropped_pages", self.provenance.dropped_pages);
        w.field_u64("window_dropped", self.provenance.window_dropped);
        w.field_u64(
            "events",
            self.provenance
                .pages
                .iter()
                .map(|p| p.events.len() as u64)
                .sum(),
        );
        w.end_object();
        w.key("txns");
        w.begin_object();
        w.field_bool("enabled", self.txns.enabled);
        w.field_u64("records", self.txns.records.len() as u64);
        w.field_u64("open", self.txns.open);
        w.field_u64("dropped", self.txns.dropped);
        w.end_object();
        w.key("registry");
        w.begin_object();
        w.field_bool("enabled", self.registry.enabled);
        w.field_u64("keys", self.registry.stats.len() as u64);
        // All-key merged percentile triples per metric: the schema consumed
        // by perf_smoke and external dashboards. Always present (zeros when
        // the registry is off) so readers need no existence checks.
        for metric in RegMetric::ALL {
            let (count, p50, p99, p999) = self.registry.percentiles(metric);
            w.key(metric.name());
            w.begin_object();
            w.field_u64("count", count);
            w.field_u64("p50", p50);
            w.field_u64("p99", p99);
            w.field_u64("p999", p999);
            w.end_object();
        }
        w.key("series");
        w.begin_array();
        for s in &self.registry.series {
            w.begin_object();
            w.field_u64("at", s.at);
            w.field_u64("desc_p50", s.desc_p50);
            w.field_u64("desc_p99", s.desc_p99);
            w.field_u64("desc_p999", s.desc_p999);
            w.field_u64("inv_wait_p99", s.inv_wait_p99);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.key("flight");
        w.begin_object();
        w.field_u64("events", self.flight.len() as u64);
        w.field_u64("dropped", self.flight.dropped);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Combines per-shard results from the sharded engine into one run's
    /// metrics (see `crate::shard`). Every rule is a pure function of the
    /// inputs taken in shard order, so the merged value is independent of
    /// how many worker threads produced the parts:
    ///
    /// - counters sum; traces/flight rings k-way merge chronologically
    ///   with shard index as the tie-break; per-core vectors concatenate
    ///   in shard order (shard 0's cores first).
    /// - `domains` scatters each shard's local domain slice through its
    ///   `domain_map` (local index → global domain id) so tenant
    ///   attribution survives the partition.
    /// - `fault_log` is *recomputed* from the merged trace rather than
    ///   concatenated, keeping the log ↔ trace filtering invariant.
    /// - gauge samples merge element-wise across shards at the same
    ///   cadence index: occupancies/depths sum (shards share one modelled
    ///   IOMMU), hit rate averages, and the largest-free-run takes the
    ///   max (per-shard allocators are disjoint address slices).
    pub fn merge_shards(
        parts: Vec<RunMetrics>,
        domain_maps: &[Vec<usize>],
        total_domains: usize,
    ) -> RunMetrics {
        assert!(!parts.is_empty(), "merge_shards needs at least one shard");
        assert_eq!(parts.len(), domain_maps.len());

        let mut domains = vec![DomainStats::default(); total_domains];
        for (part, map) in parts.iter().zip(domain_maps) {
            for (local, stat) in part.domains.iter().enumerate() {
                domains[map[local]].absorb(stat);
            }
        }

        let mut iommu = IommuStats::default();
        let mut latency = Histogram::new();
        let mut spans = SpanSet::default();
        let mut faults = fns_faults::FaultStats::default();
        let mut audit = fns_oracle::AuditReport::default();
        let mut watchdog = crate::watchdog::WatchdogReport::default();
        let mut cpu_utilization = Vec::new();
        let mut locality_distances = Vec::new();
        for p in &parts {
            iommu.absorb(&p.iommu);
            latency.merge(&p.latency);
            spans.merge(&p.spans);
            faults = faults.merge(&p.faults);
            audit.absorb(&p.audit);
            watchdog.enabled |= p.watchdog.enabled;
            watchdog.checks += p.watchdog.checks;
            watchdog.relief_drains += p.watchdog.relief_drains;
            watchdog.storms += p.watchdog.storms;
            watchdog.max_backlog_seen = watchdog.max_backlog_seen.max(p.watchdog.max_backlog_seen);
            watchdog.degraded |= p.watchdog.degraded;
            watchdog.aborted |= p.watchdog.aborted;
            cpu_utilization.extend_from_slice(&p.cpu_utilization);
            locality_distances.extend_from_slice(&p.locality_distances);
        }

        let samples = Self::merge_samples(&parts);
        let registry = Self::merge_registry(&parts);

        let mut provenance = ProvenanceDump::default();
        for p in &parts {
            provenance.enabled |= p.provenance.enabled;
            provenance.pages.extend(p.provenance.pages.iter().cloned());
            provenance.dropped_pages += p.provenance.dropped_pages;
            provenance.window_dropped += p.provenance.window_dropped;
        }
        provenance.pages.sort_by_key(|t| t.pfn);

        let mut txns = TxnDump::default();
        for p in &parts {
            txns.enabled |= p.txns.enabled;
            txns.records.extend(p.txns.records.iter().cloned());
            txns.open += p.txns.open;
            txns.dropped += p.txns.dropped;
        }

        let trace = Trace::merge_chrono(parts.iter().map(|p| p.trace.clone()).collect());
        let flight = Trace::merge_chrono(parts.iter().map(|p| p.flight.clone()).collect());
        let fault_log = fns_faults::fault_log_from(&trace);

        RunMetrics {
            window_ns: parts[0].window_ns,
            rx_goodput_bytes: parts.iter().map(|p| p.rx_goodput_bytes).sum(),
            tx_goodput_bytes: parts.iter().map(|p| p.tx_goodput_bytes).sum(),
            rx_packets: parts.iter().map(|p| p.rx_packets).sum(),
            nic_drops: parts.iter().map(|p| p.nic_drops).sum(),
            tx_packets: parts.iter().map(|p| p.tx_packets).sum(),
            iommu,
            domains,
            storage_ios: parts.iter().map(|p| p.storage_ios).sum(),
            storage_bytes: parts.iter().map(|p| p.storage_bytes).sum(),
            churned_conns: parts.iter().map(|p| p.churned_conns).sum(),
            cpu_utilization,
            latency,
            stale_iotlb_hits: parts.iter().map(|p| p.stale_iotlb_hits).sum(),
            stale_ptcache_walks: parts.iter().map(|p| p.stale_ptcache_walks).sum(),
            locality_distances,
            map_cpu_ns: parts.iter().map(|p| p.map_cpu_ns).sum(),
            invalidation_cpu_ns: parts.iter().map(|p| p.invalidation_cpu_ns).sum(),
            spans,
            events_processed: parts.iter().map(|p| p.events_processed).sum(),
            faults,
            fault_log,
            samples,
            trace,
            audit,
            watchdog,
            provenance,
            txns,
            registry,
            flight,
        }
    }

    fn merge_samples(parts: &[RunMetrics]) -> SampleSet {
        let interval_ns = parts
            .iter()
            .map(|p| p.samples.interval_ns)
            .find(|&i| i > 0)
            .unwrap_or(0);
        let longest = parts.iter().map(|p| p.samples.len()).max().unwrap_or(0);
        let mut merged = Vec::with_capacity(longest);
        for i in 0..longest {
            let mut out = fns_trace::Sample::default();
            let mut present = 0u32;
            let mut hit_rate_sum = 0u64;
            for p in parts {
                let Some(s) = p.samples.samples.get(i) else {
                    continue;
                };
                if present == 0 {
                    out.at = s.at;
                }
                present += 1;
                hit_rate_sum += s.iotlb_hit_rate_bp as u64;
                out.iotlb_occupancy = out.iotlb_occupancy.saturating_add(s.iotlb_occupancy);
                out.ptcache_l1 = out.ptcache_l1.saturating_add(s.ptcache_l1);
                out.ptcache_l2 = out.ptcache_l2.saturating_add(s.ptcache_l2);
                out.ptcache_l3 = out.ptcache_l3.saturating_add(s.ptcache_l3);
                out.inv_queue_depth = out.inv_queue_depth.saturating_add(s.inv_queue_depth);
                out.ring_occupancy = out.ring_occupancy.saturating_add(s.ring_occupancy);
                out.nic_buffer_bytes += s.nic_buffer_bytes;
                out.switch_queue_bytes += s.switch_queue_bytes;
                out.iova_live_bytes += s.iova_live_bytes;
                out.iova_free_spans += s.iova_free_spans;
                out.iova_largest_free_run = out.iova_largest_free_run.max(s.iova_largest_free_run);
            }
            out.iotlb_hit_rate_bp = (hit_rate_sum / present.max(1) as u64) as u32;
            merged.push(out);
        }
        SampleSet {
            interval_ns,
            samples: merged,
        }
    }

    fn merge_registry(parts: &[RunMetrics]) -> RegistryReport {
        let mut out = RegistryReport::default();
        for p in parts {
            out.enabled |= p.registry.enabled;
            out.stats.extend(p.registry.stats.iter().cloned());
        }
        // Restore the canonical (metric, domain, flow) key order the
        // monolithic registry reports in. Keys are disjoint across shards
        // (flow == core, and cores partition), so no folding is needed.
        out.stats.sort_by_key(|s| (s.metric, s.domain, s.flow));
        let longest = parts.iter().map(|p| p.registry.series.len()).max();
        for i in 0..longest.unwrap_or(0) {
            let mut merged: Option<fns_trace::RegSample> = None;
            for p in parts {
                let Some(s) = p.registry.series.get(i) else {
                    continue;
                };
                let m = merged.get_or_insert(fns_trace::RegSample {
                    at: s.at,
                    ..Default::default()
                });
                // Cross-key percentiles cannot be re-derived from the
                // streamed points; the max is the conservative (worst
                // tenant) composition and is deterministic.
                m.desc_p50 = m.desc_p50.max(s.desc_p50);
                m.desc_p99 = m.desc_p99.max(s.desc_p99);
                m.desc_p999 = m.desc_p999.max(s.desc_p999);
                m.inv_wait_p99 = m.inv_wait_p99.max(s.inv_wait_p99);
            }
            if let Some(m) = merged {
                out.series.push(m);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            window_ns: 1_000_000_000,
            rx_goodput_bytes: 12_500_000_000 / 8, // 12.5 Gb worth
            tx_goodput_bytes: 0,
            rx_packets: 900,
            nic_drops: 100,
            tx_packets: 50,
            iommu: IommuStats {
                iotlb_misses: 500_000,
                ptcache_l3_misses: 100_000,
                memory_reads: 700_000,
                ..Default::default()
            },
            domains: vec![DomainStats::default()],
            storage_ios: 0,
            storage_bytes: 0,
            churned_conns: 0,
            cpu_utilization: vec![0.2, 0.6, 0.4],
            latency: Histogram::new(),
            stale_iotlb_hits: 0,
            stale_ptcache_walks: 0,
            locality_distances: vec![None, Some(10), Some(100), Some(1)],
            map_cpu_ns: 0,
            invalidation_cpu_ns: 0,
            spans: SpanSet::default(),
            events_processed: 0,
            faults: Default::default(),
            fault_log: Vec::new(),
            samples: SampleSet::default(),
            trace: Trace::default(),
            audit: Default::default(),
            watchdog: Default::default(),
            provenance: Default::default(),
            txns: Default::default(),
            registry: Default::default(),
            flight: Trace::default(),
        }
    }

    #[test]
    fn gbps_and_drop_rate() {
        let m = metrics();
        assert!((m.rx_gbps() - 12.5).abs() < 1e-9);
        assert!((m.drop_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn per_page_normalization() {
        let m = metrics();
        let pages = m.data_pages();
        assert!((m.iotlb_misses_per_page() - 500_000.0 / pages).abs() < 1e-9);
        assert!((m.memory_reads_per_page() - 700_000.0 / pages).abs() < 1e-9);
    }

    #[test]
    fn locality_summaries() {
        let m = metrics();
        assert!((m.locality_fraction_at_least(64) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.locality_mean() - 37.0).abs() < 1e-12);
        assert_eq!(m.max_cpu(), 0.6);
    }
}
