//! IO memory-protection modes.
//!
//! The paper's design space, §3 and Figure 12: stock Linux strict mode, the
//! two F&S ingredient ablations (A = preserve PTcaches, B = contiguous
//! allocation + batched invalidation), full F&S, plus the IOMMU-off and
//! Linux-deferred baselines.

/// Which memory-protection datapath the simulated host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionMode {
    /// No IOMMU: devices use physical addresses. Fast and unsafe.
    IommuOff,
    /// Stock Linux strict mode: per-4 KB IOVAs from the caching allocator,
    /// unmap + full-scope invalidation (IOTLB and PTcaches) immediately
    /// after every DMA, one invalidation-queue entry per page.
    LinuxStrict,
    /// Linux deferred (lazy) mode: invalidations are batched until a
    /// threshold and executed as a global flush. High performance, but a
    /// device can access unmapped pages inside the deferral window.
    LinuxDeferred,
    /// Linux + idea A only: strict mode, but invalidations preserve the
    /// page-structure caches (with the reclamation fixup).
    LinuxPreserve,
    /// Linux + idea B only: contiguous descriptor-granularity IOVAs and
    /// batched (single-entry) invalidations, but invalidations still wipe
    /// the PTcaches.
    LinuxContig,
    /// Full F&S: contiguous IOVAs + PTcache preservation + batched
    /// IOTLB-only invalidations (§3 of the paper).
    FastAndSafe,
    /// Pinned 2 MB hugepage buffers, never unmapped (the approach of
    /// Farshin et al. \[16\], discussed in the paper's §5): near-zero IOTLB
    /// misses through reach, but the device retains permanent access to the
    /// buffer pool — a weaker safety property.
    HugepagePinned,
    /// DAMN-style persistent mappings with recycled pre-mapped buffers
    /// (Markuze et al. \[34\], §5): no unmap/invalidate on the datapath, so
    /// no per-DMA overhead, but pages stay device-accessible after use.
    DamnRecycle,
    /// F&S + hugepages, the paper's §5 future-work direction, with strict
    /// safety intact: Rx descriptors grow to 512 pages and are backed by a
    /// single 2 MB huge mapping that is unmapped and invalidated as one
    /// unit on completion. One IOTLB miss then covers 512 pages of data,
    /// attacking the miss *count* on top of F&S's miss-cost reduction.
    FnsHugeStrict,
}

impl ProtectionMode {
    /// All modes, for sweeps.
    pub const ALL: [ProtectionMode; 9] = [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::LinuxDeferred,
        ProtectionMode::LinuxPreserve,
        ProtectionMode::LinuxContig,
        ProtectionMode::FastAndSafe,
        ProtectionMode::HugepagePinned,
        ProtectionMode::DamnRecycle,
        ProtectionMode::FnsHugeStrict,
    ];

    /// Whether the IOMMU is on at all.
    pub fn iommu_enabled(self) -> bool {
        self != ProtectionMode::IommuOff
    }

    /// Whether IOVAs are allocated per descriptor (contiguous) rather than
    /// per page.
    pub fn contiguous_iova(self) -> bool {
        matches!(
            self,
            ProtectionMode::LinuxContig
                | ProtectionMode::FastAndSafe
                | ProtectionMode::FnsHugeStrict
        )
    }

    /// Whether invalidations preserve the page-structure caches.
    pub fn preserves_ptcache(self) -> bool {
        matches!(
            self,
            ProtectionMode::LinuxPreserve
                | ProtectionMode::FastAndSafe
                | ProtectionMode::FnsHugeStrict
        )
    }

    /// Whether invalidations are batched into ranged queue entries.
    pub fn batched_invalidation(self) -> bool {
        matches!(
            self,
            ProtectionMode::LinuxContig
                | ProtectionMode::FastAndSafe
                | ProtectionMode::FnsHugeStrict
        )
    }

    /// Whether the mode guarantees the strict safety property (a device can
    /// never access a page after its IOVA is unmapped).
    pub fn is_strict_safe(self) -> bool {
        !matches!(
            self,
            ProtectionMode::IommuOff
                | ProtectionMode::LinuxDeferred
                | ProtectionMode::HugepagePinned
                | ProtectionMode::DamnRecycle
        )
    }

    /// Whether Rx buffers are backed by strict (per-descriptor unmapped)
    /// 2 MB huge mappings.
    pub fn huge_rx(self) -> bool {
        self == ProtectionMode::FnsHugeStrict
    }

    /// Whether the mode keeps buffers permanently mapped and recycles them
    /// (the pinned-pool family: no unmap/invalidate on the datapath).
    pub fn is_pinned_pool(self) -> bool {
        matches!(
            self,
            ProtectionMode::HugepagePinned | ProtectionMode::DamnRecycle
        )
    }

    /// The safety contract this mode claims, audited by `fns-oracle`.
    ///
    /// `deferred_window` bounds the invalidation backlog tolerated in
    /// deferred mode (the flush threshold plus one completion batch of
    /// slack); every other mode ignores it. Strict modes claim safety and
    /// invalidation completeness; PTcache-preserving modes additionally
    /// claim coherence via synchronous reclaim fixups; pinned pools claim
    /// only stable mappings (`unmaps: false`); `IommuOff` claims nothing.
    ///
    /// Every IOMMU-enabled mode claims cross-domain isolation — per-device
    /// protection domains are exactly what the IOMMU provides, regardless
    /// of how lazily a mode invalidates *within* a domain. `IommuOff`
    /// cannot claim it: devices use physical addresses, so nothing
    /// separates the tenants.
    pub fn contract(self, deferred_window: u64) -> fns_oracle::ModeContract {
        fns_oracle::ModeContract {
            translates: self.iommu_enabled(),
            unmaps: self.iommu_enabled() && !self.is_pinned_pool(),
            strict_safety: self.is_strict_safe(),
            ptcache_coherence: self.preserves_ptcache(),
            invalidation_completeness: self.is_strict_safe(),
            domain_isolation: self.iommu_enabled(),
            deferred_window: (self == ProtectionMode::LinuxDeferred).then_some(deferred_window),
        }
    }

    /// Short display label used by the benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            ProtectionMode::IommuOff => "iommu-off",
            ProtectionMode::LinuxStrict => "linux-strict",
            ProtectionMode::LinuxDeferred => "linux-deferred",
            ProtectionMode::LinuxPreserve => "linux+A",
            ProtectionMode::LinuxContig => "linux+B",
            ProtectionMode::FastAndSafe => "fast-and-safe",
            ProtectionMode::HugepagePinned => "hugepage-pin",
            ProtectionMode::DamnRecycle => "damn-recycle",
            ProtectionMode::FnsHugeStrict => "fns+hugepages",
        }
    }
}

impl std::fmt::Display for ProtectionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix() {
        use ProtectionMode::*;
        assert!(!IommuOff.iommu_enabled());
        assert!(LinuxStrict.iommu_enabled());
        assert!(FastAndSafe.contiguous_iova());
        assert!(FastAndSafe.preserves_ptcache());
        assert!(FastAndSafe.batched_invalidation());
        assert!(LinuxPreserve.preserves_ptcache());
        assert!(!LinuxPreserve.contiguous_iova());
        assert!(LinuxContig.contiguous_iova());
        assert!(!LinuxContig.preserves_ptcache());
        assert!(!LinuxStrict.batched_invalidation());
    }

    #[test]
    fn safety_classification() {
        use ProtectionMode::*;
        for m in ProtectionMode::ALL {
            let expected = !matches!(m, IommuOff | LinuxDeferred | HugepagePinned | DamnRecycle);
            assert_eq!(m.is_strict_safe(), expected, "{m}");
        }
        assert!(HugepagePinned.is_pinned_pool());
        assert!(DamnRecycle.is_pinned_pool());
        assert!(!FastAndSafe.is_pinned_pool());
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            ProtectionMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), ProtectionMode::ALL.len());
    }
}
