//! Dense per-flow state tables for the simulation hot path.
//!
//! Every event the host simulation dispatches looks up per-flow transport
//! state (senders, receivers, core affinity). The original implementation
//! kept these in `BTreeMap<FlowId, _>`, paying a pointer-chasing tree
//! descent per packet. Flow ids are small and dense by construction —
//! peer→DUT flows count up from 0 and DUT→peer flows count up from
//! [`TX_FLOW_BASE`] — so a pair of flat `Vec<Option<T>>` segments indexed
//! by flow id replaces the tree with one bounds-checked array access.
//!
//! Iteration order is ascending flow id (low segment, then high), which is
//! exactly the `BTreeMap` order the metrics collection relied on, so the
//! swap changes no simulated counter.

use fns_net::packet::FlowId;

/// Flow-id offset for DUT→peer flows; ids at or above this land in the
/// high segment of a [`FlowTable`].
pub const TX_FLOW_BASE: u32 = 1000;

/// Splits a flow id into (segment, index-within-segment).
#[inline]
fn split(flow: FlowId) -> (bool, usize) {
    if flow.0 >= TX_FLOW_BASE {
        (true, (flow.0 - TX_FLOW_BASE) as usize)
    } else {
        (false, flow.0 as usize)
    }
}

/// A dense map from [`FlowId`] to `T`, segmented at [`TX_FLOW_BASE`].
///
/// # Examples
///
/// ```
/// use fns_core::flow_table::{FlowTable, TX_FLOW_BASE};
/// use fns_net::packet::FlowId;
///
/// let mut t = FlowTable::new();
/// t.insert(FlowId(3), "rx");
/// t.insert(FlowId(TX_FLOW_BASE + 1), "tx");
/// assert_eq!(t.get(FlowId(3)), Some(&"rx"));
/// assert_eq!(t.get(FlowId(7)), None);
/// let ids: Vec<u32> = t.iter().map(|(f, _)| f.0).collect();
/// assert_eq!(ids, vec![3, TX_FLOW_BASE + 1]);
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable<T> {
    low: Vec<Option<T>>,
    high: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for FlowTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            low: Vec::new(),
            high: Vec::new(),
            len: 0,
        }
    }

    /// Number of flows present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no flows are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn segment(&self, high: bool) -> &Vec<Option<T>> {
        if high {
            &self.high
        } else {
            &self.low
        }
    }

    fn segment_mut(&mut self, high: bool) -> &mut Vec<Option<T>> {
        if high {
            &mut self.high
        } else {
            &mut self.low
        }
    }

    /// Removes every flow while keeping both segments' storage — the
    /// arena hook for back-to-back runs.
    pub fn clear(&mut self) {
        self.low.clear();
        self.high.clear();
        self.len = 0;
    }

    /// Pre-sizes the segments for `low` peer-side flows and `high`
    /// DUT-side flows, so datacenter-scale scenarios (tens of thousands
    /// of flows) fill the table without the doubling reallocations that
    /// `insert`'s incremental `resize_with` would otherwise trigger.
    /// Capacity-only: no observable state changes.
    pub fn reserve(&mut self, low: usize, high: usize) {
        self.low.reserve(low.saturating_sub(self.low.len()));
        self.high.reserve(high.saturating_sub(self.high.len()));
    }

    /// Inserts (or replaces) the state for `flow`; returns the old value.
    pub fn insert(&mut self, flow: FlowId, value: T) -> Option<T> {
        let (hi, idx) = split(flow);
        let seg = self.segment_mut(hi);
        if idx >= seg.len() {
            seg.resize_with(idx + 1, || None);
        }
        let old = seg[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up the state for `flow`.
    #[inline]
    pub fn get(&self, flow: FlowId) -> Option<&T> {
        let (hi, idx) = split(flow);
        self.segment(hi).get(idx)?.as_ref()
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, flow: FlowId) -> Option<&mut T> {
        let (hi, idx) = split(flow);
        self.segment_mut(hi).get_mut(idx)?.as_mut()
    }

    /// Iterates `(flow, &state)` in ascending flow-id order (the order a
    /// `BTreeMap<FlowId, T>` would yield).
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        let lows = self
            .low
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (FlowId(i as u32), v)));
        let highs = self
            .high
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (FlowId(TX_FLOW_BASE + i as u32), v)));
        lows.chain(highs)
    }

    /// Iterates the states in ascending flow-id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterates the states mutably in ascending flow-id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.low
            .iter_mut()
            .chain(self.high.iter_mut())
            .filter_map(|v| v.as_mut())
    }

    /// Serializes the table as `(flow, value)` pairs in ascending flow-id
    /// order for checkpointing.
    pub fn snap_with(
        &self,
        w: &mut fns_snap::SnapWriter,
        mut f: impl FnMut(&mut fns_snap::SnapWriter, &T),
    ) {
        w.seq(self.len);
        for (flow, v) in self.iter() {
            w.u32(flow.0);
            f(w, v);
        }
    }

    /// Rebuilds a table captured by [`FlowTable::snap_with`].
    pub fn unsnap_with(
        r: &mut fns_snap::SnapReader,
        mut f: impl FnMut(&mut fns_snap::SnapReader) -> Result<T, fns_snap::SnapError>,
    ) -> Result<Self, fns_snap::SnapError> {
        let n = r.seq()?;
        let mut t = Self::new();
        for _ in 0..n {
            let flow = FlowId(r.u32()?);
            let v = f(r)?;
            t.insert(flow, v);
        }
        Ok(t)
    }
}

/// A dense set of flow ids (same segmentation as [`FlowTable`]); used for
/// the at-most-one-timer-per-sender bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    low: Vec<bool>,
    high: Vec<bool>,
}

impl FlowSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes both segments (see [`FlowTable::reserve`]).
    pub fn reserve(&mut self, low: usize, high: usize) {
        self.low.reserve(low.saturating_sub(self.low.len()));
        self.high.reserve(high.saturating_sub(self.high.len()));
    }

    /// Adds `flow`; returns `true` if it was not already present.
    pub fn insert(&mut self, flow: FlowId) -> bool {
        let (hi, idx) = split(flow);
        let seg = if hi { &mut self.high } else { &mut self.low };
        if idx >= seg.len() {
            seg.resize(idx + 1, false);
        }
        !std::mem::replace(&mut seg[idx], true)
    }

    /// Removes `flow`; returns `true` if it was present.
    pub fn remove(&mut self, flow: FlowId) -> bool {
        let (hi, idx) = split(flow);
        let seg = if hi { &mut self.high } else { &mut self.low };
        match seg.get_mut(idx) {
            Some(slot) => std::mem::replace(slot, false),
            None => false,
        }
    }

    /// Returns `true` if `flow` is present.
    pub fn contains(&self, flow: FlowId) -> bool {
        let (hi, idx) = split(flow);
        let seg = if hi { &self.high } else { &self.low };
        seg.get(idx).copied().unwrap_or(false)
    }

    /// Serializes both segments verbatim for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.seq(self.low.len());
        for &b in &self.low {
            w.bool(b);
        }
        w.seq(self.high.len());
        for &b in &self.high {
            w.bool(b);
        }
    }

    /// Rebuilds a set captured by [`FlowSet::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let n = r.seq()?;
        let mut low = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            low.push(r.bool()?);
        }
        let n = r.seq()?;
        let mut high = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            high.push(r.bool()?);
        }
        Ok(Self { low, high })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_replace() {
        let mut t = FlowTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(FlowId(2), 20), None);
        assert_eq!(t.insert(FlowId(TX_FLOW_BASE), 30), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.insert(FlowId(2), 21), Some(20));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(FlowId(2)), Some(&21));
        assert_eq!(t.get(FlowId(0)), None);
        assert_eq!(t.get(FlowId(TX_FLOW_BASE + 5)), None);
        *t.get_mut(FlowId(TX_FLOW_BASE)).unwrap() = 31;
        assert_eq!(t.get(FlowId(TX_FLOW_BASE)), Some(&31));
    }

    #[test]
    fn iteration_matches_btreemap_order() {
        use std::collections::BTreeMap;
        let ids = [5u32, 0, TX_FLOW_BASE + 7, 3, TX_FLOW_BASE, 999];
        let mut t = FlowTable::new();
        let mut b = BTreeMap::new();
        for (v, &id) in ids.iter().enumerate() {
            t.insert(FlowId(id), v);
            b.insert(FlowId(id), v);
        }
        let dense: Vec<(FlowId, usize)> = t.iter().map(|(f, &v)| (f, v)).collect();
        let tree: Vec<(FlowId, usize)> = b.iter().map(|(&f, &v)| (f, v)).collect();
        assert_eq!(dense, tree);
        let dense_vals: Vec<usize> = t.values().copied().collect();
        let tree_vals: Vec<usize> = b.values().copied().collect();
        assert_eq!(dense_vals, tree_vals);
    }

    #[test]
    fn flow_set_semantics() {
        let mut s = FlowSet::new();
        assert!(s.insert(FlowId(4)));
        assert!(!s.insert(FlowId(4)), "double insert reports present");
        assert!(s.insert(FlowId(TX_FLOW_BASE + 4)), "segments are disjoint");
        assert!(s.contains(FlowId(4)));
        assert!(s.remove(FlowId(4)));
        assert!(!s.remove(FlowId(4)));
        assert!(!s.contains(FlowId(4)));
        assert!(!s.remove(FlowId(777)), "never-seen flow");
    }
}
