//! Degradation watchdog for long-horizon (soak) runs.
//!
//! A multi-hour simulated run can rot in ways a 60 ms benchmark never
//! shows: the pending PTcache-wipe backlog can grow without bound when
//! arrival pressure keeps every NAPI poll short, and pathological
//! invalidation storms (connection churn + reclaim) can starve the
//! datapath. The watchdog samples those two signals on a fixed simulated
//! cadence and walks a three-rung degradation ladder:
//!
//! 1. **Relief drain** — the pending-wipe backlog exceeded
//!    [`WatchdogConfig::max_wipe_backlog`]; the driver retires the whole
//!    backlog synchronously (the cost model charges nothing extra — the
//!    wipes were already owed, only their schedule moves).
//! 2. **Per-page fallback** — the IOTLB-invalidation rate over one check
//!    window exceeded [`WatchdogConfig::storm_invalidations`]; deferred
//!    batching collapses to per-page invalidation
//!    ([`crate::driver::DmaDriver::force_per_page_invalidation`]), trading
//!    throughput for a bounded stale window.
//! 3. **Abort** — [`WatchdogConfig::abort_after_degraded`] consecutive
//!    degraded checks; the watchdog stops rescheduling itself and flags
//!    [`WatchdogReport::aborted`]. The soak runner reacts by writing a
//!    final checkpoint (the replayable artifact) and exiting.
//!
//! Everything is integer arithmetic on existing counters: a disabled
//! watchdog (the default) schedules no events and changes no run by a
//! single bit, and an enabled one is itself deterministic and is captured
//! by [`crate::sim::HostSim::snapshot`].

use fns_sim::time::Nanos;

/// Watchdog plane configuration. Disabled by default — see
/// [`WatchdogConfig::off`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Master switch; when `false` no check events are ever scheduled.
    pub enabled: bool,
    /// Simulated time between checks.
    pub check_interval_ns: Nanos,
    /// Pending PTcache-wipe epochs tolerated before a relief drain
    /// (rung 1).
    pub max_wipe_backlog: u32,
    /// IOTLB invalidations per check window tolerated before the per-page
    /// fallback (rung 2). `0` disables storm detection.
    pub storm_invalidations: u64,
    /// Consecutive degraded checks before the run aborts (rung 3).
    /// `0` disables aborting.
    pub abort_after_degraded: u32,
}

impl WatchdogConfig {
    /// The default: watchdog off, thresholds at their soak defaults so
    /// flipping `enabled` alone gives a sensible plane.
    pub fn off() -> Self {
        Self {
            enabled: false,
            check_interval_ns: 1_000_000, // 1 ms simulated
            max_wipe_backlog: 64,
            storm_invalidations: 0,
            abort_after_degraded: 0,
        }
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Watchdog outcome counters, reported in
/// [`crate::metrics::RunMetrics::watchdog`]. All-integer so the
/// golden-determinism equality over `RunMetrics` covers it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Whether the plane was enabled for the run.
    pub enabled: bool,
    /// Checks executed.
    pub checks: u64,
    /// Rung-1 relief drains performed.
    pub relief_drains: u64,
    /// Rung-2 invalidation storms detected.
    pub storms: u64,
    /// Largest pending-wipe backlog ever observed at a check.
    pub max_backlog_seen: u64,
    /// Whether the per-page invalidation fallback is engaged.
    pub degraded: bool,
    /// Whether rung 3 fired (the run should checkpoint and stop).
    pub aborted: bool,
}

impl WatchdogReport {
    /// Serializes the report for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.bool(self.enabled);
        w.u64(self.checks);
        w.u64(self.relief_drains);
        w.u64(self.storms);
        w.u64(self.max_backlog_seen);
        w.bool(self.degraded);
        w.bool(self.aborted);
    }

    /// Rebuilds a report captured by [`WatchdogReport::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        Ok(Self {
            enabled: r.bool()?,
            checks: r.u64()?,
            relief_drains: r.u64()?,
            storms: r.u64()?,
            max_backlog_seen: r.u64()?,
            degraded: r.bool()?,
            aborted: r.bool()?,
        })
    }
}

/// Live watchdog state inside the simulation.
#[derive(Debug, Clone, Default)]
pub(crate) struct WatchdogState {
    /// IOTLB-invalidation counter at the previous check (rate baseline).
    pub prev_invalidations: u64,
    /// Consecutive degraded checks (rung-3 trigger).
    pub consecutive_degraded: u32,
    /// The externally visible outcome.
    pub report: WatchdogReport,
}

impl WatchdogState {
    pub(crate) fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.prev_invalidations);
        w.u32(self.consecutive_degraded);
        self.report.snap(w);
    }

    pub(crate) fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        Ok(Self {
            prev_invalidations: r.u64()?,
            consecutive_degraded: r.u32()?,
            report: WatchdogReport::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let c = WatchdogConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.abort_after_degraded, 0);
    }

    #[test]
    fn report_roundtrips() {
        let rep = WatchdogReport {
            enabled: true,
            checks: 7,
            relief_drains: 2,
            storms: 1,
            max_backlog_seen: 99,
            degraded: true,
            aborted: false,
        };
        let mut w = fns_snap::SnapWriter::new();
        rep.snap(&mut w);
        let bytes = w.finish();
        let mut r = fns_snap::SnapReader::new(&bytes).unwrap();
        assert_eq!(WatchdogReport::unsnap(&mut r).unwrap(), rep);
        r.done().unwrap();
    }
}
