//! F&S core: protection-mode datapaths and the full-host simulation.
//!
//! This crate glues the substrates together into the system the paper
//! evaluates:
//!
//! * [`mode`] — the protection-mode design space (Linux strict/deferred,
//!   the two F&S ablations, full F&S),
//! * [`driver`] — the mode-dependent map/unmap/invalidate datapaths (the
//!   reproduction of the paper's 630-LoC kernel patch),
//! * [`errors`] — the typed datapath error ([`DmaError`]) those paths
//!   surface instead of panicking,
//! * [`config`] — testbed and workload configuration,
//! * [`resources`] — serial resources (CPU cores, the translation pipe),
//! * [`sim`] — the discrete-event host simulation (NIC → IOMMU → memory →
//!   transport → ACKs, with a peer host and a switch),
//! * [`metrics`] — per-run results in the units the paper reports,
//! * [`model`] — the analytical throughput model `T = p / (l0 + M·lm)`
//!   of §2.2.

pub mod config;
pub mod driver;
pub mod errors;
pub mod flow_table;
pub mod metrics;
pub mod mode;
pub mod model;
pub mod resources;
pub mod shard;
pub mod sim;
pub mod watchdog;

pub use config::{CpuCosts, SimConfig, Topology, Workload};
pub use driver::{DmaDriver, Sabotage};
pub use errors::DmaError;
pub use metrics::RunMetrics;
pub use mode::ProtectionMode;
pub use shard::{plan_shards, Engine, ShardSpec, ShardedSim};
pub use sim::{HostSim, RunArena};
pub use watchdog::{WatchdogConfig, WatchdogReport};
