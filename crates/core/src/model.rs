//! The analytical throughput model of §2.2.
//!
//! `T = p / (l0 + M * lm)` — with `p` the packet (page) size, `l0` the
//! average non-translation per-page DMA cost, `M` the average memory reads
//! for address translation per page, and `lm` the per-read latency. The
//! paper fits `l0 = 65 ns` and `lm = 197 ns` on its testbed and reports
//! that the model predicts measured throughput within 10% across most
//! experiments; experiment E12 replays that validation against the
//! simulator.

/// Parameters of the analytical model.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    /// Page/packet size in bytes.
    pub page_bytes: f64,
    /// Non-translation per-page cost, ns (the paper's fitted 65).
    pub l0_ns: f64,
    /// Per-memory-read latency, ns (the paper's fitted 197).
    pub lm_ns: f64,
}

impl ThroughputModel {
    /// The paper's fitted model for 4 KB pages.
    pub fn paper_fit() -> Self {
        Self {
            page_bytes: 4096.0,
            l0_ns: 65.0,
            lm_ns: 197.0,
        }
    }

    /// Predicted maximum PCIe throughput in Gbps for `m` memory reads per
    /// page, capped by `link_gbps`.
    pub fn predict_gbps(&self, m: f64, link_gbps: f64) -> f64 {
        let per_page_ns = self.l0_ns + m * self.lm_ns;
        let gbps = self.page_bytes * 8.0 / per_page_ns;
        gbps.min(link_gbps)
    }

    /// Fits `(l0, lm)` from two `(m, throughput_gbps)` observations, as the
    /// paper does with its 5-flow and 10-flow datapoints.
    ///
    /// Returns `None` if the observations are degenerate (equal `m`).
    pub fn fit_two_points(
        page_bytes: f64,
        (m1, t1): (f64, f64),
        (m2, t2): (f64, f64),
    ) -> Option<Self> {
        if (m1 - m2).abs() < 1e-9 || t1 <= 0.0 || t2 <= 0.0 {
            return None;
        }
        // t = 8p / (l0 + m*lm)  =>  8p/t = l0 + m*lm.
        let y1 = 8.0 * page_bytes / t1;
        let y2 = 8.0 * page_bytes / t2;
        let lm = (y2 - y1) / (m2 - m1);
        let l0 = y1 - m1 * lm;
        Some(Self {
            page_bytes,
            l0_ns: l0,
            lm_ns: lm,
        })
    }

    /// Relative error of the model's prediction vs a measurement.
    pub fn relative_error(&self, m: f64, link_gbps: f64, measured_gbps: f64) -> f64 {
        let p = self.predict_gbps(m, link_gbps);
        if measured_gbps == 0.0 {
            return f64::INFINITY;
        }
        (p - measured_gbps).abs() / measured_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce_section_2_2() {
        let m = ThroughputModel::paper_fit();
        // 5-flow case: M = 1.76 -> ~79.5 Gbps.
        let t5 = m.predict_gbps(1.76, 100.0);
        assert!((t5 - 79.5).abs() < 2.0, "got {t5}");
        // 40-flow case: M = 4.36 -> ~35 Gbps.
        let t40 = m.predict_gbps(4.36, 100.0);
        assert!((t40 - 35.5).abs() < 2.0, "got {t40}");
        // M = 0 is link-limited.
        assert_eq!(m.predict_gbps(0.0, 100.0), 100.0);
    }

    #[test]
    fn fit_recovers_parameters() {
        let truth = ThroughputModel::paper_fit();
        let p1 = (1.76, truth.predict_gbps(1.76, 1e9));
        let p2 = (2.5, truth.predict_gbps(2.5, 1e9));
        let fit = ThroughputModel::fit_two_points(4096.0, p1, p2).unwrap();
        assert!((fit.l0_ns - 65.0).abs() < 0.5, "l0 {}", fit.l0_ns);
        assert!((fit.lm_ns - 197.0).abs() < 0.5, "lm {}", fit.lm_ns);
    }

    #[test]
    fn degenerate_fit_rejected() {
        assert!(ThroughputModel::fit_two_points(4096.0, (1.0, 50.0), (1.0, 60.0)).is_none());
    }

    #[test]
    fn relative_error() {
        let m = ThroughputModel::paper_fit();
        let exact = m.predict_gbps(2.0, 100.0);
        assert!(m.relative_error(2.0, 100.0, exact) < 1e-12);
        assert!((m.relative_error(2.0, 100.0, exact * 2.0) - 0.5).abs() < 1e-12);
    }
}
