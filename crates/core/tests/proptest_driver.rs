#![cfg(feature = "proptest")]
//! Requires re-adding `proptest` to this crate's [dev-dependencies].

//! Property tests for the protection-mode driver: random interleavings of
//! descriptor and Tx lifecycles must preserve the mode's safety contract
//! and never leak or double-free resources.

use proptest::prelude::*;

use fns_core::driver::DmaDriver;
use fns_core::{CpuCosts, ProtectionMode};
use fns_iommu::IommuConfig;
use fns_nic::descriptor::Descriptor;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Prepare a descriptor on a core (if under the in-flight cap).
    Prepare(usize),
    /// DMA (translate + consume) every page of the oldest descriptor.
    ConsumeOldest,
    /// Complete the oldest fully consumed descriptor on a core.
    CompleteOldest(usize),
    /// Map a Tx packet of 1-3 pages on a core.
    TxMap(usize, u32),
    /// Complete the oldest outstanding Tx packet on a core.
    TxCompleteOldest(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..3).prop_map(Op::Prepare),
            Just(Op::ConsumeOldest),
            (0usize..3).prop_map(Op::CompleteOldest),
            (0usize..3, 1u32..4).prop_map(|(c, p)| Op::TxMap(c, p)),
            (0usize..3).prop_map(Op::TxCompleteOldest),
        ],
        1..120,
    )
}

fn run_mode(mode: ProtectionMode, ops: &[Op]) {
    let mut drv = DmaDriver::with_descriptor_pages(
        mode,
        3,
        IommuConfig::default(),
        CpuCosts::default(),
        256,
        1000,
        if mode.huge_rx() { 512 } else { 64 },
    );
    let mut prepared: Vec<Descriptor> = Vec::new();
    let mut consumed: Vec<Descriptor> = Vec::new();
    let mut completed_pages = Vec::new();
    let mut tx_outstanding: Vec<Vec<fns_nic::descriptor::DescriptorPage>> = Vec::new();
    for &op in ops {
        match op {
            Op::Prepare(core) => {
                if prepared.len() + consumed.len() < 4 {
                    let (d, _) = drv.prepare_rx_descriptor(core).unwrap();
                    prepared.push(d);
                }
            }
            Op::ConsumeOldest => {
                if !prepared.is_empty() {
                    let mut d = prepared.remove(0);
                    for p in d.pages().to_vec() {
                        drv.translate(p.iova);
                    }
                    while d.consume_page().is_some() {}
                    consumed.push(d);
                }
            }
            Op::CompleteOldest(core) => {
                if !consumed.is_empty() {
                    let d = consumed.remove(0);
                    drv.complete_rx_descriptor(core, &d).unwrap();
                    // Strict modes: the device must lose access the moment
                    // the completion returns (checked here, before any later
                    // allocation can legitimately recycle the IOVA).
                    if mode.is_strict_safe() && mode != ProtectionMode::IommuOff {
                        for p in d.pages() {
                            assert!(
                                drv.iommu.translate(p.iova).pa().is_none(),
                                "{mode}: completed Rx page {} still reachable",
                                p.iova
                            );
                        }
                    }
                    completed_pages.extend(d.pages().to_vec());
                }
            }
            Op::TxMap(core, pages) => {
                if tx_outstanding.len() < 8 {
                    let (pg, _) = drv.tx_map(core, pages).unwrap();
                    for p in &pg {
                        drv.translate(p.iova);
                    }
                    tx_outstanding.push(pg);
                }
            }
            Op::TxCompleteOldest(core) => {
                if !tx_outstanding.is_empty() {
                    let pg = tx_outstanding.remove(0);
                    drv.tx_complete(core, &pg).unwrap();
                    if mode.is_strict_safe() && mode != ProtectionMode::IommuOff {
                        for p in &pg {
                            assert!(
                                drv.iommu.translate(p.iova).pa().is_none(),
                                "{mode}: completed Tx page {} still reachable",
                                p.iova
                            );
                        }
                    }
                    completed_pages.extend(pg);
                }
            }
        }
    }
    // Safety contract per mode:
    let stats = drv.iommu.stats();
    assert_eq!(
        stats.stale_ptcache_walks, 0,
        "{mode}: use-after-free walk during the workload"
    );
    if mode.is_strict_safe() && mode != ProtectionMode::IommuOff {
        assert_eq!(stats.stale_iotlb_hits, 0, "{mode}: strict safety violated");
    }
    if mode.is_pinned_pool() {
        // Pool modes: completed buffers stay reachable (the weaker property)
        // and are recycled rather than freed.
        if let Some(p) = completed_pages.first() {
            assert!(drv.iommu.translate(p.iova).pa().is_some(), "{mode}");
        }
        assert_eq!(
            stats.iotlb_invalidations, 0,
            "{mode}: pools never invalidate"
        );
    }
    drv.iommu.page_table().check_invariants().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strict_modes_uphold_their_contract(ops in ops()) {
        for mode in [
            ProtectionMode::LinuxStrict,
            ProtectionMode::LinuxPreserve,
            ProtectionMode::LinuxContig,
            ProtectionMode::FastAndSafe,
            ProtectionMode::FnsHugeStrict,
        ] {
            run_mode(mode, &ops);
        }
    }

    #[test]
    fn weak_modes_do_not_corrupt_state(ops in ops()) {
        for mode in [
            ProtectionMode::IommuOff,
            ProtectionMode::LinuxDeferred,
            ProtectionMode::HugepagePinned,
            ProtectionMode::DamnRecycle,
        ] {
            run_mode(mode, &ops);
        }
    }
}
