//! Reference-model safety oracle for the DMA protection state machine.
//!
//! The simulator measures performance; this crate checks *correctness*. It
//! keeps a deliberately-naive shadow model of everything the protection
//! planes are supposed to guarantee — per-page lifecycle
//! (`Mapped → Unmapped{invalidated?}`), per-entry IOTLB / PTcache shadow
//! state, invalidation-queue completion accounting, and live-IOVA ownership
//! — and audits every device-side translation against the contract the
//! active [`ModeContract`] claims:
//!
//! 1. **Strict safety** — no translation succeeds for a page whose unmap
//!    has completed, in every mode that claims strictness.
//! 2. **PTcache coherence** — cached page-table entries are only consulted
//!    while the backing PT page has not been reclaimed (and, in preserving
//!    modes, reclaim fixups are synchronous with the unmap that triggered
//!    them).
//! 3. **Invalidation completeness** — every unmap in strict modes is
//!    covered by an IOTLB invalidation before the next device access, with
//!    batched range invalidations credited correctly; deferred mode gets a
//!    documented bounded backlog instead.
//! 4. **Cross-domain isolation** — in multi-device topologies every audited
//!    translation resolves to a frame owned by the issuing device's
//!    protection domain; a stale IOTLB hit that crosses a tenant boundary
//!    is a violation even inside a deferred window.
//!
//! The model is naive on purpose: plain `BTreeMap`/`BTreeSet` bookkeeping,
//! no caching tricks, no shared code with the production-path crates it
//! audits. Divergence between the two implementations is the signal.
//!
//! Hook dispatch follows the `TraceHandle` idiom: [`AuditHandle`] is an
//! enum whose `Off` variant reduces every hook to one discriminant branch,
//! so audit-off simulations pay nothing measurable.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use fns_iommu::pagetable::ReclaimedPage;
use fns_iommu::{InvalidationRequest, InvalidationScope, Iommu};
use fns_iova::{Iova, IovaRange};
use fns_mem::PhysAddr;
use fns_trace::{TraceData, TraceHandle};

/// Pages spanned by one leaf (L4) page-table page / huge mapping.
const L4_SPAN_PFNS: u64 = 512;

/// Bit position where the protection-domain tag rides in shadow-model keys
/// (IOVAs are 48-bit, so every pfn/region key fits below it).
const DOMAIN_SHIFT: u32 = 48;

/// Tags a pfn/region key with its protection domain; domain 0 is the
/// identity, so single-domain shadow state matches the legacy keying.
fn dkey(d: u16, key: u64) -> u64 {
    key | (d as u64) << DOMAIN_SHIFT
}

/// The pfn/region-key half of a tagged shadow key.
fn key_pfn(k: u64) -> u64 {
    k & ((1u64 << DOMAIN_SHIFT) - 1)
}

/// The domain half of a tagged shadow key.
fn key_domain(k: u64) -> u16 {
    (k >> DOMAIN_SHIFT) as u16
}

/// Cap on retained violation samples; counters keep exact totals beyond it.
const SAMPLE_CAP: usize = 64;

/// Whether the simulation audits itself, carried inside `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditConfig {
    /// Install the oracle and check every hook.
    pub enabled: bool,
    /// Panic on the first violation instead of counting it.
    pub fatal: bool,
}

impl AuditConfig {
    /// Auditing disabled (the perf-measurement default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Auditing enabled, violations counted and reported.
    pub fn on() -> Self {
        Self {
            enabled: true,
            fatal: false,
        }
    }

    /// Auditing enabled, first violation panics with its detail string.
    pub fn fatal() -> Self {
        Self {
            enabled: true,
            fatal: true,
        }
    }
}

/// The safety properties a protection mode claims. Produced per mode by
/// `ProtectionMode::contract` in `fns-core`; the oracle only ever checks
/// what the contract claims, so documented exceptions (deferred windows,
/// pinned pools) are encoded here rather than special-cased in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeContract {
    /// Device accesses go through the IOMMU at all (false ⇒ nothing to audit).
    pub translates: bool,
    /// The datapath unmaps pages after use (false for pinned-pool modes,
    /// which promise a stable mapping forever instead).
    pub unmaps: bool,
    /// Claims strict safety: unmapped ⇒ un-translatable before the next
    /// device access.
    pub strict_safety: bool,
    /// Claims PTcache coherence via synchronous reclaim fixups.
    pub ptcache_coherence: bool,
    /// Claims every unmap is covered by an invalidation before the next
    /// device access.
    pub invalidation_completeness: bool,
    /// Claims cross-domain isolation: every audited translation resolves to
    /// a frame owned by the issuing device's protection domain. Unlike the
    /// other claims this one has *no* deferred exception — a stale IOTLB
    /// hit that crosses a tenant boundary is a violation even inside the
    /// documented deferred window, because the window only excuses reuse
    /// within the tenant that deferred the invalidation.
    pub domain_isolation: bool,
    /// Deferred mode's documented exception: the invalidation backlog may
    /// grow to this many pages before a full flush must have happened.
    pub deferred_window: Option<u64>,
}

impl ModeContract {
    /// The empty contract (IOMMU off): nothing is claimed, nothing checked.
    pub fn none() -> Self {
        Self {
            translates: false,
            unmaps: false,
            strict_safety: false,
            ptcache_coherence: false,
            invalidation_completeness: false,
            domain_isolation: false,
            deferred_window: None,
        }
    }
}

/// The invariant classes the oracle distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Invariant {
    /// A translation succeeded for a page that was never mapped, or whose
    /// unmap (and, where claimed, invalidation) had completed.
    StrictSafety,
    /// A live mapping translated to the wrong frame, faulted, or a page
    /// was unmapped that the model does not hold mapped.
    MappingIntegrity,
    /// An unmapped page reached a device access without a covering IOTLB
    /// invalidation (or the deferred backlog exceeded its bounded window,
    /// or an invalidated entry survived in the real IOTLB).
    InvalidationCompleteness,
    /// A translation walk consulted a reclaimed page-table page, or a
    /// preserving mode left reclaim fixups pending across a device access.
    PtcacheCoherence,
    /// IOVA allocator discipline: overlapping allocations or frees of
    /// ranges the model does not hold live.
    IovaDiscipline,
    /// A translation issued by one protection domain resolved to a frame
    /// owned by another domain — a tenant read or wrote another tenant's
    /// memory. Checked even inside deferred windows: staleness never
    /// excuses crossing a domain boundary.
    CrossDomainIsolation,
}

impl Invariant {
    /// Every invariant, in `index()` order.
    pub const ALL: [Invariant; 6] = [
        Invariant::StrictSafety,
        Invariant::MappingIntegrity,
        Invariant::InvalidationCompleteness,
        Invariant::PtcacheCoherence,
        Invariant::IovaDiscipline,
        Invariant::CrossDomainIsolation,
    ];

    /// Stable dense index for counters and trace records.
    pub fn index(self) -> usize {
        match self {
            Invariant::StrictSafety => 0,
            Invariant::MappingIntegrity => 1,
            Invariant::InvalidationCompleteness => 2,
            Invariant::PtcacheCoherence => 3,
            Invariant::IovaDiscipline => 4,
            Invariant::CrossDomainIsolation => 5,
        }
    }

    /// Stable kebab-case name, used in reports and corpus files.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::StrictSafety => "strict-safety",
            Invariant::MappingIntegrity => "mapping-integrity",
            Invariant::InvalidationCompleteness => "invalidation-completeness",
            Invariant::PtcacheCoherence => "ptcache-coherence",
            Invariant::IovaDiscipline => "iova-discipline",
            Invariant::CrossDomainIsolation => "cross-domain-isolation",
        }
    }

    /// Inverse of [`Invariant::name`].
    pub fn from_name(s: &str) -> Option<Invariant> {
        Invariant::ALL.into_iter().find(|i| i.name() == s)
    }
}

/// One recorded contract violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant class broke.
    pub invariant: Invariant,
    /// The page (or region key) the violation is anchored on.
    pub pfn: u64,
    /// Ordinal of the audited translation at which it was detected
    /// (0 ⇒ detected outside a translation, e.g. at unmap/free time).
    pub check: u64,
    /// Deterministic human-readable diagnosis.
    pub detail: String,
}

/// Per-page lifecycle in the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Mapped at `pa_pfn`; `huge` if established by a 2MB mapping.
    Mapped { pa_pfn: u64, huge: bool },
    /// Unmapped; `invalidated` once an IOTLB invalidation covered it.
    Unmapped { invalidated: bool },
}

/// Summary of an audited run, embedded in `RunMetrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Whether an oracle was attached at all.
    pub enabled: bool,
    /// Audited device-side translations.
    pub checks: u64,
    /// Audited state-machine operations (map/unmap/alloc/free/invalidate).
    pub ops: u64,
    /// Total violations across all invariants.
    pub violations: u64,
    /// Per-invariant totals, indexed by [`Invariant::index`].
    pub by_invariant: [u64; 6],
    /// Invalidation-queue epochs queued / applied over the run.
    pub epochs_queued: u64,
    /// See [`AuditReport::epochs_queued`].
    pub epochs_applied: u64,
    /// End-of-run gauges: unmapped pages still awaiting invalidation.
    pub pending_invalidation: u64,
    /// End-of-run gauges: reclaimed PT pages still awaiting fixup.
    pub pending_reclaim: u64,
    /// End-of-run gauges: live IOVA ranges in the shadow allocator.
    pub live_iova_ranges: u64,
    /// End-of-run gauges: shadow-IOTLB entries (4K + huge).
    pub shadow_iotlb: u64,
    /// First [`SAMPLE_CAP`] violations, in detection order.
    pub samples: Vec<Violation>,
}

impl AuditReport {
    /// Count for one invariant class.
    pub fn of(&self, inv: Invariant) -> u64 {
        self.by_invariant[inv.index()]
    }

    /// No violations recorded (vacuously true when auditing was off).
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Distinct pfns the sampled violations anchor on, in detection order
    /// — the pages whose provenance timelines a failure artifact should
    /// explain.
    pub fn violating_pfns(&self) -> Vec<u64> {
        let mut pfns = Vec::new();
        for v in &self.samples {
            if !pfns.contains(&v.pfn) {
                pfns.push(v.pfn);
            }
        }
        pfns
    }

    /// Accumulates another shard's report into this one. Counters and
    /// end-of-run gauges sum, `by_invariant` adds element-wise, and the
    /// violation samples concatenate in shard order (the caller iterates
    /// shards canonically, so the combined sample order is deterministic).
    pub fn absorb(&mut self, other: &AuditReport) {
        self.enabled |= other.enabled;
        self.checks += other.checks;
        self.ops += other.ops;
        self.violations += other.violations;
        for (mine, theirs) in self.by_invariant.iter_mut().zip(other.by_invariant) {
            *mine += theirs;
        }
        self.epochs_queued += other.epochs_queued;
        self.epochs_applied += other.epochs_applied;
        self.pending_invalidation += other.pending_invalidation;
        self.pending_reclaim += other.pending_reclaim;
        self.live_iova_ranges += other.live_iova_ranges;
        self.shadow_iotlb += other.shadow_iotlb;
        self.samples.extend(other.samples.iter().cloned());
    }

    /// One-line summary for CLI output and failure artifacts.
    pub fn summary(&self) -> String {
        if !self.enabled {
            return "audit off".to_string();
        }
        let mut s = format!(
            "audit: {} checks, {} ops, {} violations",
            self.checks, self.ops, self.violations
        );
        for inv in Invariant::ALL {
            if self.of(inv) > 0 {
                s.push_str(&format!(" [{}: {}]", inv.name(), self.of(inv)));
            }
        }
        s
    }
}

/// The hook surface the instrumented datapath drives. `SafetyOracle` is
/// the only production implementation; the trait exists so the audited
/// code depends on the hook contract, not the model's internals, and so
/// tests can substitute counting stubs.
pub trait SafetyAuditor {
    /// An IOVA range left the allocator.
    fn on_alloc(&mut self, range: IovaRange);
    /// An IOVA range returned to the allocator.
    fn on_free(&mut self, range: IovaRange);
    /// Domain `d` mapped a 4K page at `pa`.
    fn on_map(&mut self, d: u16, iova: Iova, pa: PhysAddr);
    /// Domain `d` mapped a 2MB-aligned 512-page span starting at `pa_base`.
    fn on_map_huge(&mut self, d: u16, base: Iova, pa_base: PhysAddr);
    /// A range was unmapped from domain `d` by the datapath (device may
    /// still race it).
    fn on_unmap(&mut self, d: u16, range: IovaRange);
    /// A range was unmapped from domain `d` during error unwind, before
    /// any device access could have observed it.
    fn on_unwound(&mut self, d: u16, range: IovaRange);
    /// A synchronous IOTLB invalidation scoped to domain `d` covered
    /// `range`.
    fn on_invalidate(&mut self, d: u16, range: IovaRange);
    /// A global invalidation (IOTLB + PTcaches, every domain) completed.
    fn on_invalidate_all(&mut self);
    /// Unmapping reclaimed these page-table pages of domain `d`.
    fn on_pt_reclaimed(&mut self, d: u16, reclaimed: &[ReclaimedPage]);
    /// The PTcache fixup for these reclaimed PT pages of domain `d`
    /// completed.
    fn on_reclaim_fixup(&mut self, d: u16, reclaimed: &[ReclaimedPage]);
    /// A PTcache-wipe epoch was queued on the invalidation queue.
    fn on_wipe_queued(&mut self);
    /// A queued PTcache-wipe epoch was applied (each request names its
    /// domain).
    fn on_wipe_applied(&mut self, epoch: &[InvalidationRequest]);
    /// A device in domain `d` translated `iova`; `pa` is the outcome and
    /// `stale_walks` how many reclaimed PT pages the real walk consulted
    /// while serving it (ground truth from the IOMMU model).
    fn on_translate(&mut self, d: u16, iova: Iova, pa: Option<PhysAddr>, stale_walks: u64);
}

/// The naive reference model. See the crate docs for the invariants.
#[derive(Debug)]
pub struct SafetyOracle {
    contract: ModeContract,
    fatal: bool,
    /// Per-page lifecycle, keyed by domain-tagged IOVA pfn ([`dkey`]).
    /// Pages absent were never mapped in that domain.
    pages: HashMap<u64, PageState>,
    /// Unmapped pages whose covering IOTLB invalidation has not happened
    /// (domain-tagged pfns).
    pending_inval: BTreeSet<u64>,
    /// Reclaimed PT pages whose PTcache fixup has not happened, as
    /// `(level, domain-tagged region_key)`.
    pending_reclaim: BTreeSet<(u8, u64)>,
    /// Live IOVA allocations: base pfn → page count. The allocator is
    /// shared across domains, so these keys are untagged.
    live_iova: BTreeMap<u64, u64>,
    /// Domain-tagged pfns that may be cached in the real 4K IOTLB.
    shadow_iotlb: BTreeSet<u64>,
    /// Domain-tagged L4 keys that may be cached in the real huge-entry
    /// IOTLB.
    shadow_iotlb_huge: BTreeSet<u64>,
    /// Domain-tagged region keys possibly live in PTcache L3/L2/L1
    /// (indexed 0/1/2 = keys at L4/L3/L2 granularity, mirroring
    /// `ReclaimedPage::level`).
    shadow_ptc: [BTreeSet<u64>; 3],
    /// Which protection domain owns each physical frame: pa pfn → the
    /// domain that mapped it most recently. Ownership is *not* cleared on
    /// unmap — the latest map wins — so a stale translation that lands on
    /// a frame after it moved to another tenant is caught as a
    /// cross-domain leak rather than laundered by the unmap.
    owners: HashMap<u64, u16>,
    epochs_queued: u64,
    epochs_applied: u64,
    checks: u64,
    ops: u64,
    counts: [u64; 6],
    samples: Vec<Violation>,
    trace: TraceHandle,
}

impl SafetyOracle {
    /// A fresh model for one simulated driver under `contract`.
    pub fn new(contract: ModeContract, fatal: bool) -> Self {
        Self {
            contract,
            fatal,
            pages: HashMap::new(),
            pending_inval: BTreeSet::new(),
            pending_reclaim: BTreeSet::new(),
            live_iova: BTreeMap::new(),
            shadow_iotlb: BTreeSet::new(),
            shadow_iotlb_huge: BTreeSet::new(),
            shadow_ptc: [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()],
            owners: HashMap::new(),
            epochs_queued: 0,
            epochs_applied: 0,
            checks: 0,
            ops: 0,
            counts: [0; 6],
            samples: Vec::new(),
            trace: TraceHandle::Off,
        }
    }

    /// Attach a trace ring; violations then emit `TraceData::AuditViolation`.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The contract being audited.
    pub fn contract(&self) -> ModeContract {
        self.contract
    }

    /// Total violations so far.
    pub fn violations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Snapshot the run summary.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            enabled: true,
            checks: self.checks,
            ops: self.ops,
            violations: self.violations(),
            by_invariant: self.counts,
            epochs_queued: self.epochs_queued,
            epochs_applied: self.epochs_applied,
            pending_invalidation: self.pending_inval.len() as u64,
            pending_reclaim: self.pending_reclaim.len() as u64,
            live_iova_ranges: self.live_iova.len() as u64,
            shadow_iotlb: (self.shadow_iotlb.len() + self.shadow_iotlb_huge.len()) as u64,
            samples: self.samples.clone(),
        }
    }

    fn record(&mut self, invariant: Invariant, pfn: u64, detail: String) {
        self.counts[invariant.index()] += 1;
        self.trace.emit(TraceData::AuditViolation {
            invariant: invariant.index() as u8,
            pfn,
        });
        if self.fatal {
            panic!(
                "safety-audit violation [{}] pfn {:#x} at check {}: {}",
                invariant.name(),
                pfn,
                self.checks,
                detail
            );
        }
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(Violation {
                invariant,
                pfn,
                check: self.checks,
                detail,
            });
        }
    }

    /// Mark one page invalidated (key is domain-tagged): clear backlog and
    /// shadow entries, and complete the `Unmapped{false} → Unmapped{true}`
    /// transition.
    fn invalidate_pfn(&mut self, key: u64) {
        self.pending_inval.remove(&key);
        self.shadow_iotlb.remove(&key);
        if let Some(PageState::Unmapped { invalidated }) = self.pages.get_mut(&key) {
            *invalidated = true;
        }
    }

    /// Remove huge-IOTLB shadow entries of domain `d` for every L4 span
    /// fully covered by `range` (a huge entry is only credited as
    /// invalidated when the whole 512-page span it maps was invalidated).
    fn invalidate_covered_huge(&mut self, d: u16, range: IovaRange) {
        let lo = range.pfn_lo();
        let hi = range.pfn_hi();
        let mut key = range.base().l4_page_key();
        if key * L4_SPAN_PFNS < lo {
            key += 1;
        }
        while key * L4_SPAN_PFNS + (L4_SPAN_PFNS - 1) <= hi {
            self.shadow_iotlb_huge.remove(&dkey(d, key));
            key += 1;
        }
    }

    /// Drop `pending_reclaim` entries (and PTcache shadows) of domain `d`
    /// for keys of `level` whose region intersects `range`. Domain tags
    /// occupy the high bits of the key, so tagging both range endpoints
    /// keeps the BTree range scan within one domain.
    fn credit_reclaim_wipe(&mut self, level: u8, d: u16, range: IovaRange) {
        let (klo, khi) = match level {
            4 => (
                dkey(d, range.base().l4_page_key()),
                dkey(d, range.page(range.pages() - 1).l4_page_key()),
            ),
            3 => (
                dkey(d, range.base().l3_page_key()),
                dkey(d, range.page(range.pages() - 1).l3_page_key()),
            ),
            2 => (
                dkey(d, range.base().l2_page_key()),
                dkey(d, range.page(range.pages() - 1).l2_page_key()),
            ),
            _ => return,
        };
        let stale: Vec<(u8, u64)> = self
            .pending_reclaim
            .range((level, klo)..=(level, khi))
            .cloned()
            .collect();
        for k in stale {
            self.pending_reclaim.remove(&k);
        }
        let shadow = &mut self.shadow_ptc[(4 - level) as usize];
        let keys: Vec<u64> = shadow.range(klo..=khi).cloned().collect();
        for k in keys {
            shadow.remove(&k);
        }
    }

    /// Serializes the full shadow model for checkpointing. The attached
    /// trace handle is NOT serialized (the sim owns the ring and restores
    /// it separately); reattach with [`SafetyOracle::set_trace`].
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.bool(self.contract.translates);
        w.bool(self.contract.unmaps);
        w.bool(self.contract.strict_safety);
        w.bool(self.contract.ptcache_coherence);
        w.bool(self.contract.invalidation_completeness);
        w.bool(self.contract.domain_isolation);
        w.opt(&self.contract.deferred_window, |w, &v| w.u64(v));
        w.bool(self.fatal);
        let mut pages: Vec<(u64, PageState)> = self.pages.iter().map(|(&k, &v)| (k, v)).collect();
        pages.sort_unstable_by_key(|&(k, _)| k);
        w.seq(pages.len());
        for (pfn, state) in pages {
            w.u64(pfn);
            match state {
                PageState::Mapped { pa_pfn, huge } => {
                    w.u8(0);
                    w.u64(pa_pfn);
                    w.bool(huge);
                }
                PageState::Unmapped { invalidated } => {
                    w.u8(1);
                    w.bool(invalidated);
                }
            }
        }
        w.seq(self.pending_inval.len());
        for &pfn in &self.pending_inval {
            w.u64(pfn);
        }
        w.seq(self.pending_reclaim.len());
        for &(level, key) in &self.pending_reclaim {
            w.u8(level);
            w.u64(key);
        }
        w.seq(self.live_iova.len());
        for (&base, &pages) in &self.live_iova {
            w.u64(base);
            w.u64(pages);
        }
        w.seq(self.shadow_iotlb.len());
        for &pfn in &self.shadow_iotlb {
            w.u64(pfn);
        }
        w.seq(self.shadow_iotlb_huge.len());
        for &key in &self.shadow_iotlb_huge {
            w.u64(key);
        }
        for set in &self.shadow_ptc {
            w.seq(set.len());
            for &key in set {
                w.u64(key);
            }
        }
        w.u64(self.epochs_queued);
        w.u64(self.epochs_applied);
        w.u64(self.checks);
        w.u64(self.ops);
        for &c in &self.counts {
            w.u64(c);
        }
        w.seq(self.samples.len());
        for v in &self.samples {
            w.u8(v.invariant.index() as u8);
            w.u64(v.pfn);
            w.u64(v.check);
            w.str(&v.detail);
        }
        let mut owners: Vec<(u64, u16)> = self.owners.iter().map(|(&k, &v)| (k, v)).collect();
        owners.sort_unstable_by_key(|&(k, _)| k);
        w.seq(owners.len());
        for (pfn, d) in owners {
            w.u64(pfn);
            w.u64(d as u64);
        }
    }

    /// Rebuilds an oracle captured by [`SafetyOracle::snap`]. The trace
    /// handle comes back `Off`; reattach via [`SafetyOracle::set_trace`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let contract = ModeContract {
            translates: r.bool()?,
            unmaps: r.bool()?,
            strict_safety: r.bool()?,
            ptcache_coherence: r.bool()?,
            invalidation_completeness: r.bool()?,
            domain_isolation: r.bool()?,
            deferred_window: r.opt(|r| r.u64())?,
        };
        let fatal = r.bool()?;
        let n = r.seq()?;
        let mut pages = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let pfn = r.u64()?;
            let state = match r.u8()? {
                0 => PageState::Mapped {
                    pa_pfn: r.u64()?,
                    huge: r.bool()?,
                },
                1 => PageState::Unmapped {
                    invalidated: r.bool()?,
                },
                t => {
                    return Err(fns_snap::SnapError::BadTag {
                        what: "oracle page state",
                        tag: t as u64,
                    })
                }
            };
            pages.insert(pfn, state);
        }
        let mut pending_inval = BTreeSet::new();
        for _ in 0..r.seq()? {
            pending_inval.insert(r.u64()?);
        }
        let mut pending_reclaim = BTreeSet::new();
        for _ in 0..r.seq()? {
            let level = r.u8()?;
            pending_reclaim.insert((level, r.u64()?));
        }
        let mut live_iova = BTreeMap::new();
        for _ in 0..r.seq()? {
            let base = r.u64()?;
            live_iova.insert(base, r.u64()?);
        }
        let mut shadow_iotlb = BTreeSet::new();
        for _ in 0..r.seq()? {
            shadow_iotlb.insert(r.u64()?);
        }
        let mut shadow_iotlb_huge = BTreeSet::new();
        for _ in 0..r.seq()? {
            shadow_iotlb_huge.insert(r.u64()?);
        }
        let mut shadow_ptc = [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()];
        for set in &mut shadow_ptc {
            for _ in 0..r.seq()? {
                set.insert(r.u64()?);
            }
        }
        let epochs_queued = r.u64()?;
        let epochs_applied = r.u64()?;
        let checks = r.u64()?;
        let ops = r.u64()?;
        let mut counts = [0u64; 6];
        for c in &mut counts {
            *c = r.u64()?;
        }
        let n = r.seq()?;
        let mut samples = Vec::with_capacity(n.min(SAMPLE_CAP));
        for _ in 0..n {
            let idx = r.u8()? as usize;
            let invariant = *Invariant::ALL.get(idx).ok_or(fns_snap::SnapError::BadTag {
                what: "oracle invariant",
                tag: idx as u64,
            })?;
            samples.push(Violation {
                invariant,
                pfn: r.u64()?,
                check: r.u64()?,
                detail: r.str()?.to_string(),
            });
        }
        let n = r.seq()?;
        let mut owners = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let pfn = r.u64()?;
            owners.insert(pfn, r.u64()? as u16);
        }
        Ok(Self {
            contract,
            fatal,
            pages,
            pending_inval,
            pending_reclaim,
            live_iova,
            shadow_iotlb,
            shadow_iotlb_huge,
            shadow_ptc,
            owners,
            epochs_queued,
            epochs_applied,
            checks,
            ops,
            counts,
            samples,
            trace: TraceHandle::Off,
        })
    }

    /// Differential cross-check, called by the driver right after it
    /// submits synchronous invalidations for domain `d`: no page of
    /// `range` may still have a live entry tagged with `d` in the real
    /// IOTLB.
    pub fn crosscheck_invalidated(&mut self, d: u16, iommu: &Iommu, range: IovaRange) {
        for iova in range.iter_pages() {
            if iommu.iotlb_contains_in(d, iova) {
                self.record(
                    Invariant::InvalidationCompleteness,
                    iova.pfn(),
                    format!(
                        "IOTLB entry for pfn {:#x} survived an invalidation covering \
                         [{:#x}+{}]",
                        iova.pfn(),
                        range.pfn_lo(),
                        range.pages()
                    ),
                );
            }
        }
    }
}

impl SafetyAuditor for SafetyOracle {
    fn on_alloc(&mut self, range: IovaRange) {
        self.ops += 1;
        let lo = range.pfn_lo();
        if let Some((&base, &pages)) = self.live_iova.range(..=range.pfn_hi()).next_back() {
            if base + pages > lo {
                self.record(
                    Invariant::IovaDiscipline,
                    lo,
                    format!(
                        "alloc [{:#x}+{}] overlaps live range [{:#x}+{}]",
                        lo,
                        range.pages(),
                        base,
                        pages
                    ),
                );
            }
        }
        self.live_iova.insert(lo, range.pages());
    }

    fn on_free(&mut self, range: IovaRange) {
        self.ops += 1;
        let lo = range.pfn_lo();
        match self.live_iova.remove(&lo) {
            Some(pages) if pages == range.pages() => {}
            Some(pages) => self.record(
                Invariant::IovaDiscipline,
                lo,
                format!(
                    "free of [{:#x}+{}] but the live range there holds {} pages",
                    lo,
                    range.pages(),
                    pages
                ),
            ),
            None => self.record(
                Invariant::IovaDiscipline,
                lo,
                format!("free of [{:#x}+{}] which is not live", lo, range.pages()),
            ),
        }
    }

    fn on_map(&mut self, d: u16, iova: Iova, pa: PhysAddr) {
        self.ops += 1;
        let pk = dkey(d, iova.pfn());
        self.pages.insert(
            pk,
            PageState::Mapped {
                pa_pfn: pa.pfn(),
                huge: false,
            },
        );
        self.owners.insert(pa.pfn(), d);
        // A remap launders any still-pending invalidation: the entry that
        // might be cached now translates to a *live* page again, so the
        // hazard the backlog tracked no longer exists for this pfn.
        self.pending_inval.remove(&pk);
    }

    fn on_map_huge(&mut self, d: u16, base: Iova, pa_base: PhysAddr) {
        for i in 0..L4_SPAN_PFNS {
            self.ops += 1;
            let iova = base.add(i << 12);
            let pk = dkey(d, iova.pfn());
            self.pages.insert(
                pk,
                PageState::Mapped {
                    pa_pfn: pa_base.pfn() + i,
                    huge: true,
                },
            );
            self.owners.insert(pa_base.pfn() + i, d);
            self.pending_inval.remove(&pk);
        }
    }

    fn on_unmap(&mut self, d: u16, range: IovaRange) {
        if !self.contract.unmaps && self.contract.translates {
            self.record(
                Invariant::MappingIntegrity,
                range.pfn_lo(),
                format!(
                    "pinned-pool mode unmapped [{:#x}+{}] despite promising stable mappings",
                    range.pfn_lo(),
                    range.pages()
                ),
            );
        }
        for iova in range.iter_pages() {
            self.ops += 1;
            let pfn = iova.pfn();
            let pk = dkey(d, pfn);
            match self
                .pages
                .insert(pk, PageState::Unmapped { invalidated: false })
            {
                Some(PageState::Mapped { .. }) => {}
                prior => self.record(
                    Invariant::MappingIntegrity,
                    pfn,
                    format!(
                        "unmap of pfn {:#x} (domain {}) which the model holds as {:?}",
                        pfn, d, prior
                    ),
                ),
            }
            self.pending_inval.insert(pk);
        }
    }

    fn on_unwound(&mut self, d: u16, range: IovaRange) {
        // Unwound pages were mapped and torn down inside one driver call;
        // no device access can have cached them, so they carry no pending
        // invalidation. Strict modes still invalidate defensively — model
        // that as already-invalidated either way.
        for iova in range.iter_pages() {
            self.ops += 1;
            let pk = dkey(d, iova.pfn());
            self.pages
                .insert(pk, PageState::Unmapped { invalidated: true });
            self.pending_inval.remove(&pk);
        }
    }

    fn on_invalidate(&mut self, d: u16, range: IovaRange) {
        self.ops += 1;
        for iova in range.iter_pages() {
            self.invalidate_pfn(dkey(d, iova.pfn()));
        }
        self.invalidate_covered_huge(d, range);
    }

    fn on_invalidate_all(&mut self) {
        self.ops += 1;
        let backlog: Vec<u64> = self.pending_inval.iter().cloned().collect();
        for pfn in backlog {
            self.invalidate_pfn(pfn);
        }
        self.shadow_iotlb.clear();
        self.shadow_iotlb_huge.clear();
        // A global flush wipes the PTcaches too, so every pending reclaim
        // fixup is implicitly credited.
        self.pending_reclaim.clear();
        for s in &mut self.shadow_ptc {
            s.clear();
        }
    }

    fn on_pt_reclaimed(&mut self, d: u16, reclaimed: &[ReclaimedPage]) {
        for r in reclaimed {
            self.ops += 1;
            self.pending_reclaim
                .insert((r.level, dkey(d, r.region_key)));
        }
    }

    fn on_reclaim_fixup(&mut self, d: u16, reclaimed: &[ReclaimedPage]) {
        for r in reclaimed {
            self.ops += 1;
            self.pending_reclaim
                .remove(&(r.level, dkey(d, r.region_key)));
            if (2..=4).contains(&r.level) {
                self.shadow_ptc[(4 - r.level) as usize].remove(&dkey(d, r.region_key));
            }
        }
    }

    fn on_wipe_queued(&mut self) {
        self.epochs_queued += 1;
    }

    fn on_wipe_applied(&mut self, epoch: &[InvalidationRequest]) {
        self.epochs_applied += 1;
        if self.epochs_applied > self.epochs_queued {
            self.record(
                Invariant::InvalidationCompleteness,
                0,
                format!(
                    "invalidation-queue accounting: {} epochs applied but only {} queued",
                    self.epochs_applied, self.epochs_queued
                ),
            );
        }
        for req in epoch {
            match req.scope {
                InvalidationScope::IotlbOnly => {}
                InvalidationScope::IotlbAndLeafPtcache => {
                    self.credit_reclaim_wipe(4, req.domain, req.range);
                }
                InvalidationScope::IotlbAndFullPtcache => {
                    self.credit_reclaim_wipe(4, req.domain, req.range);
                    self.credit_reclaim_wipe(3, req.domain, req.range);
                    self.credit_reclaim_wipe(2, req.domain, req.range);
                }
            }
        }
    }

    fn on_translate(&mut self, d: u16, iova: Iova, pa: Option<PhysAddr>, stale_walks: u64) {
        if !self.contract.translates {
            return;
        }
        self.checks += 1;
        let pfn = iova.pfn();
        let pk = dkey(d, pfn);

        // Ground truth from the IOMMU model: the walk consulted a PT page
        // that was reclaimed. This is a PT use-after-free in any mode.
        if stale_walks > 0 {
            self.record(
                Invariant::PtcacheCoherence,
                pfn,
                format!(
                    "translation walk for pfn {:#x} consulted {} reclaimed page-table page(s)",
                    pfn, stale_walks
                ),
            );
        }

        // Preserving modes promise the PTcache fixup happens inside the
        // unmap that reclaimed the PT page — reaching a device access with
        // the fixup still pending breaks that promise even if this
        // particular walk dodged the stale entry.
        if self.contract.ptcache_coherence {
            if let Some(&(level, key)) = self.pending_reclaim.iter().next() {
                self.record(
                    Invariant::PtcacheCoherence,
                    key_pfn(key),
                    format!(
                        "{} reclaimed PT page(s) awaiting fixup at device access \
                         (first: level {} key {:#x} domain {})",
                        self.pending_reclaim.len(),
                        level,
                        key_pfn(key),
                        key_domain(key)
                    ),
                );
            }
        }

        if self.contract.invalidation_completeness && !self.pending_inval.is_empty() {
            let first = *self.pending_inval.iter().next().unwrap();
            self.record(
                Invariant::InvalidationCompleteness,
                key_pfn(first),
                format!(
                    "{} unmapped page(s) not yet invalidated at device access \
                     (first pfn {:#x} domain {})",
                    self.pending_inval.len(),
                    key_pfn(first),
                    key_domain(first)
                ),
            );
        }

        if let Some(bound) = self.contract.deferred_window {
            if self.pending_inval.len() as u64 > bound {
                let first = *self.pending_inval.iter().next().unwrap();
                self.record(
                    Invariant::InvalidationCompleteness,
                    key_pfn(first),
                    format!(
                        "deferred invalidation backlog {} exceeds its bounded window {}",
                        self.pending_inval.len(),
                        bound
                    ),
                );
            }
        }

        // Cross-domain isolation: a successful translation must land on a
        // frame owned by the issuing device's domain. Checked before the
        // per-page lifecycle so a cross-tenant hit is named as such, and
        // deliberately NOT excused by the deferred window — staleness is
        // tolerable within the tenant that deferred the invalidation, but
        // never across a tenant boundary.
        if self.contract.domain_isolation {
            if let Some(got) = pa {
                if let Some(&owner) = self.owners.get(&got.pfn()) {
                    if owner != d {
                        self.record(
                            Invariant::CrossDomainIsolation,
                            pfn,
                            format!(
                                "domain {} translated iova pfn {:#x} to frame {:#x} \
                                 owned by domain {}",
                                d,
                                pfn,
                                got.pfn(),
                                owner
                            ),
                        );
                    }
                }
            }
        }

        match (self.pages.get(&pk).copied(), pa) {
            (None, Some(got)) => self.record(
                Invariant::StrictSafety,
                pfn,
                format!(
                    "translation of never-mapped pfn {:#x} succeeded (pa {:#x})",
                    pfn,
                    got.as_u64()
                ),
            ),
            (None, None) => {}
            (Some(PageState::Mapped { pa_pfn, huge }), Some(got)) => {
                // In deferred mode a stale IOTLB entry may legitimately
                // serve an *old* frame for a re-used IOVA inside the
                // window, so the pa cross-check only binds where staleness
                // is ruled out: strict modes and never-unmapping pools.
                if (self.contract.strict_safety || !self.contract.unmaps) && got.pfn() != pa_pfn {
                    self.record(
                        Invariant::MappingIntegrity,
                        pfn,
                        format!(
                            "pfn {:#x} translated to frame {:#x}, model holds {:#x}",
                            pfn,
                            got.pfn(),
                            pa_pfn
                        ),
                    );
                }
                if huge {
                    self.shadow_iotlb_huge.insert(dkey(d, iova.l4_page_key()));
                } else {
                    self.shadow_iotlb.insert(pk);
                }
                self.shadow_ptc[0].insert(dkey(d, iova.l4_page_key()));
                self.shadow_ptc[1].insert(dkey(d, iova.l3_page_key()));
                self.shadow_ptc[2].insert(dkey(d, iova.l2_page_key()));
            }
            (Some(PageState::Mapped { .. }), None) => self.record(
                Invariant::MappingIntegrity,
                pfn,
                format!("device fault on live mapping of pfn {:#x}", pfn),
            ),
            (Some(PageState::Unmapped { invalidated }), Some(_)) => {
                if self.contract.strict_safety {
                    self.record(
                        Invariant::StrictSafety,
                        pfn,
                        format!(
                            "translation of unmapped pfn {:#x} succeeded in a strict mode \
                             (invalidated: {})",
                            pfn, invalidated
                        ),
                    );
                } else if invalidated {
                    // Even lax modes may not serve a page whose unmap AND
                    // covering invalidation both completed.
                    self.record(
                        Invariant::StrictSafety,
                        pfn,
                        format!(
                            "translation of pfn {:#x} succeeded after unmap and \
                             invalidation both completed",
                            pfn
                        ),
                    );
                }
                // Unmapped+uninvalidated in a lax mode: the documented
                // deferred window. Allowed; bounded by deferred_window.
            }
            (Some(PageState::Unmapped { .. }), None) => {}
        }
    }
}

/// Enum-dispatch handle held by the driver, mirroring `TraceHandle`:
/// `Off` (the default) makes every hook one discriminant branch.
#[derive(Debug, Clone, Default)]
pub enum AuditHandle {
    /// No auditing; every hook is a no-op.
    #[default]
    Off,
    /// Auditing through a shared [`SafetyOracle`].
    On(Rc<RefCell<SafetyOracle>>),
}

macro_rules! forward {
    ($self:ident, $($call:tt)*) => {
        if let AuditHandle::On(o) = $self {
            o.borrow_mut().$($call)*;
        }
    };
}

impl AuditHandle {
    /// An auditing handle over a fresh oracle for `contract`.
    pub fn recording(contract: ModeContract, fatal: bool) -> Self {
        AuditHandle::On(Rc::new(RefCell::new(SafetyOracle::new(contract, fatal))))
    }

    /// Whether any oracle is attached.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, AuditHandle::On(_))
    }

    /// Attach a trace ring to the oracle (no-op when off).
    pub fn set_trace(&self, trace: TraceHandle) {
        forward!(self, set_trace(trace));
    }

    /// Serializes the handle (and the oracle behind it) for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        match self {
            AuditHandle::Off => w.u8(0),
            AuditHandle::On(o) => {
                w.u8(1);
                o.borrow().snap(w);
            }
        }
    }

    /// Rebuilds a handle captured by [`AuditHandle::snap`]. Clone the
    /// result into every component that held the original, and reattach
    /// the trace ring with [`AuditHandle::set_trace`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        match r.u8()? {
            0 => Ok(AuditHandle::Off),
            1 => Ok(AuditHandle::On(Rc::new(RefCell::new(
                SafetyOracle::unsnap(r)?,
            )))),
            t => Err(fns_snap::SnapError::BadTag {
                what: "audit handle",
                tag: t as u64,
            }),
        }
    }

    /// Snapshot the run summary ([`AuditReport::default`] when off).
    pub fn report(&self) -> AuditReport {
        match self {
            AuditHandle::Off => AuditReport::default(),
            AuditHandle::On(o) => o.borrow().report(),
        }
    }

    /// Total violations so far (0 when off).
    pub fn violations(&self) -> u64 {
        match self {
            AuditHandle::Off => 0,
            AuditHandle::On(o) => o.borrow().violations(),
        }
    }

    /// See [`SafetyAuditor::on_alloc`].
    #[inline]
    pub fn on_alloc(&self, range: IovaRange) {
        forward!(self, on_alloc(range));
    }

    /// See [`SafetyAuditor::on_free`].
    #[inline]
    pub fn on_free(&self, range: IovaRange) {
        forward!(self, on_free(range));
    }

    /// See [`SafetyAuditor::on_map`].
    #[inline]
    pub fn on_map(&self, d: u16, iova: Iova, pa: PhysAddr) {
        forward!(self, on_map(d, iova, pa));
    }

    /// See [`SafetyAuditor::on_map_huge`].
    #[inline]
    pub fn on_map_huge(&self, d: u16, base: Iova, pa_base: PhysAddr) {
        forward!(self, on_map_huge(d, base, pa_base));
    }

    /// See [`SafetyAuditor::on_unmap`].
    #[inline]
    pub fn on_unmap(&self, d: u16, range: IovaRange) {
        forward!(self, on_unmap(d, range));
    }

    /// See [`SafetyAuditor::on_unwound`].
    #[inline]
    pub fn on_unwound(&self, d: u16, range: IovaRange) {
        forward!(self, on_unwound(d, range));
    }

    /// See [`SafetyAuditor::on_invalidate`].
    #[inline]
    pub fn on_invalidate(&self, d: u16, range: IovaRange) {
        forward!(self, on_invalidate(d, range));
    }

    /// See [`SafetyAuditor::on_invalidate_all`].
    #[inline]
    pub fn on_invalidate_all(&self) {
        forward!(self, on_invalidate_all());
    }

    /// See [`SafetyAuditor::on_pt_reclaimed`].
    #[inline]
    pub fn on_pt_reclaimed(&self, d: u16, reclaimed: &[ReclaimedPage]) {
        forward!(self, on_pt_reclaimed(d, reclaimed));
    }

    /// See [`SafetyAuditor::on_reclaim_fixup`].
    #[inline]
    pub fn on_reclaim_fixup(&self, d: u16, reclaimed: &[ReclaimedPage]) {
        forward!(self, on_reclaim_fixup(d, reclaimed));
    }

    /// See [`SafetyAuditor::on_wipe_queued`].
    #[inline]
    pub fn on_wipe_queued(&self) {
        forward!(self, on_wipe_queued());
    }

    /// See [`SafetyAuditor::on_wipe_applied`].
    #[inline]
    pub fn on_wipe_applied(&self, epoch: &[InvalidationRequest]) {
        forward!(self, on_wipe_applied(epoch));
    }

    /// See [`SafetyAuditor::on_translate`].
    #[inline]
    pub fn on_translate(&self, d: u16, iova: Iova, pa: Option<PhysAddr>, stale_walks: u64) {
        forward!(self, on_translate(d, iova, pa, stale_walks));
    }

    /// See [`SafetyOracle::crosscheck_invalidated`].
    #[inline]
    pub fn crosscheck_invalidated(&self, d: u16, iommu: &Iommu, range: IovaRange) {
        if let AuditHandle::On(o) = self {
            o.borrow_mut().crosscheck_invalidated(d, iommu, range);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict() -> ModeContract {
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: true,
            ptcache_coherence: true,
            invalidation_completeness: true,
            domain_isolation: true,
            deferred_window: None,
        }
    }

    fn deferred(window: u64) -> ModeContract {
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: false,
            ptcache_coherence: false,
            invalidation_completeness: false,
            domain_isolation: true,
            deferred_window: Some(window),
        }
    }

    fn pa(pfn: u64) -> PhysAddr {
        PhysAddr::new(pfn << 12)
    }

    fn iova(pfn: u64) -> Iova {
        Iova::from_pfn(pfn)
    }

    #[test]
    fn clean_lifecycle_records_nothing() {
        let mut o = SafetyOracle::new(strict(), false);
        let r = IovaRange::new(iova(0x40), 1);
        o.on_alloc(r);
        o.on_map(0, iova(0x40), pa(0x100));
        o.on_translate(0, iova(0x40), Some(pa(0x100)), 0);
        o.on_unmap(0, r);
        o.on_invalidate(0, r);
        o.on_free(r);
        o.on_translate(0, iova(0x40), None, 0);
        assert_eq!(o.violations(), 0, "{:?}", o.report().samples);
        assert_eq!(o.report().checks, 2);
    }

    #[test]
    fn translate_after_unmap_is_strict_violation() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map(0, iova(7), pa(9));
        o.on_unmap(0, IovaRange::new(iova(7), 1));
        o.on_invalidate(0, IovaRange::new(iova(7), 1));
        o.on_translate(0, iova(7), Some(pa(9)), 0);
        let rep = o.report();
        assert_eq!(rep.of(Invariant::StrictSafety), 1);
    }

    #[test]
    fn pending_invalidation_at_access_is_incompleteness() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map(0, iova(7), pa(9));
        o.on_map(0, iova(8), pa(10));
        o.on_unmap(0, IovaRange::new(iova(7), 1));
        // Access another page while pfn 7's invalidation is outstanding.
        o.on_translate(0, iova(8), Some(pa(10)), 0);
        assert_eq!(o.report().of(Invariant::InvalidationCompleteness), 1);
        // Strict-safety also fires if the *unmapped* page itself translates.
        o.on_translate(0, iova(7), Some(pa(9)), 0);
        assert_eq!(o.report().of(Invariant::StrictSafety), 1);
    }

    #[test]
    fn deferred_window_is_tolerated_until_bound() {
        let mut o = SafetyOracle::new(deferred(4), false);
        for p in 0..4 {
            o.on_map(0, iova(p), pa(100 + p));
            o.on_unmap(0, IovaRange::new(iova(p), 1));
        }
        // Stale hit inside the window: allowed.
        o.on_translate(0, iova(0), Some(pa(100)), 0);
        assert_eq!(o.violations(), 0);
        // Fifth pending unmap exceeds the bound.
        o.on_map(0, iova(4), pa(104));
        o.on_unmap(0, IovaRange::new(iova(4), 1));
        o.on_translate(0, iova(0), Some(pa(100)), 0);
        assert_eq!(o.report().of(Invariant::InvalidationCompleteness), 1);
        // A full flush drains the backlog and completes the invalidations.
        o.on_invalidate_all();
        o.on_translate(0, iova(9), None, 0);
        assert_eq!(o.violations(), 1);
        // Post-flush success on a drained page is a violation even here.
        o.on_translate(0, iova(0), Some(pa(100)), 0);
        assert_eq!(o.report().of(Invariant::StrictSafety), 1);
    }

    #[test]
    fn stale_walk_ground_truth_is_ptcache_violation() {
        let mut o = SafetyOracle::new(deferred(1000), false);
        o.on_map(0, iova(1), pa(2));
        o.on_translate(0, iova(1), Some(pa(2)), 1);
        assert_eq!(o.report().of(Invariant::PtcacheCoherence), 1);
    }

    #[test]
    fn pending_reclaim_fixup_is_coherence_violation_in_preserving_modes() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map(0, iova(1), pa(2));
        let reclaimed = [ReclaimedPage {
            level: 4,
            region_key: 0,
        }];
        o.on_pt_reclaimed(0, &reclaimed);
        o.on_translate(0, iova(1), Some(pa(2)), 0);
        assert_eq!(o.report().of(Invariant::PtcacheCoherence), 1);
        o.on_reclaim_fixup(0, &reclaimed);
        o.on_translate(0, iova(1), Some(pa(2)), 0);
        assert_eq!(o.report().of(Invariant::PtcacheCoherence), 1);
    }

    #[test]
    fn queued_wipe_epoch_credits_reclaims_by_scope() {
        let mut o = SafetyOracle::new(deferred(1000), false);
        let reclaimed = [ReclaimedPage {
            level: 4,
            region_key: 1,
        }];
        o.on_pt_reclaimed(0, &reclaimed);
        o.on_wipe_queued();
        let epoch = [InvalidationRequest {
            range: IovaRange::new(iova(512), 512),
            scope: InvalidationScope::IotlbAndLeafPtcache,
            domain: 0,
        }];
        o.on_wipe_applied(&epoch);
        assert_eq!(o.report().pending_reclaim, 0);
        assert_eq!(o.report().epochs_queued, 1);
        assert_eq!(o.report().epochs_applied, 1);
    }

    #[test]
    fn pa_mismatch_is_mapping_integrity() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map(0, iova(3), pa(50));
        o.on_translate(0, iova(3), Some(pa(51)), 0);
        assert_eq!(o.report().of(Invariant::MappingIntegrity), 1);
    }

    #[test]
    fn overlapping_alloc_and_stray_free_are_iova_discipline() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_alloc(IovaRange::new(iova(0x100), 64));
        o.on_alloc(IovaRange::new(iova(0x120), 8));
        assert_eq!(o.report().of(Invariant::IovaDiscipline), 1);
        o.on_free(IovaRange::new(iova(0x500), 1));
        assert_eq!(o.report().of(Invariant::IovaDiscipline), 2);
    }

    #[test]
    fn unwound_pages_carry_no_pending_invalidation() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map(0, iova(5), pa(6));
        o.on_unwound(0, IovaRange::new(iova(5), 1));
        o.on_translate(0, iova(9), None, 0);
        assert_eq!(o.violations(), 0);
        // But a later successful translation of the unwound page is stale.
        o.on_translate(0, iova(5), Some(pa(6)), 0);
        assert_eq!(o.report().of(Invariant::StrictSafety), 1);
    }

    #[test]
    fn huge_invalidation_credit_requires_full_span() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map_huge(0, iova(512), pa(0x4000));
        o.on_translate(0, iova(513), Some(pa(0x4001)), 0);
        assert!(o.shadow_iotlb_huge.contains(&1));
        // Partial-range invalidation must not credit the huge entry.
        o.on_invalidate(0, IovaRange::new(iova(512), 64));
        assert!(o.shadow_iotlb_huge.contains(&1));
        o.on_invalidate(0, IovaRange::new(iova(512), 512));
        assert!(!o.shadow_iotlb_huge.contains(&1));
        assert_eq!(o.violations(), 0);
    }

    #[test]
    fn off_handle_is_inert_and_reports_default() {
        let h = AuditHandle::default();
        h.on_map(0, iova(1), pa(1));
        h.on_translate(0, iova(1), None, 5);
        assert!(!h.is_on());
        assert_eq!(h.report(), AuditReport::default());
        assert!(h.report().is_clean());
    }

    #[test]
    fn fatal_oracle_panics_on_first_violation() {
        let res = std::panic::catch_unwind(|| {
            let mut o = SafetyOracle::new(strict(), true);
            o.on_translate(0, iova(1), Some(pa(1)), 0);
        });
        assert!(res.is_err());
    }

    #[test]
    fn invariant_names_roundtrip() {
        for inv in Invariant::ALL {
            assert_eq!(Invariant::from_name(inv.name()), Some(inv));
        }
        assert_eq!(Invariant::from_name("nonsense"), None);
    }

    #[test]
    fn cross_domain_translation_is_isolation_violation() {
        let mut o = SafetyOracle::new(strict(), false);
        // Domain 0 owns frame 0x100; domain 1 maps the same frame (the
        // CrossDomainLeak sabotage shape) and ownership moves to domain 1.
        o.on_map(0, iova(0x40), pa(0x100));
        o.on_map(1, iova(0x80), pa(0x100));
        // Domain 0's still-live mapping now lands on domain 1's frame.
        o.on_translate(0, iova(0x40), Some(pa(0x100)), 0);
        assert_eq!(o.report().of(Invariant::CrossDomainIsolation), 1);
        // The thieving domain's own access is clean (it owns the frame).
        o.on_translate(1, iova(0x80), Some(pa(0x100)), 0);
        assert_eq!(o.report().of(Invariant::CrossDomainIsolation), 1);
    }

    #[test]
    fn same_iova_in_two_domains_stays_isolated() {
        // A shared IOVA allocator never hands out the same live range
        // twice, but after free+realloc two domains may hold the same pfn
        // over time — the tagged shadow state must keep them apart.
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map(0, iova(0x40), pa(0x100));
        o.on_map(1, iova(0x41), pa(0x200));
        o.on_unmap(0, IovaRange::new(iova(0x40), 1));
        o.on_invalidate(0, IovaRange::new(iova(0x40), 1));
        // Domain 1's page is still live and clean.
        o.on_translate(1, iova(0x41), Some(pa(0x200)), 0);
        assert_eq!(o.violations(), 0, "{:?}", o.report().samples);
    }

    #[test]
    fn cross_domain_stale_hit_fires_even_inside_deferred_window() {
        let mut o = SafetyOracle::new(deferred(1000), false);
        o.on_map(0, iova(0x40), pa(0x100));
        o.on_unmap(0, IovaRange::new(iova(0x40), 1));
        // Within the window a same-domain stale hit is tolerated...
        o.on_translate(0, iova(0x40), Some(pa(0x100)), 0);
        assert_eq!(o.violations(), 0);
        // ...but once the frame moves to another tenant, the same stale
        // hit is a cross-domain leak, window or not.
        o.on_map(1, iova(0x80), pa(0x100));
        o.on_translate(0, iova(0x40), Some(pa(0x100)), 0);
        assert_eq!(o.report().of(Invariant::CrossDomainIsolation), 1);
    }

    #[test]
    fn domain_scoped_invalidation_does_not_credit_other_domains() {
        let mut o = SafetyOracle::new(strict(), false);
        o.on_map(0, iova(0x40), pa(0x100));
        o.on_map(1, iova(0x50), pa(0x200));
        o.on_unmap(0, IovaRange::new(iova(0x40), 1));
        o.on_unmap(1, IovaRange::new(iova(0x50), 1));
        // Domain 0's scoped invalidation covers the same pfn range but
        // must not complete domain 1's pending invalidation.
        o.on_invalidate(0, IovaRange::new(iova(0x40), 0x20));
        o.on_translate(0, iova(0x60), None, 0);
        assert_eq!(o.report().of(Invariant::InvalidationCompleteness), 1);
        o.on_invalidate(1, IovaRange::new(iova(0x50), 1));
        o.on_translate(0, iova(0x60), None, 0);
        assert_eq!(o.report().of(Invariant::InvalidationCompleteness), 1);
    }

    #[test]
    fn multi_domain_oracle_snapshots_round_trip() {
        let mut o = SafetyOracle::new(deferred(8), false);
        o.on_map(0, iova(0x40), pa(0x100));
        o.on_map(1, iova(0x80), pa(0x100));
        o.on_translate(0, iova(0x40), Some(pa(0x100)), 0);
        assert_eq!(o.report().of(Invariant::CrossDomainIsolation), 1);
        let mut w = fns_snap::SnapWriter::new();
        o.snap(&mut w);
        let bytes = w.finish();
        let mut r = fns_snap::SnapReader::new(&bytes).unwrap();
        let mut back = SafetyOracle::unsnap(&mut r).unwrap();
        assert_eq!(back.report(), o.report());
        // Restored ownership keeps catching the same leak.
        back.on_translate(0, iova(0x40), Some(pa(0x100)), 0);
        assert_eq!(back.report().of(Invariant::CrossDomainIsolation), 2);
    }
}
