//! The 4-level IO page table (Intel VT-d second-stage layout).
//!
//! Exactly the structure described in §2.1 of the paper: four levels
//! (PT-L1 root through PT-L4 leaves), 512 entries of 64 bits per page;
//! PT-L1 indexes the 9 most significant IOVA bits, PT-L4 entries map
//! directly to physical addresses.
//!
//! Page-table pages live in a generational arena: a [`PageRef`] caches a
//! pointer to a page the way the hardware PTcaches do, and resolving a ref
//! whose generation is stale models the *use-after-free walk through a
//! reclaimed page-table page* — the safety hazard F&S must (and does) avoid
//! by invalidating PTcaches whenever an unmap reclaims a page (§3).
//!
//! Reclamation follows the Linux rule reproduced in Figure 5: a page-table
//! page is reclaimed **only when a single unmap operation covers its entire
//! address span** (2 MB for a PT-L4 page, 1 GB for PT-L3, 512 GB for PT-L2).

use fns_iova::types::{Iova, IovaRange};
use fns_mem::addr::PhysAddr;

/// Entries per page-table page (9 bits of index).
pub const ENTRIES_PER_PAGE: usize = 512;

/// IOVA pfns covered by one PT-L4 page (2 MB).
pub const L4_SPAN_PFNS: u64 = 512;
/// IOVA pfns covered by one PT-L3 page (1 GB).
pub const L3_SPAN_PFNS: u64 = 512 * 512;
/// IOVA pfns covered by one PT-L2 page (512 GB).
pub const L2_SPAN_PFNS: u64 = 512 * 512 * 512;

/// Generational reference to a page-table page, as cached by the hardware
/// page-structure caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRef {
    idx: u32,
    generation: u32,
}

impl PageRef {
    /// Raw `(idx, generation)` parts, for the crate's snapshot code: the
    /// PTcache snapshots in [`crate::iommu`] must serialize cached refs
    /// verbatim so they resolve (or go stale) identically after a restore.
    pub(crate) fn parts(self) -> (u32, u32) {
        (self.idx, self.generation)
    }

    /// Rebuilds a ref captured by [`PageRef::parts`].
    pub(crate) fn from_parts(idx: u32, generation: u32) -> Self {
        Self { idx, generation }
    }
}

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PtEntry {
    /// Non-leaf: pointer to the next-level page.
    Child(PageRef),
    /// PT-L4 leaf: the final physical translation.
    Leaf(PhysAddr),
    /// 2 MB huge-page leaf, valid only in PT-L3 pages (VT-d second-level
    /// superpage). The address is the 2 MB-aligned physical base.
    HugeLeaf(PhysAddr),
}

/// A single page-table page.
#[derive(Debug, Clone)]
struct PtPage {
    /// 1 = root (PT-L1) .. 4 = leaf level (PT-L4).
    level: u8,
    entries: Vec<Option<PtEntry>>,
    live: u16,
}

impl PtPage {
    fn new(level: u8) -> Self {
        Self {
            level,
            entries: vec![None; ENTRIES_PER_PAGE],
            live: 0,
        }
    }

    /// Like [`PtPage::new`] but reusing a recycled entries vector. The
    /// vector must already be all-`None` — guaranteed for pages coming off
    /// `free_page`, which only reclaims pages whose `live` count hit zero
    /// (and `live` equals the number of `Some` entries by invariant).
    fn with_entries(level: u8, entries: Vec<Option<PtEntry>>) -> Self {
        debug_assert_eq!(entries.len(), ENTRIES_PER_PAGE);
        debug_assert!(entries.iter().all(Option::is_none));
        Self {
            level,
            entries,
            live: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    page: Option<PtPage>,
}

/// Result of resolving a cached [`PageRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefState {
    /// The referenced page is alive.
    Live,
    /// The page was reclaimed: walking through this ref would read freed
    /// memory on real hardware.
    Stale,
}

/// A page-table page reclaimed by an unmap operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimedPage {
    /// Level of the reclaimed page (2..=4; the root is never reclaimed).
    pub level: u8,
    /// Region key: IOVA pfn of the start of the page's span, divided by the
    /// span size. Matches the corresponding PTcache key.
    pub region_key: u64,
}

/// Outcome of [`IoPageTable::unmap_range`].
#[derive(Debug, Clone, Default)]
pub struct UnmapOutcome {
    /// Number of leaf mappings removed.
    pub unmapped: u64,
    /// Page-table pages reclaimed by this (single) operation.
    pub reclaimed: Vec<ReclaimedPage>,
}

/// Errors from map/unmap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtError {
    /// The IOVA already has a live leaf mapping.
    AlreadyMapped(u64),
    /// An IOVA in the unmap range has no leaf mapping.
    NotMapped(u64),
}

impl std::fmt::Display for PtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PtError::AlreadyMapped(pfn) => write!(f, "IOVA pfn {pfn:#x} already mapped"),
            PtError::NotMapped(pfn) => write!(f, "IOVA pfn {pfn:#x} not mapped"),
        }
    }
}

impl std::error::Error for PtError {}

/// The full walk path for one IOVA, used by the walker to refill caches.
#[derive(Debug, Clone, Copy)]
pub struct WalkPath {
    /// The PT-L2 page (what a PTcache-L1 entry points to).
    pub l2: PageRef,
    /// The PT-L3 page (PTcache-L2 entry target).
    pub l3: PageRef,
    /// The PT-L4 page (PTcache-L3 entry target).
    pub l4: PageRef,
    /// The final translation.
    pub pa: PhysAddr,
}

/// Walk outcome distinguishing page granularities.
#[derive(Debug, Clone, Copy)]
pub enum WalkResult {
    /// Ordinary 4 KB mapping with the full 4-level path.
    Page(WalkPath),
    /// 2 MB huge mapping terminating at PT-L3.
    Huge {
        /// The PT-L2 page traversed.
        l2: PageRef,
        /// The PT-L3 page holding the huge leaf.
        l3: PageRef,
        /// Physical base of the 2 MB region.
        pa_base: PhysAddr,
    },
}

/// Lifetime counters for the page table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtStats {
    /// Leaf mappings created.
    pub maps: u64,
    /// Leaf mappings removed.
    pub unmaps: u64,
    /// Page-table pages allocated.
    pub pages_allocated: u64,
    /// Page-table pages reclaimed.
    pub pages_reclaimed: u64,
}

/// The 4-level IO page table.
///
/// # Examples
///
/// ```
/// use fns_iommu::pagetable::IoPageTable;
/// use fns_iova::types::{Iova, IovaRange};
/// use fns_mem::addr::PhysAddr;
///
/// let mut pt = IoPageTable::new();
/// let iova = Iova::from_pfn(0xFFFF_0000);
/// pt.map(iova, PhysAddr::from_pfn(7)).unwrap();
/// assert_eq!(pt.lookup(iova), Some(PhysAddr::from_pfn(7)));
/// let out = pt.unmap_range(IovaRange::new(iova, 1)).unwrap();
/// assert_eq!(out.unmapped, 1);
/// assert!(out.reclaimed.is_empty(), "a 4 KB unmap never reclaims");
/// assert_eq!(pt.lookup(iova), None);
/// ```
#[derive(Debug, Clone)]
pub struct IoPageTable {
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Entries vectors stashed from reclaimed pages, reused by
    /// `alloc_page` so the map/unmap churn of chunk-granular modes stops
    /// hitting the allocator for every 4 KB page-table page.
    entries_pool: Vec<Vec<Option<PtEntry>>>,
    /// One-entry walk cache for `map`: the PT-L4 page the last map landed
    /// in, keyed by 2 MB region (`pfn / L4_SPAN_PFNS`). Drivers map
    /// descriptors as contiguous page runs, so nearly every map hits the
    /// same leaf page as its predecessor and skips the root walk. A
    /// generational `ref_state` check makes a hit exactly equivalent to a
    /// fresh walk: a live ref is still attached at the same tree position,
    /// because pages detach only when reclaimed (which bumps the
    /// generation). Derived state — reset and snapshots drop it.
    map_cache: Option<(u64, PageRef)>,
    /// Same cache for `clear_leaf` (unmap runs), kept separate from
    /// `map_cache` because churn interleaves unmaps of one descriptor with
    /// maps of another in a different region.
    unmap_cache: Option<(u64, PageRef)>,
    root: PageRef,
    stats: PtStats,
}

impl Default for IoPageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl IoPageTable {
    /// Creates an empty page table (root page pre-allocated).
    pub fn new() -> Self {
        let mut pt = Self {
            slots: Vec::new(),
            free: Vec::new(),
            entries_pool: Vec::new(),
            map_cache: None,
            unmap_cache: None,
            root: PageRef {
                idx: 0,
                generation: 0,
            },
            stats: PtStats::default(),
        };
        pt.root = pt.alloc_page(1);
        pt
    }

    /// Rewinds to the freshly-constructed state (just a root page, zeroed
    /// counters) while keeping every page's entries vector pooled for
    /// reuse — the arena hook for back-to-back simulation runs. The
    /// resulting table is behaviorally identical to `IoPageTable::new()`.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            if let Some(mut page) = slot.page.take() {
                page.entries.fill(None);
                self.entries_pool.push(page.entries);
            }
        }
        self.slots.clear();
        self.free.clear();
        self.map_cache = None;
        self.unmap_cache = None;
        self.stats = PtStats::default();
        self.root = PageRef {
            idx: 0,
            generation: 0,
        };
        self.root = self.alloc_page(1);
    }

    fn alloc_page(&mut self, level: u8) -> PageRef {
        self.stats.pages_allocated += 1;
        let page = match self.entries_pool.pop() {
            Some(entries) => PtPage::with_entries(level, entries),
            None => PtPage::new(level),
        };
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx];
            debug_assert!(slot.page.is_none());
            slot.page = Some(page);
            PageRef {
                idx: idx as u32,
                generation: slot.generation,
            }
        } else {
            self.slots.push(Slot {
                generation: 0,
                page: Some(page),
            });
            PageRef {
                idx: (self.slots.len() - 1) as u32,
                generation: 0,
            }
        }
    }

    fn free_page(&mut self, r: PageRef) {
        let slot = &mut self.slots[r.idx as usize];
        debug_assert_eq!(slot.generation, r.generation);
        // Only empty pages are reclaimed (`live == 0`, all entries `None`),
        // so the entries vector can be reused verbatim by `alloc_page`.
        if let Some(page) = slot.page.take() {
            debug_assert_eq!(page.live, 0, "reclaiming a non-empty PT page");
            self.entries_pool.push(page.entries);
        }
        slot.generation += 1;
        self.free.push(r.idx as usize);
        self.stats.pages_reclaimed += 1;
    }

    /// Serializes the page table *physically*: every slot (generation plus
    /// page contents), the free list, root ref, and counters travel
    /// verbatim, because cached [`PageRef`]s in the PTcaches index slots by
    /// position and generation — a logically rebuilt table would invalidate
    /// them. The `entries_pool` is deliberately dropped: pooled vectors are
    /// all-`None` and only avoid heap churn, so restoring without them is
    /// behaviorally identical.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.seq(self.slots.len());
        for slot in &self.slots {
            w.u32(slot.generation);
            w.opt(&slot.page, |w, page| {
                w.u8(page.level);
                w.u16(page.live);
                let populated = page.entries.iter().filter(|e| e.is_some()).count();
                w.seq(populated);
                for (i, e) in page.entries.iter().enumerate() {
                    if let Some(e) = e {
                        w.u32(i as u32);
                        match e {
                            PtEntry::Child(r) => {
                                w.u8(0);
                                w.u32(r.idx);
                                w.u32(r.generation);
                            }
                            PtEntry::Leaf(pa) => {
                                w.u8(1);
                                w.u64(pa.as_u64());
                            }
                            PtEntry::HugeLeaf(pa) => {
                                w.u8(2);
                                w.u64(pa.as_u64());
                            }
                        }
                    }
                }
            });
        }
        w.seq(self.free.len());
        for &idx in &self.free {
            w.usize(idx);
        }
        w.u32(self.root.idx);
        w.u32(self.root.generation);
        w.u64(self.stats.maps);
        w.u64(self.stats.unmaps);
        w.u64(self.stats.pages_allocated);
        w.u64(self.stats.pages_reclaimed);
    }

    /// Rebuilds a page table captured by [`IoPageTable::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        use fns_snap::SnapError;
        let n_slots = r.seq()?;
        let mut slots = Vec::with_capacity(n_slots.min(1 << 20));
        for _ in 0..n_slots {
            let generation = r.u32()?;
            let page = r.opt(|r| {
                let level = r.u8()?;
                let live = r.u16()?;
                let populated = r.seq()?;
                let mut entries = vec![None; ENTRIES_PER_PAGE];
                for _ in 0..populated {
                    let i = r.u32()? as usize;
                    if i >= ENTRIES_PER_PAGE {
                        return Err(SnapError::BadTag {
                            what: "pt entry index",
                            tag: i as u64,
                        });
                    }
                    let tag = r.u8()?;
                    entries[i] = Some(match tag {
                        0 => PtEntry::Child(PageRef {
                            idx: r.u32()?,
                            generation: r.u32()?,
                        }),
                        1 => PtEntry::Leaf(PhysAddr::new(r.u64()?)),
                        2 => PtEntry::HugeLeaf(PhysAddr::new(r.u64()?)),
                        t => {
                            return Err(SnapError::BadTag {
                                what: "pt entry",
                                tag: t as u64,
                            })
                        }
                    });
                }
                Ok(PtPage {
                    level,
                    entries,
                    live,
                })
            })?;
            slots.push(Slot { generation, page });
        }
        let n_free = r.seq()?;
        let mut free = Vec::with_capacity(n_free.min(1 << 20));
        for _ in 0..n_free {
            free.push(r.usize()?);
        }
        Ok(Self {
            slots,
            free,
            entries_pool: Vec::new(),
            map_cache: None,
            unmap_cache: None,
            root: PageRef {
                idx: r.u32()?,
                generation: r.u32()?,
            },
            stats: PtStats {
                maps: r.u64()?,
                unmaps: r.u64()?,
                pages_allocated: r.u64()?,
                pages_reclaimed: r.u64()?,
            },
        })
    }

    /// Checks whether a cached ref still points at a live page.
    pub fn ref_state(&self, r: PageRef) -> RefState {
        let slot = &self.slots[r.idx as usize];
        if slot.generation == r.generation && slot.page.is_some() {
            RefState::Live
        } else {
            RefState::Stale
        }
    }

    fn page(&self, r: PageRef) -> &PtPage {
        let slot = &self.slots[r.idx as usize];
        assert_eq!(slot.generation, r.generation, "stale page ref dereferenced");
        slot.page.as_ref().expect("stale page ref dereferenced")
    }

    fn page_mut(&mut self, r: PageRef) -> &mut PtPage {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(slot.generation, r.generation, "stale page ref dereferenced");
        slot.page.as_mut().expect("stale page ref dereferenced")
    }

    /// Maps `iova -> pa`, allocating intermediate pages as needed.
    pub fn map(&mut self, iova: Iova, pa: PhysAddr) -> Result<(), PtError> {
        let region = iova.pfn() / L4_SPAN_PFNS;
        if let Some((key, l4)) = self.map_cache {
            if key == region && self.ref_state(l4) == RefState::Live {
                return self.map_in_leaf(l4, iova, pa);
            }
        }
        let mut cur = self.root;
        for level in 1..=3u8 {
            let idx = iova.pt_index(level);
            let next = match self.page(cur).entries[idx] {
                Some(PtEntry::Child(c)) => c,
                Some(PtEntry::HugeLeaf(_)) => {
                    return Err(PtError::AlreadyMapped(iova.pfn()));
                }
                Some(PtEntry::Leaf(_)) => unreachable!("leaf entry at non-leaf level"),
                None => {
                    let child = self.alloc_page(level + 1);
                    let p = self.page_mut(cur);
                    p.entries[idx] = Some(PtEntry::Child(child));
                    p.live += 1;
                    child
                }
            };
            cur = next;
        }
        self.map_cache = Some((region, cur));
        self.map_in_leaf(cur, iova, pa)
    }

    /// Installs a leaf in a known-live PT-L4 page (the tail of `map`).
    fn map_in_leaf(&mut self, l4: PageRef, iova: Iova, pa: PhysAddr) -> Result<(), PtError> {
        let idx = iova.pt_index(4);
        let leaf = self.page_mut(l4);
        if leaf.entries[idx].is_some() {
            return Err(PtError::AlreadyMapped(iova.pfn()));
        }
        leaf.entries[idx] = Some(PtEntry::Leaf(pa));
        leaf.live += 1;
        self.stats.maps += 1;
        Ok(())
    }

    /// Software walk without caches: the ground-truth translation. Huge
    /// mappings resolve to the 4 KB page's address within the 2 MB region.
    pub fn lookup(&self, iova: Iova) -> Option<PhysAddr> {
        match self.walk(iova)? {
            WalkResult::Page(p) => Some(p.pa),
            WalkResult::Huge { pa_base, .. } => {
                Some(pa_base.add((iova.pfn() % L4_SPAN_PFNS) << 12))
            }
        }
    }

    /// Full walk returning every intermediate page, or `None` if the IOVA
    /// has no 4 KB mapping (use [`IoPageTable::walk`] when huge mappings may
    /// be present).
    pub fn walk_path(&self, iova: Iova) -> Option<WalkPath> {
        match self.walk(iova)? {
            WalkResult::Page(p) => Some(p),
            WalkResult::Huge { .. } => None,
        }
    }

    /// Full walk distinguishing 4 KB and 2 MB mappings.
    pub fn walk(&self, iova: Iova) -> Option<WalkResult> {
        let l2 = match self.page(self.root).entries[iova.pt_index(1)]? {
            PtEntry::Child(c) => c,
            _ => unreachable!("root holds children only"),
        };
        let l3 = match self.page(l2).entries[iova.pt_index(2)]? {
            PtEntry::Child(c) => c,
            _ => unreachable!("PT-L2 holds children only"),
        };
        let l4 = match self.page(l3).entries[iova.pt_index(3)]? {
            PtEntry::Child(c) => c,
            PtEntry::HugeLeaf(pa_base) => {
                return Some(WalkResult::Huge { l2, l3, pa_base });
            }
            PtEntry::Leaf(_) => unreachable!("PT-L3 holds children or huge leaves"),
        };
        let pa = match self.page(l4).entries[iova.pt_index(4)]? {
            PtEntry::Leaf(pa) => pa,
            _ => unreachable!("PT-L4 holds leaves only"),
        };
        Some(WalkResult::Page(WalkPath { l2, l3, l4, pa }))
    }

    /// Maps a 2 MB huge page: `iova` (2 MB aligned) to the 2 MB-aligned
    /// physical base `pa`.
    ///
    /// # Panics
    ///
    /// Panics if either address is not 2 MB aligned.
    pub fn map_huge(&mut self, iova: Iova, pa: PhysAddr) -> Result<(), PtError> {
        assert_eq!(iova.pfn() % L4_SPAN_PFNS, 0, "unaligned huge IOVA");
        assert_eq!(pa.pfn() % L4_SPAN_PFNS, 0, "unaligned huge frame");
        let mut cur = self.root;
        for level in 1..=2u8 {
            let idx = iova.pt_index(level);
            let next = match self.page(cur).entries[idx] {
                Some(PtEntry::Child(c)) => c,
                Some(_) => return Err(PtError::AlreadyMapped(iova.pfn())),
                None => {
                    let child = self.alloc_page(level + 1);
                    let p = self.page_mut(cur);
                    p.entries[idx] = Some(PtEntry::Child(child));
                    p.live += 1;
                    child
                }
            };
            cur = next;
        }
        let idx = iova.pt_index(3);
        let l3 = self.page_mut(cur);
        if l3.entries[idx].is_some() {
            return Err(PtError::AlreadyMapped(iova.pfn()));
        }
        l3.entries[idx] = Some(PtEntry::HugeLeaf(pa));
        l3.live += 1;
        self.stats.maps += 1;
        Ok(())
    }

    /// Collapses an *empty* PT-L4 directory covering the 2 MB region of
    /// `iova`, freeing it so a huge leaf can take its slot. Returns the
    /// reclaimed page (whose PTcache-L3 entry MUST be invalidated by the
    /// caller) or `None` if there is nothing to collapse — including when
    /// the directory still holds live 4 KB mappings, which must never be
    /// silently unmapped.
    pub fn collapse_empty_l4(&mut self, iova: Iova) -> Option<ReclaimedPage> {
        assert_eq!(iova.pfn() % L4_SPAN_PFNS, 0, "unaligned huge IOVA");
        let l3 = self.child_ref_at(iova, 3)?;
        let idx = iova.pt_index(3);
        let target = match self.page(l3).entries[idx] {
            Some(PtEntry::Child(c)) => c,
            _ => return None,
        };
        if self.page(target).live != 0 {
            // Live 4 KB mappings in the region: nothing to collapse; the
            // caller's map_huge will fail with AlreadyMapped.
            return None;
        }
        let p = self.page_mut(l3);
        p.entries[idx] = None;
        p.live -= 1;
        self.free_page(target);
        Some(ReclaimedPage {
            level: 4,
            region_key: iova.pfn() / L4_SPAN_PFNS,
        })
    }

    /// Unmaps a 2 MB huge mapping at `iova`.
    pub fn unmap_huge(&mut self, iova: Iova) -> Result<(), PtError> {
        assert_eq!(iova.pfn() % L4_SPAN_PFNS, 0, "unaligned huge IOVA");
        let l3 = self
            .child_ref_at(iova, 3)
            .ok_or(PtError::NotMapped(iova.pfn()))?;
        let idx = iova.pt_index(3);
        let page = self.page_mut(l3);
        match page.entries[idx] {
            Some(PtEntry::HugeLeaf(_)) => {
                page.entries[idx] = None;
                page.live -= 1;
                self.stats.unmaps += 1;
                Ok(())
            }
            _ => Err(PtError::NotMapped(iova.pfn())),
        }
    }

    /// Reads the entry for `iova` from a *cached* intermediate page ref, as
    /// the hardware walker does after a PTcache hit. Returns the next-level
    /// ref (levels 1–3) or the final translation (level 4), or `Err` if the
    /// cached ref is stale (a use-after-free walk), or `Ok(None)` if the
    /// entry is simply absent (translation fault).
    pub fn read_via(
        &self,
        cached: PageRef,
        iova: Iova,
    ) -> Result<Option<PtEntryView>, StaleRefError> {
        if self.ref_state(cached) == RefState::Stale {
            return Err(StaleRefError);
        }
        let page = self.page(cached);
        let idx = iova.pt_index(page.level);
        Ok(page.entries[idx].map(|e| match e {
            PtEntry::Child(c) => PtEntryView::Child(c),
            PtEntry::Leaf(pa) => PtEntryView::Leaf(pa),
            PtEntry::HugeLeaf(pa) => PtEntryView::HugeLeaf(pa),
        }))
    }

    /// Unmaps every page in `range` in **one operation**, applying the Linux
    /// reclamation rule: intermediate pages whose whole span is covered by
    /// this single call are reclaimed (Figure 5).
    ///
    /// Returns an error (leaving a partial unmap applied up to that point)
    /// if any page in the range was not mapped — in the kernel this is a
    /// driver bug.
    pub fn unmap_range(&mut self, range: IovaRange) -> Result<UnmapOutcome, PtError> {
        let mut out = UnmapOutcome::default();
        // Clear leaves.
        for iova in range.iter_pages() {
            self.clear_leaf(iova)?;
            out.unmapped += 1;
        }
        // Reclaim fully covered pages, bottom-up (L4, then L3, then L2).
        self.reclaim_level(range, 4, L4_SPAN_PFNS, &mut out);
        self.reclaim_level(range, 3, L3_SPAN_PFNS, &mut out);
        self.reclaim_level(range, 2, L2_SPAN_PFNS, &mut out);
        self.stats.unmaps += out.unmapped;
        Ok(out)
    }

    fn clear_leaf(&mut self, iova: Iova) -> Result<(), PtError> {
        let region = iova.pfn() / L4_SPAN_PFNS;
        let l4 = match self.unmap_cache {
            Some((key, l4)) if key == region && self.ref_state(l4) == RefState::Live => l4,
            _ => {
                let path = self.walk_path(iova).ok_or(PtError::NotMapped(iova.pfn()))?;
                self.unmap_cache = Some((region, path.l4));
                path.l4
            }
        };
        let idx = iova.pt_index(4);
        let leaf = self.page_mut(l4);
        match leaf.entries[idx] {
            Some(PtEntry::Leaf(_)) => {
                leaf.entries[idx] = None;
                leaf.live -= 1;
                Ok(())
            }
            _ => Err(PtError::NotMapped(iova.pfn())),
        }
    }

    /// Reclaims all pages of `level` whose full span is inside `range`.
    fn reclaim_level(&mut self, range: IovaRange, level: u8, span: u64, out: &mut UnmapOutcome) {
        let lo = range.pfn_lo();
        let hi = range.pfn_hi();
        // First fully contained span: round lo up to a span boundary.
        let first = lo.div_ceil(span);
        let mut region = first;
        while (region + 1) * span - 1 <= hi {
            let base_iova = Iova::from_pfn(region * span);
            if let Some(target) = self.child_ref_at(base_iova, level) {
                // Detach from parent and free.
                let parent = self
                    .child_ref_at(base_iova, level - 1)
                    .expect("child exists, so the parent path must too");
                let pidx = base_iova.pt_index(level - 1);
                let p = self.page_mut(parent);
                debug_assert!(matches!(p.entries[pidx], Some(PtEntry::Child(_))));
                p.entries[pidx] = None;
                p.live -= 1;
                self.free_page(target);
                out.reclaimed.push(ReclaimedPage {
                    level,
                    region_key: region,
                });
            }
            region += 1;
        }
    }

    /// Ref to the page of `level` covering `iova` (level 1 returns the
    /// root). `None` if not present.
    fn child_ref_at(&self, iova: Iova, level: u8) -> Option<PageRef> {
        let mut cur = self.root;
        for l in 1..level {
            match self.page(cur).entries[iova.pt_index(l)] {
                Some(PtEntry::Child(c)) => cur = c,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Number of live page-table pages (including the root).
    pub fn live_pages(&self) -> usize {
        self.slots.iter().filter(|s| s.page.is_some()).count()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PtStats {
        self.stats
    }

    /// Verifies structural invariants: live counts match populated entries
    /// and no child ref is stale. Test helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(page) = &slot.page else { continue };
            let live = page.entries.iter().filter(|e| e.is_some()).count();
            if live != page.live as usize {
                return Err(format!("slot {i}: live {} != counted {live}", page.live));
            }
            for e in page.entries.iter().flatten() {
                if let PtEntry::Child(c) = e {
                    if self.ref_state(*c) == RefState::Stale {
                        return Err(format!("slot {i}: dangling child ref"));
                    }
                    let child_level = self.page(*c).level;
                    if child_level != page.level + 1 {
                        return Err(format!(
                            "slot {i}: level {} child under level {}",
                            child_level, page.level
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Read-only view of a page-table entry returned by [`IoPageTable::read_via`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtEntryView {
    /// Pointer to the next-level page.
    Child(PageRef),
    /// Final physical translation.
    Leaf(PhysAddr),
    /// 2 MB huge-page translation (base of the 2 MB physical region).
    HugeLeaf(PhysAddr),
}

/// Error: a cached page ref points to a reclaimed page (use-after-free walk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleRefError;

impl std::fmt::Display for StaleRefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "walk through a reclaimed page-table page")
    }
}

impl std::error::Error for StaleRefError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn iova(pfn: u64) -> Iova {
        Iova::from_pfn(pfn)
    }

    fn pa(pfn: u64) -> PhysAddr {
        PhysAddr::from_pfn(pfn)
    }

    #[test]
    fn map_lookup_unmap() {
        let mut pt = IoPageTable::new();
        pt.map(iova(1000), pa(5)).unwrap();
        assert_eq!(pt.lookup(iova(1000)), Some(pa(5)));
        assert_eq!(pt.lookup(iova(1001)), None);
        let out = pt.unmap_range(IovaRange::new(iova(1000), 1)).unwrap();
        assert_eq!(out.unmapped, 1);
        assert_eq!(pt.lookup(iova(1000)), None);
        pt.check_invariants().unwrap();
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = IoPageTable::new();
        pt.map(iova(7), pa(1)).unwrap();
        assert_eq!(pt.map(iova(7), pa(2)), Err(PtError::AlreadyMapped(7)));
    }

    #[test]
    fn unmap_of_unmapped_rejected() {
        let mut pt = IoPageTable::new();
        assert!(matches!(
            pt.unmap_range(IovaRange::new(iova(7), 1)),
            Err(PtError::NotMapped(7))
        ));
    }

    #[test]
    fn intermediate_pages_shared() {
        let mut pt = IoPageTable::new();
        // Two IOVAs in the same 2MB region share all intermediate pages:
        // root + L2 + L3 + L4 = 4 pages total.
        pt.map(iova(0), pa(1)).unwrap();
        pt.map(iova(1), pa(2)).unwrap();
        assert_eq!(pt.live_pages(), 4);
        // A third IOVA in a different 2MB region adds one L4 page.
        pt.map(iova(512), pa(3)).unwrap();
        assert_eq!(pt.live_pages(), 5);
        pt.check_invariants().unwrap();
    }

    #[test]
    fn figure5b_large_unmap_reclaims_fully_covered_pages() {
        // Map 5 MB (1280 pages) starting at a 2 MB boundary, then unmap it
        // in a single call: the two fully covered PT-L4 pages are reclaimed,
        // the third (half-covered... here: covered 256 pages) is not.
        let mut pt = IoPageTable::new();
        let base = 512 * 10; // 2 MB aligned
        for i in 0..1280 {
            pt.map(iova(base + i), pa(i + 1)).unwrap();
        }
        let before = pt.live_pages();
        let out = pt.unmap_range(IovaRange::new(iova(base), 1280)).unwrap();
        let l4_reclaims: Vec<_> = out.reclaimed.iter().filter(|r| r.level == 4).collect();
        assert_eq!(l4_reclaims.len(), 2, "exactly the two fully covered pages");
        assert_eq!(pt.live_pages(), before - 2);
        pt.check_invariants().unwrap();
    }

    #[test]
    fn figure5d_descriptor_sized_unmaps_never_reclaim() {
        // Map 5 MB, unmap in 64-page (256 KB) calls: no call covers a full
        // 2 MB span, so nothing is ever reclaimed — the F&S common case.
        let mut pt = IoPageTable::new();
        let base = 512 * 20;
        for i in 0..1280 {
            pt.map(iova(base + i), pa(i + 1)).unwrap();
        }
        let before = pt.live_pages();
        for d in 0..20 {
            let out = pt
                .unmap_range(IovaRange::new(iova(base + d * 64), 64))
                .unwrap();
            assert!(out.reclaimed.is_empty(), "256 KB unmap reclaimed a page");
        }
        assert_eq!(pt.live_pages(), before, "empty pages stay allocated");
        pt.check_invariants().unwrap();
    }

    #[test]
    fn unaligned_2mb_unmap_reclaims_only_contained() {
        // Unmap exactly 512 pages but straddling a boundary: covers no full
        // span, so nothing is reclaimed.
        let mut pt = IoPageTable::new();
        let base = 512 * 4 + 256;
        for i in 0..512 {
            pt.map(iova(base + i), pa(i + 1)).unwrap();
        }
        let out = pt.unmap_range(IovaRange::new(iova(base), 512)).unwrap();
        assert!(out.reclaimed.is_empty());
    }

    #[test]
    fn reclaimed_ref_detected_as_stale() {
        let mut pt = IoPageTable::new();
        let base = 512 * 8;
        for i in 0..512 {
            pt.map(iova(base + i), pa(i + 1)).unwrap();
        }
        let l4 = pt.walk_path(iova(base)).unwrap().l4;
        assert_eq!(pt.ref_state(l4), RefState::Live);
        let out = pt.unmap_range(IovaRange::new(iova(base), 512)).unwrap();
        assert_eq!(out.reclaimed.len(), 1);
        assert_eq!(pt.ref_state(l4), RefState::Stale);
        assert_eq!(pt.read_via(l4, iova(base)), Err(StaleRefError));
    }

    #[test]
    fn read_via_live_ref() {
        let mut pt = IoPageTable::new();
        pt.map(iova(42), pa(9)).unwrap();
        let p = pt.walk_path(iova(42)).unwrap();
        assert_eq!(
            pt.read_via(p.l4, iova(42)),
            Ok(Some(PtEntryView::Leaf(pa(9))))
        );
        assert_eq!(pt.read_via(p.l4, iova(43)), Ok(None));
        assert_eq!(
            pt.read_via(p.l3, iova(42)),
            Ok(Some(PtEntryView::Child(p.l4)))
        );
    }

    #[test]
    fn arena_slot_reuse_bumps_generation() {
        let mut pt = IoPageTable::new();
        let base = 512 * 30;
        for i in 0..512 {
            pt.map(iova(base + i), pa(i + 1)).unwrap();
        }
        let old = pt.walk_path(iova(base)).unwrap().l4;
        pt.unmap_range(IovaRange::new(iova(base), 512)).unwrap();
        // Remap the same region: the new L4 page may reuse the arena slot
        // but must carry a different generation.
        pt.map(iova(base), pa(77)).unwrap();
        let new = pt.walk_path(iova(base)).unwrap().l4;
        assert_ne!(old, new);
        assert_eq!(pt.ref_state(old), RefState::Stale);
        assert_eq!(pt.ref_state(new), RefState::Live);
    }

    #[test]
    fn gigabyte_unmap_reclaims_l3() {
        // Map an aligned 1 GB span fully, then unmap the whole GB at once:
        // all 512 L4 pages and the covering L3 page are reclaimed.
        let mut pt = IoPageTable::new();
        let base = L3_SPAN_PFNS * 3; // 1 GB aligned
        for i in 0..L3_SPAN_PFNS {
            pt.map(iova(base + i), pa(i + 1)).unwrap();
        }
        let out = pt
            .unmap_range(IovaRange::new(iova(base), L3_SPAN_PFNS))
            .unwrap();
        let l4s = out.reclaimed.iter().filter(|r| r.level == 4).count();
        let l3s = out.reclaimed.iter().filter(|r| r.level == 3).count();
        assert_eq!(l4s, 512);
        assert_eq!(l3s, 1);
        pt.check_invariants().unwrap();
    }

    #[test]
    fn stats_track_operations() {
        let mut pt = IoPageTable::new();
        pt.map(iova(1), pa(1)).unwrap();
        pt.map(iova(2), pa(2)).unwrap();
        pt.unmap_range(IovaRange::new(iova(1), 2)).unwrap();
        let s = pt.stats();
        assert_eq!(s.maps, 2);
        assert_eq!(s.unmaps, 2);
        assert_eq!(s.pages_allocated, 4); // root + L2 + L3 + L4
        assert_eq!(s.pages_reclaimed, 0);
    }
}
