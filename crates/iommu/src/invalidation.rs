//! The IOMMU invalidation queue and its CPU cost model.
//!
//! Strict-mode unmap is expensive on the CPU side because the initiating
//! core must submit invalidation descriptors to the hardware queue and
//! *wait* for their completion (§3 of the paper, citing [39, 42]). Stock
//! Linux needs one queue entry per 4 KB IOVA; F&S's contiguous allocation
//! lets it cover a whole descriptor with a single entry (Figure 6),
//! amortizing the synchronization cost 64x.

use fns_iova::types::IovaRange;
use fns_sim::time::Nanos;

use crate::iommu::{InvalidationScope, Iommu};

/// One invalidation descriptor submitted by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidationRequest {
    /// IOVA range whose translations must be invalidated.
    pub range: IovaRange,
    /// Whether the page-structure caches are preserved (F&S) or wiped
    /// (stock Linux).
    pub scope: InvalidationScope,
    /// Protection domain the descriptor names: only that domain's tagged
    /// IOTLB/PTcache entries are wiped (single-device setups always say 0).
    pub domain: u16,
}

/// Cost model of the hardware invalidation queue.
///
/// A batch submitted together pays one synchronization wait plus a
/// per-descriptor processing cost; the submitting CPU core is busy for the
/// whole duration (Linux `queue_iova`/`iommu_flush_iotlb` with strict mode
/// waits inline).
#[derive(Debug, Clone, Copy)]
pub struct InvalidationQueue {
    /// Fixed cost of submitting a batch and waiting for the completion
    /// marker (wait descriptor round trip).
    pub sync_overhead_ns: Nanos,
    /// Processing cost per invalidation descriptor.
    pub per_entry_ns: Nanos,
}

impl Default for InvalidationQueue {
    fn default() -> Self {
        // Calibrated so that a stock-Linux 64-entry descriptor unmap costs
        // ~7 us of CPU per descriptor (~110 ns/page) and an F&S single-entry
        // batch ~0.6 us (~10 ns/page), matching the relative CPU overheads
        // reported in \[39\]/\[42\].
        Self {
            sync_overhead_ns: 300,
            per_entry_ns: 50,
        }
    }
}

impl InvalidationQueue {
    /// Executes a batch of invalidation requests against the IOMMU and
    /// returns the CPU time the submitting core spends busy-waiting.
    ///
    /// An empty batch costs nothing.
    pub fn execute(&self, iommu: &mut Iommu, batch: &[InvalidationRequest]) -> Nanos {
        if batch.is_empty() {
            return 0;
        }
        for req in batch {
            iommu.invalidate_range_in(req.domain, req.range, req.scope);
        }
        iommu.note_queue_entries(batch.len() as u64);
        self.sync_overhead_ns + self.per_entry_ns * batch.len() as Nanos
    }

    /// CPU time for a batch of `n` entries without executing it (used by
    /// analytical models and tests).
    pub fn cost_ns(&self, n: usize) -> Nanos {
        if n == 0 {
            0
        } else {
            self.sync_overhead_ns + self.per_entry_ns * n as Nanos
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IommuConfig;
    use fns_iova::types::Iova;
    use fns_mem::addr::PhysAddr;

    #[test]
    fn batching_amortizes_sync_cost() {
        let q = InvalidationQueue::default();
        let linux_cost = q.cost_ns(64); // one entry per page
        let fns_cost = q.cost_ns(1); // one entry per descriptor
        assert!(linux_cost >= 9 * fns_cost, "{linux_cost} vs {fns_cost}");
        assert_eq!(q.cost_ns(0), 0);
    }

    #[test]
    fn execute_applies_all_requests() {
        let mut mmu = Iommu::new(IommuConfig::default());
        let r1 = IovaRange::new(Iova::from_pfn(10), 1);
        let r2 = IovaRange::new(Iova::from_pfn(20), 1);
        for r in [r1, r2] {
            mmu.map(r.base(), PhysAddr::from_pfn(r.pfn_lo())).unwrap();
            mmu.translate(r.base());
        }
        mmu.unmap_range(r1).unwrap();
        mmu.unmap_range(r2).unwrap();
        let q = InvalidationQueue::default();
        let cost = q.execute(
            &mut mmu,
            &[
                InvalidationRequest {
                    range: r1,
                    scope: InvalidationScope::IotlbAndFullPtcache,
                    domain: 0,
                },
                InvalidationRequest {
                    range: r2,
                    scope: InvalidationScope::IotlbAndFullPtcache,
                    domain: 0,
                },
            ],
        );
        assert_eq!(cost, 300 + 100);
        assert_eq!(mmu.stats().invalidation_queue_entries, 2);
        assert_eq!(mmu.stats().iotlb_invalidations, 2);
        use crate::iommu::Translation;
        assert!(matches!(
            mmu.translate(r1.base()),
            Translation::Fault { .. }
        ));
    }

    #[test]
    fn empty_batch_is_free() {
        let mut mmu = Iommu::new(IommuConfig::default());
        let q = InvalidationQueue::default();
        assert_eq!(q.execute(&mut mmu, &[]), 0);
        assert_eq!(mmu.stats().invalidation_queue_entries, 0);
    }
}
