//! The IOTLB structure: fully associative or set-associative.
//!
//! Real IOTLB organizations are not public; measurements in the literature
//! suggest set-associative arrays indexed by low IOVA bits, which means a
//! hot working set whose addresses alias to one set suffers conflict misses
//! a fully associative model would hide. Both organizations are provided;
//! experiments default to fully associative (the conservative choice for
//! reproducing the paper) and the `sweeps` harness can flip it.

use fns_mem::addr::PhysAddr;

use crate::lru64::Lru64;
use crate::pagetable::PageRef;

/// One 4 KB IOTLB entry: the cached translation plus a generational
/// reference to the PT-L4 page the walker read it from. Storing the ref
/// alongside the payload (a struct-of-references layout mirroring how the
/// PTcaches key pages) lets the safety monitor check "is this hit stale?"
/// with a single generation check and one leaf-slot read instead of a full
/// 4-level root walk per hit — the dominant cost of `verify_safety` mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The translated physical address.
    pub pa: PhysAddr,
    /// The PT-L4 page the translation was read from.
    pub l4: PageRef,
}

/// A huge-page (2 MB) IOTLB entry: the physical base plus the PT-L3 page
/// holding the huge leaf, for the same one-read staleness check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeTlbEntry {
    /// Physical base of the 2 MB region.
    pub base: PhysAddr,
    /// The PT-L3 page the huge leaf was read from.
    pub l3: PageRef,
}

/// An IOTLB holding 4 KB translations (pfn -> [`TlbEntry`]).
///
/// # Examples
///
/// ```
/// use fns_iommu::iotlb::{Iotlb, TlbEntry};
/// use fns_iommu::pagetable::{IoPageTable, WalkResult};
/// use fns_iova::types::Iova;
/// use fns_mem::addr::PhysAddr;
///
/// // Entries carry the PT-L4 ref the walker saw; build them from a walk.
/// let mut pt = IoPageTable::new();
/// let entry = |pt: &mut IoPageTable, pfn: u64| {
///     pt.map(Iova::from_pfn(pfn), PhysAddr::from_pfn(10 + pfn)).unwrap();
///     match pt.walk(Iova::from_pfn(pfn)).unwrap() {
///         WalkResult::Page(p) => TlbEntry { pa: p.pa, l4: p.l4 },
///         WalkResult::Huge { .. } => unreachable!(),
///     }
/// };
///
/// // 8 entries, 2-way set associative = 4 sets indexed by pfn % 4.
/// let mut tlb = Iotlb::new(8, Some(2));
/// let e0 = entry(&mut pt, 0);
/// tlb.insert(0, e0);
/// tlb.insert(4, entry(&mut pt, 4)); // same set as pfn 0
/// tlb.insert(8, entry(&mut pt, 8)); // evicts pfn 0 (conflict)
/// assert!(tlb.get(0).is_none());
/// assert!(tlb.get(4).is_some());
/// ```
#[derive(Debug, Clone)]
pub enum Iotlb {
    /// One LRU array over all entries.
    FullAssoc(Lru64<TlbEntry>),
    /// `sets.len()` independent LRU arrays of `ways` entries, indexed by
    /// `pfn % sets.len()`.
    SetAssoc {
        /// The per-set LRU arrays.
        sets: Vec<Lru64<TlbEntry>>,
    },
}

impl Iotlb {
    /// Creates an IOTLB of `entries` total entries; `assoc = Some(ways)`
    /// selects a set-associative organization.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, or if `ways` is zero or does not divide
    /// `entries`.
    pub fn new(entries: usize, assoc: Option<usize>) -> Self {
        match assoc {
            None => Iotlb::FullAssoc(Lru64::new(entries)),
            Some(ways) => {
                assert!(ways > 0, "zero-way IOTLB");
                assert!(
                    entries.is_multiple_of(ways),
                    "ways {ways} must divide entries {entries}"
                );
                let n_sets = entries / ways;
                Iotlb::SetAssoc {
                    sets: (0..n_sets).map(|_| Lru64::new(ways)).collect(),
                }
            }
        }
    }

    fn set_for(sets: &[Lru64<TlbEntry>], pfn: u64) -> usize {
        (pfn % sets.len() as u64) as usize
    }

    /// Looks up a translation, refreshing recency on hit.
    pub fn get(&mut self, pfn: u64) -> Option<TlbEntry> {
        match self {
            Iotlb::FullAssoc(c) => c.get(pfn),
            Iotlb::SetAssoc { sets } => {
                let s = Self::set_for(sets, pfn);
                sets[s].get(pfn)
            }
        }
    }

    /// Looks up a translation without touching recency state. This is the
    /// audit tap: the safety oracle may inspect the IOTLB between
    /// simulated accesses without perturbing LRU order (which would change
    /// eviction behaviour and break audit-on/audit-off determinism).
    pub fn peek(&self, pfn: u64) -> Option<TlbEntry> {
        match self {
            Iotlb::FullAssoc(c) => c.peek(pfn),
            Iotlb::SetAssoc { sets } => {
                let s = Self::set_for(sets, pfn);
                sets[s].peek(pfn)
            }
        }
    }

    /// Whether a translation is cached, without touching recency state.
    pub fn contains(&self, pfn: u64) -> bool {
        self.peek(pfn).is_some()
    }

    /// Inserts a translation, evicting within the (set-)LRU policy.
    pub fn insert(&mut self, pfn: u64, entry: TlbEntry) {
        match self {
            Iotlb::FullAssoc(c) => {
                c.insert(pfn, entry);
            }
            Iotlb::SetAssoc { sets } => {
                let s = Self::set_for(sets, pfn);
                sets[s].insert(pfn, entry);
            }
        }
    }

    /// Removes (invalidates) a translation.
    pub fn remove(&mut self, pfn: u64) -> Option<TlbEntry> {
        match self {
            Iotlb::FullAssoc(c) => c.remove(pfn),
            Iotlb::SetAssoc { sets } => {
                let s = Self::set_for(sets, pfn);
                sets[s].remove(pfn)
            }
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        match self {
            Iotlb::FullAssoc(c) => c.len(),
            Iotlb::SetAssoc { sets } => sets.iter().map(Lru64::len).sum(),
        }
    }

    /// Returns `true` if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Invalidates everything.
    pub fn clear(&mut self) {
        match self {
            Iotlb::FullAssoc(c) => c.clear(),
            Iotlb::SetAssoc { sets } => sets.iter_mut().for_each(Lru64::clear),
        }
    }

    /// Serializes the IOTLB (organization tag plus each LRU array's logical
    /// content) for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        let entry = |w: &mut fns_snap::SnapWriter, v: &TlbEntry| {
            w.u64(v.pa.as_u64());
            let (idx, generation) = v.l4.parts();
            w.u32(idx);
            w.u32(generation);
        };
        match self {
            Iotlb::FullAssoc(c) => {
                w.u8(0);
                c.snap_with(w, entry);
            }
            Iotlb::SetAssoc { sets } => {
                w.u8(1);
                w.seq(sets.len());
                for s in sets {
                    s.snap_with(w, entry);
                }
            }
        }
    }

    /// Rebuilds an IOTLB captured by [`Iotlb::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let entry = |r: &mut fns_snap::SnapReader| {
            let pa = PhysAddr::new(r.u64()?);
            let idx = r.u32()?;
            let generation = r.u32()?;
            Ok(TlbEntry {
                pa,
                l4: PageRef::from_parts(idx, generation),
            })
        };
        match r.u8()? {
            0 => Ok(Iotlb::FullAssoc(Lru64::unsnap_with(r, entry)?)),
            1 => {
                let n = r.seq()?;
                let mut sets = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    sets.push(Lru64::unsnap_with(r, entry)?);
                }
                Ok(Iotlb::SetAssoc { sets })
            }
            t => Err(fns_snap::SnapError::BadTag {
                what: "iotlb organization",
                tag: t as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(v: u64) -> TlbEntry {
        TlbEntry {
            pa: PhysAddr::from_pfn(v),
            l4: PageRef::from_parts(0, 0),
        }
    }

    #[test]
    fn full_assoc_uses_global_lru() {
        let mut t = Iotlb::new(2, None);
        t.insert(0, pa(1));
        t.insert(4, pa(2));
        t.get(0);
        t.insert(8, pa(3)); // evicts pfn 4 (LRU), not pfn 0
        assert!(t.get(0).is_some());
        assert!(t.get(4).is_none());
    }

    #[test]
    fn set_assoc_conflicts_within_a_set() {
        // 4 entries, 2 ways = 2 sets. Even pfns -> set 0, odd -> set 1.
        let mut t = Iotlb::new(4, Some(2));
        t.insert(0, pa(1));
        t.insert(2, pa(2));
        t.insert(4, pa(3)); // third even pfn: conflict-evicts pfn 0
        assert!(t.get(0).is_none());
        assert!(t.get(2).is_some());
        assert!(t.get(4).is_some());
        // The odd set is untouched.
        t.insert(1, pa(9));
        assert!(t.get(1).is_some());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_and_clear() {
        let mut t = Iotlb::new(4, Some(2));
        t.insert(0, pa(1));
        t.insert(1, pa(2));
        assert_eq!(t.remove(0), Some(pa(1)));
        assert_eq!(t.remove(0), None);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn conflict_misses_exceed_capacity_misses() {
        // A strided working set that fits in total capacity but aliases to
        // one set: the set-associative array thrashes where the fully
        // associative one would not.
        let mut full = Iotlb::new(16, None);
        let mut setassoc = Iotlb::new(16, Some(2)); // 8 sets
        let stride = 8u64; // all pfns alias to set 0
        let mut full_misses = 0;
        let mut set_misses = 0;
        for round in 0..10 {
            for i in 0..4u64 {
                let pfn = i * stride;
                if full.get(pfn).is_none() {
                    full_misses += 1;
                    full.insert(pfn, pa(round));
                }
                if setassoc.get(pfn).is_none() {
                    set_misses += 1;
                    setassoc.insert(pfn, pa(round));
                }
            }
        }
        assert_eq!(full_misses, 4, "working set fits fully associative");
        assert!(set_misses > 20, "aliased set thrashes: {set_misses}");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn ways_must_divide_entries() {
        Iotlb::new(10, Some(4));
    }
}
