//! IOMMU performance counters (the simulation's stand-in for Intel PCM).
//!
//! The paper measures IOTLB and PTcache-L1/L2/L3 misses per page of data
//! with PCM hardware counters; these counters expose the same quantities.
//! The conditional-miss accounting matches the paper's model (§2.2): a
//! PTcache-L`i` miss is counted only when every deeper cache also missed,
//! so `memory reads = iotlb_misses + l3_misses + l2_misses + l1_misses`.

/// Counter set for one IOMMU instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IommuStats {
    /// Address translations performed.
    pub translations: u64,
    /// IOTLB hits.
    pub iotlb_hits: u64,
    /// IOTLB misses (each triggers a walk).
    pub iotlb_misses: u64,
    /// Walks where PTcache-L3 missed (1 extra memory read).
    pub ptcache_l3_misses: u64,
    /// Walks where PTcache-L3 *and* PTcache-L2 missed (another extra read).
    pub ptcache_l2_misses: u64,
    /// Walks where all three PTcaches missed (full 4-read walk).
    pub ptcache_l1_misses: u64,
    /// Total memory reads performed by the page-table walker.
    pub memory_reads: u64,
    /// Translation faults (no mapping and no stale entry).
    pub faults: u64,
    /// IOTLB hits on IOVAs that are no longer mapped — the deferred-mode
    /// safety hole. Always zero in strict modes.
    pub stale_iotlb_hits: u64,
    /// Walks that dereferenced a PTcache entry pointing at a reclaimed
    /// page-table page (use-after-free walk). Always zero when the preserve
    /// policy invalidates on reclamation, as F&S does.
    pub stale_ptcache_walks: u64,
    /// Individual IOTLB entry invalidations executed.
    pub iotlb_invalidations: u64,
    /// PTcache entries wiped by invalidations.
    pub ptcache_invalidations: u64,
    /// Invalidation-queue entries processed.
    pub invalidation_queue_entries: u64,
}

/// Per-protection-domain slice of the translation counters. Multi-device
/// topologies key one of these per domain so tenant-level pressure (and
/// tenant-level stale hits — the isolation signal) stays attributable
/// after the shared-unit counters aggregate everything together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Address translations issued by this domain's device(s).
    pub translations: u64,
    /// IOTLB hits (4 KB or huge) on this domain's tagged entries.
    pub iotlb_hits: u64,
    /// Stale IOTLB hits charged to this domain — in a correctly scoped
    /// system a domain's staleness is its own; a nonzero count here paired
    /// with a `CrossDomainIsolation` violation means the staleness crossed
    /// a tenant boundary.
    pub stale_iotlb_hits: u64,
    /// Translation faults taken by this domain's device(s).
    pub faults: u64,
}

impl DomainStats {
    /// Difference of two snapshots (`self` after, `earlier` before).
    pub fn delta(&self, earlier: &DomainStats) -> DomainStats {
        DomainStats {
            translations: self.translations - earlier.translations,
            iotlb_hits: self.iotlb_hits - earlier.iotlb_hits,
            stale_iotlb_hits: self.stale_iotlb_hits - earlier.stale_iotlb_hits,
            faults: self.faults - earlier.faults,
        }
    }

    /// Accumulates another counter set into this one (shard merge).
    pub fn absorb(&mut self, other: &DomainStats) {
        self.translations += other.translations;
        self.iotlb_hits += other.iotlb_hits;
        self.stale_iotlb_hits += other.stale_iotlb_hits;
        self.faults += other.faults;
    }

    /// Serializes the counters in declaration order for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.translations);
        w.u64(self.iotlb_hits);
        w.u64(self.stale_iotlb_hits);
        w.u64(self.faults);
    }

    /// Rebuilds counters captured by [`DomainStats::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        Ok(Self {
            translations: r.u64()?,
            iotlb_hits: r.u64()?,
            stale_iotlb_hits: r.u64()?,
            faults: r.u64()?,
        })
    }
}

impl IommuStats {
    /// Average memory reads per translation.
    pub fn reads_per_translation(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.memory_reads as f64 / self.translations as f64
        }
    }

    /// Difference of two snapshots (`self` after, `earlier` before).
    pub fn delta(&self, earlier: &IommuStats) -> IommuStats {
        IommuStats {
            translations: self.translations - earlier.translations,
            iotlb_hits: self.iotlb_hits - earlier.iotlb_hits,
            iotlb_misses: self.iotlb_misses - earlier.iotlb_misses,
            ptcache_l3_misses: self.ptcache_l3_misses - earlier.ptcache_l3_misses,
            ptcache_l2_misses: self.ptcache_l2_misses - earlier.ptcache_l2_misses,
            ptcache_l1_misses: self.ptcache_l1_misses - earlier.ptcache_l1_misses,
            memory_reads: self.memory_reads - earlier.memory_reads,
            faults: self.faults - earlier.faults,
            stale_iotlb_hits: self.stale_iotlb_hits - earlier.stale_iotlb_hits,
            stale_ptcache_walks: self.stale_ptcache_walks - earlier.stale_ptcache_walks,
            iotlb_invalidations: self.iotlb_invalidations - earlier.iotlb_invalidations,
            ptcache_invalidations: self.ptcache_invalidations - earlier.ptcache_invalidations,
            invalidation_queue_entries: self.invalidation_queue_entries
                - earlier.invalidation_queue_entries,
        }
    }

    /// Accumulates another counter set into this one (shard merge).
    pub fn absorb(&mut self, other: &IommuStats) {
        self.translations += other.translations;
        self.iotlb_hits += other.iotlb_hits;
        self.iotlb_misses += other.iotlb_misses;
        self.ptcache_l3_misses += other.ptcache_l3_misses;
        self.ptcache_l2_misses += other.ptcache_l2_misses;
        self.ptcache_l1_misses += other.ptcache_l1_misses;
        self.memory_reads += other.memory_reads;
        self.faults += other.faults;
        self.stale_iotlb_hits += other.stale_iotlb_hits;
        self.stale_ptcache_walks += other.stale_ptcache_walks;
        self.iotlb_invalidations += other.iotlb_invalidations;
        self.ptcache_invalidations += other.ptcache_invalidations;
        self.invalidation_queue_entries += other.invalidation_queue_entries;
    }

    /// Serializes the counters in declaration order for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.translations);
        w.u64(self.iotlb_hits);
        w.u64(self.iotlb_misses);
        w.u64(self.ptcache_l3_misses);
        w.u64(self.ptcache_l2_misses);
        w.u64(self.ptcache_l1_misses);
        w.u64(self.memory_reads);
        w.u64(self.faults);
        w.u64(self.stale_iotlb_hits);
        w.u64(self.stale_ptcache_walks);
        w.u64(self.iotlb_invalidations);
        w.u64(self.ptcache_invalidations);
        w.u64(self.invalidation_queue_entries);
    }

    /// Rebuilds counters captured by [`IommuStats::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        Ok(Self {
            translations: r.u64()?,
            iotlb_hits: r.u64()?,
            iotlb_misses: r.u64()?,
            ptcache_l3_misses: r.u64()?,
            ptcache_l2_misses: r.u64()?,
            ptcache_l1_misses: r.u64()?,
            memory_reads: r.u64()?,
            faults: r.u64()?,
            stale_iotlb_hits: r.u64()?,
            stale_ptcache_walks: r.u64()?,
            iotlb_invalidations: r.u64()?,
            ptcache_invalidations: r.u64()?,
            invalidation_queue_entries: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_per_translation_handles_empty() {
        assert_eq!(IommuStats::default().reads_per_translation(), 0.0);
    }

    #[test]
    fn delta_subtracts_fields() {
        let a = IommuStats {
            translations: 10,
            memory_reads: 40,
            ..Default::default()
        };
        let b = IommuStats {
            translations: 25,
            memory_reads: 90,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.translations, 15);
        assert_eq!(d.memory_reads, 50);
        assert!((d.reads_per_translation() - 50.0 / 15.0).abs() < 1e-12);
    }
}
