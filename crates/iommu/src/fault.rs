//! Typed IOMMU faults and the fault-aware invalidation path.
//!
//! Real IOMMUs surface abnormal conditions as recoverable events — DMAR
//! translation faults for accesses to unmapped IOVAs, invalidation-queue
//! completion timeouts (`VT-d` ITE/IQE errors) for stuck queues. This
//! module models both: [`IommuFault`] is the typed error the driver layers
//! propagate, and [`InvalidationQueue::execute_with`] runs a batch under a
//! [`FaultPlane`] with the paper-faithful recovery ladder:
//!
//! 1. bounded retry with exponential backoff while the queue stalls,
//! 2. graceful degradation from a batched range invalidation to per-page
//!    invalidation when the batch keeps timing out,
//!
//! so the invalidation is *always* applied before control returns — the
//! strict safety property never depends on the happy path.

use fns_faults::{FaultKind, FaultPlane};
use fns_iova::types::{Iova, IovaRange};
use fns_sim::time::Nanos;

use crate::invalidation::{InvalidationQueue, InvalidationRequest};
use crate::iommu::Iommu;
use crate::pagetable::PtError;

/// Typed faults raised by the IOMMU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IommuFault {
    /// A DMA access faulted: the IOVA has no live translation. `reads` is
    /// the number of page-table reads spent discovering that.
    Translation { iova: Iova, reads: u32 },
    /// The invalidation queue failed to complete within the retry budget.
    InvalidationTimeout { retries: u32 },
    /// A page-table structural error (double map, unmap of unmapped).
    Pt(PtError),
}

impl std::fmt::Display for IommuFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IommuFault::Translation { iova, reads } => {
                write!(f, "DMA translation fault at {iova} after {reads} reads")
            }
            IommuFault::InvalidationTimeout { retries } => {
                write!(f, "invalidation queue timeout after {retries} retries")
            }
            IommuFault::Pt(e) => write!(f, "page table error: {e}"),
        }
    }
}

impl std::error::Error for IommuFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IommuFault::Pt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PtError> for IommuFault {
    fn from(e: PtError) -> Self {
        IommuFault::Pt(e)
    }
}

/// Maximum backoff retries before a stalled batch degrades to per-page
/// replay.
pub const MAX_INVALIDATION_RETRIES: u32 = 4;

/// What a fault-aware batch execution did, beyond spending CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvalidationReport {
    /// CPU nanoseconds the submitting core spent (including backoff waits
    /// and any per-page replay).
    pub cost_ns: Nanos,
    /// Backoff retries performed.
    pub retries: u32,
    /// Whether the batch was degraded to per-page invalidation.
    pub per_page_fallback: bool,
}

impl InvalidationQueue {
    /// Executes a batch under fault injection.
    ///
    /// The plane may stall the queue ([`FaultKind::InvalidationTimeout`]);
    /// the submitting core then retries with exponential backoff (each
    /// attempt waits `sync_overhead_ns << attempt`). If the stall persists
    /// past [`MAX_INVALIDATION_RETRIES`] the batch is degraded to
    /// single-page requests and replayed — smaller requests always land in
    /// this model, mirroring drivers that fall back to page-granular
    /// flushing when a ranged flush errors out.
    ///
    /// The requested invalidations are applied in *every* outcome: safety
    /// never rides on the absence of faults.
    pub fn execute_with(
        &self,
        iommu: &mut Iommu,
        batch: &[InvalidationRequest],
        faults: &mut FaultPlane,
    ) -> InvalidationReport {
        if batch.is_empty() {
            return InvalidationReport::default();
        }
        let mut report = InvalidationReport::default();
        if faults.roll(FaultKind::InvalidationTimeout) {
            // Stalled: back off and retry until the stall clears or the
            // retry budget runs out.
            loop {
                report.retries += 1;
                report.cost_ns += self.sync_overhead_ns << report.retries;
                if report.retries >= MAX_INVALIDATION_RETRIES
                    || !faults.roll(FaultKind::InvalidationTimeout)
                {
                    break;
                }
            }
            faults.note_invalidation_retries(report.retries as u64);
            if report.retries >= MAX_INVALIDATION_RETRIES {
                // Degrade: replay the batch page by page.
                report.per_page_fallback = true;
                faults.note_batch_fallback();
                let per_page: Vec<InvalidationRequest> = batch
                    .iter()
                    .flat_map(|req| {
                        req.range.iter_pages().map(|p| InvalidationRequest {
                            range: IovaRange::new(p, 1),
                            scope: req.scope,
                            domain: req.domain,
                        })
                    })
                    .collect();
                report.cost_ns += self.execute(iommu, &per_page);
                faults.note_recovery(FaultKind::InvalidationTimeout);
                return report;
            }
            faults.note_recovery(FaultKind::InvalidationTimeout);
        }
        report.cost_ns += self.execute(iommu, batch);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IommuConfig;
    use crate::iommu::{InvalidationScope, Translation};
    use fns_faults::FaultConfig;
    use fns_mem::addr::PhysAddr;
    use fns_sim::rng::SimRng;

    fn mapped_iommu(base: u64, pages: u64) -> (Iommu, IovaRange) {
        let mut m = Iommu::new(IommuConfig::default());
        let r = IovaRange::new(Iova::from_pfn(base), pages);
        for p in r.iter_pages() {
            m.map(p, PhysAddr::from_pfn(p.pfn())).unwrap();
            m.translate(p);
        }
        (m, r)
    }

    #[test]
    fn no_fault_matches_plain_execute() {
        let (mut m, r) = mapped_iommu(0x100, 4);
        m.unmap_range(r).unwrap();
        let q = InvalidationQueue::default();
        let batch = [InvalidationRequest {
            range: r,
            scope: InvalidationScope::IotlbOnly,
            domain: 0,
        }];
        let mut plane = FaultPlane::disabled();
        let rep = q.execute_with(&mut m, &batch, &mut plane);
        assert_eq!(rep.cost_ns, q.cost_ns(1));
        assert_eq!(rep.retries, 0);
        assert!(!rep.per_page_fallback);
        assert!(matches!(m.translate(r.base()), Translation::Fault { .. }));
    }

    #[test]
    fn transient_stall_retries_then_applies() {
        // Inject exactly one stall (every 1st visit), so the first retry
        // clears it.
        let cfg = FaultConfig::disabled().with_every(FaultKind::InvalidationTimeout, 2);
        let mut plane = FaultPlane::new(cfg, SimRng::seed(3));
        // Visit 1 misses, visit 2 fires: burn one visit first.
        assert!(!plane.roll(FaultKind::InvalidationTimeout));

        let (mut m, r) = mapped_iommu(0x200, 4);
        m.unmap_range(r).unwrap();
        let q = InvalidationQueue::default();
        let batch = [InvalidationRequest {
            range: r,
            scope: InvalidationScope::IotlbOnly,
            domain: 0,
        }];
        let rep = q.execute_with(&mut m, &batch, &mut plane);
        // One stall, first retry rolls visit 3 (misses): recovered.
        assert_eq!(rep.retries, 1);
        assert!(!rep.per_page_fallback);
        assert!(rep.cost_ns > q.cost_ns(1), "backoff wait must cost time");
        assert!(matches!(m.translate(r.base()), Translation::Fault { .. }));
        assert_eq!(
            plane.stats().recovered_of(FaultKind::InvalidationTimeout),
            1
        );
        assert_eq!(plane.stats().invalidation_retries, 1);
        assert_eq!(plane.stats().batch_fallbacks, 0);
    }

    #[test]
    fn persistent_stall_degrades_to_per_page() {
        // Every visit stalls: the retry budget runs out and the batch must
        // be replayed per page.
        let cfg = FaultConfig::disabled().with_every(FaultKind::InvalidationTimeout, 1);
        let mut plane = FaultPlane::new(cfg, SimRng::seed(3));
        let (mut m, r) = mapped_iommu(0x300, 8);
        m.unmap_range(r).unwrap();
        let q = InvalidationQueue::default();
        let batch = [InvalidationRequest {
            range: r,
            scope: InvalidationScope::IotlbOnly,
            domain: 0,
        }];
        let rep = q.execute_with(&mut m, &batch, &mut plane);
        assert_eq!(rep.retries, MAX_INVALIDATION_RETRIES);
        assert!(rep.per_page_fallback);
        // Safety: every page of the batch is invalidated regardless.
        for p in r.iter_pages() {
            assert!(matches!(m.translate(p), Translation::Fault { .. }));
        }
        assert_eq!(m.stats().stale_iotlb_hits, 0);
        // Per-page replay: 8 queue entries instead of 1.
        assert_eq!(m.stats().invalidation_queue_entries, 8);
        assert_eq!(plane.stats().batch_fallbacks, 1);
    }

    #[test]
    fn fault_display_and_source() {
        let f = IommuFault::Translation {
            iova: Iova::from_pfn(7),
            reads: 4,
        };
        assert!(f.to_string().contains("translation fault"));
        let p: IommuFault = PtError::NotMapped(9).into();
        assert!(std::error::Error::source(&p).is_some());
        let t = IommuFault::InvalidationTimeout { retries: 4 };
        assert!(t.to_string().contains("timeout"));
    }
}
