//! IOMMU hardware configuration.

/// Sizes and behaviour knobs of the modelled IOMMU.
///
/// The IOTLB and page-structure cache sizes of real Intel IOMMUs are not
/// public; the paper infers a "likely range" of 64–128 entries for
/// PTcache-L3 from its measurements (§2.2, footnote 3). The defaults here
/// were calibrated so that the simulated miss rates land in the ranges the
/// paper reports (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IommuConfig {
    /// IOTLB entries (final IOVA-to-physical translations).
    pub iotlb_entries: usize,
    /// IOTLB entries for 2 MB huge-page translations (separate array, as in
    /// split small/large-page TLBs).
    pub iotlb_huge_entries: usize,
    /// PTcache-L1 entries (IOVA bits 39..48 -> PT-L2 page).
    pub ptcache_l1_entries: usize,
    /// PTcache-L2 entries (IOVA bits 30..48 -> PT-L3 page).
    pub ptcache_l2_entries: usize,
    /// PTcache-L3 entries (IOVA bits 21..48 -> PT-L4 page).
    pub ptcache_l3_entries: usize,
    /// IOTLB associativity: `None` models a fully associative LRU array;
    /// `Some(ways)` models a set-associative IOTLB indexed by the low IOVA
    /// pfn bits (`iotlb_entries / ways` sets), which adds the conflict
    /// misses real hardware exhibits when hot IOVAs alias to one set.
    pub iotlb_assoc: Option<usize>,
    /// Verify every IOTLB hit against the page table and count hits on
    /// unmapped IOVAs as safety violations (models what a malicious device
    /// could reach; the check itself costs nothing in simulated time).
    pub verify_safety: bool,
    /// Protection-domain ID this translation unit serves. Single-device
    /// setups use domain 0; the observability registry keys its per-tenant
    /// percentiles on it, ready for multi-device topologies.
    pub domain: u16,
    /// Number of protection domains the unit translates for (PASID-style
    /// multi-device sharing). Each domain owns an isolated IO page table,
    /// and every IOTLB/PTcache entry is tagged with its domain so one
    /// tenant's cached translations can never serve another tenant's
    /// device. 1 (the default) is the single-device legacy shape: domain 0
    /// tags are the identity, so single-domain behaviour is bit-identical
    /// to the pre-domain model.
    pub domains: u16,
}

impl Default for IommuConfig {
    fn default() -> Self {
        Self {
            iotlb_entries: 64,
            iotlb_huge_entries: 32,
            ptcache_l1_entries: 16,
            ptcache_l2_entries: 16,
            ptcache_l3_entries: 16,
            iotlb_assoc: None,
            verify_safety: true,
            domain: 0,
            domains: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_plausible_hardware() {
        let c = IommuConfig::default();
        assert!(c.iotlb_entries >= 32);
        assert!(c.ptcache_l3_entries >= c.ptcache_l1_entries / 2);
        assert!(c.verify_safety);
    }
}
