//! IOMMU substrate: IO page table, IOTLB, page-structure caches, walker,
//! and the invalidation queue.
//!
//! This crate is the hardware half of the paper's story. §2.1 of the paper
//! describes the Intel VT-d translation datapath; the key piece every prior
//! work ignored — and F&S exploits — is the set of *page-structure caches*
//! (PTcache-L1/L2/L3) that can cut an IOTLB miss from four memory reads
//! down to one.
//!
//! * [`pagetable`] — the 4-level IO page table with Linux's
//!   full-span-single-call reclamation rule (Figure 5),
//! * [`iommu`] — the translation engine: IOTLB + PTcaches + walker, with
//!   safety-violation detection (stale IOTLB hits, use-after-free walks),
//! * [`invalidation`] — the invalidation queue and its CPU cost model
//!   (Figure 6),
//! * [`lru`] — the generic LRU cache implementation (reference model),
//! * [`lru64`] — the open-addressed `u64`-keyed LRU the hot path uses,
//! * [`config`], [`stats`] — hardware knobs and PCM-style counters.

pub mod config;
pub mod fault;
pub mod invalidation;
#[allow(clippy::module_inception)]
pub mod iommu;
pub mod iotlb;
pub mod lru;
pub mod lru64;
pub mod pagetable;
pub mod stats;

pub use config::IommuConfig;
pub use fault::{InvalidationReport, IommuFault, MAX_INVALIDATION_RETRIES};
pub use invalidation::{InvalidationQueue, InvalidationRequest};
pub use iommu::{InvalidationScope, Iommu, Translation};
pub use pagetable::{IoPageTable, PtError, ReclaimedPage, UnmapOutcome};
pub use stats::{DomainStats, IommuStats};
